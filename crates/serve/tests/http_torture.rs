//! Torture tests for the HTTP request parser.
//!
//! The parser is the one surface of the system that eats arbitrary remote
//! bytes, so it gets the adversarial treatment: random byte streams,
//! truncations of valid requests at every byte offset, and pathological
//! header splits across reads. The invariant throughout: `read_request`
//! never panics, and every outcome is either a parsed request, a
//! rejection carrying a 4xx status (a response gets written), or
//! `Eof`/`Io` (a clean close).

use manic_serve::http::{read_request, ParseError, RejectReason, Request};
use proptest::prelude::*;
use std::io::{BufReader, Read};

/// A reader that hands out its data in caller-chosen chunk sizes — the
/// socket-layer reality that a head can arrive one byte at a time or split
/// anywhere, including mid-`\r\n`.
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    sizes: &'a [usize],
    turn: usize,
}

impl<'a> Chunked<'a> {
    fn new(data: &'a [u8], sizes: &'a [usize]) -> Self {
        Chunked { data, pos: 0, sizes, turn: 0 }
    }
}

impl Read for Chunked<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() {
            return Ok(0);
        }
        let want = if self.sizes.is_empty() {
            1
        } else {
            self.sizes[self.turn % self.sizes.len()].max(1)
        };
        self.turn += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Every outcome the connection loop knows how to handle.
fn outcome_is_handled(result: &Result<Request, ParseError>) -> bool {
    match result {
        Ok(req) => !req.method.is_empty() && !req.path.is_empty(),
        Err(ParseError::Reject(reason, _)) => {
            matches!(reason.status(), 400 | 413 | 414 | 431)
        }
        Err(ParseError::Eof) | Err(ParseError::Io) => true,
    }
}

fn parse_bytes(data: &[u8]) -> Result<Request, ParseError> {
    read_request(&mut BufReader::new(data))
}

const CANONICAL: &[u8] = b"GET /api/link/10.1.0.2/timeseries?bin=300&agg=min&format=json \
HTTP/1.1\r\nHost: observatory.example\r\nUser-Agent: torture/1.0\r\nAccept: application/json\r\n\
Connection: keep-alive\r\n\r\n";

#[test]
fn every_truncation_of_a_valid_request_is_handled() {
    assert!(parse_bytes(CANONICAL).is_ok());
    for cut in 0..CANONICAL.len() {
        let result = parse_bytes(&CANONICAL[..cut]);
        assert!(outcome_is_handled(&result), "cut at {cut}: {result:?}");
        // A truncated request must never parse as complete.
        assert!(result.is_err(), "cut at {cut} parsed as a full request");
    }
}

#[test]
fn every_chunking_of_a_valid_request_parses_identically() {
    let whole = parse_bytes(CANONICAL).expect("canonical parses");
    for chunk in 1..16usize {
        let sizes = [chunk];
        let mut r = BufReader::new(Chunked::new(CANONICAL, &sizes));
        let req = read_request(&mut r).unwrap_or_else(|e| panic!("chunk {chunk}: {e:?}"));
        assert_eq!(req.method, whole.method);
        assert_eq!(req.path, whole.path);
        assert_eq!(req.query, whole.query);
        assert_eq!(req.keep_alive, whole.keep_alive);
    }
    // Alternating splits that land mid-`\r\n` and mid-escape.
    for sizes in [[1, 7].as_slice(), &[3, 1], &[2, 5, 1], &[13, 1, 1]] {
        let mut r = BufReader::new(Chunked::new(CANONICAL, sizes));
        assert!(read_request(&mut r).is_ok(), "sizes {sizes:?}");
    }
}

#[test]
fn hostile_corpus_is_handled() {
    // Hand-built nastiness: each case must resolve to a handled outcome
    // without panicking, and the marked ones to a specific rejection.
    let cases: &[(&[u8], Option<RejectReason>)] = &[
        (b"", None), // Eof
        (b"\r\n", Some(RejectReason::Malformed)),
        (b"\x00\x01\x02\x03\xff\xfe\r\n\r\n", Some(RejectReason::Malformed)),
        (b"GET\r\n\r\n", Some(RejectReason::Malformed)),
        (b"GET / SPDY/3\r\n\r\n", Some(RejectReason::Malformed)),
        (b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", Some(RejectReason::Malformed)),
        (b"GET /%zz HTTP/1.1\r\n\r\n", Some(RejectReason::Malformed)),
        (b"GET /%e0%80 HTTP/1.1\r\n\r\n", Some(RejectReason::Malformed)),
        (b"GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789", Some(RejectReason::Body)),
        (b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", Some(RejectReason::Body)),
        (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", Some(RejectReason::Body)),
        // Bare LF line endings are tolerated (lenient in what we accept).
        (b"GET / HTTP/1.1\nHost: x\n\n", None),
    ];
    for (bytes, want) in cases {
        let result = parse_bytes(bytes);
        assert!(outcome_is_handled(&result), "{bytes:?} -> {result:?}");
        if let Some(reason) = want {
            match &result {
                Err(ParseError::Reject(r, _)) => assert_eq!(r, reason, "{bytes:?}"),
                other => panic!("{bytes:?}: expected {reason:?}, got {other:?}"),
            }
        }
    }
}

#[test]
fn giant_inputs_reject_without_unbounded_buffering() {
    // 8 MB of request line: must reject as 414 long before consuming it.
    let mut huge = b"GET /".to_vec();
    huge.extend(std::iter::repeat_n(b'a', 8 << 20));
    huge.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    match parse_bytes(&huge) {
        Err(ParseError::Reject(RejectReason::UriTooLong, _)) => {}
        other => panic!("expected UriTooLong, got {other:?}"),
    }
    // 8 MB of one header line: 431.
    let mut huge = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    huge.extend(std::iter::repeat_n(b'b', 8 << 20));
    huge.extend_from_slice(b"\r\n\r\n");
    match parse_bytes(&huge) {
        Err(ParseError::Reject(RejectReason::HeadersTooLarge, _)) => {}
        other => panic!("expected HeadersTooLarge, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup never panics and always lands on a handled
    /// outcome — the core "always a response or a clean close" property.
    #[test]
    fn random_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        let result = parse_bytes(&data);
        prop_assert!(outcome_is_handled(&result), "{result:?}");
    }

    /// The same soup fed through pathological chunkings agrees with the
    /// whole-buffer parse on accept/reject (errors may differ in detail,
    /// but a chunking must never turn garbage into a parsed request or
    /// vice versa).
    #[test]
    fn chunking_never_changes_acceptance(
        data in prop::collection::vec(any::<u8>(), 0..512),
        sizes in prop::collection::vec(1usize..9, 1..4),
    ) {
        let whole = parse_bytes(&data);
        let mut r = BufReader::new(Chunked::new(&data, &sizes));
        let chunked = read_request(&mut r);
        prop_assert!(outcome_is_handled(&chunked), "{chunked:?}");
        prop_assert_eq!(
            whole.is_ok(),
            chunked.is_ok(),
            "chunking flipped acceptance: whole={:?} chunked={:?}",
            whole,
            chunked
        );
        if let (Ok(a), Ok(b)) = (&whole, &chunked) {
            prop_assert_eq!(&a.method, &b.method);
            prop_assert_eq!(&a.path, &b.path);
            prop_assert_eq!(&a.raw_query, &b.raw_query);
        }
    }

    /// Structured-ish garbage: random header names/values with random
    /// whitespace and line endings. Exercises the header loop much harder
    /// than uniform bytes (which almost always die on the request line).
    #[test]
    fn random_headers_never_panic(
        headers in prop::collection::vec(
            (prop::collection::vec(any::<u8>(), 0..24), prop::collection::vec(any::<u8>(), 0..24)),
            0..24,
        ),
        crlf in any::<bool>(),
        terminate in any::<bool>(),
    ) {
        let eol: &[u8] = if crlf { b"\r\n" } else { b"\n" };
        let mut data = b"GET /api/links HTTP/1.1".to_vec();
        data.extend_from_slice(eol);
        for (name, value) in &headers {
            data.extend_from_slice(name);
            data.push(b':');
            data.extend_from_slice(value);
            data.extend_from_slice(eol);
        }
        if terminate {
            data.extend_from_slice(eol);
        }
        let result = parse_bytes(&data);
        prop_assert!(outcome_is_handled(&result), "{result:?}");
    }
}
