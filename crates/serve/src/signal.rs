//! Zero-dependency SIGINT/SIGTERM latch.
//!
//! No `libc` crate in this workspace, so the handler is installed through
//! the C `signal(2)` symbol directly. The handler only flips an atomic —
//! the one thing that is async-signal-safe — and the serve loop polls it.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        super::REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the handlers. Idempotent.
pub fn install() {
    imp::install();
}

/// Has a shutdown signal arrived since install?
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Reset the latch (tests).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}
