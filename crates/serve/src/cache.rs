//! LRU response cache keyed on `(path + query, snapshot epoch)`.
//!
//! Timeseries downsampling and explain rendering are the two endpoints
//! whose cost scales with data volume; dashboards poll them with identical
//! parameters every few seconds. Keying the cache on the snapshot epoch
//! makes invalidation free: a publish bumps the epoch, new requests miss,
//! and the stale entries age out through normal LRU pressure — no
//! explicit flush, no stale reads.
//!
//! The cache is bounded two ways: an entry count (lookup-cost bound) and a
//! byte budget (memory bound — entry count alone lets a client cache a few
//! hundred multi-megabyte renders). Resident bytes are exported as the
//! `manic_serve_cache_bytes` gauge, and the overload layer can
//! [`ResponseCache::shrink_to_bytes`] a low watermark when the shed gate
//! closes: under memory pressure the cache is the first thing sacrificed,
//! before any work is refused.

use crate::http::Response;
use std::collections::HashMap;
use std::sync::Mutex;

/// A cached response body (status + content type + shared bytes).
pub type CachedResponse = Response;

/// Per-entry bookkeeping overhead charged on top of key + body bytes
/// (hash-map slot, stamp, response struct).
const ENTRY_OVERHEAD: usize = 96;

struct Inner {
    map: HashMap<(String, u64), (u64, CachedResponse)>,
    /// Monotone access stamp for LRU ordering.
    stamp: u64,
    /// Approximate resident bytes across entries (keys + bodies + overhead).
    bytes: usize,
}

impl Inner {
    fn entry_cost(key: &str, resp: &CachedResponse) -> usize {
        key.len() + resp.body.len() + ENTRY_OVERHEAD
    }

    /// Remove the coldest entry; `false` when empty.
    fn evict_oldest(&mut self) -> bool {
        let Some(oldest) = self.map.iter().min_by_key(|(_, (s, _))| *s).map(|(k, _)| k.clone())
        else {
            return false;
        };
        if let Some((_, resp)) = self.map.remove(&oldest) {
            self.bytes = self.bytes.saturating_sub(Self::entry_cost(&oldest.0, &resp));
        }
        true
    }
}

/// Bounded LRU of rendered responses. Eviction scans for the oldest stamp
/// — O(capacity), fine for the intended tens-to-hundreds of entries (the
/// capacity bounds memory, not lookup cost).
pub struct ResponseCache {
    inner: Mutex<Inner>,
    cap: usize,
    max_bytes: usize,
}

impl ResponseCache {
    pub fn new(cap: usize) -> Self {
        Self::with_limits(cap, 64 * 1024 * 1024)
    }

    /// Bound by entry count *and* resident bytes. `max_bytes == 0` disables
    /// the byte budget.
    pub fn with_limits(cap: usize, max_bytes: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(Inner { map: HashMap::new(), stamp: 0, bytes: 0 }),
            cap: cap.max(1),
            max_bytes,
        }
    }

    pub fn get(&self, path_query: &str, epoch: u64) -> Option<CachedResponse> {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let hit = inner.map.get_mut(&(path_query.to_string(), epoch));
        match hit {
            Some((s, resp)) => {
                *s = stamp;
                let resp = resp.clone();
                crate::obs::metrics().cache_hits.inc();
                Some(resp)
            }
            None => {
                crate::obs::metrics().cache_misses.inc();
                None
            }
        }
    }

    pub fn put(&self, path_query: &str, epoch: u64, resp: CachedResponse) {
        let cost = Inner::entry_cost(path_query, &resp);
        if self.max_bytes > 0 && cost > self.max_bytes {
            // A single response larger than the whole budget is never
            // cached — admitting it would immediately evict everything.
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let key = (path_query.to_string(), epoch);
        if let Some((_, old)) = inner.map.remove(&key) {
            inner.bytes = inner.bytes.saturating_sub(Inner::entry_cost(path_query, &old));
        }
        while inner.map.len() >= self.cap
            || (self.max_bytes > 0 && inner.bytes + cost > self.max_bytes)
        {
            if !inner.evict_oldest() {
                break;
            }
        }
        inner.bytes += cost;
        inner.map.insert(key, (stamp, resp));
        crate::obs::metrics().cache_bytes.set(inner.bytes as i64);
    }

    /// Evict coldest-first until resident bytes are at or under
    /// `watermark`. Called by the overload layer when the shed gate
    /// closes: memory is handed back before any request is refused.
    pub fn shrink_to_bytes(&self, watermark: usize) {
        let mut inner = self.inner.lock().unwrap();
        if inner.bytes <= watermark {
            return;
        }
        while inner.bytes > watermark {
            if !inner.evict_oldest() {
                break;
            }
        }
        crate::obs::metrics().cache_bytes.set(inner.bytes as i64);
        crate::obs::metrics().cache_shrinks.inc();
        manic_obs::event!(
            manic_obs::WARN, "serve", "cache_shrunk", 0,
            bytes = inner.bytes as u64, watermark = watermark as u64,
        );
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap().bytes
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tag: &str) -> Response {
        Response::json(200, format!("{{\"tag\":\"{tag}\"}}"))
    }

    fn sized(n: usize) -> Response {
        Response::new(200, "application/json", vec![b'x'; n])
    }

    fn body(r: &Response) -> String {
        String::from_utf8(r.body.to_vec()).unwrap()
    }

    #[test]
    fn hit_returns_same_body_and_epoch_isolates() {
        let c = ResponseCache::new(8);
        assert!(c.get("/a", 1).is_none());
        c.put("/a", 1, resp("one"));
        assert_eq!(body(&c.get("/a", 1).unwrap()), "{\"tag\":\"one\"}");
        // Same path, new epoch: miss.
        assert!(c.get("/a", 2).is_none());
    }

    #[test]
    fn lru_evicts_coldest() {
        let c = ResponseCache::new(2);
        c.put("/a", 1, resp("a"));
        c.put("/b", 1, resp("b"));
        c.get("/a", 1); // touch /a so /b is coldest
        c.put("/c", 1, resp("c"));
        assert!(c.get("/b", 1).is_none(), "coldest entry evicted");
        assert!(c.get("/a", 1).is_some());
        assert!(c.get("/c", 1).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn byte_budget_evicts_before_overflow() {
        // Budget fits two ~1 KiB entries but not three.
        let c = ResponseCache::with_limits(64, 2 * 1200);
        c.put("/a", 1, sized(1024));
        c.put("/b", 1, sized(1024));
        assert_eq!(c.len(), 2);
        c.put("/c", 1, sized(1024));
        assert_eq!(c.len(), 2, "byte budget forced an eviction");
        assert!(c.get("/a", 1).is_none(), "coldest went first");
        assert!(c.bytes() <= 2 * 1200);
    }

    #[test]
    fn oversized_response_is_never_cached() {
        let c = ResponseCache::with_limits(64, 4096);
        c.put("/big", 1, sized(1 << 20));
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let c = ResponseCache::with_limits(64, 1 << 20);
        c.put("/a", 1, sized(4096));
        let b0 = c.bytes();
        for _ in 0..10 {
            c.put("/a", 1, sized(4096));
        }
        assert_eq!(c.bytes(), b0, "replacement is byte-neutral");
    }

    #[test]
    fn shrink_to_watermark() {
        let c = ResponseCache::with_limits(64, 1 << 20);
        for i in 0..16 {
            c.put(&format!("/s/{i}"), 1, sized(4096));
        }
        assert!(c.bytes() > 8192);
        c.shrink_to_bytes(8192);
        assert!(c.bytes() <= 8192, "shrunk to watermark: {}", c.bytes());
        assert!(!c.is_empty(), "watermark keeps the hottest entries");
        // Shrinking an already-small cache is a no-op.
        let n = c.len();
        c.shrink_to_bytes(8192);
        assert_eq!(c.len(), n);
    }
}
