//! LRU response cache keyed on `(path + query, snapshot epoch)`.
//!
//! Timeseries downsampling and explain rendering are the two endpoints
//! whose cost scales with data volume; dashboards poll them with identical
//! parameters every few seconds. Keying the cache on the snapshot epoch
//! makes invalidation free: a publish bumps the epoch, new requests miss,
//! and the stale entries age out through normal LRU pressure — no
//! explicit flush, no stale reads.

use crate::http::Response;
use std::collections::HashMap;
use std::sync::Mutex;

/// A cached response body (status + content type + shared bytes).
pub type CachedResponse = Response;

struct Inner {
    map: HashMap<(String, u64), (u64, CachedResponse)>,
    /// Monotone access stamp for LRU ordering.
    stamp: u64,
}

/// Bounded LRU of rendered responses. Eviction scans for the oldest stamp
/// — O(capacity), fine for the intended tens-to-hundreds of entries (the
/// capacity bounds memory, not lookup cost).
pub struct ResponseCache {
    inner: Mutex<Inner>,
    cap: usize,
}

impl ResponseCache {
    pub fn new(cap: usize) -> Self {
        ResponseCache {
            inner: Mutex::new(Inner { map: HashMap::new(), stamp: 0 }),
            cap: cap.max(1),
        }
    }

    pub fn get(&self, path_query: &str, epoch: u64) -> Option<CachedResponse> {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let hit = inner.map.get_mut(&(path_query.to_string(), epoch));
        match hit {
            Some((s, resp)) => {
                *s = stamp;
                let resp = resp.clone();
                crate::obs::metrics().cache_hits.inc();
                Some(resp)
            }
            None => {
                crate::obs::metrics().cache_misses.inc();
                None
            }
        }
    }

    pub fn put(&self, path_query: &str, epoch: u64, resp: CachedResponse) {
        let mut inner = self.inner.lock().unwrap();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if inner.map.len() >= self.cap
            && !inner.map.contains_key(&(path_query.to_string(), epoch))
        {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, (s, _))| *s)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert((path_query.to_string(), epoch), (stamp, resp));
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(tag: &str) -> Response {
        Response::json(200, format!("{{\"tag\":\"{tag}\"}}"))
    }

    fn body(r: &Response) -> String {
        String::from_utf8(r.body.to_vec()).unwrap()
    }

    #[test]
    fn hit_returns_same_body_and_epoch_isolates() {
        let c = ResponseCache::new(8);
        assert!(c.get("/a", 1).is_none());
        c.put("/a", 1, resp("one"));
        assert_eq!(body(&c.get("/a", 1).unwrap()), "{\"tag\":\"one\"}");
        // Same path, new epoch: miss.
        assert!(c.get("/a", 2).is_none());
    }

    #[test]
    fn lru_evicts_coldest() {
        let c = ResponseCache::new(2);
        c.put("/a", 1, resp("a"));
        c.put("/b", 1, resp("b"));
        c.get("/a", 1); // touch /a so /b is coldest
        c.put("/c", 1, resp("c"));
        assert!(c.get("/b", 1).is_none(), "coldest entry evicted");
        assert!(c.get("/a", 1).is_some());
        assert!(c.get("/c", 1).is_some());
        assert_eq!(c.len(), 2);
    }
}
