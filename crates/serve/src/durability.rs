//! Durability/recovery status for `/api/health`.
//!
//! When the serve process runs with a `--data-dir`, operators need to see
//! the persistence layer's frontier without shelling into the host: which
//! fsync policy is in force, whether this process resumed from a
//! checkpoint (and how much WAL tail it discarded), where the last
//! checkpoint sits, and how many rounds of work would be re-executed if
//! the process died right now (`lag_rounds`). The measurement loop updates
//! the shared handle with plain atomics; the render is a small JSON object
//! spliced into the pre-rendered health snapshot.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Shared durability frontier, written by the measurement loop and read by
/// the health endpoint.
#[derive(Debug)]
pub struct DurabilityStatus {
    /// Fsync policy string (`always` / `every-<n>` / `never`); fixed for
    /// the process lifetime.
    policy: String,
    /// This process restored its state from a checkpoint.
    resumed: AtomicBool,
    /// Rounds restored by the resume (0 when fresh).
    recovered_rounds: AtomicU64,
    /// Intact post-checkpoint WAL records discarded on resume.
    tail_discarded: AtomicU64,
    /// Wall-clock recovery time, ms (f64 bits).
    recovery_ms_bits: AtomicU64,
    /// Last checkpoint: round counter and sim time.
    checkpoint_rounds: AtomicU64,
    checkpoint_t: AtomicI64,
    /// Rounds executed so far (checkpointed or not).
    rounds: AtomicU64,
    /// WAL is in ENOSPC-degraded mode (raw samples shed, verdict-critical
    /// records still persisted).
    storage_degraded: AtomicBool,
    /// Corruption findings from the resume path (see
    /// [`manic_core::StorageFindings`]).
    fallback_generations: AtomicU64,
    bad_metas: AtomicU64,
    healed_snapshot: AtomicBool,
    quarantined_frames: AtomicU64,
    quarantined_bytes: AtomicU64,
    gap_windows: AtomicU64,
}

impl DurabilityStatus {
    pub fn new(policy: &str) -> Self {
        DurabilityStatus {
            policy: policy.to_string(),
            resumed: AtomicBool::new(false),
            recovered_rounds: AtomicU64::new(0),
            tail_discarded: AtomicU64::new(0),
            recovery_ms_bits: AtomicU64::new(0f64.to_bits()),
            checkpoint_rounds: AtomicU64::new(0),
            checkpoint_t: AtomicI64::new(0),
            rounds: AtomicU64::new(0),
            storage_degraded: AtomicBool::new(false),
            fallback_generations: AtomicU64::new(0),
            bad_metas: AtomicU64::new(0),
            healed_snapshot: AtomicBool::new(false),
            quarantined_frames: AtomicU64::new(0),
            quarantined_bytes: AtomicU64::new(0),
            gap_windows: AtomicU64::new(0),
        }
    }

    /// Record that this process resumed from a checkpoint.
    pub fn note_recovery(&self, rounds: u64, tail_discarded: u64, recovery_ms: f64) {
        self.resumed.store(true, Ordering::Relaxed);
        self.recovered_rounds.store(rounds, Ordering::Relaxed);
        self.tail_discarded.store(tail_discarded, Ordering::Relaxed);
        self.recovery_ms_bits.store(recovery_ms.to_bits(), Ordering::Relaxed);
        self.rounds.store(rounds, Ordering::Relaxed);
        self.checkpoint_rounds.store(rounds, Ordering::Relaxed);
    }

    /// A checkpoint was written at round `rounds`, sim time `t`.
    pub fn note_checkpoint(&self, rounds: u64, t: i64) {
        self.checkpoint_rounds.store(rounds, Ordering::Relaxed);
        self.checkpoint_t.store(t, Ordering::Relaxed);
        self.rounds.fetch_max(rounds, Ordering::Relaxed);
    }

    /// Round `rounds` finished executing (checkpointed or not).
    pub fn note_progress(&self, rounds: u64) {
        self.rounds.fetch_max(rounds, Ordering::Relaxed);
    }

    /// Record the corruption findings the resume path worked around.
    pub fn note_storage_findings(&self, f: &manic_core::StorageFindings) {
        self.fallback_generations.store(f.fallback_generations, Ordering::Relaxed);
        self.bad_metas.store(f.bad_metas, Ordering::Relaxed);
        self.healed_snapshot.store(f.healed_snapshot, Ordering::Relaxed);
        self.quarantined_frames.store(f.quarantined_frames, Ordering::Relaxed);
        self.quarantined_bytes.store(f.quarantined_bytes, Ordering::Relaxed);
        self.gap_windows.store(f.gap_windows, Ordering::Relaxed);
    }

    /// Track the WAL's ENOSPC-degraded mode (polled by the measurement
    /// loop; flips back to `false` once appends succeed again).
    pub fn set_storage_degraded(&self, degraded: bool) {
        self.storage_degraded.store(degraded, Ordering::Relaxed);
    }

    /// Rounds of work a crash right now would have to re-execute.
    pub fn lag_rounds(&self) -> u64 {
        self.rounds
            .load(Ordering::Relaxed)
            .saturating_sub(self.checkpoint_rounds.load(Ordering::Relaxed))
    }

    /// Render as a JSON object (the `durability` field of `/api/health`).
    pub fn to_json(&self) -> String {
        let recovery_ms = f64::from_bits(self.recovery_ms_bits.load(Ordering::Relaxed));
        format!(
            "{{\"enabled\":true,\"policy\":\"{}\",\"resumed\":{},\
             \"recovered_rounds\":{},\"tail_discarded\":{},\"recovery_ms\":{:.3},\
             \"checkpoint_rounds\":{},\"checkpoint_t\":{},\"rounds\":{},\"lag_rounds\":{},\
             \"storage\":{{\"degraded\":{},\"fallback_generations\":{},\"bad_metas\":{},\
             \"healed_snapshot\":{},\"quarantined_frames\":{},\"quarantined_bytes\":{},\
             \"gap_windows\":{},\"checkpoint_generation\":{}}}}}",
            manic_obs::json_escape(&self.policy),
            self.resumed.load(Ordering::Relaxed),
            self.recovered_rounds.load(Ordering::Relaxed),
            self.tail_discarded.load(Ordering::Relaxed),
            recovery_ms,
            self.checkpoint_rounds.load(Ordering::Relaxed),
            self.checkpoint_t.load(Ordering::Relaxed),
            self.rounds.load(Ordering::Relaxed),
            self.lag_rounds(),
            self.storage_degraded.load(Ordering::Relaxed),
            self.fallback_generations.load(Ordering::Relaxed),
            self.bad_metas.load(Ordering::Relaxed),
            self.healed_snapshot.load(Ordering::Relaxed),
            self.quarantined_frames.load(Ordering::Relaxed),
            self.quarantined_bytes.load(Ordering::Relaxed),
            self.gap_windows.load(Ordering::Relaxed),
            self.checkpoint_rounds.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_reflects_lifecycle() {
        let d = DurabilityStatus::new("every-64");
        assert!(d.to_json().contains("\"resumed\":false"));
        assert_eq!(d.lag_rounds(), 0);
        d.note_recovery(20, 3, 12.5);
        d.note_progress(25);
        assert_eq!(d.lag_rounds(), 5);
        let j = d.to_json();
        assert!(j.contains("\"resumed\":true"), "{j}");
        assert!(j.contains("\"recovered_rounds\":20"), "{j}");
        assert!(j.contains("\"tail_discarded\":3"), "{j}");
        assert!(j.contains("\"lag_rounds\":5"), "{j}");
        d.note_checkpoint(25, 7500);
        assert_eq!(d.lag_rounds(), 0);
        assert!(d.to_json().contains("\"checkpoint_t\":7500"));
    }

    #[test]
    fn storage_block_reflects_findings() {
        let d = DurabilityStatus::new("always");
        let j = d.to_json();
        assert!(j.contains("\"storage\":{\"degraded\":false"), "{j}");
        assert!(j.contains("\"healed_snapshot\":false"), "{j}");

        let f = manic_core::StorageFindings {
            fallback_generations: 1,
            healed_snapshot: true,
            quarantined_frames: 2,
            quarantined_bytes: 96,
            gap_windows: 4,
            ..Default::default()
        };
        d.note_storage_findings(&f);
        d.set_storage_degraded(true);
        d.note_checkpoint(40, 12_000);
        let j = d.to_json();
        assert!(j.contains("\"degraded\":true"), "{j}");
        assert!(j.contains("\"fallback_generations\":1"), "{j}");
        assert!(j.contains("\"healed_snapshot\":true"), "{j}");
        assert!(j.contains("\"quarantined_frames\":2"), "{j}");
        assert!(j.contains("\"quarantined_bytes\":96"), "{j}");
        assert!(j.contains("\"gap_windows\":4"), "{j}");
        assert!(j.contains("\"checkpoint_generation\":40"), "{j}");
    }
}
