//! The TCP front end: a fixed worker pool over an accept thread.
//!
//! `std::net` only — one thread blocks in `accept`, pushes connections
//! onto an mpsc channel, and `workers` threads pull from it behind a
//! shared `Mutex<Receiver>`. Keep-alive connections are served until the
//! client closes, an idle read times out, or shutdown is requested.
//! Shutdown is graceful: the flag flips, the accept thread is woken by a
//! loopback self-connect, the channel drains, and every worker finishes
//! (writes the response for) the request it is on before exiting.
//!
//! The accept side enforces the overload layer's **connection budget**: a
//! slot is claimed *before* `accept(2)`, so when the budget is spent the
//! loop stalls and excess clients queue in the kernel backlog instead of
//! consuming file descriptors. `EMFILE`/`ENFILE` is survivable via a
//! reserve descriptor: drop it, accept-and-close one pending client (which
//! sees a clean close instead of hanging), re-arm. Each worker wraps its
//! stream in a [`DeadlineStream`] so a slowloris or byte-dribbling client
//! is disconnected `header_read_timeout` after its first request byte —
//! distinct from the keep-alive idle timeout, and without adding a single
//! syscall to the buffered fast path.

use crate::api;
use crate::cache::ResponseCache;
use crate::http::{self, ParseError, Response};
use crate::overload::{ConnGuard, OverloadConfig, OverloadState};
use crate::ratelimit::RateLimiter;
use crate::snapshot::SnapshotHub;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-client request budget; 0 = unlimited. The default is far above
    /// any dashboard's needs but still bounds a hostile client.
    pub rate_limit_rps: u64,
    pub rate_limit_burst: u64,
    /// Response-cache capacity (entries; byte budget lives in `overload`).
    pub cache_capacity: usize,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
    /// Overload-control tuning (deadlines, budgets, shed gate, breaker).
    pub overload: OverloadConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            rate_limit_rps: 100_000,
            rate_limit_burst: 20_000,
            cache_capacity: 256,
            keep_alive_timeout: Duration::from_secs(5),
            overload: OverloadConfig::default(),
        }
    }
}

/// Everything the read path needs, shared across workers.
pub struct ServeState {
    pub hub: Arc<SnapshotHub>,
    pub store: Arc<manic_tsdb::Store>,
    pub cache: ResponseCache,
    pub limiter: RateLimiter,
    /// Shared overload-control state (budget, shed gate, breaker).
    pub overload: Arc<OverloadState>,
    /// Durability frontier when the process runs with a data dir; `None`
    /// keeps `/api/health` byte-identical to an in-memory deployment.
    pub durability: Option<Arc<crate::durability::DurabilityStatus>>,
}

impl ServeState {
    pub fn new(hub: Arc<SnapshotHub>, store: Arc<manic_tsdb::Store>, cfg: &ServeConfig) -> Self {
        ServeState {
            hub,
            store,
            cache: ResponseCache::with_limits(cfg.cache_capacity, cfg.overload.cache_max_bytes),
            limiter: RateLimiter::new(cfg.rate_limit_rps, cfg.rate_limit_burst),
            overload: Arc::new(OverloadState::new(cfg.overload.clone())),
            durability: None,
        }
    }
}

/// A running server. Dropping without calling [`Server::shutdown`] leaks
/// the threads until process exit (they hold no state worth flushing).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: thread::JoinHandle<()>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    pub fn start(
        addr: &str,
        state: Arc<ServeState>,
        cfg: &ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<(TcpStream, ConnGuard)>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let keep_alive_timeout = cfg.keep_alive_timeout;
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = rx.lock().unwrap().recv();
                        match conn {
                            Ok((stream, guard)) => {
                                guard.dequeued();
                                serve_connection(
                                    stream,
                                    guard,
                                    &state,
                                    &shutdown,
                                    keep_alive_timeout,
                                );
                            }
                            // Sender dropped: accept thread exited, drain done.
                            Err(_) => break,
                        }
                    })?,
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let overload = Arc::clone(&state.overload);
        let accept_handle = thread::Builder::new().name("serve-accept".into()).spawn(move || {
            accept_loop(listener, tx, overload, accept_shutdown);
        })?;

        Ok(Server { addr: local, shutdown, accept_handle, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful stop: no new connections, in-flight requests complete.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_handle.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// `EMFILE`/`ENFILE` from `accept(2)` (process/system fd table full).
/// Matched by raw errno — 24/23 on Linux — because this crate links no
/// libc bindings.
fn is_fd_exhausted(e: &std::io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

fn accept_loop(
    listener: TcpListener,
    tx: mpsc::Sender<(TcpStream, ConnGuard)>,
    overload: Arc<OverloadState>,
    shutdown: Arc<AtomicBool>,
) {
    let m = crate::obs::metrics();
    // One spare descriptor so fd exhaustion is survivable: when accept
    // fails with EMFILE, closing this frees exactly one slot to accept and
    // immediately close a pending client (a clean close beats letting it
    // hang in the backlog until its own timeout).
    let mut reserve_fd = std::fs::File::open("/dev/null").ok();
    'outer: loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        // Claim a budget slot *before* accepting: at the cap the loop
        // stalls and excess clients wait in the kernel backlog without
        // consuming our descriptors or worker memory.
        let guard = {
            let mut stalled = false;
            loop {
                match overload.try_acquire_conn() {
                    Some(g) => break g,
                    None => {
                        if !stalled {
                            stalled = true;
                            m.accept_backpressure.inc();
                            manic_obs::event!(
                                manic_obs::DEBUG, "serve", "accept_backpressure", 0,
                                open = overload.open_conns(),
                            );
                        }
                        thread::sleep(Duration::from_millis(2));
                        if shutdown.load(Ordering::Acquire) {
                            break 'outer;
                        }
                    }
                }
            }
        };
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                guard.enqueued();
                // A send only fails once workers are gone, i.e. at
                // shutdown; dropping the connection then is correct.
                let _ = tx.send((stream, guard));
            }
            Err(e) => {
                drop(guard);
                if is_fd_exhausted(&e) {
                    m.conn_rejected_emfile.inc();
                    manic_obs::event!(manic_obs::WARN, "serve", "fd_exhausted", 0);
                    if reserve_fd.is_some() {
                        drop(reserve_fd.take());
                        if let Ok((doomed, _)) = listener.accept() {
                            drop(doomed);
                        }
                        reserve_fd = std::fs::File::open("/dev/null").ok();
                    }
                    thread::sleep(Duration::from_millis(10));
                } else if e.kind() != std::io::ErrorKind::ConnectionAborted {
                    // Transient accept errors (ECONNABORTED is routine);
                    // yield briefly rather than spinning on a hot error.
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
    // `tx` drops here, unblocking every idle worker.
}

/// Which socket read timeout is currently programmed, so the fast path
/// never issues redundant `setsockopt` calls.
#[derive(PartialEq, Eq, Clone, Copy)]
enum SockTimeout {
    Idle,
    Header,
}

/// A `TcpStream` reader with two timing regimes: **idle** (between
/// requests — the keep-alive timeout applies) and **header** (a request
/// head is in flight — a hard deadline runs from its first byte, so a
/// client dribbling one byte per second cannot hold a worker for
/// `keep_alive_timeout` per header line).
///
/// The phase machine is arranged so a well-behaved client costs zero
/// additional syscalls: requests that arrive in one segment are consumed
/// from the `BufReader` without re-entering `read`, and the socket timeout
/// is only reprogrammed when a head actually spans multiple reads.
struct DeadlineStream {
    stream: TcpStream,
    idle_timeout: Duration,
    header_timeout: Duration,
    /// Hard deadline for the in-flight head; `None` between requests.
    deadline: Option<Instant>,
    programmed: SockTimeout,
    /// The last read failure was the header deadline (vs idle timeout).
    header_deadline_hit: bool,
    /// The last read failure was a timeout of either kind.
    timed_out: bool,
}

impl DeadlineStream {
    fn new(
        stream: TcpStream,
        idle_timeout: Duration,
        header_timeout: Duration,
    ) -> std::io::Result<Self> {
        stream.set_read_timeout(Some(idle_timeout))?;
        Ok(DeadlineStream {
            stream,
            idle_timeout,
            header_timeout,
            deadline: None,
            programmed: SockTimeout::Idle,
            header_deadline_hit: false,
            timed_out: false,
        })
    }

    /// A full request head was parsed: the next bytes belong to the next
    /// request, timed under the keep-alive regime again. No syscall here —
    /// the socket timeout is corrected lazily on the next actual read.
    fn end_request(&mut self) {
        self.deadline = None;
    }

    fn into_stream(self) -> TcpStream {
        self.stream
    }

    fn is_timeout(e: &std::io::Error) -> bool {
        matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.deadline {
            None => {
                if self.programmed != SockTimeout::Idle {
                    self.stream.set_read_timeout(Some(self.idle_timeout))?;
                    self.programmed = SockTimeout::Idle;
                }
                match self.stream.read(buf) {
                    Ok(n) => {
                        if n > 0 {
                            // First byte of a head: the deadline starts.
                            self.deadline = Some(Instant::now() + self.header_timeout);
                        }
                        Ok(n)
                    }
                    Err(e) => {
                        self.timed_out = Self::is_timeout(&e);
                        Err(e)
                    }
                }
            }
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    self.header_deadline_hit = true;
                    self.timed_out = true;
                    return Err(std::io::ErrorKind::TimedOut.into());
                }
                self.stream.set_read_timeout(Some(remaining))?;
                self.programmed = SockTimeout::Header;
                match self.stream.read(buf) {
                    Ok(n) => Ok(n),
                    Err(e) => {
                        if Self::is_timeout(&e) {
                            self.timed_out = true;
                            self.header_deadline_hit = true;
                        }
                        Err(e)
                    }
                }
            }
        }
    }
}

/// Bounded lingering close after a parse rejection: shut down the write
/// side, then drain (a little of) whatever the client is still sending so
/// the kernel does not convert unread receive-buffer bytes into a RST
/// that destroys the error response in flight.
fn lingering_close(stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut stream = stream;
    let mut buf = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 16 * 1024 {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    _guard: ConnGuard,
    state: &ServeState,
    shutdown: &AtomicBool,
    keep_alive_timeout: Duration,
) {
    let m = crate::obs::metrics();
    let ocfg = state.overload.config();
    let peer_ip = stream.peer_addr().map(|a| a.ip()).ok();
    let _ = stream.set_nodelay(true);
    if !ocfg.write_timeout.is_zero() {
        let _ = stream.set_write_timeout(Some(ocfg.write_timeout));
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let ds = match DeadlineStream::new(stream, keep_alive_timeout, ocfg.header_read_timeout) {
        Ok(ds) => ds,
        Err(_) => return,
    };
    let mut reader = BufReader::new(ds);
    // Pipelined responses coalesce here and flush in one write once the
    // client's buffered input drains (or the batch gets large) — for a
    // request-at-a-time client this degenerates to one write per response.
    let mut out: Vec<u8> = Vec::new();
    const FLUSH_BYTES: usize = 64 * 1024;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(req) => {
                reader.get_mut().end_request();
                req
            }
            Err(ParseError::Eof) => break,
            Err(ParseError::Io) => {
                let ds = reader.get_ref();
                if ds.header_deadline_hit {
                    m.disconnect_header_timeout.inc();
                    manic_obs::event!(
                        manic_obs::DEBUG, "serve", "disconnect", 0, kind = "header_timeout",
                    );
                } else if ds.timed_out {
                    m.disconnect_idle_timeout.inc();
                }
                break;
            }
            Err(ParseError::Reject(reason, msg)) => {
                m.parse_counter(reason).inc();
                let status = reason.status();
                manic_obs::event!(
                    manic_obs::DEBUG, "serve", "request_rejected", 0,
                    status = status as u64, msg = msg,
                );
                Response::error(status, msg).render_into(&mut out, false);
                let write_ok = writer.write_all(&out).is_ok();
                if write_ok {
                    lingering_close(reader.into_inner().into_stream());
                }
                return;
            }
        };
        // Priority-lane paths skip the rate limiter too: an operator must
        // be able to read health/metrics from a flooded host.
        let allowed = api::is_priority(&req.path)
            || peer_ip.map(|ip| state.limiter.allow(ip)).unwrap_or(true);
        let resp = if allowed {
            api::handle(state, &req)
        } else {
            Response::error(429, "rate limit exceeded")
        };
        let draining = shutdown.load(Ordering::Acquire);
        let keep_alive = req.keep_alive && !draining;
        resp.render_into(&mut out, keep_alive);
        if reader.buffer().is_empty() || out.len() >= FLUSH_BYTES {
            if let Err(e) = writer.write_all(&out) {
                if DeadlineStream::is_timeout(&e) {
                    m.disconnect_write_timeout.inc();
                } else {
                    m.disconnect_write_error.inc();
                }
                return;
            }
            out.clear();
        }
        if !keep_alive {
            break;
        }
    }
    if !out.is_empty() {
        if let Err(e) = writer.write_all(&out) {
            if DeadlineStream::is_timeout(&e) {
                m.disconnect_write_timeout.inc();
            } else {
                m.disconnect_write_error.inc();
            }
        }
    }
}
