//! The TCP front end: a fixed worker pool over an accept thread.
//!
//! `std::net` only — one thread blocks in `accept`, pushes connections
//! onto an mpsc channel, and `workers` threads pull from it behind a
//! shared `Mutex<Receiver>`. Keep-alive connections are served until the
//! client closes, an idle read times out, or shutdown is requested.
//! Shutdown is graceful: the flag flips, the accept thread is woken by a
//! loopback self-connect, the channel drains, and every worker finishes
//! (writes the response for) the request it is on before exiting.

use crate::api;
use crate::cache::ResponseCache;
use crate::http::{self, ParseError, Response};
use crate::ratelimit::RateLimiter;
use crate::snapshot::SnapshotHub;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Tuning for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-client request budget; 0 = unlimited. The default is far above
    /// any dashboard's needs but still bounds a hostile client.
    pub rate_limit_rps: u64,
    pub rate_limit_burst: u64,
    /// Response-cache capacity (entries).
    pub cache_capacity: usize,
    /// Idle keep-alive connections are closed after this long.
    pub keep_alive_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 8,
            rate_limit_rps: 100_000,
            rate_limit_burst: 20_000,
            cache_capacity: 256,
            keep_alive_timeout: Duration::from_secs(5),
        }
    }
}

/// Everything the read path needs, shared across workers.
pub struct ServeState {
    pub hub: Arc<SnapshotHub>,
    pub store: Arc<manic_tsdb::Store>,
    pub cache: ResponseCache,
    pub limiter: RateLimiter,
    /// Durability frontier when the process runs with a data dir; `None`
    /// keeps `/api/health` byte-identical to an in-memory deployment.
    pub durability: Option<Arc<crate::durability::DurabilityStatus>>,
}

impl ServeState {
    pub fn new(hub: Arc<SnapshotHub>, store: Arc<manic_tsdb::Store>, cfg: &ServeConfig) -> Self {
        ServeState {
            hub,
            store,
            cache: ResponseCache::new(cfg.cache_capacity),
            limiter: RateLimiter::new(cfg.rate_limit_rps, cfg.rate_limit_burst),
            durability: None,
        }
    }
}

/// A running server. Dropping without calling [`Server::shutdown`] leaks
/// the threads until process exit (they hold no state worth flushing).
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: thread::JoinHandle<()>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (port 0 picks a free port) and start serving.
    pub fn start(
        addr: &str,
        state: Arc<ServeState>,
        cfg: &ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            let keep_alive_timeout = cfg.keep_alive_timeout;
            workers.push(
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || loop {
                        let conn = rx.lock().unwrap().recv();
                        match conn {
                            Ok(stream) => {
                                serve_connection(stream, &state, &shutdown, keep_alive_timeout)
                            }
                            // Sender dropped: accept thread exited, drain done.
                            Err(_) => break,
                        }
                    })?,
            );
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = thread::Builder::new().name("serve-accept".into()).spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send only fails once workers are gone, i.e. at
                    // shutdown; dropping the connection then is correct.
                    let _ = tx.send(stream);
                }
            }
            // `tx` drops here, unblocking every idle worker.
        })?;

        Ok(Server { addr: local, shutdown, accept_handle, workers })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful stop: no new connections, in-flight requests complete.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept_handle.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    state: &ServeState,
    shutdown: &AtomicBool,
    keep_alive_timeout: Duration,
) {
    let m = crate::obs::metrics();
    m.connections.add(1);
    let peer_ip = stream.peer_addr().map(|a| a.ip()).ok();
    let _ = stream.set_read_timeout(Some(keep_alive_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => {
            m.connections.add(-1);
            return;
        }
    };
    let mut reader = BufReader::new(stream);
    // Pipelined responses coalesce here and flush in one write once the
    // client's buffered input drains (or the batch gets large) — for a
    // request-at-a-time client this degenerates to one write per response.
    let mut out: Vec<u8> = Vec::new();
    const FLUSH_BYTES: usize = 64 * 1024;
    loop {
        let req = match http::read_request(&mut reader) {
            Ok(req) => req,
            Err(ParseError::Eof) | Err(ParseError::Io) => break,
            Err(ParseError::Malformed(msg)) => {
                Response::error(400, msg).render_into(&mut out, false);
                break;
            }
        };
        let allowed = peer_ip.map(|ip| state.limiter.allow(ip)).unwrap_or(true);
        let resp = if allowed {
            api::handle(state, &req)
        } else {
            Response::error(429, "rate limit exceeded")
        };
        let draining = shutdown.load(Ordering::Acquire);
        let keep_alive = req.keep_alive && !draining;
        resp.render_into(&mut out, keep_alive);
        if reader.buffer().is_empty() || out.len() >= FLUSH_BYTES {
            if writer.write_all(&out).is_err() {
                break;
            }
            out.clear();
        }
        if !keep_alive {
            break;
        }
    }
    let _ = writer.write_all(&out);
    m.connections.add(-1);
}
