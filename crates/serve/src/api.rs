//! Request routing: URL → response, reading only the published snapshot,
//! the audit trail, and the tsdb.
//!
//! This is also where admission control lives: `/api/health` and
//! `/metrics` ride a **priority lane** (never shed, never rate limited —
//! an operator must be able to see a melting server), every other request
//! passes the overload layer's shed gate, and the two expensive render
//! endpoints additionally sit behind a circuit breaker and hard caps on
//! selection size and response bytes.

use crate::http::{Request, Response};
use crate::overload::ShedReason;
use crate::server::ServeState;
use manic_tsdb::{Aggregate, TagFilter};

/// Default timeseries window when the client does not name one: 4 h of
/// five-minute TSLP rounds.
const DEFAULT_WINDOW_SECS: i64 = 4 * 3600;
/// Widest permitted window (a full 22-month study, rounded up) — bounds
/// the per-request work a client can demand.
const MAX_WINDOW_SECS: i64 = 700 * 86_400;

/// Paths on the reserved priority lane: always admitted, regardless of
/// shed gate, breaker, or rate limiter.
pub(crate) fn is_priority(path: &str) -> bool {
    matches!(path, "/api/health" | "/metrics")
}

/// Route one request. Rate limiting already happened in the worker; this
/// applies admission control and is otherwise pure read-side logic.
pub fn handle(state: &ServeState, req: &Request) -> Response {
    let started = std::time::Instant::now();
    let m = crate::obs::metrics();
    m.endpoint_counter(&req.path).inc();
    let resp = if is_priority(&req.path) {
        route(state, req)
    } else {
        match state.overload.admit() {
            Ok(()) => {
                let resp = route(state, req);
                // Only admitted, handled requests feed the shed signal;
                // 503s are near-free and would drag the EWMA down while
                // the server is at its sickest.
                state.overload.observe_latency(started.elapsed().as_secs_f64() * 1e3);
                resp
            }
            Err(reason) => {
                match reason {
                    ShedReason::QueueDepth => m.shed_queue_depth.inc(),
                    ShedReason::Latency => m.shed_latency.inc(),
                }
                manic_obs::event!(
                    manic_obs::DEBUG, "serve", "request_shed", 0, reason = reason.as_str(),
                );
                // Degrade before refusing more: hand cache memory back to
                // the allocator while the gate is closed.
                state.cache.shrink_to_bytes(state.overload.config().cache_shed_bytes);
                Response::unavailable(
                    "overloaded, request shed",
                    state.overload.config().retry_after_secs,
                )
            }
        }
    };
    m.status_counter(resp.status).inc();
    m.request_duration.observe(started.elapsed().as_secs_f64() * 1e3);
    resp
}

fn route(state: &ServeState, req: &Request) -> Response {
    if req.method != "GET" {
        return Response::error(405, "only GET is supported");
    }
    match req.path.as_str() {
        "/api/links" => {
            let snap = state.hub.current();
            Response {
                status: 200,
                content_type: "application/json",
                body: snap.links_json.clone(),
                retry_after: None,
            }
        }
        "/api/health" => {
            // Splice live blocks into the pre-rendered snapshot body: pop
            // the trailing `}` and append fields.
            let snap = state.hub.current();
            let mut body = snap.health_json.as_ref().clone();
            if body.last() == Some(&b'}') {
                body.pop();
                body.extend_from_slice(b",\"overload\":");
                body.extend_from_slice(state.overload.to_json().as_bytes());
                if let Some(d) = &state.durability {
                    body.extend_from_slice(b",\"durability\":");
                    body.extend_from_slice(d.to_json().as_bytes());
                }
                body.push(b'}');
            }
            Response::new(200, "application/json", body)
        }
        "/metrics" => Response::new(
            200,
            "text/plain; version=0.0.4",
            manic_obs::registry().render_prometheus().into_bytes(),
        ),
        path => {
            if let Some(rest) = path.strip_prefix("/api/link/") {
                match rest.split_once('/') {
                    Some((link, "timeseries")) => return cached(state, req, link, timeseries),
                    Some((link, "explain")) => return cached(state, req, link, explain),
                    _ => {}
                }
            }
            Response::error(404, "no such resource")
        }
    }
}

/// Run `render` through the epoch-keyed response cache, behind the render
/// circuit breaker. A cache hit bypasses the breaker (it costs a memcpy,
/// not a downsample); misses while the breaker is open are refused with
/// `503 + Retry-After` instead of queueing more slow work onto a backend
/// that is already drowning.
fn cached(
    state: &ServeState,
    req: &Request,
    link: &str,
    render: fn(&ServeState, &Request, &str) -> Response,
) -> Response {
    let epoch = state.hub.epoch();
    let cache_key = format!("{}?{}", req.path, req.raw_query);
    if let Some(hit) = state.cache.get(&cache_key, epoch) {
        return hit;
    }
    if !state.overload.breaker_admit() {
        crate::obs::metrics().breaker_rejected.inc();
        manic_obs::event!(
            manic_obs::DEBUG, "serve", "breaker_rejected", 0, path = req.path.as_str(),
        );
        return Response::unavailable(
            "render breaker open",
            state.overload.config().retry_after_secs,
        );
    }
    let started = std::time::Instant::now();
    let resp = render(state, req, link);
    if resp.status == 200 {
        // Only successful renders carry a breaker signal: a fast 400 says
        // nothing about whether the downsample backend is healthy.
        state.overload.record_render(started.elapsed().as_secs_f64() * 1e3);
    }
    state.cache.put(&cache_key, epoch, resp.clone());
    resp
}

fn parse_agg(s: &str) -> Option<Aggregate> {
    match s {
        "min" => Some(Aggregate::Min),
        "max" => Some(Aggregate::Max),
        "mean" => Some(Aggregate::Mean),
        "sum" => Some(Aggregate::Sum),
        "count" => Some(Aggregate::Count),
        "last" => Some(Aggregate::Last),
        _ => None,
    }
}

fn timeseries(state: &ServeState, req: &Request, link: &str) -> Response {
    let bin = match req.param("bin").map(str::parse::<i64>).unwrap_or(Ok(300)) {
        Ok(b) if b > 0 => b,
        _ => return Response::error(400, "bin must be a positive integer of seconds"),
    };
    let Some(agg) = parse_agg(req.param("agg").unwrap_or("min")) else {
        return Response::error(400, "agg must be one of min|max|mean|sum|count|last");
    };
    let window = match req.param("window").map(str::parse::<i64>).unwrap_or(Ok(DEFAULT_WINDOW_SECS))
    {
        Ok(w) if w > 0 && w <= MAX_WINDOW_SECS => w,
        _ => return Response::error(400, "window must be a positive number of seconds"),
    };
    let snap = state.hub.current();
    let end = match req.param("end").map(str::parse::<i64>) {
        None => snap.sim_now + 1,
        Some(Ok(e)) => e,
        Some(Err(_)) => return Response::error(400, "end must be a sim-time integer"),
    };
    let format = req.param("format").unwrap_or("json");
    if format != "json" && format != "csv" {
        return Response::error(400, "format must be json or csv");
    }

    let filter = TagFilter::from_pairs([("link", link)]);
    let mut keys = state.store.find_series("tslp", &filter);
    if keys.is_empty() && !snap.link_ips.contains(link) {
        return Response::error(404, "unknown link");
    }
    keys.sort_by_key(|k| k.to_string());
    let start = end - window;

    // Refuse oversized selections up front instead of rendering and then
    // throwing the work away: the downsampled point count is known from
    // the window, bin, and series count alone.
    let ocfg = state.overload.config();
    let est_points = (keys.len() as i64).saturating_mul(window / bin + 1);
    if ocfg.max_render_points > 0 && est_points > ocfg.max_render_points as i64 {
        crate::obs::metrics().render_capped.inc();
        manic_obs::event!(
            manic_obs::DEBUG, "serve", "render_capped", 0,
            link = link, est_points = est_points,
        );
        return Response::error(400, "selection too large: narrow the window or coarsen the bin");
    }
    let byte_cap = ocfg.max_response_bytes;

    if format == "csv" {
        let mut out = String::from("series,t,v\n");
        for key in &keys {
            // Series keys contain commas (`tslp,link=...`), so the field
            // must be RFC 4180 quoted.
            let name = key.to_string().replace('"', "\"\"");
            for p in state.store.downsample(key, start, end, bin, agg) {
                out.push_str(&format!("\"{name}\",{},{}\n", p.t, p.v));
            }
            if byte_cap > 0 && out.len() > byte_cap {
                return render_overflow(link, out.len());
            }
        }
        return Response::new(200, "text/csv", out.into_bytes());
    }

    let mut out = format!(
        "{{\"link\":\"{}\",\"epoch\":{},\"start\":{start},\"end\":{end},\"bin\":{bin},\
         \"agg\":\"{}\",\"series\":[",
        manic_obs::json_escape(link),
        snap.epoch,
        req.param("agg").unwrap_or("min"),
    );
    for (i, key) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"key\":\"{}\",\"points\":[",
            manic_obs::json_escape(&key.to_string())
        ));
        let pts = state.store.downsample(key, start, end, bin, agg);
        for (j, p) in pts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", p.t, p.v));
        }
        out.push_str("]}");
        if byte_cap > 0 && out.len() > byte_cap {
            return render_overflow(link, out.len());
        }
    }
    out.push_str("]}");
    Response::json(200, out)
}

/// A render blew through `max_response_bytes` despite the up-front point
/// cap: abandon it. This indicates the caps disagree (operator error), so
/// it is a 500, not a client error.
fn render_overflow(link: &str, bytes: usize) -> Response {
    crate::obs::metrics().render_truncated.inc();
    manic_obs::event!(
        manic_obs::WARN, "serve", "render_truncated", 0, link = link, bytes = bytes,
    );
    Response::error(500, "render exceeded the response byte cap")
}

fn explain(state: &ServeState, _req: &Request, link: &str) -> Response {
    let records = manic_obs::audit().explain(link);
    if records.is_empty() && !state.hub.current().link_ips.contains(link) {
        return Response::error(404, "unknown link");
    }
    let mut out = format!("{{\"link\":\"{}\",\"records\":[", manic_obs::json_escape(link));
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rec.to_json());
    }
    out.push_str("]}");
    Response::json(200, out)
}
