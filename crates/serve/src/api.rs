//! Request routing: URL → response, reading only the published snapshot,
//! the audit trail, and the tsdb.

use crate::http::{Request, Response};
use crate::server::ServeState;
use manic_tsdb::{Aggregate, TagFilter};

/// Default timeseries window when the client does not name one: 4 h of
/// five-minute TSLP rounds.
const DEFAULT_WINDOW_SECS: i64 = 4 * 3600;
/// Widest permitted window (a full 22-month study, rounded up) — bounds
/// the per-request work a client can demand.
const MAX_WINDOW_SECS: i64 = 700 * 86_400;

/// Route one request. Rate limiting already happened in the worker; this
/// is pure read-side logic.
pub fn handle(state: &ServeState, req: &Request) -> Response {
    let started = std::time::Instant::now();
    crate::obs::metrics().endpoint_counter(&req.path).inc();
    let resp = route(state, req);
    let m = crate::obs::metrics();
    m.status_counter(resp.status).inc();
    m.request_duration.observe(started.elapsed().as_secs_f64() * 1e3);
    resp
}

fn route(state: &ServeState, req: &Request) -> Response {
    if req.method != "GET" {
        return Response::error(405, "only GET is supported");
    }
    match req.path.as_str() {
        "/api/links" => {
            let snap = state.hub.current();
            Response {
                status: 200,
                content_type: "application/json",
                body: snap.links_json.clone(),
            }
        }
        "/api/health" => {
            let snap = state.hub.current();
            match &state.durability {
                None => Response {
                    status: 200,
                    content_type: "application/json",
                    body: snap.health_json.clone(),
                },
                Some(d) => {
                    // Splice the durability frontier into the pre-rendered
                    // snapshot: pop the trailing `}` and append a field.
                    let mut body = snap.health_json.as_ref().clone();
                    if body.last() == Some(&b'}') {
                        body.pop();
                        body.extend_from_slice(b",\"durability\":");
                        body.extend_from_slice(d.to_json().as_bytes());
                        body.push(b'}');
                    }
                    Response::new(200, "application/json", body)
                }
            }
        }
        "/metrics" => Response::new(
            200,
            "text/plain; version=0.0.4",
            manic_obs::registry().render_prometheus().into_bytes(),
        ),
        path => {
            if let Some(rest) = path.strip_prefix("/api/link/") {
                match rest.split_once('/') {
                    Some((link, "timeseries")) => return cached(state, req, link, timeseries),
                    Some((link, "explain")) => return cached(state, req, link, explain),
                    _ => {}
                }
            }
            Response::error(404, "no such resource")
        }
    }
}

/// Run `render` through the epoch-keyed response cache.
fn cached(
    state: &ServeState,
    req: &Request,
    link: &str,
    render: fn(&ServeState, &Request, &str) -> Response,
) -> Response {
    let epoch = state.hub.epoch();
    let cache_key = format!("{}?{}", req.path, req.raw_query);
    if let Some(hit) = state.cache.get(&cache_key, epoch) {
        return hit;
    }
    let resp = render(state, req, link);
    state.cache.put(&cache_key, epoch, resp.clone());
    resp
}

fn parse_agg(s: &str) -> Option<Aggregate> {
    match s {
        "min" => Some(Aggregate::Min),
        "max" => Some(Aggregate::Max),
        "mean" => Some(Aggregate::Mean),
        "sum" => Some(Aggregate::Sum),
        "count" => Some(Aggregate::Count),
        "last" => Some(Aggregate::Last),
        _ => None,
    }
}

fn timeseries(state: &ServeState, req: &Request, link: &str) -> Response {
    let bin = match req.param("bin").map(str::parse::<i64>).unwrap_or(Ok(300)) {
        Ok(b) if b > 0 => b,
        _ => return Response::error(400, "bin must be a positive integer of seconds"),
    };
    let Some(agg) = parse_agg(req.param("agg").unwrap_or("min")) else {
        return Response::error(400, "agg must be one of min|max|mean|sum|count|last");
    };
    let window = match req.param("window").map(str::parse::<i64>).unwrap_or(Ok(DEFAULT_WINDOW_SECS))
    {
        Ok(w) if w > 0 && w <= MAX_WINDOW_SECS => w,
        _ => return Response::error(400, "window must be a positive number of seconds"),
    };
    let snap = state.hub.current();
    let end = match req.param("end").map(str::parse::<i64>) {
        None => snap.sim_now + 1,
        Some(Ok(e)) => e,
        Some(Err(_)) => return Response::error(400, "end must be a sim-time integer"),
    };
    let format = req.param("format").unwrap_or("json");
    if format != "json" && format != "csv" {
        return Response::error(400, "format must be json or csv");
    }

    let filter = TagFilter::from_pairs([("link", link)]);
    let mut keys = state.store.find_series("tslp", &filter);
    if keys.is_empty() && !snap.link_ips.contains(link) {
        return Response::error(404, "unknown link");
    }
    keys.sort_by_key(|k| k.to_string());
    let start = end - window;

    if format == "csv" {
        let mut out = String::from("series,t,v\n");
        for key in &keys {
            // Series keys contain commas (`tslp,link=...`), so the field
            // must be RFC 4180 quoted.
            let name = key.to_string().replace('"', "\"\"");
            for p in state.store.downsample(key, start, end, bin, agg) {
                out.push_str(&format!("\"{name}\",{},{}\n", p.t, p.v));
            }
        }
        return Response::new(200, "text/csv", out.into_bytes());
    }

    let mut out = format!(
        "{{\"link\":\"{}\",\"epoch\":{},\"start\":{start},\"end\":{end},\"bin\":{bin},\
         \"agg\":\"{}\",\"series\":[",
        manic_obs::json_escape(link),
        snap.epoch,
        req.param("agg").unwrap_or("min"),
    );
    for (i, key) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"key\":\"{}\",\"points\":[",
            manic_obs::json_escape(&key.to_string())
        ));
        let pts = state.store.downsample(key, start, end, bin, agg);
        for (j, p) in pts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{}]", p.t, p.v));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Response::json(200, out)
}

fn explain(state: &ServeState, _req: &Request, link: &str) -> Response {
    let records = manic_obs::audit().explain(link);
    if records.is_empty() && !state.hub.current().link_ips.contains(link) {
        return Response::error(404, "unknown link");
    }
    let mut out = format!("{{\"link\":\"{}\",\"records\":[", manic_obs::json_escape(link));
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&rec.to_json());
    }
    out.push_str("]}");
    Response::json(200, out)
}
