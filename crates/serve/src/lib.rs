//! `manic-serve`: a query/serving layer for congestion state.
//!
//! The production MANIC system of the paper fronts its InfluxDB backend
//! with a query API and a Grafana dashboard (§3, Figure 1); operators and
//! the public-data consumers of contribution 4 never touch the measurement
//! pipeline directly. This crate reproduces that serving tier as a
//! zero-dependency HTTP/1.1 server over `std::net`:
//!
//! * `GET /api/links` — every monitored interdomain link with its live
//!   elevation state and latest level-shift verdict;
//! * `GET /api/link/<far-ip>/timeseries?bin=&agg=` — downsampled TSLP
//!   series for one link, JSON or CSV;
//! * `GET /api/link/<far-ip>/explain` — the inference audit trail for one
//!   link (the machine-readable `manic obs explain`);
//! * `GET /api/health` — per-task probing health states;
//! * `GET /metrics` — Prometheus text exposition of the whole process.
//!
//! The architectural point is the **snapshot layer** ([`SnapshotHub`]): the
//! measurement loop periodically publishes an immutable [`Snapshot`]
//! (pre-rendered JSON included) behind an atomic epoch swap, so the hot
//! read path never takes a tsdb write lock and `/api/links` is a memcpy.
//! Expensive per-query work (timeseries downsampling, explain rendering)
//! is memoized in an LRU [`ResponseCache`] keyed on `(path, query,
//! snapshot epoch)` — a new epoch naturally invalidates everything. A
//! per-client token bucket ([`RateLimiter`]) protects the measurement
//! host's CPU from abusive clients.
//!
//! Because the paper's MANIC ran as an always-on *public* observatory, the
//! server also carries a full overload-control layer ([`overload`]):
//! per-phase request deadlines (slowloris/dribbler disconnection), a
//! connection budget with accept-side backpressure and EMFILE handling,
//! queue-depth/latency admission control (`503 + Retry-After`, with
//! `/api/health` and `/metrics` on a priority lane), a circuit breaker
//! around expensive renders with bounded response sizes, and
//! memory-pressure cache shrinking. Every rejection is a counted
//! `manic_serve_*` metric, and `/api/health` exposes the whole state as an
//! `overload` block.
//!
//! Everything the server returns is derived from the snapshot, the audit
//! trail, and the tsdb — the layers a real deployment would export. The
//! simulator's withheld ground truth is not reachable from here.

pub mod api;
pub mod cache;
pub mod durability;
pub mod http;
pub(crate) mod obs;
pub mod overload;
pub mod ratelimit;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use cache::{CachedResponse, ResponseCache};
pub use durability::DurabilityStatus;
pub use http::{Request, Response};
pub use overload::{OverloadConfig, OverloadState, ShedReason};
pub use ratelimit::RateLimiter;
pub use server::{Server, ServeConfig, ServeState};
pub use snapshot::{Snapshot, SnapshotHub};
