//! The read-optimized snapshot layer.
//!
//! The measurement loop owns the `System` and mutates the tsdb every
//! simulated round; query traffic must not contend with it. So the loop
//! periodically *publishes* an immutable [`Snapshot`] — dashboard rows,
//! health report, and their **pre-rendered JSON** — into a [`SnapshotHub`],
//! and the server reads whatever epoch is current with one `Arc` clone.
//! `/api/links` and `/api/health` never touch a tsdb lock at all; the
//! snapshot epoch doubles as the response-cache invalidation key for the
//! endpoints that do.

use manic_core::{HealthState, LinkStatus, System, TaskHealthStatus};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Immutable view of the system at one publish instant.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotone publish counter; 0 is the empty pre-first-publish snapshot.
    pub epoch: u64,
    /// Sim time the snapshot was taken at.
    pub sim_now: i64,
    pub links: Vec<LinkStatus>,
    pub health: Vec<TaskHealthStatus>,
    /// Far-end IPs of monitored links — the existence check behind 404s.
    pub link_ips: HashSet<String>,
    /// Pre-rendered `/api/links` body.
    pub links_json: Arc<Vec<u8>>,
    /// Pre-rendered `/api/health` body.
    pub health_json: Arc<Vec<u8>>,
    /// World provenance `(library name, determinism fingerprint)`, if the
    /// system carries one.
    pub world: Option<(String, u64)>,
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x}"),
        _ => "null".to_string(),
    }
}

fn rel_name(rel: manic_bdrmap::infer::LinkRel) -> &'static str {
    use manic_bdrmap::infer::LinkRel;
    match rel {
        LinkRel::Provider => "provider",
        LinkRel::Peer => "peer",
        LinkRel::Customer => "customer",
        LinkRel::Unknown => "unknown",
    }
}

fn health_name(state: HealthState) -> &'static str {
    match state {
        HealthState::Healthy => "healthy",
        HealthState::Degraded => "degraded",
        HealthState::Quarantined => "quarantined",
        HealthState::Retired => "retired",
    }
}

impl Snapshot {
    /// The epoch-0 placeholder served before the first publish.
    pub fn empty() -> Snapshot {
        Snapshot::assemble(0, 0, Vec::new(), Vec::new(), None)
    }

    /// Capture the current system state. Reads links, health, and the
    /// latest level-shift verdict per link from the audit trail; records
    /// nothing (the audit trail is evidence, and rebuilding a snapshot is
    /// not an inference event).
    pub fn capture(system: &System, now: i64, lookback: i64, epoch: u64) -> Snapshot {
        let links = system.all_link_statuses(now, lookback);
        let health = system.health_report();
        Snapshot::assemble(epoch, now, links, health, system.world_label.clone())
    }

    fn assemble(
        epoch: u64,
        sim_now: i64,
        links: Vec<LinkStatus>,
        health: Vec<TaskHealthStatus>,
        world: Option<(String, u64)>,
    ) -> Snapshot {
        // Latest reactive (level-shift) verdict per link label, from the
        // audit trail the inference layer maintains.
        let mut verdicts: std::collections::HashMap<String, bool> =
            std::collections::HashMap::new();
        for rec in manic_obs::audit().all() {
            if rec.detector == "levelshift" {
                verdicts.insert(rec.link.clone(), rec.congested);
            }
        }

        let mut link_ips = HashSet::new();
        let mut lj = format!("{{\"epoch\":{epoch},\"sim_now\":{sim_now},\"links\":[");
        for (i, l) in links.iter().enumerate() {
            let far = l.far_ip.to_string();
            if i > 0 {
                lj.push(',');
            }
            let congested = verdicts.get(&far).copied();
            lj.push_str(&format!(
                "{{\"vp\":\"{}\",\"near\":\"{}\",\"far\":\"{}\",\"neighbor\":{},\
                 \"rel\":\"{}\",\"far_latest_ms\":{},\"far_baseline_ms\":{},\
                 \"near_latest_ms\":{},\"elevated\":{},\"congested\":{}}}",
                manic_obs::json_escape(&l.vp),
                l.near_ip,
                far,
                match l.neighbor {
                    Some(asn) => format!("\"{asn}\""),
                    None => "null".to_string(),
                },
                rel_name(l.rel),
                json_opt_f64(l.far_latest_ms),
                json_opt_f64(l.far_baseline_ms),
                json_opt_f64(l.near_latest_ms),
                l.elevated,
                match congested {
                    Some(c) => c.to_string(),
                    None => "null".to_string(),
                },
            ));
            link_ips.insert(far);
        }
        lj.push_str("]}");

        // World provenance lets a dashboard (or CI smoke probe) confirm it
        // is looking at the run it thinks it is: same name, same
        // deterministic fingerprint.
        let world_json = match &world {
            Some((name, fp)) => format!(
                "{{\"name\":\"{}\",\"fingerprint\":\"{fp:016x}\"}}",
                manic_obs::json_escape(name)
            ),
            None => "null".to_string(),
        };
        let mut hj = format!(
            "{{\"epoch\":{epoch},\"sim_now\":{sim_now},\"world\":{world_json},\"tasks\":["
        );
        for (i, t) in health.iter().enumerate() {
            if i > 0 {
                hj.push(',');
            }
            hj.push_str(&format!(
                "{{\"vp\":\"{}\",\"vp_active\":{},\"near\":\"{}\",\"far\":\"{}\",\
                 \"state\":\"{}\"}}",
                manic_obs::json_escape(&t.vp),
                t.vp_active,
                t.near_ip,
                t.far_ip,
                health_name(t.state),
            ));
        }
        hj.push_str("]}");

        Snapshot {
            epoch,
            sim_now,
            links,
            health,
            link_ips,
            links_json: Arc::new(lj.into_bytes()),
            health_json: Arc::new(hj.into_bytes()),
            world,
        }
    }
}

/// Publish/read point for snapshots.
///
/// Readers pay one `RwLock` read acquisition and an `Arc` clone — the lock
/// is only write-held for the duration of a pointer swap, so the read path
/// effectively never blocks. The epoch counter is separately readable
/// without touching the lock (cache keys, staleness probes).
#[derive(Debug)]
pub struct SnapshotHub {
    current: RwLock<Arc<Snapshot>>,
    epoch: AtomicU64,
}

impl Default for SnapshotHub {
    fn default() -> Self {
        SnapshotHub::new()
    }
}

impl SnapshotHub {
    pub fn new() -> Self {
        SnapshotHub {
            current: RwLock::new(Arc::new(Snapshot::empty())),
            epoch: AtomicU64::new(0),
        }
    }

    /// Capture from `system` and publish as the next epoch. Returns it.
    pub fn publish_from(&self, system: &System, now: i64, lookback: i64) -> u64 {
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        let snap = Arc::new(Snapshot::capture(system, now, lookback, epoch));
        self.install(snap)
    }

    /// Publish a pre-built snapshot (tests, replay tooling).
    pub fn install(&self, snap: Arc<Snapshot>) -> u64 {
        let epoch = snap.epoch;
        *self.current.write().unwrap() = snap;
        // Epoch becomes visible after the snapshot: a reader pairing a
        // fresh epoch with the previous snapshot would only cache under a
        // key the next read repairs, never serve wrong data.
        self.epoch.store(epoch, Ordering::Release);
        crate::obs::metrics().snapshots_published.inc();
        epoch
    }

    pub fn current(&self) -> Arc<Snapshot> {
        self.current.read().unwrap().clone()
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_renders_valid_shells() {
        let s = Snapshot::empty();
        assert_eq!(s.epoch, 0);
        let lj = String::from_utf8(s.links_json.to_vec()).unwrap();
        assert_eq!(lj, "{\"epoch\":0,\"sim_now\":0,\"links\":[]}");
        let hj = String::from_utf8(s.health_json.to_vec()).unwrap();
        assert_eq!(hj, "{\"epoch\":0,\"sim_now\":0,\"world\":null,\"tasks\":[]}");
    }

    #[test]
    fn labeled_snapshot_renders_world_provenance() {
        let s = Snapshot::assemble(0, 0, Vec::new(), Vec::new(), Some(("sim-5k".into(), 0xABCD)));
        let hj = String::from_utf8(s.health_json.to_vec()).unwrap();
        assert_eq!(
            hj,
            "{\"epoch\":0,\"sim_now\":0,\
             \"world\":{\"name\":\"sim-5k\",\"fingerprint\":\"000000000000abcd\"},\
             \"tasks\":[]}"
        );
    }

    #[test]
    fn hub_swaps_epochs() {
        let hub = SnapshotHub::new();
        assert_eq!(hub.epoch(), 0);
        let mut s = Snapshot::empty();
        s.epoch = 1;
        assert_eq!(hub.install(Arc::new(s)), 1);
        assert_eq!(hub.epoch(), 1);
        assert_eq!(hub.current().epoch, 1);
    }
}
