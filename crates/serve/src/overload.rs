//! Overload control: the serving tier's defenses against the open Internet.
//!
//! The paper's MANIC ran as an always-on public observatory; a serving tier
//! in that position meets slowloris clients, connection floods, and
//! dashboards asking for a year of data at one-second bins. This module
//! holds the shared [`OverloadState`] every defense reads and writes:
//!
//! * a **connection budget** (accept-side backpressure once `max_conns`
//!   connections are open — excess clients wait in the kernel listen queue
//!   instead of consuming file descriptors and worker memory);
//! * **admission control** (a shed gate driven by accept-queue depth and a
//!   decaying latency EWMA; closed means non-priority requests get `503 +
//!   Retry-After` while `/api/health` and `/metrics` keep answering);
//! * a **circuit breaker** around the expensive timeseries/explain renders
//!   (a streak of slow renders opens it; cooled-down probes close it);
//! * **memory-pressure degradation** (the response cache is shrunk to a
//!   low watermark when the gate closes, freeing memory before work is
//!   refused).
//!
//! Every decision is counted in `manic_serve_*` metrics; state *transitions*
//! (gate closed/opened, breaker opened/closed) are WARN journal events and
//! per-request rejections are Debug events, so a flood cannot drown the
//! journal in its own rejection records.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for the overload-control layer. All durations are wall-clock.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Open-connection budget; accepts stall (backpressure) at the cap.
    /// 0 disables the budget.
    pub max_conns: usize,
    /// Deadline for reading one full request head, measured from its first
    /// byte. A slowloris or byte-dribbler is disconnected at this deadline
    /// instead of holding a worker for `keep_alive_timeout` per header line.
    pub header_read_timeout: Duration,
    /// Socket write timeout: a client that stops reading its responses is
    /// disconnected instead of blocking a worker on `write(2)`.
    pub write_timeout: Duration,
    /// Accepted-but-unserviced connections beyond this close the shed gate.
    pub shed_queue_depth: usize,
    /// Handling-latency EWMA (ms) beyond this closes the shed gate.
    pub shed_latency_ms: f64,
    /// `Retry-After` seconds advertised on shed and breaker 503s.
    pub retry_after_secs: u32,
    /// Consecutive slow renders that open the circuit breaker.
    pub breaker_streak: u32,
    /// A timeseries/explain render slower than this (ms) counts as slow.
    pub breaker_slow_ms: f64,
    /// How long the breaker stays open before admitting probe renders.
    pub breaker_cooldown: Duration,
    /// Widest render a timeseries request may demand, in downsampled
    /// points across all matching series; larger selections are rejected
    /// up front with a 400 rather than rendered and then thrown away.
    pub max_render_points: usize,
    /// Hard cap on a rendered response body; a render that exceeds it is
    /// abandoned and answered with a 500 (it indicates a cap mismatch, not
    /// client error).
    pub max_response_bytes: usize,
    /// Response-cache byte budget (enforced continuously by the cache).
    pub cache_max_bytes: usize,
    /// Byte watermark the cache is shrunk to when the shed gate closes.
    pub cache_shed_bytes: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_conns: 1024,
            header_read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(5),
            shed_queue_depth: 128,
            shed_latency_ms: 50.0,
            retry_after_secs: 1,
            breaker_streak: 8,
            breaker_slow_ms: 250.0,
            breaker_cooldown: Duration::from_secs(2),
            max_render_points: 200_000,
            max_response_bytes: 8 * 1024 * 1024,
            cache_max_bytes: 64 * 1024 * 1024,
            cache_shed_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Why the admission gate refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    QueueDepth,
    Latency,
}

impl ShedReason {
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueDepth => "queue_depth",
            ShedReason::Latency => "latency",
        }
    }
}

const BREAKER_CLOSED: u8 = 0;
const BREAKER_OPEN: u8 = 1;

/// Shared overload-control state: written from the accept thread, every
/// worker, and the render paths; read by `/api/health`. Plain atomics
/// throughout — no lock is ever held on a request path.
#[derive(Debug)]
pub struct OverloadState {
    cfg: OverloadConfig,
    origin: Instant,
    /// Connections currently open (accepted and not yet closed).
    conns: AtomicI64,
    /// Connections accepted but not yet picked up by a worker.
    queue_depth: AtomicI64,
    /// Handling-latency EWMA over admitted requests, integer nanoseconds
    /// (lossy racing stores are fine — this is a control signal).
    ewma_ns: AtomicU64,
    /// Microseconds-since-origin of the last EWMA sample, for decay.
    ewma_at_us: AtomicU64,
    /// Last computed gate state, for transition events and `/api/health`.
    shed_active: AtomicBool,
    breaker_state: AtomicU8,
    /// Consecutive slow renders observed while the breaker is closed.
    slow_streak: AtomicU32,
    /// Microseconds-since-origin at which an open breaker admits probes.
    breaker_until_us: AtomicU64,
}

impl OverloadState {
    pub fn new(cfg: OverloadConfig) -> Self {
        OverloadState {
            cfg,
            origin: Instant::now(),
            conns: AtomicI64::new(0),
            queue_depth: AtomicI64::new(0),
            ewma_ns: AtomicU64::new(0),
            ewma_at_us: AtomicU64::new(0),
            shed_active: AtomicBool::new(false),
            breaker_state: AtomicU8::new(BREAKER_CLOSED),
            slow_streak: AtomicU32::new(0),
            breaker_until_us: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    // ----- connection budget -----

    /// Try to claim a connection slot. `None` means the budget is spent and
    /// the accept loop should stall (kernel backlog backpressure).
    pub fn try_acquire_conn(self: &Arc<Self>) -> Option<ConnGuard> {
        if self.cfg.max_conns > 0
            && self.conns.load(Ordering::Relaxed) >= self.cfg.max_conns as i64
        {
            return None;
        }
        self.conns.fetch_add(1, Ordering::Relaxed);
        crate::obs::metrics().connections.add(1);
        Some(ConnGuard { state: Arc::clone(self), queued: AtomicBool::new(false) })
    }

    pub fn open_conns(&self) -> i64 {
        self.conns.load(Ordering::Relaxed)
    }

    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    // ----- admission control (shed gate) -----

    /// Latency EWMA in ms, decayed by halving per second of silence so a
    /// gate closed by a burst reopens once the burst is gone even if no
    /// admitted request ever updates the average again.
    pub fn latency_ewma_ms(&self) -> f64 {
        let raw = self.ewma_ns.load(Ordering::Relaxed);
        if raw == 0 {
            return 0.0;
        }
        let age_s = self.now_us().saturating_sub(self.ewma_at_us.load(Ordering::Relaxed))
            / 1_000_000;
        (raw >> age_s.min(32) as u32) as f64 / 1e6
    }

    /// Fold one admitted request's handling time into the EWMA (α = 1/8).
    pub fn observe_latency(&self, ms: f64) {
        let sample_ns = (ms.max(0.0) * 1e6) as u64;
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 { sample_ns } else { old - old / 8 + sample_ns / 8 };
        self.ewma_ns.store(new, Ordering::Relaxed);
        self.ewma_at_us.store(self.now_us(), Ordering::Relaxed);
    }

    /// Admission decision for one non-priority request. `Err` carries the
    /// shed reason; the caller answers `503 + Retry-After` and counts it.
    pub fn admit(&self) -> Result<(), ShedReason> {
        let reason = if self.cfg.shed_queue_depth > 0
            && self.queue_depth() > self.cfg.shed_queue_depth as i64
        {
            Some(ShedReason::QueueDepth)
        } else if self.cfg.shed_latency_ms > 0.0
            && self.latency_ewma_ms() > self.cfg.shed_latency_ms
        {
            Some(ShedReason::Latency)
        } else {
            None
        };
        let was = self.shed_active.swap(reason.is_some(), Ordering::Relaxed);
        match reason {
            None => {
                if was {
                    manic_obs::event!(manic_obs::WARN, "serve", "shed_gate_open", 0);
                }
                Ok(())
            }
            Some(r) => {
                if !was {
                    manic_obs::event!(
                        manic_obs::WARN, "serve", "shed_gate_closed", 0,
                        reason = r.as_str(),
                        queue_depth = self.queue_depth(),
                        ewma_ms = self.latency_ewma_ms(),
                    );
                }
                Err(r)
            }
        }
    }

    pub fn shed_active(&self) -> bool {
        self.shed_active.load(Ordering::Relaxed)
    }

    // ----- circuit breaker -----

    /// May an expensive render run right now? `false` means the breaker is
    /// open and still cooling down — answer 503 without rendering. Once the
    /// cooldown elapses the breaker half-opens: probes are admitted and
    /// their outcome (see [`Self::record_render`]) closes or re-arms it.
    pub fn breaker_admit(&self) -> bool {
        if self.breaker_state.load(Ordering::Relaxed) == BREAKER_CLOSED {
            return true;
        }
        self.now_us() >= self.breaker_until_us.load(Ordering::Relaxed)
    }

    /// Record one render's duration. Slow renders build the streak that
    /// opens the breaker (or re-arm an open one); a fast render closes it.
    pub fn record_render(&self, ms: f64) {
        let slow = ms > self.cfg.breaker_slow_ms;
        let open = self.breaker_state.load(Ordering::Relaxed) == BREAKER_OPEN;
        if slow {
            let streak = self.slow_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if open || streak >= self.cfg.breaker_streak {
                self.breaker_until_us.store(
                    self.now_us() + self.cfg.breaker_cooldown.as_micros() as u64,
                    Ordering::Relaxed,
                );
                if !open
                    && self
                        .breaker_state
                        .swap(BREAKER_OPEN, Ordering::Relaxed)
                        == BREAKER_CLOSED
                {
                    crate::obs::metrics().breaker_opens.inc();
                    manic_obs::event!(
                        manic_obs::WARN, "serve", "breaker_opened", 0,
                        render_ms = ms, streak = streak as u64,
                    );
                }
            }
        } else {
            self.slow_streak.store(0, Ordering::Relaxed);
            if open && self.breaker_state.swap(BREAKER_CLOSED, Ordering::Relaxed) == BREAKER_OPEN
            {
                manic_obs::event!(manic_obs::WARN, "serve", "breaker_closed", 0, render_ms = ms);
            }
        }
    }

    /// Breaker state for `/api/health`: closed, open, or half_open (open
    /// but past its cooldown, admitting probes).
    pub fn breaker_label(&self) -> &'static str {
        if self.breaker_state.load(Ordering::Relaxed) == BREAKER_CLOSED {
            "closed"
        } else if self.now_us() >= self.breaker_until_us.load(Ordering::Relaxed) {
            "half_open"
        } else {
            "open"
        }
    }

    /// Render the `overload` block of `/api/health`.
    pub fn to_json(&self) -> String {
        let m = crate::obs::metrics();
        format!(
            "{{\"max_conns\":{},\"open_connections\":{},\"queue_depth\":{},\
             \"shed_active\":{},\"latency_ewma_ms\":{:.3},\"breaker\":\"{}\",\
             \"shed_total\":{},\"breaker_rejected_total\":{},\"disconnect_total\":{},\
             \"parse_rejected_total\":{},\"cache_bytes\":{},\"cache_shrinks\":{}}}",
            self.cfg.max_conns,
            self.open_conns().max(0),
            self.queue_depth().max(0),
            self.shed_active(),
            self.latency_ewma_ms(),
            self.breaker_label(),
            m.shed_queue_depth.get() + m.shed_latency.get(),
            m.breaker_rejected.get(),
            m.disconnect_total(),
            m.parse_rejected_total(),
            m.cache_bytes.get().max(0),
            m.cache_shrinks.get(),
        )
    }
}

/// RAII handle for one budgeted connection. Created at accept, travels with
/// the stream through the worker queue, and releases the budget slot when
/// the connection is done — including connections dropped unserviced at
/// shutdown, whose queue-depth claim is released by the same drop.
#[derive(Debug)]
pub struct ConnGuard {
    state: Arc<OverloadState>,
    queued: AtomicBool,
}

impl ConnGuard {
    /// The accept loop handed this connection to the worker queue.
    pub fn enqueued(&self) {
        self.queued.store(true, Ordering::Relaxed);
        let d = self.state.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        crate::obs::metrics().queue_depth.set(d);
    }

    /// A worker picked the connection up.
    pub fn dequeued(&self) {
        if self.queued.swap(false, Ordering::Relaxed) {
            let d = self.state.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
            crate::obs::metrics().queue_depth.set(d);
        }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.dequeued();
        self.state.conns.fetch_sub(1, Ordering::Relaxed);
        crate::obs::metrics().connections.add(-1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(cfg: OverloadConfig) -> Arc<OverloadState> {
        Arc::new(OverloadState::new(cfg))
    }

    #[test]
    fn conn_budget_caps_and_releases() {
        let s = state(OverloadConfig { max_conns: 2, ..OverloadConfig::default() });
        let a = s.try_acquire_conn().expect("slot 1");
        let _b = s.try_acquire_conn().expect("slot 2");
        assert!(s.try_acquire_conn().is_none(), "budget spent");
        assert_eq!(s.open_conns(), 2);
        drop(a);
        assert_eq!(s.open_conns(), 1);
        assert!(s.try_acquire_conn().is_some(), "slot freed by drop");
    }

    #[test]
    fn unlimited_budget_never_stalls() {
        let s = state(OverloadConfig { max_conns: 0, ..OverloadConfig::default() });
        let guards: Vec<_> = (0..64).map(|_| s.try_acquire_conn().expect("slot")).collect();
        assert_eq!(s.open_conns(), 64);
        drop(guards);
        assert_eq!(s.open_conns(), 0);
    }

    #[test]
    fn queue_depth_tracks_enqueue_dequeue_and_drop() {
        let s = state(OverloadConfig::default());
        let g = s.try_acquire_conn().expect("slot");
        g.enqueued();
        assert_eq!(s.queue_depth(), 1);
        g.dequeued();
        assert_eq!(s.queue_depth(), 0);
        let g2 = s.try_acquire_conn().expect("slot");
        g2.enqueued();
        drop(g2); // dropped unserviced: queue claim released too
        assert_eq!(s.queue_depth(), 0);
        drop(g);
        assert_eq!(s.open_conns(), 0);
    }

    #[test]
    fn shed_gate_closes_on_latency_and_reopens_after_decay() {
        let s = state(OverloadConfig { shed_latency_ms: 10.0, ..OverloadConfig::default() });
        assert!(s.admit().is_ok());
        for _ in 0..32 {
            s.observe_latency(400.0);
        }
        assert_eq!(s.admit(), Err(ShedReason::Latency));
        assert!(s.shed_active());
        // Decay path: the EWMA halves per second of silence, so a burst-
        // closed gate reopens on its own. Check the decay arithmetic
        // directly instead of sleeping seconds: 400 ms sampled 7 virtual
        // seconds ago reads as ~3 ms.
        let raw = s.ewma_ns.load(Ordering::Relaxed);
        let decayed = (raw >> 7) as f64 / 1e6;
        assert!(decayed < 10.0, "7 halvings bring {raw} ns under the gate");
        // And a recovered EWMA reopens the gate.
        s.ewma_ns.store(1_000, Ordering::Relaxed); // 0.001 ms
        assert!(s.admit().is_ok());
        assert!(!s.shed_active());
    }

    #[test]
    fn shed_gate_closes_on_queue_depth() {
        let s = state(OverloadConfig { shed_queue_depth: 1, ..OverloadConfig::default() });
        let a = s.try_acquire_conn().expect("slot");
        let b = s.try_acquire_conn().expect("slot");
        a.enqueued();
        b.enqueued();
        assert_eq!(s.admit(), Err(ShedReason::QueueDepth));
        a.dequeued();
        b.dequeued();
        assert!(s.admit().is_ok());
    }

    #[test]
    fn breaker_opens_on_streak_probes_and_closes() {
        let cfg = OverloadConfig {
            breaker_streak: 3,
            breaker_slow_ms: 10.0,
            breaker_cooldown: Duration::from_millis(30),
            ..OverloadConfig::default()
        };
        let s = state(cfg);
        assert!(s.breaker_admit());
        s.record_render(50.0);
        s.record_render(50.0);
        assert!(s.breaker_admit(), "streak below threshold keeps it closed");
        s.record_render(50.0);
        assert!(!s.breaker_admit(), "third slow render opens the breaker");
        assert_eq!(s.breaker_label(), "open");
        std::thread::sleep(Duration::from_millis(40));
        assert!(s.breaker_admit(), "cooldown elapsed: half-open admits probes");
        assert_eq!(s.breaker_label(), "half_open");
        s.record_render(50.0);
        assert!(!s.breaker_admit(), "slow probe re-arms the cooldown");
        std::thread::sleep(Duration::from_millis(40));
        s.record_render(1.0);
        assert!(s.breaker_admit());
        assert_eq!(s.breaker_label(), "closed");
    }

    #[test]
    fn fast_renders_reset_the_streak() {
        let cfg = OverloadConfig {
            breaker_streak: 3,
            breaker_slow_ms: 10.0,
            ..OverloadConfig::default()
        };
        let s = state(cfg);
        s.record_render(50.0);
        s.record_render(50.0);
        s.record_render(1.0);
        s.record_render(50.0);
        s.record_render(50.0);
        assert!(s.breaker_admit(), "streak interrupted by a fast render");
    }

    #[test]
    fn health_json_shape() {
        let s = state(OverloadConfig::default());
        s.observe_latency(2.0);
        let j = s.to_json();
        for needle in [
            "\"max_conns\":1024",
            "\"shed_active\":false",
            "\"breaker\":\"closed\"",
            "\"queue_depth\":0",
            "\"latency_ewma_ms\":",
        ] {
            assert!(j.contains(needle), "{j} missing {needle}");
        }
    }
}
