//! Metric handles for the serving layer (`manic_serve_*`).

use manic_obs::{registry, Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct Metrics {
    /// Requests accepted for routing, by endpoint family.
    pub requests_links: Counter,
    pub requests_timeseries: Counter,
    pub requests_explain: Counter,
    pub requests_health: Counter,
    pub requests_metrics: Counter,
    pub requests_other: Counter,
    /// Responses by status class.
    pub responses_2xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
    /// Requests rejected by the per-client token bucket.
    pub rate_limited: Counter,
    /// Rate-limiter client entries evicted to hold the bounded capacity.
    pub ratelimit_evicted: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    /// Approximate response-cache resident bytes (bodies + keys).
    pub cache_bytes: Gauge,
    /// Times the cache was force-shrunk under overload/memory pressure.
    pub cache_shrinks: Counter,
    pub snapshots_published: Counter,
    /// Currently open client connections.
    pub connections: Gauge,
    /// Accepted connections not yet picked up by a worker.
    pub queue_depth: Gauge,
    /// Accept-loop stalls because the connection budget was spent.
    pub accept_backpressure: Counter,
    /// Accepted-then-immediately-closed connections (fd exhaustion).
    pub conn_rejected_emfile: Counter,
    /// Forced disconnects, by cause.
    pub disconnect_header_timeout: Counter,
    pub disconnect_idle_timeout: Counter,
    pub disconnect_write_timeout: Counter,
    pub disconnect_write_error: Counter,
    /// Requests refused by the HTTP parser's caps, by reason.
    pub parse_uri_too_long: Counter,
    pub parse_headers_too_large: Counter,
    pub parse_too_many_headers: Counter,
    pub parse_body_rejected: Counter,
    pub parse_malformed: Counter,
    /// Requests shed by the admission gate, by trigger.
    pub shed_queue_depth: Counter,
    pub shed_latency: Counter,
    /// Renders refused by the open circuit breaker.
    pub breaker_rejected: Counter,
    /// Breaker closed→open transitions.
    pub breaker_opens: Counter,
    /// Timeseries selections refused for exceeding the render point cap.
    pub render_capped: Counter,
    /// Renders abandoned for exceeding the response byte cap.
    pub render_truncated: Counter,
    /// Wall-clock request handling time (parse excluded, render included).
    pub request_duration: Histogram,
}

impl Metrics {
    pub fn endpoint_counter(&self, path: &str) -> &Counter {
        if path == "/api/links" {
            &self.requests_links
        } else if path == "/api/health" {
            &self.requests_health
        } else if path == "/metrics" {
            &self.requests_metrics
        } else if path.starts_with("/api/link/") && path.ends_with("/timeseries") {
            &self.requests_timeseries
        } else if path.starts_with("/api/link/") && path.ends_with("/explain") {
            &self.requests_explain
        } else {
            &self.requests_other
        }
    }

    pub fn status_counter(&self, status: u16) -> &Counter {
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
    }

    /// Parser-cap counter for a rejection reason.
    pub fn parse_counter(&self, reason: crate::http::RejectReason) -> &Counter {
        use crate::http::RejectReason::*;
        match reason {
            UriTooLong => &self.parse_uri_too_long,
            HeadersTooLarge => &self.parse_headers_too_large,
            TooManyHeaders => &self.parse_too_many_headers,
            Body => &self.parse_body_rejected,
            Malformed => &self.parse_malformed,
        }
    }

    /// Total forced disconnects across causes (health block).
    pub fn disconnect_total(&self) -> u64 {
        self.disconnect_header_timeout.get()
            + self.disconnect_idle_timeout.get()
            + self.disconnect_write_timeout.get()
            + self.disconnect_write_error.get()
    }

    /// Total parser-cap rejections across reasons (health block).
    pub fn parse_rejected_total(&self) -> u64 {
        self.parse_uri_too_long.get()
            + self.parse_headers_too_large.get()
            + self.parse_too_many_headers.get()
            + self.parse_body_rejected.get()
            + self.parse_malformed.get()
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = registry();
        let req = |ep| r.counter_labeled("manic_serve_requests", &[("endpoint", ep)]);
        let resp = |class| r.counter_labeled("manic_serve_responses", &[("class", class)]);
        let disc = |kind| r.counter_labeled("manic_serve_disconnects", &[("kind", kind)]);
        let parse = |reason| r.counter_labeled("manic_serve_parse_rejected", &[("reason", reason)]);
        let shed = |reason| r.counter_labeled("manic_serve_shed", &[("reason", reason)]);
        Metrics {
            requests_links: req("links"),
            requests_timeseries: req("timeseries"),
            requests_explain: req("explain"),
            requests_health: req("health"),
            requests_metrics: req("metrics"),
            requests_other: req("other"),
            responses_2xx: resp("2xx"),
            responses_4xx: resp("4xx"),
            responses_5xx: resp("5xx"),
            rate_limited: r.counter("manic_serve_rate_limited"),
            ratelimit_evicted: r.counter("manic_serve_ratelimit_evicted"),
            cache_hits: r.counter("manic_serve_cache_hits"),
            cache_misses: r.counter("manic_serve_cache_misses"),
            cache_bytes: r.gauge("manic_serve_cache_bytes"),
            cache_shrinks: r.counter("manic_serve_cache_shrinks"),
            snapshots_published: r.counter("manic_serve_snapshots_published"),
            connections: r.gauge("manic_serve_open_connections"),
            queue_depth: r.gauge("manic_serve_queue_depth"),
            accept_backpressure: r.counter("manic_serve_accept_backpressure"),
            conn_rejected_emfile: r.counter_labeled(
                "manic_serve_conn_rejected",
                &[("reason", "emfile")],
            ),
            disconnect_header_timeout: disc("header_timeout"),
            disconnect_idle_timeout: disc("idle_timeout"),
            disconnect_write_timeout: disc("write_timeout"),
            disconnect_write_error: disc("write_error"),
            parse_uri_too_long: parse("uri_too_long"),
            parse_headers_too_large: parse("headers_too_large"),
            parse_too_many_headers: parse("too_many_headers"),
            parse_body_rejected: parse("body"),
            parse_malformed: parse("malformed"),
            shed_queue_depth: shed("queue_depth"),
            shed_latency: shed("latency"),
            breaker_rejected: r.counter("manic_serve_breaker_rejected"),
            breaker_opens: r.counter("manic_serve_breaker_opens"),
            render_capped: r.counter("manic_serve_render_capped"),
            render_truncated: r.counter("manic_serve_render_truncated"),
            request_duration: r.histogram("manic_serve_request_duration_ms"),
        }
    })
}
