//! Metric handles for the serving layer (`manic_serve_*`).

use manic_obs::{registry, Counter, Gauge, Histogram};
use std::sync::OnceLock;

pub(crate) struct Metrics {
    /// Requests accepted for routing, by endpoint family.
    pub requests_links: Counter,
    pub requests_timeseries: Counter,
    pub requests_explain: Counter,
    pub requests_health: Counter,
    pub requests_metrics: Counter,
    pub requests_other: Counter,
    /// Responses by status class.
    pub responses_2xx: Counter,
    pub responses_4xx: Counter,
    pub responses_5xx: Counter,
    /// Requests rejected by the per-client token bucket.
    pub rate_limited: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub snapshots_published: Counter,
    /// Currently open client connections.
    pub connections: Gauge,
    /// Wall-clock request handling time (parse excluded, render included).
    pub request_duration: Histogram,
}

impl Metrics {
    pub fn endpoint_counter(&self, path: &str) -> &Counter {
        if path == "/api/links" {
            &self.requests_links
        } else if path == "/api/health" {
            &self.requests_health
        } else if path == "/metrics" {
            &self.requests_metrics
        } else if path.starts_with("/api/link/") && path.ends_with("/timeseries") {
            &self.requests_timeseries
        } else if path.starts_with("/api/link/") && path.ends_with("/explain") {
            &self.requests_explain
        } else {
            &self.requests_other
        }
    }

    pub fn status_counter(&self, status: u16) -> &Counter {
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = registry();
        let req = |ep| r.counter_labeled("manic_serve_requests", &[("endpoint", ep)]);
        let resp = |class| r.counter_labeled("manic_serve_responses", &[("class", class)]);
        Metrics {
            requests_links: req("links"),
            requests_timeseries: req("timeseries"),
            requests_explain: req("explain"),
            requests_health: req("health"),
            requests_metrics: req("metrics"),
            requests_other: req("other"),
            responses_2xx: resp("2xx"),
            responses_4xx: resp("4xx"),
            responses_5xx: resp("5xx"),
            rate_limited: r.counter("manic_serve_rate_limited"),
            cache_hits: r.counter("manic_serve_cache_hits"),
            cache_misses: r.counter("manic_serve_cache_misses"),
            snapshots_published: r.counter("manic_serve_snapshots_published"),
            connections: r.gauge("manic_serve_open_connections"),
            request_duration: r.histogram("manic_serve_request_duration_ms"),
        }
    })
}
