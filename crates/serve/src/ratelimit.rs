//! Per-client request rate limiting.
//!
//! Same design philosophy as the probing scheduler's `RateBudget`: compute
//! entitlement in integer microseconds from a fixed origin instead of
//! accumulating floating-point tokens, so long-running servers never drift.
//! Concretely this is GCRA (the virtual-scheduling form of a token
//! bucket): each client carries a *theoretical arrival time* (TAT); a
//! request is admitted when it is no more than `burst` emission intervals
//! ahead of real time, and advances the TAT by one interval.
//!
//! The client table is hard-bounded: an address-spoofing flood (every
//! request from a fresh source address) cannot grow it past `max_clients`.
//! At the cap, fully-refilled (idle) entries are dropped first — behavior
//! neutral, since a missing entry and a refilled one admit identically —
//! and if every resident entry is still active, the one closest to refill
//! is evicted and counted in `manic_serve_ratelimit_evicted`. Evicting an
//! active entry forgets part of that client's debt (it re-admits with a
//! fresh bucket), which under a spoofing flood is the right trade: bounded
//! memory for slightly optimistic admission.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Default hard cap on tracked client entries.
const MAX_CLIENTS: usize = 4096;

struct Bucket {
    /// Theoretical arrival time of the next conforming request, µs since
    /// the limiter's origin.
    tat_us: u64,
}

pub struct RateLimiter {
    /// Emission interval in µs (1e6 / rps). 0 = unlimited.
    interval_us: u64,
    /// Burst tolerance in µs (`burst * interval`).
    tolerance_us: u64,
    /// Hard cap on the client table.
    max_clients: usize,
    origin: Instant,
    clients: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// `rps == 0` disables limiting entirely. `burst` is how many requests
    /// a client may issue back-to-back before pacing kicks in.
    pub fn new(rps: u64, burst: u64) -> Self {
        Self::with_capacity(rps, burst, MAX_CLIENTS)
    }

    /// As [`RateLimiter::new`] with an explicit client-table cap.
    pub fn with_capacity(rps: u64, burst: u64, max_clients: usize) -> Self {
        let interval_us = if rps == 0 { 0 } else { 1_000_000 / rps.max(1) };
        RateLimiter {
            interval_us,
            tolerance_us: burst.max(1).saturating_mul(interval_us),
            max_clients: max_clients.max(1),
            origin: Instant::now(),
            clients: Mutex::new(HashMap::new()),
        }
    }

    /// Admit or reject one request from `ip`.
    pub fn allow(&self, ip: IpAddr) -> bool {
        if self.interval_us == 0 {
            return true;
        }
        let now_us = self.origin.elapsed().as_micros() as u64;
        let mut clients = self.clients.lock().unwrap();
        if clients.len() >= self.max_clients && !clients.contains_key(&ip) {
            let before = clients.len();
            // Entries at or behind real time have fully refilled — dropping
            // them is behavior-neutral.
            clients.retain(|_, b| b.tat_us > now_us);
            if clients.len() >= self.max_clients {
                // Everyone resident is still pacing: evict the entry
                // closest to refill to stay under the hard cap. O(n) scan,
                // but only on the at-cap new-client path.
                if let Some(k) =
                    clients.iter().min_by_key(|(_, b)| b.tat_us).map(|(k, _)| *k)
                {
                    clients.remove(&k);
                }
            }
            let evicted = before.saturating_sub(clients.len());
            if evicted > 0 {
                crate::obs::metrics().ratelimit_evicted.add(evicted as u64);
            }
        }
        let b = clients.entry(ip).or_insert(Bucket { tat_us: 0 });
        let tat = b.tat_us.max(now_us);
        if tat - now_us <= self.tolerance_us {
            b.tat_us = tat + self.interval_us;
            true
        } else {
            crate::obs::metrics().rate_limited.inc();
            false
        }
    }

    /// Tracked client entries (bounded by the capacity).
    pub fn client_count(&self) -> usize {
        self.clients.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn burst_then_block() {
        // 1 rps: intervals are huge relative to test runtime, so admission
        // is purely burst-driven.
        let rl = RateLimiter::new(1, 3);
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)), "tolerance covers burst+1 at an empty bucket");
        assert!(!rl.allow(ip(1)), "burst exhausted");
        // A different client has its own bucket.
        assert!(rl.allow(ip(2)));
    }

    #[test]
    fn zero_rps_is_unlimited() {
        let rl = RateLimiter::new(0, 1);
        for _ in 0..10_000 {
            assert!(rl.allow(ip(1)));
        }
    }

    #[test]
    fn spoofing_flood_stays_bounded() {
        // 1 rps, burst 1: every client is "active" (tat far in the future)
        // after a single request, so the refilled-retain frees nothing and
        // the hard-cap eviction must kick in.
        let rl = RateLimiter::with_capacity(1, 1, 8);
        for a in 0..4u8 {
            for b in 1..=255u8 {
                rl.allow(IpAddr::from([10, 0, a, b]));
            }
        }
        assert!(rl.client_count() <= 8, "table grew past cap: {}", rl.client_count());
    }

    #[test]
    fn evicted_idle_client_readmits() {
        // 100 rps → 10 ms interval. Exhaust ip(1)'s burst, let it refill,
        // then push the at-cap table so the idle entry is retained away.
        let rl = RateLimiter::with_capacity(100, 1, 2);
        let evicted_before = crate::obs::metrics().ratelimit_evicted.get();
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(!rl.allow(ip(1)), "burst exhausted");
        std::thread::sleep(std::time::Duration::from_millis(40));
        // Fill the table; reaching the cap with a new client triggers the
        // idle sweep, which drops the now-refilled ip(1).
        assert!(rl.allow(ip(2)));
        assert!(rl.allow(ip(3)));
        assert!(rl.allow(ip(4)));
        assert!(rl.client_count() <= 2, "cap enforced: {}", rl.client_count());
        assert!(
            crate::obs::metrics().ratelimit_evicted.get() > evicted_before,
            "evictions counted"
        );
        // The evicted client re-admits as brand new.
        assert!(rl.allow(ip(1)), "evicted idle client re-admits");
    }
}
