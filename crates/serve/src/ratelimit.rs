//! Per-client request rate limiting.
//!
//! Same design philosophy as the probing scheduler's `RateBudget`: compute
//! entitlement in integer microseconds from a fixed origin instead of
//! accumulating floating-point tokens, so long-running servers never drift.
//! Concretely this is GCRA (the virtual-scheduling form of a token
//! bucket): each client carries a *theoretical arrival time* (TAT); a
//! request is admitted when it is no more than `burst` emission intervals
//! ahead of real time, and advances the TAT by one interval.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::Mutex;
use std::time::Instant;

/// Drop idle client entries when the table crosses this size; prevents an
/// address-rotating client from growing the map without bound.
const MAX_CLIENTS: usize = 4096;

struct Bucket {
    /// Theoretical arrival time of the next conforming request, µs since
    /// the limiter's origin.
    tat_us: u64,
}

pub struct RateLimiter {
    /// Emission interval in µs (1e6 / rps). 0 = unlimited.
    interval_us: u64,
    /// Burst tolerance in µs (`burst * interval`).
    tolerance_us: u64,
    origin: Instant,
    clients: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// `rps == 0` disables limiting entirely. `burst` is how many requests
    /// a client may issue back-to-back before pacing kicks in.
    pub fn new(rps: u64, burst: u64) -> Self {
        let interval_us = if rps == 0 { 0 } else { 1_000_000 / rps.max(1) };
        RateLimiter {
            interval_us,
            tolerance_us: burst.max(1).saturating_mul(interval_us),
            origin: Instant::now(),
            clients: Mutex::new(HashMap::new()),
        }
    }

    /// Admit or reject one request from `ip`.
    pub fn allow(&self, ip: IpAddr) -> bool {
        if self.interval_us == 0 {
            return true;
        }
        let now_us = self.origin.elapsed().as_micros() as u64;
        let mut clients = self.clients.lock().unwrap();
        if clients.len() >= MAX_CLIENTS {
            // Entries at or behind real time have fully refilled — dropping
            // them is behavior-neutral.
            clients.retain(|_, b| b.tat_us > now_us);
        }
        let b = clients.entry(ip).or_insert(Bucket { tat_us: 0 });
        let tat = b.tat_us.max(now_us);
        if tat - now_us <= self.tolerance_us {
            b.tat_us = tat + self.interval_us;
            true
        } else {
            crate::obs::metrics().rate_limited.inc();
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn burst_then_block() {
        // 1 rps: intervals are huge relative to test runtime, so admission
        // is purely burst-driven.
        let rl = RateLimiter::new(1, 3);
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)));
        assert!(rl.allow(ip(1)), "tolerance covers burst+1 at an empty bucket");
        assert!(!rl.allow(ip(1)), "burst exhausted");
        // A different client has its own bucket.
        assert!(rl.allow(ip(2)));
    }

    #[test]
    fn zero_rps_is_unlimited() {
        let rl = RateLimiter::new(0, 1);
        for _ in 0..10_000 {
            assert!(rl.allow(ip(1)));
        }
    }
}
