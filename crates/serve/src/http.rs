//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! The serving layer speaks exactly the slice of HTTP its API needs: `GET`
//! requests with headers and no meaningful body, keep-alive by default,
//! `Content-Length`-delimited responses. Parsing is deliberately strict —
//! anything outside that slice becomes a 4xx, never UB or a panic — because
//! the socket is the one interface of the system exposed to arbitrary
//! remote input. Every byte is counted *while it is read*: the request
//! line, each header line, the header total, and the header count are all
//! capped before they are buffered, so a hostile client cannot balloon
//! worker memory by streaming one enormous line.

use std::io::{BufRead, Write};
use std::sync::Arc;

/// Hard cap on the request line (method + URI + version); beyond it → 414.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024;
/// Hard cap on request-line + header bytes; anything longer → 431.
/// Generous for curl/Grafana-style clients, small enough that a hostile
/// client cannot balloon worker memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on the number of header lines; beyond it → 431.
pub const MAX_HEADER_COUNT: usize = 64;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw query string as received (cache key material: two encodings of
    /// the same logical query may cache separately, which is only a miss).
    pub raw_query: String,
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request was refused by the parser's caps. Carries the HTTP status
/// the connection loop answers with and the metric reason it counts under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Request line over [`MAX_REQUEST_LINE_BYTES`] → 414.
    UriTooLong,
    /// Head over [`MAX_HEAD_BYTES`] (or one header line alone) → 431.
    HeadersTooLarge,
    /// More than [`MAX_HEADER_COUNT`] header lines → 431.
    TooManyHeaders,
    /// A body on this GET-only API → 413 (never silently drained).
    Body,
    /// Anything else syntactically unacceptable → 400.
    Malformed,
}

impl RejectReason {
    pub fn status(self) -> u16 {
        match self {
            RejectReason::UriTooLong => 414,
            RejectReason::HeadersTooLarge | RejectReason::TooManyHeaders => 431,
            RejectReason::Body => 413,
            RejectReason::Malformed => 400,
        }
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Clean EOF before any request byte: the client closed a keep-alive
    /// connection. Not an error worth a response.
    Eof,
    /// Read error / timeout mid-request.
    Io,
    /// Unacceptable request — answer `reason.status()` and close.
    Reject(RejectReason, &'static str),
}

impl ParseError {
    fn malformed(msg: &'static str) -> ParseError {
        ParseError::Reject(RejectReason::Malformed, msg)
    }
}

/// Read one `\n`-terminated line into `out`, never buffering more than
/// `limit` bytes. Returns `Ok(true)` on a complete line, `Ok(false)` on
/// EOF with nothing read, `Err(true)` when the line exceeded `limit`
/// *without consuming the rest of it* (the connection is being dropped
/// anyway), and `Err(false)` on EOF mid-line.
fn read_line_capped<R: BufRead>(
    r: &mut R,
    out: &mut Vec<u8>,
    limit: usize,
) -> std::io::Result<Result<bool, bool>> {
    let mut n = 0usize;
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if n == 0 { Ok(false) } else { Err(false) });
        }
        let (take, done) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (buf.len(), false),
        };
        if n + take > limit {
            return Ok(Err(true));
        }
        out.extend_from_slice(&buf[..take]);
        r.consume(take);
        n += take;
        if done {
            return Ok(Ok(true));
        }
    }
}

/// Strip one trailing `\r\n` / `\n` and interpret as UTF-8.
fn line_str(line: &[u8]) -> Option<&str> {
    let line = match line {
        [head @ .., b'\r', b'\n'] | [head @ .., b'\n'] => head,
        other => other,
    };
    std::str::from_utf8(line).ok()
}

/// Read one request head from `r`. Any request body is not consumed —
/// a body-carrying request is rejected with 413 here (the API is GET-only)
/// and the connection closed rather than silently drained.
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ParseError> {
    let mut line = Vec::with_capacity(128);
    let mut total = 0usize;
    match read_line_capped(r, &mut line, MAX_REQUEST_LINE_BYTES) {
        Ok(Ok(true)) => total += line.len(),
        Ok(Ok(false)) => return Err(ParseError::Eof),
        Ok(Err(true)) => {
            return Err(ParseError::Reject(RejectReason::UriTooLong, "request line too long"))
        }
        Ok(Err(false)) => return Err(ParseError::malformed("truncated request line")),
        Err(_) => return Err(ParseError::Io),
    }
    let first = line_str(&line).ok_or(ParseError::malformed("request line not UTF-8"))?;
    let mut parts = first.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::malformed("bad request line"));
    }
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut keep_alive = version != "HTTP/1.0";
    let mut has_body = false;
    let mut headers = 0usize;
    loop {
        line.clear();
        let remaining = MAX_HEAD_BYTES.saturating_sub(total);
        match read_line_capped(r, &mut line, remaining) {
            Ok(Ok(true)) => total += line.len(),
            Ok(Ok(false)) | Ok(Err(false)) => {
                return Err(ParseError::malformed("truncated headers"))
            }
            Ok(Err(true)) => {
                return Err(ParseError::Reject(
                    RejectReason::HeadersTooLarge,
                    "headers too large",
                ))
            }
            Err(_) => return Err(ParseError::Io),
        }
        let h = line_str(&line).ok_or(ParseError::malformed("header not UTF-8"))?;
        if h.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADER_COUNT {
            return Err(ParseError::Reject(RejectReason::TooManyHeaders, "too many headers"));
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ParseError::malformed("bad header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "content-length" if value.parse::<u64>().map(|n| n > 0).unwrap_or(true) => {
                has_body = true;
            }
            "transfer-encoding" => has_body = true,
            _ => {}
        }
    }
    if has_body {
        return Err(ParseError::Reject(RejectReason::Body, "request bodies not accepted"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target.as_str(), String::new()),
    };
    let path =
        percent_decode(raw_path).ok_or(ParseError::malformed("bad escape in path"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or(ParseError::malformed("bad escape in query"))?;
        let v = percent_decode(v).ok_or(ParseError::malformed("bad escape in query"))?;
        query.push((k, v));
    }
    Ok(Request { method, path, query, raw_query, keep_alive })
}

/// Decode `%XX` escapes and `+` (as space, query convention). `None` on a
/// truncated or non-hex escape or invalid UTF-8.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi << 4 | lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// One response. Bodies are `Arc`d so cached responses are shared, not
/// copied, across the worker pool.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Arc<Vec<u8>>,
    /// `Retry-After` seconds, advertised on shed/breaker 503s.
    pub retry_after: Option<u32>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Response { status, content_type, body: Arc::new(body), retry_after: None }
    }

    pub fn json(status: u16, body: String) -> Self {
        Response::new(status, "application/json", body.into_bytes())
    }

    /// Uniform JSON error envelope.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\":{{\"status\":{},\"message\":\"{}\"}}}}",
                status,
                manic_obs::json_escape(message)
            ),
        )
    }

    /// A `503` shed/breaker response telling the client when to come back.
    pub fn unavailable(message: &str, retry_after_secs: u32) -> Self {
        let mut r = Response::error(503, message);
        r.retry_after = Some(retry_after_secs);
        r
    }

    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Content Too Large",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Append the serialized head + body to `out`. Rendering into a caller
    /// buffer lets the connection loop coalesce pipelined responses into a
    /// single `write(2)` instead of paying syscalls per response.
    pub fn render_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        out.reserve(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Serialize head + body onto `w` in one write.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut out = Vec::new();
        self.render_into(&mut out, keep_alive);
        w.write_all(&out)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    fn reject_status(raw: &str) -> u16 {
        match parse(raw) {
            Err(ParseError::Reject(reason, _)) => reason.status(),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /api/link/10.1.0.2/timeseries?bin=300&agg=min HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/api/link/10.1.0.2/timeseries");
        assert_eq!(r.param("bin"), Some("300"));
        assert_eq!(r.param("agg"), Some("min"));
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn rejects_garbage_and_bodies() {
        assert_eq!(reject_status("NONSENSE\r\n\r\n"), 400);
        assert_eq!(reject_status("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"), 413);
        assert_eq!(reject_status("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"), 413);
        assert!(matches!(parse(""), Err(ParseError::Eof)));
    }

    #[test]
    fn caps_request_line_at_414() {
        let huge_uri = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE_BYTES));
        assert_eq!(reject_status(&huge_uri), 414);
        // Just under the cap parses fine.
        let ok_uri = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(1024));
        assert!(parse(&ok_uri).is_ok());
    }

    #[test]
    fn caps_header_bytes_at_431() {
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(20_000));
        assert_eq!(reject_status(&huge), 431);
        // Many medium headers crossing the total cap are also 431.
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..40 {
            many.push_str(&format!("X-{i}: {}\r\n", "b".repeat(500)));
        }
        many.push_str("\r\n");
        assert_eq!(reject_status(&many), 431);
    }

    #[test]
    fn caps_header_count_at_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADER_COUNT + 1) {
            raw.push_str(&format!("X-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        match parse(&raw) {
            Err(ParseError::Reject(RejectReason::TooManyHeaders, _)) => {}
            other => panic!("expected TooManyHeaders, got {other:?}"),
        }
    }

    #[test]
    fn oversized_line_is_rejected_without_buffering_it() {
        // The parser must refuse before buffering the hostile line, not
        // after: feed a 100 MB virtual line through a reader that panics
        // if more than MAX_HEAD_BYTES + slack is ever consumed.
        struct Metered<'a> {
            chunk: &'a [u8],
            served: usize,
            cap: usize,
        }
        impl std::io::Read for Metered<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = buf.len().min(self.chunk.len());
                buf[..n].copy_from_slice(&self.chunk[..n]);
                self.served += n;
                assert!(self.served <= self.cap, "parser kept reading an oversized line");
                Ok(n)
            }
        }
        let chunk = [b'a'; 512];
        let mut r = BufReader::new(Metered {
            chunk: &chunk,
            served: 0,
            cap: MAX_HEAD_BYTES + 16 * 1024,
        });
        match read_request(&mut r) {
            Err(ParseError::Reject(RejectReason::UriTooLong, _)) => {}
            other => panic!("expected UriTooLong, got {other:?}"),
        }
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("%2Fx").as_deref(), Some("/x"));
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%2"), None);
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".into()).write_to(&mut buf, true).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn retry_after_header_renders() {
        let mut buf = Vec::new();
        Response::unavailable("shed", 3).write_to(&mut buf, false).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{s}");
        assert!(s.contains("Retry-After: 3\r\n"), "{s}");
        assert!(s.contains("Connection: close\r\n"));
    }
}
