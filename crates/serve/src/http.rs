//! Minimal HTTP/1.1 framing over `std::io` streams.
//!
//! The serving layer speaks exactly the slice of HTTP its API needs: `GET`
//! requests with headers and no meaningful body, keep-alive by default,
//! `Content-Length`-delimited responses. Parsing is deliberately strict —
//! anything outside that slice becomes a 400, never UB or a panic — because
//! the socket is the one interface of the system exposed to arbitrary
//! remote input.

use std::io::{BufRead, Write};
use std::sync::Arc;

/// Hard cap on request-line + header bytes; anything longer is rejected.
/// Generous for curl/Grafana-style clients, small enough that a hostile
/// client cannot balloon worker memory.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Percent-decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Raw query string as received (cache key material: two encodings of
    /// the same logical query may cache separately, which is only a miss).
    pub raw_query: String,
    pub keep_alive: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// Clean EOF before any request byte: the client closed a keep-alive
    /// connection. Not an error worth a response.
    Eof,
    /// Read error / timeout mid-request.
    Io,
    /// Syntactically unacceptable request — answer 400 and close.
    Malformed(&'static str),
}

/// Read one request head from `r`. Any request body is not consumed —
/// callers treat a body-carrying request as malformed upstream via the 411
/// check here (the API is GET-only).
pub fn read_request<R: BufRead>(r: &mut R) -> Result<Request, ParseError> {
    let mut line = String::new();
    let mut total = 0usize;
    match r.read_line(&mut line) {
        Ok(0) => return Err(ParseError::Eof),
        Ok(n) => total += n,
        Err(_) => return Err(ParseError::Io),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed("bad request line"));
    }
    // HTTP/1.0 defaults to close, 1.1 to keep-alive.
    let mut keep_alive = version != "HTTP/1.0";
    let mut has_body = false;
    loop {
        let mut h = String::new();
        match r.read_line(&mut h) {
            Ok(0) => return Err(ParseError::Malformed("truncated headers")),
            Ok(n) => total += n,
            Err(_) => return Err(ParseError::Io),
        }
        if total > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("headers too large"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ParseError::Malformed("bad header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "content-length" if value.parse::<u64>().map(|n| n > 0).unwrap_or(true) => {
                has_body = true;
            }
            "transfer-encoding" => has_body = true,
            _ => {}
        }
    }
    if has_body {
        return Err(ParseError::Malformed("request bodies not accepted"));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target.as_str(), String::new()),
    };
    let path = percent_decode(raw_path).ok_or(ParseError::Malformed("bad escape in path"))?;
    let mut query = Vec::new();
    for pair in raw_query.split('&').filter(|s| !s.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k).ok_or(ParseError::Malformed("bad escape in query"))?;
        let v = percent_decode(v).ok_or(ParseError::Malformed("bad escape in query"))?;
        query.push((k, v));
    }
    Ok(Request { method, path, query, raw_query, keep_alive })
}

/// Decode `%XX` escapes and `+` (as space, query convention). `None` on a
/// truncated or non-hex escape or invalid UTF-8.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = hex_val(*bytes.get(i + 1)?)?;
                let lo = hex_val(*bytes.get(i + 2)?)?;
                out.push(hi << 4 | lo);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// One response. Bodies are `Arc`d so cached responses are shared, not
/// copied, across the worker pool.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Arc<Vec<u8>>,
}

impl Response {
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Response { status, content_type, body: Arc::new(body) }
    }

    pub fn json(status: u16, body: String) -> Self {
        Response::new(status, "application/json", body.into_bytes())
    }

    /// Uniform JSON error envelope.
    pub fn error(status: u16, message: &str) -> Self {
        Response::json(
            status,
            format!(
                "{{\"error\":{{\"status\":{},\"message\":\"{}\"}}}}",
                status,
                manic_obs::json_escape(message)
            ),
        )
    }

    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            411 => "Length Required",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Append the serialized head + body to `out`. Rendering into a caller
    /// buffer lets the connection loop coalesce pipelined responses into a
    /// single `write(2)` instead of paying syscalls per response.
    pub fn render_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            Self::reason(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        out.reserve(head.len() + self.body.len());
        out.extend_from_slice(head.as_bytes());
        out.extend_from_slice(&self.body);
    }

    /// Serialize head + body onto `w` in one write.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> std::io::Result<()> {
        let mut out = Vec::new();
        self.render_into(&mut out, keep_alive);
        w.write_all(&out)?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /api/link/10.1.0.2/timeseries?bin=300&agg=min HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/api/link/10.1.0.2/timeseries");
        assert_eq!(r.param("bin"), Some("300"));
        assert_eq!(r.param("agg"), Some("min"));
        assert!(r.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn rejects_garbage_and_bodies() {
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ParseError::Eof)));
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(20_000));
        assert!(matches!(parse(&huge), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("%2Fx").as_deref(), Some("/x"));
        assert_eq!(percent_decode("%zz"), None);
        assert_eq!(percent_decode("%2"), None);
    }

    #[test]
    fn response_wire_format() {
        let mut buf = Vec::new();
        Response::json(200, "{\"ok\":true}".into()).write_to(&mut buf, true).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 11\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("{\"ok\":true}"));
    }
}
