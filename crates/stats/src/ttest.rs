//! Student's t-tests.
//!
//! Used by the level-shift detector (§4.1: "the minimum difference Δ between
//! the means of two adjacent regimes ... that is statistically significant
//! according to the Student's t-test at the 95% confidence level") and by the
//! NDT throughput validation (§5.3, Table 2's t-test p-values).

use crate::describe::Summary;
use crate::special::student_t_cdf;

/// Alternative hypothesis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tails {
    /// H1: means differ (p doubles the tail probability).
    TwoSided,
    /// H1: mean(a) > mean(b) (or mean > mu0 for one-sample).
    Greater,
    /// H1: mean(a) < mean(b).
    Less,
}

/// Result of a t-test.
#[derive(Debug, Clone, Copy)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (possibly fractional for Welch).
    pub df: f64,
    /// p-value under the chosen alternative.
    pub p: f64,
}

impl TTest {
    /// Whether the test rejects H0 at significance level `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

fn p_value(t: f64, df: f64, tails: Tails) -> f64 {
    match tails {
        Tails::TwoSided => 2.0 * student_t_cdf(-t.abs(), df),
        Tails::Greater => 1.0 - student_t_cdf(t, df),
        Tails::Less => student_t_cdf(t, df),
    }
    .clamp(0.0, 1.0)
}

/// One-sample t-test of H0: mean(xs) == mu0.
///
/// Returns `None` if xs has fewer than 2 elements or zero variance
/// (the statistic is undefined).
pub fn one_sample_t(xs: &[f64], mu0: f64, tails: Tails) -> Option<TTest> {
    let s = Summary::of(xs);
    if s.n < 2 || !(s.var > 0.0) {
        return None;
    }
    let se = (s.var / s.n as f64).sqrt();
    let t = (s.mean - mu0) / se;
    let df = (s.n - 1) as f64;
    Some(TTest { t, df, p: p_value(t, df, tails) })
}

/// Two-sample pooled-variance Student's t-test of H0: mean(a) == mean(b).
///
/// Assumes equal variances (the classical form the paper cites). Returns
/// `None` when either sample has fewer than 2 points or the pooled variance
/// is zero.
///
/// ```
/// use manic_stats::{two_sample_t, Tails};
///
/// let congested: Vec<f64> = (0..30).map(|i| 7.8 + (i % 3) as f64 * 0.1).collect();
/// let uncongested: Vec<f64> = (0..30).map(|i| 26.8 + (i % 3) as f64 * 0.1).collect();
/// let t = two_sample_t(&uncongested, &congested, Tails::TwoSided).unwrap();
/// assert!(t.significant(0.001)); // the paper's Table 2, Link 1 situation
/// ```
pub fn two_sample_t(a: &[f64], b: &[f64], tails: Tails) -> Option<TTest> {
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    if sa.n < 2 || sb.n < 2 {
        return None;
    }
    let df = (sa.n + sb.n - 2) as f64;
    let pooled = ((sa.n - 1) as f64 * sa.var + (sb.n - 1) as f64 * sb.var) / df;
    if !(pooled > 0.0) {
        return None;
    }
    let se = (pooled * (1.0 / sa.n as f64 + 1.0 / sb.n as f64)).sqrt();
    let t = (sa.mean - sb.mean) / se;
    Some(TTest { t, df, p: p_value(t, df, tails) })
}

/// Welch's unequal-variance t-test of H0: mean(a) == mean(b).
///
/// Preferred when the two samples have very different sizes/variances, as in
/// congested-vs-uncongested throughput comparisons where the congested window
/// is much shorter than the rest of the day.
pub fn welch_t(a: &[f64], b: &[f64], tails: Tails) -> Option<TTest> {
    let sa = Summary::of(a);
    let sb = Summary::of(b);
    if sa.n < 2 || sb.n < 2 {
        return None;
    }
    let va = sa.var / sa.n as f64;
    let vb = sb.var / sb.n as f64;
    if !(va + vb > 0.0) {
        return None;
    }
    let t = (sa.mean - sb.mean) / (va + vb).sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = (va + vb) * (va + vb)
        / (va * va / (sa.n - 1) as f64 + vb * vb / (sb.n - 1) as f64);
    Some(TTest { t, df, p: p_value(t, df, tails) })
}

/// Minimum mean difference between two adjacent regimes of length `l` that is
/// significant at level `alpha`, given the series' average variance `sigma2`.
///
/// This is the Δ used by the level-shift algorithm (§4.1): with a pooled
/// standard error `sqrt(sigma2 * 2/l)` and `2l - 2` degrees of freedom, the
/// critical difference is `t_crit * se`.
pub fn min_significant_delta(sigma2: f64, l: usize, alpha: f64) -> f64 {
    assert!(l >= 2, "regime length must be >= 2");
    let df = (2 * l - 2) as f64;
    let se = (sigma2 * 2.0 / l as f64).sqrt();
    t_critical(df, alpha) * se
}

/// Two-sided critical value t* such that P(|T| > t*) = alpha, by bisection on
/// the CDF (the CDF is monotone; 60 iterations give ~1e-12 accuracy).
pub fn t_critical(df: f64, alpha: f64) -> f64 {
    assert!(df > 0.0 && alpha > 0.0 && alpha < 1.0);
    let target = 1.0 - alpha / 2.0;
    let (mut lo, mut hi) = (0.0f64, 1e3f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if student_t_cdf(mid, df) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sample_detects_offset() {
        let xs: Vec<f64> = (0..50).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let t = one_sample_t(&xs, 9.0, Tails::TwoSided).unwrap();
        assert!(t.significant(0.01), "clear offset should be significant: p={}", t.p);
        let t2 = one_sample_t(&xs, 10.2, Tails::TwoSided).unwrap();
        assert!(t2.p > 0.0001);
    }

    #[test]
    fn two_sample_identical_distributions_not_significant() {
        let a: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let b = a.clone();
        let t = two_sample_t(&a, &b, Tails::TwoSided).unwrap();
        assert!((t.t).abs() < 1e-12);
        assert!((t.p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_sample_detects_shift() {
        let a: Vec<f64> = (0..30).map(|i| 5.0 + (i % 3) as f64 * 0.2).collect();
        let b: Vec<f64> = (0..30).map(|i| 8.0 + (i % 3) as f64 * 0.2).collect();
        let t = two_sample_t(&a, &b, Tails::TwoSided).unwrap();
        assert!(t.significant(0.001));
        assert!(t.t < 0.0, "a < b should give negative t");
    }

    #[test]
    fn welch_handles_unequal_sizes() {
        let a: Vec<f64> = (0..200).map(|i| 20.0 + ((i * 7) % 13) as f64 * 0.3).collect();
        let b: Vec<f64> = (0..10).map(|i| 10.0 + ((i * 5) % 7) as f64 * 0.4).collect();
        let t = welch_t(&a, &b, Tails::TwoSided).unwrap();
        assert!(t.significant(0.001));
        assert!(t.df < (a.len() + b.len() - 2) as f64);
    }

    #[test]
    fn tails_are_consistent() {
        let a: Vec<f64> = (0..20).map(|i| 5.0 + (i % 4) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..20).map(|i| 6.0 + (i % 4) as f64 * 0.1).collect();
        let two = two_sample_t(&a, &b, Tails::TwoSided).unwrap();
        let less = two_sample_t(&a, &b, Tails::Less).unwrap();
        let greater = two_sample_t(&a, &b, Tails::Greater).unwrap();
        assert!((less.p + greater.p - 1.0).abs() < 1e-9);
        assert!((two.p - 2.0 * less.p.min(greater.p)).abs() < 1e-9);
    }

    #[test]
    fn t_critical_matches_tables() {
        // Classic table values (two-sided, alpha=0.05).
        assert!((t_critical(10.0, 0.05) - 2.228).abs() < 0.01);
        assert!((t_critical(1e6, 0.05) - 1.960).abs() < 0.01);
    }

    #[test]
    fn min_delta_scales_with_variance() {
        let d1 = min_significant_delta(1.0, 12, 0.05);
        let d2 = min_significant_delta(4.0, 12, 0.05);
        assert!((d2 / d1 - 2.0).abs() < 1e-9, "delta should scale with sigma");
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(one_sample_t(&[1.0], 0.0, Tails::TwoSided).is_none());
        assert!(two_sample_t(&[1.0, 1.0], &[1.0, 1.0], Tails::TwoSided).is_none());
        assert!(welch_t(&[1.0], &[2.0, 3.0], Tails::TwoSided).is_none());
    }
}
