//! Descriptive statistics: mean, variance, quantiles, empirical CDFs.

/// Arithmetic mean. Returns NaN for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (divides by n-1). Returns NaN for n < 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Median (quantile 0.5).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Quantile with linear interpolation between order statistics
/// (type-7 / the NumPy default). `q` must be in [0, 1].
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical CDF evaluated at the sorted sample points.
///
/// Returns `(sorted values, cumulative probabilities)`; probabilities use the
/// convention `P(X <= x_(i)) = (i+1)/n`. Useful for rendering Figure-4-style
/// CDF plots as text or CSV.
pub fn ecdf(xs: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ecdf input"));
    let n = sorted.len() as f64;
    let probs = (0..sorted.len()).map(|i| (i + 1) as f64 / n).collect();
    (sorted, probs)
}

/// One-pass numeric summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    /// Unbiased sample variance.
    pub var: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Compute a summary; NaN fields for degenerate inputs (n == 0 or n == 1
    /// for the variance).
    pub fn of(xs: &[f64]) -> Self {
        let n = xs.len();
        let mean = mean(xs);
        let var = variance(xs);
        let (min, max) = xs.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
        Summary {
            n,
            mean,
            var,
            min: if n == 0 { f64::NAN } else { min },
            max: if n == 0 { f64::NAN } else { max },
        }
    }

    /// Sample standard deviation.
    pub fn sd(&self) -> f64 {
        self.var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        // Sum of squared deviations = 32, n-1 = 7.
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolation() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_monotone() {
        let (vals, probs) = ecdf(&[5.0, 1.0, 3.0]);
        assert_eq!(vals, vec![1.0, 3.0, 5.0]);
        assert_eq!(probs.last().copied(), Some(1.0));
        assert!(probs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.sd() - 1.0).abs() < 1e-12);
    }
}
