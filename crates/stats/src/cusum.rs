//! CUSUM-style change-point scanning.
//!
//! The paper's level-shift heuristic "is based on CUSUM" (§4.1, citing
//! Taylor's change-point analysis). This module provides the generic
//! machinery: a cumulative-sum scan that locates the most likely mean shift
//! in a window, plus a recursive segmentation that finds multiple change
//! points. The paper-specific policy (minimum duration l/2, Huber weights,
//! t-test significance) lives in `manic-inference::levelshift` on top of this.

use crate::describe::mean;

/// A detected change point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// Index of the first sample of the new regime.
    pub index: usize,
    /// Mean before the change (over the scanned segment).
    pub mean_before: f64,
    /// Mean after the change.
    pub mean_after: f64,
    /// Magnitude of the CUSUM excursion that flagged the change
    /// (max |S_i| of the centered cumulative sum).
    pub magnitude: f64,
}

impl ChangePoint {
    /// Signed size of the shift.
    pub fn delta(&self) -> f64 {
        self.mean_after - self.mean_before
    }
}

/// Locate the single strongest candidate change point in `xs` with optional
/// per-sample weights (Huber weights in the paper's use).
///
/// The scan computes the weighted centered cumulative sum
/// `S_i = Σ_{j<=i} w_j (x_j - x̄_w)` and returns the index after the extremum
/// of |S| — the classical CUSUM estimate of the shift location. Returns
/// `None` for series shorter than 4 samples (no room for two regimes of 2).
pub fn cusum_scan(xs: &[f64], weights: Option<&[f64]>) -> Option<ChangePoint> {
    let n = xs.len();
    if n < 4 {
        return None;
    }
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weights length must match samples");
    }
    let wsum: f64 = match weights {
        Some(w) => w.iter().sum(),
        None => n as f64,
    };
    if !(wsum > 0.0) {
        return None;
    }
    let wmean: f64 = match weights {
        Some(w) => xs.iter().zip(w).map(|(x, w)| x * w).sum::<f64>() / wsum,
        None => mean(xs),
    };
    let mut s = 0.0;
    let mut best_abs = 0.0;
    let mut best_i = 0usize;
    for i in 0..n {
        let w = weights.map_or(1.0, |w| w[i]);
        s += w * (xs[i] - wmean);
        if s.abs() > best_abs {
            best_abs = s.abs();
            best_i = i;
        }
    }
    // The change begins after the extremum.
    let split = best_i + 1;
    if split == 0 || split >= n {
        return None;
    }
    let regime_mean = |lo: usize, hi: usize| -> f64 {
        match weights {
            None => mean(&xs[lo..hi]),
            Some(w) => {
                let ws: f64 = w[lo..hi].iter().sum();
                if ws > 0.0 {
                    xs[lo..hi].iter().zip(&w[lo..hi]).map(|(x, w)| x * w).sum::<f64>() / ws
                } else {
                    mean(&xs[lo..hi])
                }
            }
        }
    };
    Some(ChangePoint {
        index: split,
        mean_before: regime_mean(0, split),
        mean_after: regime_mean(split, n),
        magnitude: best_abs,
    })
}

/// Recursively segment `xs` into regimes using CUSUM, keeping only change
/// points whose |delta| >= `min_delta` and whose regimes are at least
/// `min_len` samples long. Returns change-point indices in increasing order.
pub fn segment(xs: &[f64], min_delta: f64, min_len: usize) -> Vec<ChangePoint> {
    let mut out = Vec::new();
    segment_rec(xs, 0, min_delta, min_len.max(2), &mut out);
    out.sort_by_key(|c| c.index);
    out
}

fn segment_rec(xs: &[f64], offset: usize, min_delta: f64, min_len: usize, out: &mut Vec<ChangePoint>) {
    if xs.len() < 2 * min_len {
        return;
    }
    let Some(cp) = cusum_scan(xs, None) else { return };
    if cp.index < min_len || xs.len() - cp.index < min_len || cp.delta().abs() < min_delta {
        return;
    }
    let split = cp.index;
    segment_rec(&xs[..split], offset, min_delta, min_len, out);
    out.push(ChangePoint { index: offset + split, ..cp });
    segment_rec(&xs[split..], offset + split, min_delta, min_len, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(n1: usize, n2: usize, a: f64, b: f64) -> Vec<f64> {
        // Small deterministic ripple avoids zero variance.
        (0..n1)
            .map(|i| a + (i % 3) as f64 * 0.01)
            .chain((0..n2).map(|i| b + (i % 3) as f64 * 0.01))
            .collect()
    }

    #[test]
    fn finds_planted_shift() {
        let xs = step_series(50, 50, 10.0, 20.0);
        let cp = cusum_scan(&xs, None).unwrap();
        assert!((cp.index as i64 - 50).abs() <= 1, "found {}", cp.index);
        assert!(cp.delta() > 9.0);
    }

    #[test]
    fn no_shift_in_constant_series() {
        let xs = vec![5.0; 20];
        let cp = cusum_scan(&xs, None);
        // A constant series yields zero magnitude; location is arbitrary but
        // magnitude tells the caller there is nothing there.
        if let Some(cp) = cp {
            assert_eq!(cp.magnitude, 0.0);
            assert_eq!(cp.delta(), 0.0);
        }
    }

    #[test]
    fn weights_suppress_outliers() {
        // Level series with one huge spike; with downweighted spike, the scan
        // should not report a large delta at the spike.
        let mut xs = vec![10.0; 40];
        xs[20] = 200.0;
        let mut w = vec![1.0; 40];
        w[20] = 0.01;
        let cp = cusum_scan(&xs, Some(&w)).unwrap();
        // Regimes on each side of any split still average close to 10.
        assert!(cp.delta().abs() < 6.0, "delta {}", cp.delta());
    }

    #[test]
    fn segment_finds_two_shifts() {
        let mut xs = step_series(40, 40, 10.0, 20.0);
        xs.extend(step_series(0, 40, 0.0, 10.0));
        let cps = segment(&xs, 4.0, 6);
        assert_eq!(cps.len(), 2, "{cps:?}");
        assert!((cps[0].index as i64 - 40).abs() <= 2);
        assert!((cps[1].index as i64 - 80).abs() <= 2);
    }

    #[test]
    fn segment_respects_min_delta() {
        let xs = step_series(40, 40, 10.0, 10.5);
        assert!(segment(&xs, 2.0, 6).is_empty());
    }

    #[test]
    fn short_series_returns_none() {
        assert!(cusum_scan(&[1.0, 2.0, 3.0], None).is_none());
    }
}
