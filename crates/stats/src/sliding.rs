//! Exact sliding-window order statistics.
//!
//! `SlidingMedian` maintains a sorted multiset of the current window and
//! answers the median in O(1), with O(window) insert/remove (a memmove in a
//! small contiguous buffer — far cheaper than the re-sort per position that
//! a naive rolling median pays). The median is computed with exactly the
//! same interpolation expression as [`crate::describe::median`], so
//! replacing a per-window `median(&xs[lo..hi])` call with a maintained
//! `SlidingMedian` is bit-identical, not merely approximately equal.

/// Sorted window buffer with exact median queries.
///
/// Values must be non-NaN (the same contract as `describe::quantile`, which
/// panics on NaN input).
#[derive(Debug, Clone, Default)]
pub struct SlidingMedian {
    buf: Vec<f64>,
}

impl SlidingMedian {
    pub fn new() -> Self {
        SlidingMedian::default()
    }

    /// Pre-size for an expected window length.
    pub fn with_capacity(cap: usize) -> Self {
        SlidingMedian { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Add one value to the window.
    pub fn insert(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN in sliding median input");
        let i = self.buf.partition_point(|&y| y < x);
        self.buf.insert(i, x);
    }

    /// Remove one occurrence of `x` from the window. Panics if `x` is not
    /// present — the caller is sliding a window and must remove exactly the
    /// values it inserted.
    pub fn remove(&mut self, x: f64) {
        let i = self.buf.partition_point(|&y| y < x);
        assert!(
            i < self.buf.len() && self.buf[i] == x,
            "sliding median: removing absent value {x}"
        );
        self.buf.remove(i);
    }

    /// Median of the current window — the same type-7 interpolation as
    /// `describe::median` (and bit-identical to it, term for term). NaN for
    /// an empty window.
    pub fn median(&self) -> f64 {
        if self.buf.is_empty() {
            return f64::NAN;
        }
        let pos = 0.5 * (self.buf.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.buf[lo]
        } else {
            let frac = pos - lo as f64;
            self.buf[lo] * (1.0 - frac) + self.buf[hi] * frac
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::median;

    #[test]
    fn matches_describe_median_exactly() {
        let xs = [3.0, 1.25, 7.5, 7.5, -2.0, 0.1, 4.0];
        let mut sm = SlidingMedian::new();
        for (i, &x) in xs.iter().enumerate() {
            sm.insert(x);
            assert_eq!(sm.median(), median(&xs[..=i]), "prefix {i}");
        }
    }

    #[test]
    fn sliding_window_matches_per_window_median() {
        // Pseudo-random-ish but deterministic values, window of 5.
        let xs: Vec<f64> = (0..40).map(|i| ((i * 37) % 17) as f64 * 0.5 - 3.0).collect();
        let w = 5;
        let mut sm = SlidingMedian::new();
        for &x in &xs[..w] {
            sm.insert(x);
        }
        assert_eq!(sm.median(), median(&xs[..w]));
        for i in w..xs.len() {
            sm.remove(xs[i - w]);
            sm.insert(xs[i]);
            assert_eq!(sm.median(), median(&xs[i + 1 - w..=i]), "window at {i}");
        }
    }

    #[test]
    fn duplicates_remove_one_occurrence() {
        let mut sm = SlidingMedian::new();
        sm.insert(2.0);
        sm.insert(2.0);
        sm.insert(2.0);
        sm.remove(2.0);
        assert_eq!(sm.len(), 2);
        assert_eq!(sm.median(), 2.0);
    }

    #[test]
    fn empty_is_nan() {
        assert!(SlidingMedian::new().median().is_nan());
    }

    #[test]
    #[should_panic(expected = "absent value")]
    fn removing_absent_value_panics() {
        let mut sm = SlidingMedian::new();
        sm.insert(1.0);
        sm.remove(2.0);
    }
}
