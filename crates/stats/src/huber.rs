//! Huber's robust weight function and M-estimate of location.
//!
//! §4.1: "To handle outliers in the time series, the algorithm employs
//! Huber's weight function with an adjustable parameter P where higher values
//! of P accommodate more deviation, e.g., P=5 tolerates outliers up to 5
//! standard deviations." The paper runs the level-shift detector with P=1.

/// Huber weight for a residual `r` given scale `sigma` and tuning constant `p`.
///
/// Returns 1 for |r| <= p·sigma and p·sigma/|r| beyond, so that the effective
/// influence of a point is capped at p standard deviations.
pub fn huber_weight(r: f64, sigma: f64, p: f64) -> f64 {
    assert!(sigma >= 0.0 && p > 0.0);
    let bound = p * sigma;
    let ar = r.abs();
    if ar <= bound || ar == 0.0 {
        1.0
    } else if bound == 0.0 {
        0.0
    } else {
        bound / ar
    }
}

/// Huber M-estimate of location via iteratively reweighted averaging.
///
/// `sigma` is the scale used to decide what counts as an outlier (typically
/// the series' average moving-window standard deviation, per §4.1), and `p`
/// is the tuning constant. Converges in a handful of iterations; we cap at 50.
///
/// Returns NaN for an empty slice.
pub fn huber_mean(xs: &[f64], sigma: f64, p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    if xs.len() == 1 {
        return xs[0];
    }
    // Start from the median for robustness.
    let mut mu = crate::describe::median(xs);
    if sigma == 0.0 {
        return mu;
    }
    for _ in 0..50 {
        let mut wsum = 0.0;
        let mut xsum = 0.0;
        for &x in xs {
            let w = huber_weight(x - mu, sigma, p);
            wsum += w;
            xsum += w * x;
        }
        let next = xsum / wsum;
        if (next - mu).abs() < 1e-12 {
            return next;
        }
        mu = next;
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_one_inside_band() {
        assert_eq!(huber_weight(0.5, 1.0, 1.0), 1.0);
        assert_eq!(huber_weight(-1.0, 1.0, 1.0), 1.0);
        assert_eq!(huber_weight(0.0, 0.0, 1.0), 1.0);
    }

    #[test]
    fn weight_decays_outside_band() {
        let w = huber_weight(5.0, 1.0, 1.0);
        assert!((w - 0.2).abs() < 1e-12);
        // Larger P tolerates more deviation.
        assert_eq!(huber_weight(4.0, 1.0, 5.0), 1.0);
    }

    #[test]
    fn huber_mean_resists_outliers() {
        // 20 points near 10, one wild outlier at 1000.
        let mut xs: Vec<f64> = (0..20).map(|i| 10.0 + (i % 3) as f64 * 0.1).collect();
        xs.push(1000.0);
        let plain = crate::describe::mean(&xs);
        let robust = huber_mean(&xs, 0.5, 1.0);
        assert!(plain > 50.0, "plain mean dragged by outlier");
        assert!((robust - 10.1).abs() < 0.5, "robust mean stays near bulk: {robust}");
    }

    #[test]
    fn huber_mean_equals_mean_for_clean_data() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        // With a huge band everything gets weight 1.
        let m = huber_mean(&xs, 100.0, 5.0);
        assert!((m - 3.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(huber_mean(&[], 1.0, 1.0).is_nan());
        assert_eq!(huber_mean(&[7.0], 1.0, 1.0), 7.0);
        assert_eq!(huber_mean(&[3.0, 4.0], 0.0, 1.0), 3.5);
    }
}
