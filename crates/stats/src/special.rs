//! Special functions: log-gamma, regularized incomplete beta, error function.
//!
//! These are the numerical workhorses behind the t-distribution and normal
//! CDFs used by the hypothesis tests in this crate. Implementations follow
//! the standard Lanczos / continued-fraction formulations and are accurate to
//! roughly 1e-10 over the ranges the tests exercise.

/// Natural log of the gamma function, via the Lanczos approximation (g=7, n=9).
///
/// Valid for `x > 0`. Returns `f64::INFINITY` at `x == 0` and NaN for
/// negative inputs (we never need the reflection branch for statistics here,
/// but it is implemented for completeness).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function I_x(a, b).
///
/// Computed with the continued-fraction expansion (Numerical Recipes
/// `betacf`), using the symmetry transformation for fast convergence.
/// Returns values clamped to [0, 1].
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires positive shape parameters");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    let result = if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    };
    result.clamp(0.0, 1.0)
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, via Abramowitz & Stegun 7.1.26-style rational approximation
/// refined with one series term; max absolute error ~1.5e-7 which is ample for
/// p-value thresholds at 0.05/0.01. For higher accuracy we use the incomplete
/// gamma relation when |x| < 3.
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    // Series expansion for small x (fast convergence, high accuracy).
    if x < 3.0 {
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        for n in 1..200 {
            let n = n as f64;
            term *= -x2 / n;
            let add = term / (2.0 * n + 1.0);
            sum += add;
            if add.abs() < 1e-17 * sum.abs() {
                break;
            }
        }
        2.0 / std::f64::consts::PI.sqrt() * sum
    } else {
        // Tail: erfc via continued fraction would be overkill; erf(3) ≈ 0.99998.
        1.0 - erfc_large(x)
    }
}

/// Complementary error function for x >= 3 via asymptotic expansion.
fn erfc_large(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = 1.0;
    let mut sum = 1.0;
    // Asymptotic series: erfc(x) ~ e^{-x^2}/(x sqrt(pi)) * (1 - 1/(2x^2) + 3/(4x^4) - ...)
    for n in 1..10 {
        term *= -((2 * n - 1) as f64) / (2.0 * x2);
        sum += term;
    }
    (-x2).exp() / (x * std::f64::consts::PI.sqrt()) * sum
}

/// Standard normal cumulative distribution function Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// CDF of Student's t distribution with `df` degrees of freedom, P(T <= t).
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    if t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-10);
        close(ln_gamma(11.0), (3628800.0f64).ln(), 1e-9);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn inc_beta_boundaries() {
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform distribution CDF).
        close(inc_beta(1.0, 1.0, 0.37), 0.37, 1e-12);
    }

    #[test]
    fn inc_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let (a, b, x) = (2.5, 4.0, 0.3);
        close(inc_beta(a, b, x), 1.0 - inc_beta(b, a, 1.0 - x), 1e-12);
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn normal_cdf_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-14);
        close(normal_cdf(1.96), 0.975_002_104_85, 1e-6);
        close(normal_cdf(-1.96), 0.024_997_895_15, 1e-6);
    }

    #[test]
    fn t_cdf_reference_values() {
        // With df → ∞ the t CDF approaches the normal CDF.
        close(student_t_cdf(1.96, 1e7), normal_cdf(1.96), 1e-5);
        // Symmetry.
        close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        // Known value: P(T<=2.015) with df=5 ≈ 0.95 (one-sided 95% critical value).
        close(student_t_cdf(2.015, 5.0), 0.95, 1e-3);
        // df=1 is the Cauchy distribution: CDF(1) = 3/4.
        close(student_t_cdf(1.0, 1.0), 0.75, 1e-10);
    }
}
