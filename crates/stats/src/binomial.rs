//! Binomial proportion tests.
//!
//! §5.1 evaluates each month-link with "the binomial proportion test
//! (requiring p < 0.05)": are losses (successes) proportionally more frequent
//! in one condition than another? We implement the standard two-proportion
//! pooled z-test, which is what operational loss-rate comparisons use.

use crate::special::normal_cdf;
use crate::ttest::Tails;

/// Result of a two-proportion z-test.
#[derive(Debug, Clone, Copy)]
pub struct ProportionTest {
    /// z statistic (positive when sample 1's proportion is larger).
    pub z: f64,
    /// p-value under the chosen alternative.
    pub p: f64,
    /// Estimated proportion in sample 1 (successes1 / trials1).
    pub p1: f64,
    /// Estimated proportion in sample 2.
    pub p2: f64,
}

impl ProportionTest {
    pub fn significant(&self, alpha: f64) -> bool {
        self.p < alpha
    }
}

/// Two-proportion pooled z-test of H0: p1 == p2.
///
/// `successes*` must not exceed `trials*`. Returns `None` when either trial
/// count is zero or the pooled proportion is degenerate (all successes or all
/// failures across both samples), where the z statistic is undefined.
pub fn two_proportion_z_test(
    successes1: u64,
    trials1: u64,
    successes2: u64,
    trials2: u64,
    tails: Tails,
) -> Option<ProportionTest> {
    assert!(successes1 <= trials1 && successes2 <= trials2, "successes exceed trials");
    if trials1 == 0 || trials2 == 0 {
        return None;
    }
    let n1 = trials1 as f64;
    let n2 = trials2 as f64;
    let p1 = successes1 as f64 / n1;
    let p2 = successes2 as f64 / n2;
    let pooled = (successes1 + successes2) as f64 / (n1 + n2);
    let var = pooled * (1.0 - pooled) * (1.0 / n1 + 1.0 / n2);
    if !(var > 0.0) {
        return None;
    }
    let z = (p1 - p2) / var.sqrt();
    let p = match tails {
        Tails::TwoSided => 2.0 * normal_cdf(-z.abs()),
        Tails::Greater => 1.0 - normal_cdf(z),
        Tails::Less => normal_cdf(z),
    }
    .clamp(0.0, 1.0);
    Some(ProportionTest { z, p, p1, p2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_proportions_not_significant() {
        let t = two_proportion_z_test(50, 1000, 50, 1000, Tails::TwoSided).unwrap();
        assert!((t.z).abs() < 1e-12);
        assert!(t.p > 0.99);
    }

    #[test]
    fn clear_difference_is_significant() {
        // 10% vs 1% loss over 3000 probes each: overwhelming.
        let t = two_proportion_z_test(300, 3000, 30, 3000, Tails::Greater).unwrap();
        assert!(t.significant(0.001));
        assert!(t.z > 0.0);
    }

    #[test]
    fn direction_matters() {
        let g = two_proportion_z_test(10, 100, 40, 100, Tails::Greater).unwrap();
        let l = two_proportion_z_test(10, 100, 40, 100, Tails::Less).unwrap();
        assert!(!g.significant(0.05));
        assert!(l.significant(0.001));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(two_proportion_z_test(0, 0, 1, 10, Tails::TwoSided).is_none());
        assert!(two_proportion_z_test(0, 10, 0, 10, Tails::TwoSided).is_none());
        assert!(two_proportion_z_test(10, 10, 10, 10, Tails::TwoSided).is_none());
    }

    #[test]
    fn matches_hand_computed_z() {
        // p1=0.2 (20/100), p2=0.1 (10/100), pooled=0.15
        // se = sqrt(0.15*0.85*(0.02)) = sqrt(0.00255) ≈ 0.050497
        // z ≈ 0.1/0.050497 ≈ 1.9803
        let t = two_proportion_z_test(20, 100, 10, 100, Tails::TwoSided).unwrap();
        assert!((t.z - 1.9803).abs() < 1e-3, "z={}", t.z);
        assert!((t.p - 0.0477).abs() < 1e-3, "p={}", t.p);
    }
}
