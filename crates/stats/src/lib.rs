//! Statistical primitives used throughout manic-rs.
//!
//! The paper's inference and validation pipelines rely on a small set of
//! classical statistics: Student's t-test (level-shift significance, §4.1;
//! NDT throughput comparison, §5.3), the binomial proportion test (loss-rate
//! validation, §5.1), Huber's robust weight function (outlier handling in the
//! level-shift detector, §4.1), CUSUM change-point scanning (§4.1), and
//! autocorrelation (§4.2). This crate implements them from scratch with no
//! dependencies, so every other crate can share one vetted implementation.
//!
//! All routines operate on `f64` slices and are deterministic.

// Guards of the form `!(x > 0.0)` are NaN-aware on purpose: a NaN
// variance or weight sum must take the degenerate branch.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod acf;
pub mod binomial;
pub mod cusum;
pub mod describe;
pub mod huber;
pub mod regression;
pub mod sliding;
pub mod special;
pub mod ttest;

pub use acf::{autocorrelation, autocovariance, pearson};
pub use binomial::{two_proportion_z_test, ProportionTest};
pub use cusum::{cusum_scan, ChangePoint};
pub use describe::{ecdf, mean, median, quantile, variance, Summary};
pub use huber::{huber_mean, huber_weight};
pub use regression::{ols, OlsFit};
pub use sliding::SlidingMedian;
pub use ttest::{one_sample_t, two_sample_t, welch_t, TTest, Tails};
