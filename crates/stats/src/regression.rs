//! Ordinary least squares on (x, y) pairs.
//!
//! Used for trend extraction in the longitudinal analysis (§6.2's "patterns
//! of rising and declining congestion") and as a helper in tests.

/// Result of a simple linear regression y = intercept + slope * x.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlsFit {
    pub slope: f64,
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fit a line by ordinary least squares. Returns `None` when fewer than two
/// points are given or all x values coincide.
pub fn ols(xs: &[f64], ys: &[f64]) -> Option<OlsFit> {
    assert_eq!(xs.len(), ys.len(), "ols requires equal-length inputs");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    if !(sxx > 0.0) {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy > 0.0 { (sxy * sxy) / (sxx * syy) } else { 1.0 };
    Some(OlsFit { slope, intercept, r2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept + 2.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.5 * x + 10.0 + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 0.5).abs() < 0.01);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ols(&[1.0], &[2.0]).is_none());
        assert!(ols(&[2.0, 2.0], &[1.0, 3.0]).is_none());
    }
}
