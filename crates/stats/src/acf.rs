//! Autocovariance and autocorrelation.
//!
//! §4.2's method is built on the idea of day-over-day self-similarity at a
//! 24-hour lag. While the production algorithm counts elevated intervals
//! rather than computing a literal ACF, the ACF at the diurnal lag is a
//! useful diagnostic (and is exercised by the §7 return-path correlation
//! extension), so we provide the classical estimators here.

use crate::describe::mean;

/// Biased (1/n-normalized) sample autocovariance at lag `k`.
///
/// Returns NaN when `k >= xs.len()`.
pub fn autocovariance(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if k >= n {
        return f64::NAN;
    }
    let m = mean(xs);
    let mut s = 0.0;
    for i in 0..n - k {
        s += (xs[i] - m) * (xs[i + k] - m);
    }
    s / n as f64
}

/// Sample autocorrelation at lag `k` (autocovariance normalized by lag 0).
///
/// Returns NaN for a constant series (zero variance) or when `k >= xs.len()`.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let c0 = autocovariance(xs, 0);
    if !(c0 > 0.0) {
        return f64::NAN;
    }
    autocovariance(xs, k) / c0
}

/// Pearson correlation between two equal-length series.
///
/// §7 proposes "a simple correlation between two TSLP time-series" as an
/// indicator that return traffic from two targets shared a congested path.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "pearson requires equal lengths");
    let n = a.len();
    if n < 2 {
        return f64::NAN;
    }
    let ma = mean(a);
    let mb = mean(b);
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for i in 0..n {
        let xa = a[i] - ma;
        let xb = b[i] - mb;
        num += xa * xb;
        da += xa * xa;
        db += xb * xb;
    }
    if !(da > 0.0) || !(db > 0.0) {
        return f64::NAN;
    }
    num / (da.sqrt() * db.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_zero_is_one() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.7).sin()).collect();
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn periodic_signal_correlates_at_period() {
        // Period-24 square-ish wave: strong ACF at lag 24, weak at lag 12.
        let xs: Vec<f64> = (0..24 * 20)
            .map(|i| if (i % 24) < 8 { 10.0 } else { 0.0 })
            .collect();
        let r24 = autocorrelation(&xs, 24);
        let r12 = autocorrelation(&xs, 12);
        assert!(r24 > 0.9, "r24={r24}");
        assert!(r12 < r24 - 0.5, "r12={r12}");
    }

    #[test]
    fn constant_series_is_nan() {
        assert!(autocorrelation(&[3.0; 10], 1).is_nan());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let a: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        let c: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let a: Vec<f64> = (0..1000).map(|i| (i * 2654435761u64 % 1000) as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| ((i + 500) * 40503 % 997) as f64).collect();
        assert!(pearson(&a, &b).abs() < 0.2);
    }
}
