//! Property-based tests for manic-stats invariants.

use manic_stats::special::{inc_beta, normal_cdf, student_t_cdf};
use manic_stats::ttest::Tails;
use manic_stats::*;
use proptest::prelude::*;

fn finite_vec(min_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6f64, min_len..64)
}

proptest! {
    #[test]
    fn pvalues_in_unit_interval(a in finite_vec(2), b in finite_vec(2)) {
        if let Some(t) = two_sample_t(&a, &b, Tails::TwoSided) {
            prop_assert!((0.0..=1.0).contains(&t.p), "p={}", t.p);
        }
        if let Some(t) = welch_t(&a, &b, Tails::TwoSided) {
            prop_assert!((0.0..=1.0).contains(&t.p), "p={}", t.p);
        }
    }

    #[test]
    fn ttest_symmetric_in_arguments(a in finite_vec(2), b in finite_vec(2)) {
        let ab = two_sample_t(&a, &b, Tails::TwoSided);
        let ba = two_sample_t(&b, &a, Tails::TwoSided);
        match (ab, ba) {
            (Some(x), Some(y)) => {
                prop_assert!((x.t + y.t).abs() < 1e-9 * (1.0 + x.t.abs()));
                prop_assert!((x.p - y.p).abs() < 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric None"),
        }
    }

    #[test]
    fn quantile_within_range(xs in finite_vec(1), q in 0.0f64..=1.0) {
        let v = quantile(&xs, q);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn quantile_monotone_in_q(xs in finite_vec(2), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn cdfs_monotone(z1 in -10.0f64..10.0, z2 in -10.0f64..10.0, df in 1.0f64..200.0) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!(student_t_cdf(lo, df) <= student_t_cdf(hi, df) + 1e-12);
    }

    #[test]
    fn inc_beta_unit_range(a in 0.1f64..50.0, b in 0.1f64..50.0, x in 0.0f64..=1.0) {
        let v = inc_beta(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn huber_mean_between_min_and_max(xs in finite_vec(1), sigma in 0.0f64..100.0, p in 0.1f64..10.0) {
        let m = huber_mean(&xs, sigma, p);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6, "m={m} not in [{lo},{hi}]");
    }

    #[test]
    fn cusum_detects_large_planted_shift(
        base in -100.0f64..100.0,
        delta in 10.0f64..100.0,
        n1 in 10usize..40,
        n2 in 10usize..40,
    ) {
        let xs: Vec<f64> = (0..n1)
            .map(|i| base + (i % 3) as f64 * 0.01)
            .chain((0..n2).map(|i| base + delta + (i % 3) as f64 * 0.01))
            .collect();
        let cp = cusum_scan(&xs, None).expect("series long enough");
        prop_assert!((cp.index as i64 - n1 as i64).abs() <= 1);
        prop_assert!((cp.delta() - delta).abs() < delta * 0.2);
    }

    #[test]
    fn proportion_test_p_in_unit_interval(
        s1 in 0u64..500, n1 in 1u64..500,
        s2 in 0u64..500, n2 in 1u64..500,
    ) {
        let s1 = s1.min(n1);
        let s2 = s2.min(n2);
        if let Some(t) = two_proportion_z_test(s1, n1, s2, n2, Tails::TwoSided) {
            prop_assert!((0.0..=1.0).contains(&t.p));
        }
    }

    #[test]
    fn autocorrelation_bounded(xs in finite_vec(3), k in 0usize..16) {
        let k = k % xs.len();
        let r = autocorrelation(&xs, k);
        if !r.is_nan() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r={r}");
        }
    }
}
