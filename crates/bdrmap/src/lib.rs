//! Border mapping: inferring the interdomain links of the network hosting a
//! vantage point, at IP-link granularity.
//!
//! This is a from-scratch implementation of the role bdrmap [Luckie et al.,
//! IMC 2016] plays in the paper's system (§3.2). Inputs are exactly the
//! production inputs: traceroutes from the VP toward every routed prefix, a
//! prefix-to-AS table, AS relationships, an IXP prefix list, and the sibling
//! set of the host network; alias resolution (Ally) is consulted through a
//! caller-supplied oracle so the algorithm itself stays a pure function of
//! measurements.
//!
//! The central difficulty the heuristics address: the address a far border
//! router answers from frequently belongs to the *near* network, because
//! interdomain /30s are numbered from one side's space (the provider's, by
//! convention). A naive "last hop with a host-network address" rule
//! therefore overshoots the border by one hop. See [`infer::infer`] for the rules.

pub mod annotate;
pub mod farlink;
pub mod infer;

pub use annotate::{annotate, HopAnnotation, HopOwner};
pub use farlink::{infer_far_links, FarLink};
pub use infer::{infer, AliasOracle, BdrmapResult, InferredLink};
