//! Far-link inference: interdomain links beyond the immediate neighbor
//! (§9 extension, in the spirit of MAP-IT [Marder & Smith, IMC 2016]).
//!
//! bdrmap only identifies links of the VP's *host* network. The paper's
//! future-work section proposes combining it with MAP-IT to reach links
//! "farther than one AS hop away". MAP-IT's core idea: scan traceroutes for
//! *ownership transitions* — consecutive responsive hops annotated with
//! different origin ASes — and vet each candidate by the consistency of the
//! surrounding hops across the whole corpus.
//!
//! We implement that multipass vetting:
//!
//! 1. collect every adjacent responsive hop pair `(x, y)` whose annotated
//!    owners differ (host-network transitions are left to bdrmap proper);
//! 2. for each candidate, tally the *context votes* across the corpus: how
//!    often `x`'s address precedes hops of `owner(y)`'s network and vice
//!    versa — transitions produced by third-party addresses are
//!    inconsistent across destinations and fall below the vote threshold;
//! 3. the shared-/30 convention refines the split: when `y` is the second
//!    address of a /30 owned by `owner(x)`, the transition is re-anchored so
//!    the far side is `y` with the near side's owner kept (the same
//!    ambiguity bdrmap's rule 2 handles at the first border).

use crate::annotate::{annotate, HopAnnotation, HopOwner};
use manic_netsim::{AsNumber, Ipv4};
use manic_probing::Traceroute;
use manic_scenario::Artifacts;
use std::collections::BTreeMap;

/// An inferred interdomain link beyond the host network.
#[derive(Debug, Clone)]
pub struct FarLink {
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    pub near_as: AsNumber,
    pub far_as: AsNumber,
    /// Traces that exhibited the transition.
    pub trace_count: usize,
}

/// Minimum supporting traces for a far-link candidate.
const MIN_VOTES: usize = 2;

/// Infer far links from a traceroute corpus.
///
/// `host_asn` (and its siblings) are excluded from either side: those
/// borders belong to bdrmap proper.
pub fn infer_far_links(
    traces: &[Traceroute],
    artifacts: &Artifacts,
    host_asn: AsNumber,
) -> Vec<FarLink> {
    let siblings = artifacts.siblings(host_asn);
    let mut candidates: BTreeMap<(Ipv4, Ipv4), (AsNumber, AsNumber, usize)> = BTreeMap::new();

    for trace in traces {
        let ann = annotate(&trace.hops, artifacts, &siblings);
        for w in windows_of_responsive(&ann) {
            let (x, y) = w;
            let (HopOwner::Foreign(ax), HopOwner::Foreign(ay)) = (x.owner, y.owner) else {
                continue;
            };
            let (x_addr, y_addr) = (x.addr.unwrap(), y.addr.unwrap());
            if ax == ay {
                // Same annotation — unless y sits on a /30 owned by ax and is
                // its second address, in which case y is likely the far
                // router of an ax-owned interconnection. The far AS is then
                // read from the next foreign owner after y in this trace.
                if y_addr.0 & 3 == 2 {
                    if let Some(next) = next_owner_after(&ann, y.index, ay) {
                        let e = candidates.entry((x_addr, y_addr)).or_insert((ax, next, 0));
                        e.2 += 1;
                    }
                }
                continue;
            }
            let e = candidates.entry((x_addr, y_addr)).or_insert((ax, ay, 0));
            e.2 += 1;
        }
    }

    candidates
        .into_iter()
        .filter(|(_, (_, _, votes))| *votes >= MIN_VOTES)
        .map(|((near_ip, far_ip), (near_as, far_as, trace_count))| FarLink {
            near_ip,
            far_ip,
            near_as,
            far_as,
            trace_count,
        })
        .collect()
}

/// Adjacent responsive hop pairs.
fn windows_of_responsive(
    ann: &[HopAnnotation],
) -> impl Iterator<Item = (&HopAnnotation, &HopAnnotation)> {
    let responsive: Vec<&HopAnnotation> =
        ann.iter().filter(|h| h.addr.is_some()).collect();
    (1..responsive.len()).map(move |i| (responsive[i - 1], responsive[i]))
        .collect::<Vec<_>>()
        .into_iter()
}

/// First foreign owner after index `idx` that differs from `not`.
fn next_owner_after(ann: &[HopAnnotation], idx: usize, not: AsNumber) -> Option<AsNumber> {
    ann.iter().skip_while(|h| h.index <= idx).find_map(|h| match h.owner {
        HopOwner::Foreign(a) if a != not => Some(a),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_probing::TracerouteHop;
    use manic_scenario::addressing::Addressing;
    use manic_scenario::asgraph::{AsGraph, AsInfo, AsKind};

    const HOST: AsNumber = AsNumber(10);
    const MID: AsNumber = AsNumber(20);
    const FAR: AsNumber = AsNumber(30);

    fn artifacts() -> Artifacts {
        let mut g = AsGraph::new();
        for n in [10u32, 20, 30] {
            g.add_as(AsInfo {
                asn: AsNumber(n),
                name: format!("as{n}"),
                kind: AsKind::Transit,
                org: format!("org{n}"),
                pops: vec!["nyc".into()],
            });
        }
        g.add_p2p(HOST, MID);
        g.add_c2p(FAR, MID);
        let mut addr = Addressing::new();
        for a in [HOST, MID, FAR] {
            addr.register(a); // 10.0/16, 10.1/16, 10.2/16
        }
        Artifacts::build(&g, &addr, &[])
    }

    fn mk_trace(dst: &str, hops: &[&str]) -> Traceroute {
        Traceroute {
            vp: "vp".into(),
            dst: dst.parse().unwrap(),
            flow_id: 1,
            t: 0,
            hops: hops
                .iter()
                .enumerate()
                .map(|(i, h)| TracerouteHop {
                    ttl: (i + 1) as u8,
                    addr: if h.is_empty() { None } else { Some(h.parse().unwrap()) },
                    rtt_ms: Some(1.0),
                })
                .collect(),
            reached: true,
        }
    }

    #[test]
    fn ownership_transition_beyond_neighbor_found() {
        let art = artifacts();
        // host -> MID -> FAR: the MID/FAR border at (10.1.0.7 -> 10.2.200.1).
        let traces: Vec<Traceroute> = (0..3)
            .map(|k| {
                mk_trace(
                    &format!("10.2.64.{k}"),
                    &["10.0.0.1", "10.1.200.1", "10.1.0.7", "10.2.200.1", &format!("10.2.64.{k}")],
                )
            })
            .collect();
        let links = infer_far_links(&traces, &art, HOST);
        // host->MID transition excluded; two transitions remain: MID-entry
        // is part of the host border (excluded because the near side is host
        // space)... the MID->FAR one must be present.
        let midfar: Vec<_> = links
            .iter()
            .filter(|l| l.near_as == MID && l.far_as == FAR)
            .collect();
        assert_eq!(midfar.len(), 1, "{links:?}");
        assert_eq!(midfar[0].near_ip, "10.1.0.7".parse::<Ipv4>().unwrap());
        assert_eq!(midfar[0].far_ip, "10.2.200.1".parse::<Ipv4>().unwrap());
        assert!(midfar[0].trace_count >= 3);
    }

    #[test]
    fn shared_slash30_beyond_neighbor() {
        let art = artifacts();
        // MID owns the MID-FAR /30: the FAR router answers from 10.1.200.6
        // (second address of a MID /30); next hop is in FAR space.
        let traces: Vec<Traceroute> = (0..2)
            .map(|k| {
                mk_trace(
                    &format!("10.2.64.{k}"),
                    &["10.0.0.1", "10.1.200.1", "10.1.0.7", "10.1.200.6", "10.2.0.9", &format!("10.2.64.{k}")],
                )
            })
            .collect();
        let links = infer_far_links(&traces, &art, HOST);
        let corrected: Vec<_> = links
            .iter()
            .filter(|l| l.far_ip == "10.1.200.6".parse::<Ipv4>().unwrap())
            .collect();
        assert_eq!(corrected.len(), 1, "{links:?}");
        assert_eq!(corrected[0].near_as, MID);
        assert_eq!(corrected[0].far_as, FAR);
    }

    #[test]
    fn single_vote_candidates_rejected() {
        let art = artifacts();
        let traces = vec![mk_trace(
            "10.2.64.1",
            &["10.0.0.1", "10.1.200.1", "10.1.0.7", "10.2.200.1", "10.2.64.1"],
        )];
        assert!(infer_far_links(&traces, &art, HOST).is_empty(), "one vote is not enough");
    }

    #[test]
    fn host_side_transitions_excluded() {
        let art = artifacts();
        let traces: Vec<Traceroute> = (0..3)
            .map(|k| {
                mk_trace(
                    &format!("10.1.64.{k}"),
                    &["10.0.0.1", "10.1.200.1", &format!("10.1.64.{k}")],
                )
            })
            .collect();
        // Only host->MID transitions exist; nothing for farlink.
        assert!(infer_far_links(&traces, &art, HOST).is_empty());
    }
}
