//! The border-inference heuristics.
//!
//! For every traceroute from the VP we locate the hop pair that straddles
//! the boundary between the host network and a neighbor. The subtlety (and
//! the reason bdrmap exists) is the *shared /30 problem*: when the host
//! network numbers the interconnection subnet, the neighbor's border router
//! answers from an address announced by the host network, so the naive
//! "last hop with a host address" rule lands one hop past the true border.
//!
//! Rules applied per trace, in order:
//!
//! 1. **IXP rule** — a hop inside an IXP LAN prefix is the far side of an
//!    exchange-based interconnection; the neighbor AS is read from the next
//!    annotated hop beyond the LAN.
//! 2. **Shared-/30 correction** — let `X` be the last host-annotated hop
//!    before the first foreign hop and `Y` the host hop before it. `X` is
//!    re-classified as the *far* side when all of: (a) `X` is the second
//!    address of a /30 (operators assign the first address to the owning
//!    side), (b) alias resolution confirms the /30's first address sits on
//!    `Y`'s router (Ally, §3.2), and (c) `Y`'s address is observed upstream
//!    of exactly one neighbor AS across the whole trace set — i.e. `Y` looks
//!    like a single-purpose border router, not a backbone router that fans
//!    out to many neighbors.
//! 3. **Default rule** — otherwise the border is between `X` and the first
//!    foreign hop.
//!
//! Rule 2's guard (c) can misfire on a backbone router that happens to serve
//! a single neighbor; the resulting rare misinference is the "error in our
//! border mapping" confounder the paper itself encounters in §5.1.

use crate::annotate::{annotate, HopAnnotation, HopOwner};
use manic_netsim::{AsNumber, Ipv4};
use manic_probing::Traceroute;
use manic_scenario::Artifacts;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Alias-resolution oracle: `Some(true)` when the two addresses are on one
/// router, `Some(false)` when distinct, `None` when undetermined
/// (unresponsive / rate limited). Backed by [`manic_probing::ally_test`] in
/// the live system and by stubs in unit tests.
pub type AliasOracle<'a> = dyn FnMut(Ipv4, Ipv4) -> Option<bool> + 'a;

/// Relationship of the neighbor to the host network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkRel {
    /// Neighbor sells transit to the host network.
    Provider,
    /// Settlement-free peer.
    Peer,
    /// Neighbor buys transit from the host network.
    Customer,
    Unknown,
}

/// One inferred interdomain link of the host network.
#[derive(Debug, Clone)]
pub struct InferredLink {
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    /// Neighbor network on the far side.
    pub far_as: AsNumber,
    pub rel: LinkRel,
    pub via_ixp: bool,
    /// Destinations whose traces crossed this link (TSLP candidates), with
    /// the TTLs at which near and far responded.
    pub dests: Vec<(Ipv4, u8, u8)>,
    pub trace_count: usize,
}

/// Complete border-mapping output for one VP.
#[derive(Debug, Clone, Default)]
pub struct BdrmapResult {
    pub links: Vec<InferredLink>,
    /// destination address -> (near_ip, far_ip) of the link its trace crossed.
    pub dest_link: HashMap<Ipv4, (Ipv4, Ipv4)>,
}

impl BdrmapResult {
    /// Links to a specific neighbor.
    pub fn links_to(&self, asn: AsNumber) -> Vec<&InferredLink> {
        self.links.iter().filter(|l| l.far_as == asn).collect()
    }

    /// All neighbor ASes with at least one link.
    pub fn neighbors(&self) -> BTreeSet<AsNumber> {
        self.links.iter().map(|l| l.far_as).collect()
    }
}

/// Border candidate found in one trace.
struct TraceBorder {
    near: Ipv4,
    near_ttl: u8,
    far: Ipv4,
    far_ttl: u8,
    far_as: AsNumber,
    via_ixp: bool,
}

/// Run border inference over a VP's traceroute corpus.
pub fn infer(
    traces: &[Traceroute],
    artifacts: &Artifacts,
    host_asn: AsNumber,
    alias: &mut AliasOracle,
) -> BdrmapResult {
    let siblings = artifacts.siblings(host_asn);

    // Pass 1: annotate everything and build the "address -> neighbor fanout"
    // statistic for rule 2(c).
    let annotated: Vec<Vec<HopAnnotation>> = traces
        .iter()
        .map(|t| annotate(&t.hops, artifacts, &siblings))
        .collect();
    let mut fanout: HashMap<Ipv4, BTreeSet<AsNumber>> = HashMap::new();
    for ann in &annotated {
        let first_foreign = ann.iter().find_map(|h| match h.owner {
            HopOwner::Foreign(n) => Some(n),
            _ => None,
        });
        let Some(n) = first_foreign else { continue };
        for h in ann {
            match h.owner {
                HopOwner::Host => {
                    if let Some(a) = h.addr {
                        fanout.entry(a).or_default().insert(n);
                    }
                }
                HopOwner::Foreign(_) | HopOwner::Ixp => break,
                HopOwner::Unknown => {}
            }
        }
    }
    let single_neighbor =
        |a: Ipv4| fanout.get(&a).map(|s| s.len() == 1).unwrap_or(false);

    // Pass 2: per-trace border location.
    let mut agg: BTreeMap<(Ipv4, Ipv4), InferredLink> = BTreeMap::new();
    let mut dest_link = HashMap::new();
    let mut alias_cache: HashMap<(Ipv4, Ipv4), Option<bool>> = HashMap::new();
    for (trace, ann) in traces.iter().zip(&annotated) {
        let Some(border) = find_border(ann, &single_neighbor, alias, &mut alias_cache) else {
            continue;
        };
        let rel = relationship(artifacts, host_asn, border.far_as);
        let entry = agg
            .entry((border.near, border.far))
            .or_insert_with(|| InferredLink {
                near_ip: border.near,
                far_ip: border.far,
                far_as: border.far_as,
                rel,
                via_ixp: border.via_ixp,
                dests: Vec::new(),
                trace_count: 0,
            });
        entry.trace_count += 1;
        if !entry.dests.iter().any(|(d, _, _)| *d == trace.dst) {
            entry.dests.push((trace.dst, border.near_ttl, border.far_ttl));
        }
        dest_link.insert(trace.dst, (border.near, border.far));
    }

    BdrmapResult { links: agg.into_values().collect(), dest_link }
}

fn relationship(artifacts: &Artifacts, host: AsNumber, neighbor: AsNumber) -> LinkRel {
    if artifacts.is_customer_of(host, neighbor) {
        LinkRel::Provider
    } else if artifacts.is_customer_of(neighbor, host) {
        LinkRel::Customer
    } else if artifacts.are_peers(host, neighbor) {
        LinkRel::Peer
    } else {
        LinkRel::Unknown
    }
}

/// Locate the border in one annotated trace.
fn find_border(
    ann: &[HopAnnotation],
    single_neighbor: &dyn Fn(Ipv4) -> bool,
    alias: &mut AliasOracle,
    alias_cache: &mut HashMap<(Ipv4, Ipv4), Option<bool>>,
) -> Option<TraceBorder> {
    // First foreign or IXP hop.
    let f_idx = ann
        .iter()
        .position(|h| matches!(h.owner, HopOwner::Foreign(_) | HopOwner::Ixp))?;
    // Last responsive host hop before it.
    let x_idx = ann[..f_idx]
        .iter()
        .rposition(|h| h.owner == HopOwner::Host && h.addr.is_some())?;
    let x = &ann[x_idx];
    let x_addr = x.addr.expect("responsive by construction");
    let f = &ann[f_idx];

    // Rule 1: IXP crossing.
    if f.owner == HopOwner::Ixp {
        let far_as = ann[f_idx + 1..].iter().find_map(|h| match h.owner {
            HopOwner::Foreign(n) => Some(n),
            _ => None,
        })?;
        return Some(TraceBorder {
            near: x_addr,
            near_ttl: x.ttl,
            far: f.addr?,
            far_ttl: f.ttl,
            far_as,
            via_ixp: true,
        });
    }
    let HopOwner::Foreign(n) = f.owner else { unreachable!() };

    // Rule 2: shared-/30 correction.
    if let Some(y_idx) = ann[..x_idx]
        .iter()
        .rposition(|h| h.owner == HopOwner::Host && h.addr.is_some())
    {
        let y = &ann[y_idx];
        let y_addr = y.addr.expect("responsive");
        let is_second_of_slash30 = x_addr.0 & 3 == 2;
        if is_second_of_slash30 && single_neighbor(y_addr) {
            let mate = Ipv4(x_addr.0 - 1);
            // Cache only determinate verdicts: an unanswered Ally test (lost
            // probes, rate limiting) is retried the next time the candidate
            // appears rather than condemning the correction for the whole
            // corpus.
            let verdict = match alias_cache.get(&(y_addr, mate)) {
                Some(v) => *v,
                None => {
                    let v = alias(y_addr, mate);
                    if v.is_some() {
                        alias_cache.insert((y_addr, mate), v);
                    }
                    v
                }
            };
            if verdict == Some(true) {
                return Some(TraceBorder {
                    near: y_addr,
                    near_ttl: y.ttl,
                    far: x_addr,
                    far_ttl: x.ttl,
                    far_as: n,
                    via_ixp: false,
                });
            }
        }
    }

    // Rule 3: default.
    Some(TraceBorder {
        near: x_addr,
        near_ttl: x.ttl,
        far: f.addr?,
        far_ttl: f.ttl,
        far_as: n,
        via_ixp: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_probing::TracerouteHop;
    use manic_scenario::addressing::Addressing;
    use manic_scenario::asgraph::{AsGraph, AsInfo, AsKind};

    const HOST: AsNumber = AsNumber(10);
    const NEIGH: AsNumber = AsNumber(20);
    const BEYOND: AsNumber = AsNumber(30);

    fn artifacts() -> Artifacts {
        let mut g = AsGraph::new();
        for n in [10u32, 20, 30] {
            g.add_as(AsInfo {
                asn: AsNumber(n),
                name: format!("as{n}"),
                kind: AsKind::Transit,
                org: format!("org{n}"),
                pops: vec!["nyc".into()],
            });
        }
        g.add_p2p(HOST, NEIGH);
        g.add_c2p(AsNumber(30), AsNumber(20));
        let mut addr = Addressing::new();
        for a in [HOST, NEIGH, BEYOND] {
            addr.register(a); // blocks: 10.0/16, 10.1/16, 10.2/16
        }
        Artifacts::build(&g, &addr, &[(HOST, NEIGH)])
    }

    fn mk_trace(dst: &str, hops: &[&str]) -> Traceroute {
        Traceroute {
            vp: "vp".into(),
            dst: dst.parse().unwrap(),
            flow_id: 1,
            t: 0,
            hops: hops
                .iter()
                .enumerate()
                .map(|(i, h)| TracerouteHop {
                    ttl: (i + 1) as u8,
                    addr: if h.is_empty() { None } else { Some(h.parse().unwrap()) },
                    rtt_ms: Some(1.0),
                })
                .collect(),
            reached: true,
        }
    }

    #[test]
    fn default_rule_neighbor_owned_slash30() {
        // Neighbor owns the /30 (10.1.200.0/30): far hop annotated Foreign.
        let art = artifacts();
        let tr = mk_trace("10.1.64.5", &["10.0.0.1", "10.0.0.9", "10.1.200.1", "10.1.64.5"]);
        let mut no_alias = |_: Ipv4, _: Ipv4| -> Option<bool> { panic!("not consulted") };
        let res = infer(&[tr], &art, HOST, &mut no_alias);
        assert_eq!(res.links.len(), 1);
        let l = &res.links[0];
        assert_eq!(l.near_ip, "10.0.0.9".parse::<Ipv4>().unwrap());
        assert_eq!(l.far_ip, "10.1.200.1".parse::<Ipv4>().unwrap());
        assert_eq!(l.far_as, NEIGH);
        assert_eq!(l.rel, LinkRel::Peer);
        let dst: Ipv4 = "10.1.64.5".parse().unwrap();
        assert_eq!(res.dest_link[&dst], (l.near_ip, l.far_ip));
    }

    #[test]
    fn shared_slash30_correction() {
        // Host owns the /30: hop 3 = 10.0.200.2 is the neighbor's router
        // answering from host space; hop 2 = 10.0.0.9 is the true near side.
        let art = artifacts();
        let traces = vec![
            mk_trace("10.1.64.5", &["10.0.0.1", "10.0.0.9", "10.0.200.2", "10.1.0.7", "10.1.64.5"]),
            mk_trace("10.1.64.6", &["10.0.0.1", "10.0.0.9", "10.0.200.2", "10.1.0.7", "10.1.64.6"]),
        ];
        let mut alias = |a: Ipv4, b: Ipv4| -> Option<bool> {
            // 10.0.200.1 (the mate) aliases with 10.0.0.9 (the near BR).
            Some(a == "10.0.0.9".parse().unwrap() && b == "10.0.200.1".parse().unwrap())
        };
        let res = infer(&traces, &art, HOST, &mut alias);
        assert_eq!(res.links.len(), 1);
        let l = &res.links[0];
        assert_eq!(l.near_ip, "10.0.0.9".parse::<Ipv4>().unwrap());
        assert_eq!(l.far_ip, "10.0.200.2".parse::<Ipv4>().unwrap(), "corrected far side");
        assert_eq!(l.far_as, NEIGH);
        assert_eq!(l.trace_count, 2);
        assert_eq!(l.dests.len(), 2);
    }

    #[test]
    fn correction_blocked_by_multi_neighbor_fanout() {
        // The candidate Y (10.0.0.1) fans out to two different neighbor ASes,
        // so rule 2(c) blocks the correction even though the /30 mate aliases.
        let art = artifacts();
        let traces = vec![
            // X = 10.0.0.6 (== .2 of a /30), upstream Y = 10.0.0.1.
            mk_trace("10.1.64.5", &["10.0.0.1", "10.0.0.6", "10.1.200.1", "10.1.64.5"]),
            // Y also appears before AS30 in another trace.
            mk_trace("10.2.64.5", &["10.0.0.1", "10.0.0.13", "10.2.200.1", "10.2.64.5"]),
        ];
        let mut alias = |_: Ipv4, _: Ipv4| -> Option<bool> { Some(true) };
        let res = infer(&traces, &art, HOST, &mut alias);
        // Both traces use the default rule.
        let to_neigh = res.links_to(NEIGH);
        assert_eq!(to_neigh.len(), 1);
        assert_eq!(to_neigh[0].near_ip, "10.0.0.6".parse::<Ipv4>().unwrap());
        assert_eq!(to_neigh[0].far_ip, "10.1.200.1".parse::<Ipv4>().unwrap());
    }

    #[test]
    fn ixp_rule() {
        let art = artifacts();
        let tr = mk_trace(
            "10.1.64.5",
            &["10.0.0.1", "10.0.0.9", "10.250.0.2", "10.1.0.7", "10.1.64.5"],
        );
        let mut no_alias = |_: Ipv4, _: Ipv4| -> Option<bool> { None };
        let res = infer(&[tr], &art, HOST, &mut no_alias);
        assert_eq!(res.links.len(), 1);
        let l = &res.links[0];
        assert!(l.via_ixp);
        assert_eq!(l.far_ip, "10.250.0.2".parse::<Ipv4>().unwrap());
        assert_eq!(l.far_as, NEIGH, "AS read from beyond the LAN");
    }

    #[test]
    fn unresponsive_hops_skipped() {
        let art = artifacts();
        let tr = mk_trace("10.1.64.5", &["10.0.0.1", "", "10.1.200.1", "10.1.64.5"]);
        let mut no_alias = |_: Ipv4, _: Ipv4| -> Option<bool> { None };
        let res = infer(&[tr], &art, HOST, &mut no_alias);
        assert_eq!(res.links.len(), 1);
        assert_eq!(res.links[0].near_ip, "10.0.0.1".parse::<Ipv4>().unwrap());
        assert_eq!(res.links[0].near_ttl_of(), 1);
    }

    impl InferredLink {
        fn near_ttl_of(&self) -> u8 {
            self.dests[0].1
        }
    }

    #[test]
    fn trace_without_foreign_hops_ignored() {
        let art = artifacts();
        let tr = mk_trace("10.0.64.5", &["10.0.0.1", "10.0.64.5"]);
        let mut no_alias = |_: Ipv4, _: Ipv4| -> Option<bool> { None };
        let res = infer(&[tr], &art, HOST, &mut no_alias);
        assert!(res.links.is_empty());
    }

    #[test]
    fn sibling_hops_count_as_host() {
        // Make AS30 a sibling of HOST (same org) and check hops in its space
        // are treated as host-side.
        let mut g = AsGraph::new();
        for (n, org) in [(10u32, "same"), (20, "other"), (30, "same")] {
            g.add_as(AsInfo {
                asn: AsNumber(n),
                name: format!("as{n}"),
                kind: AsKind::Transit,
                org: org.into(),
                pops: vec!["nyc".into()],
            });
        }
        g.add_p2p(AsNumber(10), AsNumber(20));
        let mut addr = Addressing::new();
        for a in [AsNumber(10), AsNumber(20), AsNumber(30)] {
            addr.register(a);
        }
        let art = Artifacts::build(&g, &addr, &[]);
        // Trace passes through sibling space (10.2/16 = AS30) before the
        // neighbor: border must be at the sibling hop, not earlier.
        let tr = mk_trace("10.1.64.5", &["10.0.0.1", "10.2.0.5", "10.1.200.1", "10.1.64.5"]);
        let mut no_alias = |_: Ipv4, _: Ipv4| -> Option<bool> { None };
        let res = infer(&[tr], &art, AsNumber(10), &mut no_alias);
        assert_eq!(res.links[0].near_ip, "10.2.0.5".parse::<Ipv4>().unwrap());
    }
}
