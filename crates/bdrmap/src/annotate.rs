//! Hop annotation: mapping traceroute hop addresses to owners.

use manic_netsim::{AsNumber, Ipv4};
use manic_scenario::Artifacts;

/// Who an address appears to belong to, per the public tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopOwner {
    /// Announced by the host network or one of its siblings.
    Host,
    /// Announced by another AS.
    Foreign(AsNumber),
    /// Inside an IXP LAN prefix (exchange fabric, no origin AS).
    Ixp,
    /// No covering announcement.
    Unknown,
}

/// A traceroute hop with its ownership annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopAnnotation {
    /// Index within the (responsive and unresponsive) hop list.
    pub index: usize,
    pub ttl: u8,
    /// `None` for an unresponsive hop.
    pub addr: Option<Ipv4>,
    pub owner: HopOwner,
}

/// Annotate the hops of one traceroute against the artifact tables, given
/// the sibling set of the host network.
pub fn annotate(
    hops: &[manic_probing::TracerouteHop],
    artifacts: &Artifacts,
    host_siblings: &[AsNumber],
) -> Vec<HopAnnotation> {
    hops.iter()
        .enumerate()
        .map(|(index, h)| {
            let owner = match h.addr {
                None => HopOwner::Unknown,
                Some(a) => {
                    if artifacts.is_ixp(a) {
                        HopOwner::Ixp
                    } else {
                        match artifacts.origin(a) {
                            Some(asn) if host_siblings.contains(&asn) => HopOwner::Host,
                            Some(asn) => HopOwner::Foreign(asn),
                            None => HopOwner::Unknown,
                        }
                    }
                }
            };
            HopAnnotation { index, ttl: h.ttl, addr: h.addr, owner }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_probing::TracerouteHop;
    use manic_scenario::addressing::Addressing;
    use manic_scenario::asgraph::{AsGraph, AsInfo, AsKind};

    fn artifacts() -> Artifacts {
        let mut g = AsGraph::new();
        for (n, org) in [(10u32, "ho"), (11, "ho"), (20, "fo")] {
            g.add_as(AsInfo {
                asn: AsNumber(n),
                name: format!("as{n}"),
                kind: AsKind::Transit,
                org: org.into(),
                pops: vec!["nyc".into()],
            });
        }
        g.add_c2p(AsNumber(10), AsNumber(20));
        g.add_p2p(AsNumber(10), AsNumber(11));
        let mut addr = Addressing::new();
        for a in [AsNumber(10), AsNumber(11), AsNumber(20)] {
            addr.register(a);
        }
        Artifacts::build(&g, &addr, &[(AsNumber(10), AsNumber(11))])
    }

    fn hop(ttl: u8, addr: Option<&str>) -> TracerouteHop {
        TracerouteHop { ttl, addr: addr.map(|a| a.parse().unwrap()), rtt_ms: Some(1.0) }
    }

    #[test]
    fn owners_resolved() {
        let art = artifacts();
        let hops = vec![
            hop(1, Some("10.0.0.1")),   // host (AS10)
            hop(2, Some("10.1.0.1")),   // sibling (AS11, same org)
            hop(3, Some("10.2.0.1")),   // foreign (AS20)
            hop(4, Some("10.250.0.5")), // IXP LAN
            hop(5, None),               // unresponsive
            hop(6, Some("10.99.0.1")),  // unannounced
        ];
        let ann = annotate(&hops, &art, &[AsNumber(10), AsNumber(11)]);
        assert_eq!(ann[0].owner, HopOwner::Host);
        assert_eq!(ann[1].owner, HopOwner::Host);
        assert_eq!(ann[2].owner, HopOwner::Foreign(AsNumber(20)));
        assert_eq!(ann[3].owner, HopOwner::Ixp);
        assert_eq!(ann[4].owner, HopOwner::Unknown);
        assert_eq!(ann[5].owner, HopOwner::Unknown);
    }
}
