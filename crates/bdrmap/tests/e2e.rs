//! End-to-end border mapping against simulator ground truth.
//!
//! Runs the full §3.2 pipeline on compiled worlds: traceroute to every
//! routed prefix, Ally alias oracle, inference — then scores precision and
//! recall against the world's interdomain-link ground truth.

use manic_bdrmap::infer;
use manic_netsim::{AsNumber, Ipv4, SimState};
use manic_probing::{ally_test, trace, Traceroute, VpHandle};
use manic_scenario::worlds::{toy, toy_asns, us_broadband, us_asns};
use manic_scenario::World;
use std::collections::BTreeSet;

fn vp_of(w: &World, name: &str) -> VpHandle {
    let vp = w.vp(name);
    VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr }
}

/// Trace to every routed prefix (one host destination per prefix).
fn full_cycle(w: &World, vp: &VpHandle, state: &mut SimState) -> Vec<Traceroute> {
    let mut traces = Vec::new();
    for (i, &(_, asn)) in w.artifacts.routed_prefixes().iter().enumerate() {
        if asn == w.vp(&vp.name).asn {
            continue;
        }
        // Two destinations per prefix for flow diversity (parallel links).
        for k in 0..2u32 {
            let dst = w.host_addr(asn, k);
            let flow = (i as u16) * 7 + k as u16;
            traces.push(trace(&w.net, state, vp, dst, flow, 0, 40, 3));
        }
    }
    traces
}

/// Run bdrmap for one VP and score against ground truth.
fn score(w: &World, vp_name: &str) -> (f64, f64, usize) {
    let vp = vp_of(w, vp_name);
    let host = w.vp(vp_name).asn;
    let mut state = SimState::new();
    let traces = full_cycle(w, &vp, &mut state);
    let net = &w.net;
    let mut alias_state = SimState::new();
    let mut oracle = |a: Ipv4, b: Ipv4| ally_test(net, &mut alias_state, &vp, a, b, 10_000);
    let result = infer(&traces, &w.artifacts, host, &mut oracle);

    // Ground truth: links of the host org (incl. siblings) as (near, far)
    // pairs from the host's perspective.
    let siblings = w.artifacts.siblings(host);
    let mut truth: BTreeSet<(Ipv4, Ipv4)> = BTreeSet::new();
    for gt in &w.gt_links {
        for &s in &siblings {
            if gt.touches(s) {
                truth.insert((gt.near_addr_from(s), gt.far_addr_from(s)));
            }
        }
    }
    let inferred: BTreeSet<(Ipv4, Ipv4)> =
        result.links.iter().map(|l| (l.near_ip, l.far_ip)).collect();
    let tp = inferred.intersection(&truth).count();
    let precision = tp as f64 / inferred.len().max(1) as f64;
    // Recall against the links actually visible from this VP: a single VP
    // cannot see links that hot-potato routing never crosses (§7
    // "Incompleteness"), so recall is computed over links observed in paths.
    let visible: BTreeSet<(Ipv4, Ipv4)> = truth
        .iter()
        .filter(|(_, far)| {
            traces
                .iter()
                .any(|t| t.hops.iter().any(|h| h.addr == Some(*far)))
        })
        .cloned()
        .collect();
    let found = inferred.intersection(&visible).count();
    let recall = found as f64 / visible.len().max(1) as f64;
    (precision, recall, result.links.len())
}

#[test]
fn toy_world_bdrmap_is_accurate() {
    let w = toy(1);
    let (precision, recall, n) = score(&w, "acme-nyc");
    assert!(n >= 3, "expected several links, got {n}");
    assert!(precision >= 0.99, "precision {precision} over {n} links");
    assert!(recall >= 0.99, "recall {recall}");
}

#[test]
fn us_world_bdrmap_high_precision_recall() {
    let w = us_broadband(3);
    for vp in ["comcast-chi", "verizon-nyc", "centurylink-den"] {
        let (precision, recall, n) = score(&w, vp);
        assert!(n >= 10, "{vp}: expected many links, got {n}");
        assert!(precision >= 0.90, "{vp}: precision {precision} over {n} links");
        assert!(recall >= 0.90, "{vp}: recall {recall}");
    }
}

#[test]
fn neighbor_relationships_assigned() {
    let w = toy(1);
    let vp = vp_of(&w, "acme-nyc");
    let mut state = SimState::new();
    let traces = full_cycle(&w, &vp, &mut state);
    let net = &w.net;
    let mut alias_state = SimState::new();
    let mut oracle = |a: Ipv4, b: Ipv4| ally_test(net, &mut alias_state, &vp, a, b, 10_000);
    let result = infer(&traces, &w.artifacts, toy_asns::ACME, &mut oracle);
    use manic_bdrmap::infer::LinkRel;
    let rel_of = |asn: AsNumber| {
        result
            .links_to(asn)
            .first()
            .map(|l| l.rel)
            .unwrap_or_else(|| panic!("no link to {asn}"))
    };
    assert_eq!(rel_of(toy_asns::TRANSITCO), LinkRel::Provider);
    assert_eq!(rel_of(toy_asns::CDNCO), LinkRel::Peer);
}

#[test]
fn us_world_ixp_links_flagged() {
    let w = us_broadband(3);
    let vp = vp_of(&w, "rcn-nyc");
    let mut state = SimState::new();
    let traces = full_cycle(&w, &vp, &mut state);
    let net = &w.net;
    let mut alias_state = SimState::new();
    let mut oracle = |a: Ipv4, b: Ipv4| ally_test(net, &mut alias_state, &vp, a, b, 10_000);
    let result = infer(&traces, &w.artifacts, us_asns::RCN, &mut oracle);
    // RCN peers with Google over the IXP.
    let google = result.links_to(us_asns::GOOGLE);
    assert!(!google.is_empty(), "RCN-Google links visible");
    assert!(google.iter().all(|l| l.via_ixp), "flagged as IXP crossings");
}
