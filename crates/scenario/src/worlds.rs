//! Concrete worlds.
//!
//! `toy()` is a five-AS world that compiles in microseconds — tests and the
//! quickstart example use it. `us_broadband()` reproduces the study
//! population of §6: the eight U.S. broadband access ISPs the paper probes,
//! the nine frequently-congested transit/content providers of Table 4, a
//! wider field of peers/providers matching Table 3's "observed" counts, and
//! a 22-month congestion schedule whose arcs follow the qualitative story of
//! Figures 7 and 8 (CenturyLink→Google severe and persistent; AT&T→Tata
//! peaking January 2017; Comcast congestion migrating from Google to
//! Tata/NTT in mid-2017; TWC episodes dissipating by December 2016; RCN
//! nearly clean).

use crate::asgraph::{AsGraph, AsInfo, AsKind};
use crate::compile::{compile, CompileConfig, World};
use crate::intern::{self, metros::*, MetroId};
use crate::schedule::{month_schedule, CongestionEpisode};
use manic_netsim::topo::Direction;
use manic_netsim::traffic::DiurnalDemand;
use manic_netsim::AsNumber;
use std::collections::HashMap;
use std::sync::Arc;

/// Study window: March 2016 (month 2) .. January 2018 (month 24, exclusive).
pub const STUDY_START_MONTH: u32 = 2;
pub const STUDY_END_MONTH: u32 = 24;

/// Baseline (quiet-hours) utilization of the eyeball-bound direction of an
/// access↔provider interdomain link.
pub const EYEBALL_BASE_UTIL: f64 = 0.55;
/// Amplitude outside congestion episodes: peak utilization ~0.85, safely
/// under the queueing onset.
pub const IDLE_AMPLITUDE: f64 = 0.30;

/// Install per-link demand models from a congestion schedule.
///
/// Every interdomain link touching an access ISP gets a diurnal profile in
/// the eyeball-bound direction: idle amplitude outside episodes, the
/// episode-derived amplitude inside them. Links not touching an access ISP
/// (transit mesh, content transit) get mild profiles in both directions.
pub fn install_congestion(world: &mut World, episodes: &[CongestionEpisode]) {
    // Pair -> ordered *metro groups*. `link_fraction` selects whole metros:
    // parallel ports between the same two networks at one exchange point
    // share the same aggregate demand, so they congest (or not) together.
    let mut pair_metros: HashMap<(AsNumber, AsNumber), Vec<String>> = HashMap::new();
    for gt in world.gt_links.iter() {
        let key = pair_key(gt.a_asn, gt.b_asn);
        let metros = pair_metros.entry(key).or_default();
        if !metros.contains(&gt.a_metro) {
            metros.push(gt.a_metro.clone()); // creation (LinkId) order
        }
    }

    for gt in world.gt_links.iter() {
        let a_kind = world.graph.info(gt.a_asn).kind;
        let b_kind = world.graph.info(gt.b_asn).kind;
        // Eyeball side: an access ISP end, if any.
        let eyeball = if a_kind == AsKind::AccessIsp {
            Some(gt.a_asn)
        } else if b_kind == AsKind::AccessIsp {
            Some(gt.b_asn)
        } else {
            None
        };
        let seed_ab = (gt.link.0 as u64) << 1;
        let seed_ba = seed_ab | 1;
        let link_id = gt.link;

        let (load_ab, load_ba) = match eyeball {
            Some(ap) => {
                let tcp = gt.neighbor_of(ap);
                let metros = &pair_metros[&pair_key(ap, tcp)];
                let n = metros.len();
                let rank = metros.iter().position(|m| *m == gt.a_metro).unwrap();
                // Episodes that apply to this pair AND this link's metro rank.
                let applicable: Vec<&CongestionEpisode> = episodes
                    .iter()
                    .filter(|e| {
                        e.ap == ap
                            && e.tcp == tcp
                            && rank < (e.link_fraction * n as f64).ceil() as usize
                    })
                    .collect();
                let monthly = month_schedule(&applicable, EYEBALL_BASE_UTIL, IDLE_AMPLITUDE);
                // The eyeball-bound profile keys its diurnal clock to the
                // AP-side border router's metro timezone.
                let tz = tz_of(world, gt, ap);
                let toward_ap = DiurnalDemand {
                    base: EYEBALL_BASE_UTIL,
                    amplitude: 1.0, // monthly scale IS the amplitude
                    peak_hour: 21.0,
                    peak_width: 2.6,
                    tz_offset_hours: tz,
                    weekend_factor: 1.0,
                    monthly,
                    noise_amp: 0.02,
                    noise_seed: if gt.a_asn == ap { seed_ba } else { seed_ab },
                };
                let away = quiet_profile(tz, if gt.a_asn == ap { seed_ab } else { seed_ba });
                if gt.a_asn == ap {
                    // Toward AP = toward side A = BtoA direction loads.
                    (Some(away), Some(toward_ap))
                } else {
                    (Some(toward_ap), Some(away))
                }
            }
            None => {
                let tz = tz_of(world, gt, gt.a_asn);
                (Some(quiet_profile(tz, seed_ab)), Some(quiet_profile(tz, seed_ba)))
            }
        };

        let link = world.net.topo.link_mut(link_id);
        link.load_ab = load_ab.map(|d| Arc::new(d) as Arc<dyn manic_netsim::LoadModel>);
        link.load_ba = load_ba.map(|d| Arc::new(d) as Arc<dyn manic_netsim::LoadModel>);
    }
}

fn pair_key(a: AsNumber, b: AsNumber) -> (AsNumber, AsNumber) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn tz_of(_world: &World, gt: &crate::compile::GtLink, asn: AsNumber) -> i8 {
    let metro = if gt.a_asn == asn { &gt.a_metro } else { &gt.b_metro };
    crate::compile::metro_info(metro).2
}

fn quiet_profile(tz: i8, seed: u64) -> DiurnalDemand {
    DiurnalDemand {
        base: 0.25,
        amplitude: 0.25,
        peak_hour: 21.0,
        peak_width: 2.6,
        tz_offset_hours: tz,
        weekend_factor: 1.0,
        monthly: manic_netsim::traffic::MonthScale::flat(),
        noise_amp: 0.02,
        noise_seed: seed,
    }
}

/// Direction across a ground-truth link that congests (toward the access ISP).
pub fn congested_direction(world: &World, gt: &crate::compile::GtLink) -> Option<Direction> {
    let a_kind = world.graph.info(gt.a_asn).kind;
    let b_kind = world.graph.info(gt.b_asn).kind;
    if a_kind == AsKind::AccessIsp {
        Some(gt.dir_toward(gt.a_asn))
    } else if b_kind == AsKind::AccessIsp {
        Some(gt.dir_toward(gt.b_asn))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Toy world
// ---------------------------------------------------------------------------

/// Well-known ASNs of the toy world.
pub mod toy_asns {
    use manic_netsim::AsNumber;
    pub const ACME: AsNumber = AsNumber(64500); // access ISP hosting the VP
    pub const TRANSITCO: AsNumber = AsNumber(64501);
    pub const CDNCO: AsNumber = AsNumber(64502); // congested peer
    pub const VIDCO: AsNumber = AsNumber(64503); // uncongested peer
    pub const STUBCO: AsNumber = AsNumber(64510); // customer of ACME
}

/// A five-AS world with one persistently congested peering (ACME↔CDNCO,
/// four hours per evening for the whole study) and one clean peering.
pub fn toy(seed: u64) -> World {
    use toy_asns::*;
    let mut g = AsGraph::new();
    let mk = |asn, name: &str, kind, pops: &[MetroId]| AsInfo {
        asn,
        name: name.into(),
        kind,
        org: format!("org-{name}"),
        pops: intern::codes(pops),
    };
    g.add_as(mk(ACME, "acme", AsKind::AccessIsp, &[NYC, CHI]));
    g.add_as(mk(TRANSITCO, "transitco", AsKind::Transit, &[NYC, CHI, LAX]));
    g.add_as(mk(CDNCO, "cdnco", AsKind::Content, &[NYC, SJC]));
    g.add_as(mk(VIDCO, "vidco", AsKind::Content, &[CHI, SJC]));
    g.add_as(mk(STUBCO, "stubco", AsKind::Stub, &[NYC]));
    g.add_c2p(ACME, TRANSITCO);
    g.add_c2p(CDNCO, TRANSITCO);
    g.add_c2p(VIDCO, TRANSITCO);
    g.add_c2p(STUBCO, ACME);
    g.add_p2p(ACME, CDNCO);
    g.add_p2p(ACME, VIDCO);

    // The toy world is the clean test fixture: no ICMP confounders.
    let cfg = CompileConfig {
        seed,
        max_link_metros: 2,
        parallel_link_prob: 0.0,
        rate_limited_frac: 0.0,
        slow_path_frac: 0.0,
        flaky_frac: 0.0,
        ..Default::default()
    };
    let mut world = compile(g, &[(ACME, NYC.code()), (ACME, CHI.code())], &[], &cfg)
        .expect("builtin toy world compiles");
    let episodes = vec![CongestionEpisode::new(ACME, CDNCO, 0..30, 4.0)];
    install_congestion(&mut world, &episodes);
    world
}

// ---------------------------------------------------------------------------
// US broadband world (§6 study population)
// ---------------------------------------------------------------------------

/// Well-known ASNs of the US-broadband world (real-world numbers, synthetic
/// address space).
pub mod us_asns {
    use manic_netsim::AsNumber;
    // Access ISPs (Table 3 rows).
    pub const COMCAST: AsNumber = AsNumber(7922);
    pub const ATT: AsNumber = AsNumber(7018);
    pub const VERIZON: AsNumber = AsNumber(701);
    pub const CENTURYLINK: AsNumber = AsNumber(209);
    pub const COX: AsNumber = AsNumber(22773);
    pub const CHARTER: AsNumber = AsNumber(20115);
    pub const TWC: AsNumber = AsNumber(20001);
    pub const TWC_SIBLING: AsNumber = AsNumber(11351); // Road Runner, same org
    pub const RCN: AsNumber = AsNumber(6079);
    // Frequently congested T&CPs (Table 4 rows).
    pub const GOOGLE: AsNumber = AsNumber(15169);
    pub const TATA: AsNumber = AsNumber(6453);
    pub const NTT: AsNumber = AsNumber(2914);
    pub const XO: AsNumber = AsNumber(2828);
    pub const NETFLIX: AsNumber = AsNumber(2906);
    pub const LEVEL3: AsNumber = AsNumber(3356);
    pub const VODAFONE: AsNumber = AsNumber(1273);
    pub const TELIA: AsNumber = AsNumber(1299);
    pub const ZAYO: AsNumber = AsNumber(6461);
    pub const COGENT: AsNumber = AsNumber(174);
}

struct UsSpec {
    graph: AsGraph,
    /// The eight US access ISPs (Table 3 order is provided by
    /// [`us_access_isps`]; this list follows construction order).
    #[allow(dead_code)]
    aps: Vec<AsNumber>,
    /// Every transit/content provider in the world.
    #[allow(dead_code)]
    tcps: Vec<AsNumber>,
}

fn us_graph() -> UsSpec {
    use us_asns::*;
    let mut g = AsGraph::new();
    let mk = |asn: AsNumber, name: &str, kind, org: &str, pops: &[MetroId]| AsInfo {
        asn,
        name: name.into(),
        kind,
        org: org.into(),
        pops: intern::codes(pops),
    };

    // --- Access ISPs ---
    let aps: Vec<(AsNumber, &str, &[MetroId])> = vec![
        (COMCAST, "comcast", &[CHI, NYC, ASH, ATL, DFW, DEN, SEA, SJC]),
        (ATT, "att", &[DFW, CHI, LAX, ATL, NYC, HOU, SJC]),
        (VERIZON, "verizon", &[NYC, ASH, CHI, DFW, LAX, BOS]),
        (CENTURYLINK, "centurylink", &[DEN, SEA, PHX, CHI, DFW]),
        (COX, "cox", &[PHX, ATL, ASH, LAX]),
        (CHARTER, "charter", &[LAX, DEN, ATL, NYC]),
        (TWC, "twc", &[NYC, LAX, DFW, CHI]),
        (RCN, "rcn", &[NYC, BOS, CHI]),
    ];
    for (asn, name, pops) in &aps {
        g.add_as(mk(*asn, name, AsKind::AccessIsp, name, pops));
    }
    // TWC sibling AS (same org — exercises the §3.2 sibling handling).
    g.add_as(mk(TWC_SIBLING, "twc-rr", AsKind::AccessIsp, "twc", &[NYC, CHI]));

    // --- Transit providers ---
    let tier1: Vec<(AsNumber, &str, &[MetroId])> = vec![
        (LEVEL3, "level3", &[DEN, CHI, NYC, ASH, ATL, DFW, LAX, SJC, SEA]),
        (TATA, "tata", &[NYC, CHI, ASH, LAX, SJC]),
        (NTT, "ntt", &[SJC, SEA, CHI, NYC, ASH, DFW]),
        (TELIA, "telia", &[NYC, CHI, ASH, LON]),
        (COGENT, "cogent", &[ASH, CHI, DFW, LAX, NYC]),
        (VODAFONE, "vodafone", &[NYC, ASH, LON]),
        (AsNumber(1239), "sprint", &[ASH, CHI, DFW, SEA]),
        (AsNumber(3320), "dtag", &[NYC, FRA]),
        (AsNumber(5511), "orange", &[NYC, LON]),
        (AsNumber(6762), "seabone", &[NYC, MIA]),
    ];
    let tier2: Vec<(AsNumber, &str, &[MetroId])> = vec![
        (XO, "xo", &[NYC, CHI, DFW, LAX, ASH]),
        (ZAYO, "zayo", &[DEN, CHI, NYC, SEA, LAX]),
        (AsNumber(3257), "gtt", &[NYC, ASH, CHI]),
        (AsNumber(6939), "hurricane", &[SJC, CHI, ASH]),
        (AsNumber(4323), "twtelecom", &[DEN, DFW, ATL]),
        (AsNumber(7029), "windstream", &[ATL, DFW]),
        (AsNumber(3491), "pccw", &[SJC, LAX]),
    ];
    for (asn, name, pops) in tier1.iter().chain(&tier2) {
        g.add_as(mk(*asn, name, AsKind::Transit, name, pops));
    }

    // --- Content providers ---
    let content: Vec<(AsNumber, &str, &[MetroId])> = vec![
        (GOOGLE, "google", &[SJC, NYC, CHI, ASH, ATL, DFW, LAX, SEA]),
        (NETFLIX, "netflix", &[SJC, ASH, CHI, LAX, NYC]),
        (AsNumber(20940), "akamai", &[NYC, CHI, ASH, LAX]),
        (AsNumber(54113), "fastly", &[SJC, NYC, CHI]),
        (AsNumber(13335), "cloudflare", &[SJC, ASH, CHI]),
        (AsNumber(16509), "amazon", &[ASH, SJC, CHI, DFW]),
        (AsNumber(8075), "microsoft", &[ASH, CHI, SJC]),
        (AsNumber(714), "apple", &[SJC, ASH]),
        (AsNumber(32934), "facebook", &[ASH, SJC, CHI]),
        (AsNumber(22822), "limelight", &[PHX, CHI, NYC]),
        (AsNumber(15133), "edgecast", &[LAX, NYC]),
        (AsNumber(10310), "yahoo", &[SJC, ASH]),
        (AsNumber(46489), "twitch", &[SJC, NYC]),
        (AsNumber(32590), "valve", &[SEA, ASH]),
        (AsNumber(19679), "dropbox", &[SJC, NYC]),
    ];
    for (asn, name, pops) in &content {
        g.add_as(mk(*asn, name, AsKind::Content, name, pops));
    }

    // --- International access ISPs hosting non-US VPs ---
    let intl: Vec<(AsNumber, &str, &[MetroId])> = vec![
        (AsNumber(2856), "bt", &[LON]),
        (AsNumber(5089), "virgin", &[LON]),
        (AsNumber(1136), "kpn", &[AMS]),
    ];
    for (asn, name, pops) in &intl {
        g.add_as(mk(*asn, name, AsKind::AccessIsp, name, pops));
    }

    // --- Stub customers ---
    let stub_parents = [COMCAST, COMCAST, ATT, ATT, VERIZON, COX, CHARTER, TWC, RCN,
        CENTURYLINK, LEVEL3, TATA, NTT, COGENT, XO];
    let mut stubs = Vec::new();
    for (i, &parent) in stub_parents.iter().enumerate() {
        let asn = AsNumber(64600 + i as u32);
        let parent_pop = intern::intern_metro(&g.info(parent).pops[0])
            .expect("parent pops are interned metros");
        g.add_as(mk(asn, &format!("stub{i}"), AsKind::Stub, &format!("stub{i}"), &[parent_pop]));
        stubs.push((asn, parent));
    }

    // --- Relationships ---
    // Tier-1 full mesh peering.
    for (i, (a, ..)) in tier1.iter().enumerate() {
        for (b, ..) in tier1.iter().skip(i + 1) {
            g.add_p2p(*a, *b);
        }
    }
    // Tier-2 transits buy from two tier-1s (spread deterministically).
    for (i, (a, ..)) in tier2.iter().enumerate() {
        g.add_c2p(*a, tier1[i % tier1.len()].0);
        g.add_c2p(*a, tier1[(i + 3) % tier1.len()].0);
        // And peer with each other sparsely.
        if i + 1 < tier2.len() {
            g.add_p2p(*a, tier2[i + 1].0);
        }
    }
    // Content buys transit from two providers and peers with tier1 sparsely.
    for (i, (a, ..)) in content.iter().enumerate() {
        g.add_c2p(*a, tier1[i % tier1.len()].0);
        g.add_c2p(*a, tier2[i % tier2.len()].0);
    }

    // Access ISPs: transit + peering fabrics sized to Table 3's observed
    // peer/provider counts. Transit providers are tier-1s only: if an access
    // ISP bought transit from a tier-2, every AS upstream of that tier-2
    // would hold a *customer* route to the ISP and (prefer-customer) route
    // replies through it instead of the direct peering — poisoning TSLP's
    // return paths in a way real deployments rarely see. XO and Zayo
    // interconnect with the ISPs as settlement-free peers instead.
    let transits_of: Vec<(AsNumber, Vec<AsNumber>)> = vec![
        (COMCAST, vec![TATA, NTT]),
        (ATT, vec![TATA, LEVEL3]),
        (VERIZON, vec![LEVEL3, VODAFONE]),
        (CENTURYLINK, vec![LEVEL3, TATA]),
        (COX, vec![LEVEL3, NTT]),
        (CHARTER, vec![LEVEL3, COGENT]),
        (TWC, vec![TATA, TELIA]),
        (RCN, vec![LEVEL3, TELIA]),
    ];
    for (ap, ts) in &transits_of {
        for t in ts {
            g.add_c2p(*ap, *t);
        }
    }
    // Peerings: per-AP list of T&CPs (content + transits not already bought
    // from), sized to the Table 3 "observed" column.
    let all_tcps: Vec<AsNumber> = tier1
        .iter()
        .chain(&tier2)
        .map(|(a, ..)| *a)
        .chain(content.iter().map(|(a, ..)| *a))
        .collect();
    let observed: &[(AsNumber, usize)] = &[
        (COMCAST, 34),
        (ATT, 34),
        (VERIZON, 26),
        (CENTURYLINK, 28),
        (COX, 20),
        (CHARTER, 18),
        (TWC, 25),
        (RCN, 19),
    ];
    // The nine frequently congested T&CPs of Table 4 are peered first so
    // every AP interconnects with them; the remainder fills to the observed
    // count.
    let priority = [GOOGLE, TATA, NTT, XO, NETFLIX, LEVEL3, VODAFONE, TELIA, ZAYO];
    for &(ap, count) in observed {
        let already: Vec<AsNumber> = transits_of
            .iter()
            .find(|(a, _)| *a == ap)
            .map(|(_, t)| t.clone())
            .unwrap_or_default();
        let mut added = already.len();
        for &tcp in priority.iter().chain(&all_tcps) {
            if added >= count.min(all_tcps.len()) {
                break;
            }
            if already.contains(&tcp) || g.adjacent(ap, tcp) {
                continue;
            }
            g.add_p2p(ap, tcp);
            added += 1;
        }
    }
    // Sibling AS mirrors a couple of TWC peerings.
    g.add_c2p(TWC_SIBLING, TATA);
    let _ = ZAYO; // peers with the ISPs through the fill loop below
    g.add_p2p(TWC_SIBLING, GOOGLE);

    // International access.
    for (asn, _, _) in &intl {
        g.add_c2p(*asn, TELIA);
        g.add_c2p(*asn, VODAFONE);
        g.add_p2p(*asn, GOOGLE);
    }

    // Stubs.
    for (asn, parent) in &stubs {
        g.add_c2p(*asn, *parent);
    }

    let aps: Vec<AsNumber> = aps.iter().map(|(a, ..)| *a).collect();
    UsSpec { graph: g, aps, tcps: all_tcps }
}

/// The 22-month congestion schedule. Hours are daily overload durations at
/// the episode's plateau; fractions restrict to a subset of the pair's links.
/// The arcs are scripted to reproduce Table 4's ordering and Figure 7/8's
/// temporal stories — see DESIGN.md's experiment index.
pub fn us_schedule() -> Vec<CongestionEpisode> {
    use us_asns::*;
    let e = |ap, tcp, months: std::ops::Range<u32>, hours: f64, frac: f64| {
        CongestionEpisode::new(ap, tcp, months, hours).on_fraction(frac)
    };
    vec![
        // CenturyLink–Google: severe, nearly the whole window (94% target;
        // one idle month keeps it just under total).
        e(CENTURYLINK, GOOGLE, 2..10, 7.0, 1.0),
        e(CENTURYLINK, GOOGLE, 11..24, 7.0, 1.0),
        // AT&T–Tata: long arc peaking Jan 2017 (Fig 8), declining after.
        e(ATT, TATA, 2..12, 4.0, 0.5),
        e(ATT, TATA, 12..15, 8.0, 1.0),
        e(ATT, TATA, 15..22, 3.0, 0.3),
        // Comcast–Tata: light early, heavy in late 2017 (Fig 7). The 0.6
        // fraction keeps the Ashburn link clean — the return path of the
        // Table 2 / Link 2 NDT experiment rides it.
        e(COMCAST, TATA, 2..10, 2.0, 0.33),
        e(COMCAST, TATA, 14..24, 5.0, 0.6),
        // Comcast–NTT rises with Tata in late 2017.
        e(COMCAST, NTT, 15..24, 4.0, 0.6),
        // Comcast–Google: decline, Dec 2016 peak, dissipation by Jul 2017.
        e(COMCAST, GOOGLE, 2..4, 5.0, 0.33),
        e(COMCAST, GOOGLE, 4..8, 2.0, 0.2),
        e(COMCAST, GOOGLE, 8..14, 6.0, 0.33),
        e(COMCAST, GOOGLE, 14..18, 2.0, 0.2),
        // TWC: multiple 2016 episodes, all dissipating by Dec 2016.
        e(TWC, TATA, 2..11, 4.0, 0.6),
        e(TWC, NETFLIX, 2..12, 4.0, 0.6),
        e(TWC, XO, 2..6, 3.0, 0.3),
        e(TWC, TELIA, 3..5, 2.0, 0.3),
        e(TWC, VODAFONE, 5..6, 2.0, 0.25),
        e(TWC, LEVEL3, 5..8, 1.5, 0.25),
        // Verizon–Google: long moderate arc + the Dec 2017 episode of Fig 3.
        e(VERIZON, GOOGLE, 2..18, 4.0, 0.25),
        e(VERIZON, GOOGLE, 20..24, 4.0, 0.5),
        e(VERIZON, NETFLIX, 2..5, 2.5, 0.25),
        e(VERIZON, VODAFONE, 12..14, 2.5, 0.3),
        e(VERIZON, TATA, 4..5, 2.0, 0.25),
        // Cox: Level3 heavy, Netflix moderate (Table 4's Cox column).
        e(COX, LEVEL3, 4..11, 5.0, 0.8),
        e(COX, NETFLIX, 8..17, 4.0, 0.5),
        e(COX, NTT, 10..12, 3.0, 0.3),
        e(COX, GOOGLE, 6..7, 1.5, 0.67),
        e(COX, ZAYO, 12..13, 1.0, 0.25),
        // AT&T remaining arcs.
        e(ATT, GOOGLE, 2..14, 3.0, 0.25),
        e(ATT, XO, 2..9, 4.0, 0.25),
        e(ATT, TELIA, 10..15, 3.0, 0.35),
        e(ATT, NTT, 12..20, 3.0, 0.33),
        e(ATT, LEVEL3, 6..9, 1.5, 0.25),
        e(ATT, NETFLIX, 8..9, 1.5, 0.33),
        // CenturyLink remaining arcs.
        e(CENTURYLINK, NETFLIX, 6..9, 3.0, 0.4),
        e(CENTURYLINK, TATA, 12..14, 3.0, 0.3),
        e(CENTURYLINK, XO, 6..7, 2.5, 1.0),
        e(CENTURYLINK, VODAFONE, 8..10, 2.5, 0.3),
        e(CENTURYLINK, LEVEL3, 9..11, 2.0, 0.25),
        // Comcast small arcs.
        e(COMCAST, XO, 4..12, 3.0, 0.2),
        e(COMCAST, VODAFONE, 9..10, 2.0, 0.25),
        e(COMCAST, TELIA, 11..13, 2.0, 0.25),
        e(COMCAST, LEVEL3, 8..9, 1.5, 0.2),
        e(COMCAST, NETFLIX, 12..13, 1.5, 0.2),
        // Charter.
        e(CHARTER, XO, 8..10, 3.0, 0.3),
        e(CHARTER, NETFLIX, 10..12, 3.0, 0.3),
        e(CHARTER, GOOGLE, 12..13, 2.0, 1.0),
        e(CHARTER, ZAYO, 13..15, 1.0, 0.25),
        // RCN: one real arc (Zayo), a trace of Level3.
        e(RCN, ZAYO, 6..10, 4.0, 0.5),
        e(RCN, LEVEL3, 9..10, 1.0, 0.25),
        // CenturyLink–Cogent: the brief, shallow Dec 2017 episode behind
        // Table 2's Link 3 (36 minutes/day on average, 21 of 45 days). Both
        // metros congest so the VP-visible DFW link carries the signal.
        e(CENTURYLINK, COGENT, 22..24, 0.6, 1.0),
        // Non-US color: BT–Google mild congestion.
        e(AsNumber(2856), GOOGLE, 5..15, 3.0, 0.5),
    ]
}

/// VP placements for the US world: 29 VPs in the 8 US access ISPs (matching
/// §3's December 2017 deployment scale) plus 3 international.
pub fn us_vp_placements() -> Vec<(AsNumber, &'static str)> {
    use us_asns::*;
    let ids: Vec<(AsNumber, MetroId)> = vec![
        (COMCAST, CHI),
        (COMCAST, NYC),
        (COMCAST, ASH),
        (COMCAST, ATL),
        (COMCAST, DFW),
        (COMCAST, DEN),
        (COMCAST, SEA),
        (COMCAST, SJC),
        (ATT, DFW),
        (ATT, CHI),
        (ATT, LAX),
        (ATT, ATL),
        (ATT, NYC),
        (VERIZON, NYC),
        (VERIZON, ASH),
        (VERIZON, CHI),
        (VERIZON, DFW),
        (TWC, NYC),
        (TWC, LAX),
        (TWC, DFW),
        (CHARTER, LAX),
        (CHARTER, DEN),
        (CHARTER, ATL),
        (COX, PHX),
        (COX, ATL),
        (CENTURYLINK, DEN),
        (CENTURYLINK, SEA),
        (RCN, NYC),
        (RCN, BOS),
        (AsNumber(2856), LON),
        (AsNumber(5089), LON),
        (AsNumber(1136), AMS),
    ];
    ids.into_iter().map(|(asn, m)| (asn, m.code())).collect()
}

/// Build the full US-broadband world with its congestion schedule installed.
pub fn us_broadband(seed: u64) -> World {
    use us_asns::*;
    let spec = us_graph();
    let ixp_pairs = [(RCN, GOOGLE), (CHARTER, NETFLIX), (AsNumber(1136), GOOGLE)];
    let cfg = CompileConfig {
        seed,
        // An NDT-server-style destination in Tata at Ashburn: tests from a
        // Comcast Chicago VP cross the (congested) Chicago link on the
        // forward path while download data returns over the (clean) Ashburn
        // link — the paper's Link 2 asymmetry (§5.3).
        secondary_hosts: vec![(TATA, ASH.code().to_string())],
        ..Default::default()
    };
    let mut world = compile(spec.graph, &us_vp_placements(), &ixp_pairs, &cfg)
        .expect("builtin us world compiles");
    install_congestion(&mut world, &us_schedule());
    world
}

/// The eight US access ISPs, in Table 3 order.
pub fn us_access_isps() -> Vec<AsNumber> {
    use us_asns::*;
    vec![CENTURYLINK, ATT, COX, COMCAST, CHARTER, TWC, VERIZON, RCN]
}

/// The nine frequently congested T&CPs, in Table 4 row order.
pub fn table4_tcps() -> Vec<AsNumber> {
    use us_asns::*;
    vec![GOOGLE, TATA, NTT, XO, NETFLIX, LEVEL3, VODAFONE, TELIA, ZAYO]
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_netsim::time::{datetime_to_sim, Date};

    #[test]
    fn toy_world_compiles() {
        let w = toy(1);
        assert_eq!(w.vps.len(), 2);
        assert!(!w.gt_links.is_empty());
        // ACME has links to its transit, two peers, and a customer.
        let acme_links = w.links_of(toy_asns::ACME);
        assert!(acme_links.len() >= 4, "{}", acme_links.len());
    }

    #[test]
    fn toy_congestion_installed_in_eyeball_direction() {
        let w = toy(1);
        let links = w.links_between(toy_asns::ACME, toy_asns::CDNCO);
        assert!(!links.is_empty());
        let gt = links[0];
        let dir = gt.dir_toward(toy_asns::ACME);
        // Peak hour in NYC (UTC-5): 21:00 local = 02:00 UTC next day.
        let peak = datetime_to_sim(Date::new(2016, 6, 8), 2, 0, 0);
        let trough = datetime_to_sim(Date::new(2016, 6, 7), 9, 0, 0);
        let s_peak = w.net.link_state(gt.link, dir, peak);
        let s_trough = w.net.link_state(gt.link, dir, trough);
        assert!(s_peak.utilization >= 1.0, "peak util {}", s_peak.utilization);
        assert!(s_trough.utilization < 0.9);
        assert!(s_peak.queue_ms > 20.0);
        // The clean peer stays under capacity even at peak.
        let clean = w.links_between(toy_asns::ACME, toy_asns::VIDCO)[0];
        let dirc = clean.dir_toward(toy_asns::ACME);
        // vidco link is in chi (UTC-6): 21:00 local = 03:00 UTC.
        let peak_chi = datetime_to_sim(Date::new(2016, 6, 8), 3, 0, 0);
        let s_clean = w.net.link_state(clean.link, dirc, peak_chi);
        assert!(s_clean.utilization < 0.9, "clean util {}", s_clean.utilization);
    }

    #[test]
    fn toy_probes_reach_destinations() {
        let w = toy(1);
        let vp = w.vp("acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let mut st = manic_netsim::SimState::new();
        let status = w.net.send_probe(
            &mut st,
            manic_netsim::ProbeSpec { src: vp.router, src_addr: vp.addr, dst, ttl: 32, flow_id: 7 },
            0,
        );
        assert!(
            matches!(status, manic_netsim::ProbeStatus::EchoReply { .. }),
            "{status:?}"
        );
    }

    #[test]
    fn toy_interdomain_link_visible_in_forward_path() {
        let w = toy(1);
        let vp = w.vp("acme-nyc");
        let dst = w.host_addr(toy_asns::CDNCO, 0);
        let path = w.net.forward_path(vp.router, dst, 7, 0);
        let crossed: Vec<_> = path
            .iter()
            .filter(|h| w.net.topo.link(h.link).kind == manic_netsim::LinkKind::Interdomain)
            .collect();
        assert_eq!(crossed.len(), 1, "one border crossing expected: {path:?}");
        // And it's an ACME-CDNCO link.
        let gt = w
            .gt_links
            .iter()
            .find(|g| g.link == crossed[0].link)
            .expect("link has ground truth");
        assert!(gt.touches(toy_asns::ACME) && gt.touches(toy_asns::CDNCO));
    }

    #[test]
    fn us_world_compiles_with_expected_scale() {
        let w = us_broadband(3);
        assert_eq!(w.vps.len(), 32);
        // Hundreds of interdomain links.
        assert!(w.gt_links.len() > 150, "{} links", w.gt_links.len());
        // Every US AP has many neighbors with links.
        for ap in us_access_isps() {
            let n = w.links_of(ap).len();
            assert!(n >= 15, "{ap} has only {n} links");
        }
        // Comcast-Tata links congest at peak in Dec 2017.
        let links = w.links_between(us_asns::COMCAST, us_asns::TATA);
        assert!(!links.is_empty());
        let gt = links[0];
        let peak = datetime_to_sim(Date::new(2017, 12, 7), 3, 0, 0); // 9pm CST
        let dir = gt.dir_toward(us_asns::COMCAST);
        let s = w.net.link_state(gt.link, dir, peak);
        assert!(s.utilization > 0.95, "util {}", s.utilization);
    }

    #[test]
    fn us_vp_probe_crosses_expected_border() {
        let w = us_broadband(3);
        let vp = w.vp("comcast-chi");
        let dst = w.host_addr(us_asns::GOOGLE, 0);
        let path = w.net.forward_path(vp.router, dst, 11, 0);
        assert!(!path.is_empty());
        let crossed: Vec<_> = path
            .iter()
            .filter(|h| w.net.topo.link(h.link).kind == manic_netsim::LinkKind::Interdomain)
            .collect();
        assert_eq!(crossed.len(), 1, "direct peering crossing: {crossed:?}");
    }

    #[test]
    fn schedule_is_well_formed() {
        for ep in us_schedule() {
            assert!(ep.start_month < ep.end_month);
            assert!(ep.end_month <= 30);
            assert!(ep.link_fraction > 0.0 && ep.link_fraction <= 1.0);
        }
    }
}
#[cfg(test)]
mod secondary_host_tests {
    use super::*;
    use manic_netsim::LinkKind;

    #[test]
    fn tata_secondary_host_reachable_and_asymmetric() {
        let w = us_broadband(3);
        let (addr, router) = w.secondary_host_addr(us_asns::TATA, "ash", 7);
        // Forward path from a Comcast Chicago VP crosses the chi link.
        let vp = w.vp("comcast-chi");
        let fwd = w.net.forward_path(vp.router, addr, 9, 0);
        assert!(!fwd.is_empty());
        assert!(w.net.topo.terminates(fwd.last().unwrap().router, addr));
        let fwd_inter: Vec<_> = fwd
            .iter()
            .filter(|h| w.net.topo.link(h.link).kind == LinkKind::Interdomain)
            .collect();
        assert_eq!(fwd_inter.len(), 1);
        // Reverse path from the Ashburn host crosses a *different* link.
        let rev = w.net.forward_path(router, vp.addr, 9, 0);
        let rev_inter: Vec<_> = rev
            .iter()
            .filter(|h| w.net.topo.link(h.link).kind == LinkKind::Interdomain)
            .collect();
        assert_eq!(rev_inter.len(), 1);
        assert_ne!(
            fwd_inter[0].link, rev_inter[0].link,
            "forward (chi) and reverse (ash) must differ"
        );
    }
}
