//! Internet scenarios for manic-rs.
//!
//! The production system measures the real Internet from vantage points
//! hosted in access ISPs. This crate builds the synthetic equivalent:
//!
//! 1. an **AS-level graph** with business relationships
//!    (customer-to-provider, settlement-free peering, siblings) and address
//!    space ([`asgraph`]);
//! 2. **interdomain routing** over that graph following the Gao-Rexford
//!    conditions — prefer customer routes over peer over provider, export
//!    only valley-free paths ([`bgp`]);
//! 3. a **router-level compilation** into a `manic_netsim::Network`: PoP
//!    backbone meshes, border routers per adjacency and metro, interdomain
//!    /30s, host prefixes, VP hosts, and hot-potato FIBs ([`compile`]);
//! 4. the **input artifacts** the bdrmap algorithm consumes in production —
//!    prefix-to-AS table, AS relationship file, IXP prefix list, sibling
//!    lists, AS-to-organization map ([`artifacts`]);
//! 5. concrete **worlds**: `us_broadband()` mirrors the paper's §6 study
//!    population (8 U.S. access ISPs, the 9 frequently-congested transit and
//!    content providers of Table 4, and a 22-month congestion schedule), and
//!    `toy()` is a minutes-scale world for tests and the quickstart example
//!    ([`worlds`]).

pub mod addressing;
pub mod artifacts;
pub mod asgraph;
pub mod bgp;
pub mod compile;
pub mod intern;
pub mod schedule;
pub mod worlds;

pub use artifacts::Artifacts;
pub use asgraph::{AsGraph, AsInfo, AsKind, RelKind};
pub use intern::MetroId;
pub use bgp::{RouteKind, Routing};
pub use compile::{CompileConfig, CompileError, GtLink, VantagePoint, World};
pub use schedule::{amplitude_for_duration, CongestionEpisode};
