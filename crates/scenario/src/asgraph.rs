//! AS-level graph: autonomous systems, business relationships, organizations.

use manic_netsim::AsNumber;
use std::collections::{BTreeMap, BTreeSet};

/// Role of an AS in the ecosystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Broadband access / eyeball network (hosts VPs).
    AccessIsp,
    /// Transit provider.
    Transit,
    /// Content provider / CDN.
    Content,
    /// Stub customer network (enterprise, small ISP).
    Stub,
    /// Internet exchange point operator (owns the IXP LAN prefix).
    Ixp,
}

/// Static description of one AS.
#[derive(Debug, Clone)]
pub struct AsInfo {
    pub asn: AsNumber,
    pub name: String,
    pub kind: AsKind,
    /// Organization name; siblings share one org.
    pub org: String,
    /// Metro presence (PoP codes like "nyc"); order is stable.
    pub pops: Vec<String>,
}

/// Relationship between two ASes, from the perspective of the *pair*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelKind {
    /// First AS is a customer of the second (c2p).
    CustomerToProvider,
    /// Settlement-free peers.
    PeerToPeer,
}

/// The AS-level world: nodes, edges, and organization grouping.
#[derive(Debug, Clone, Default)]
pub struct AsGraph {
    nodes: BTreeMap<AsNumber, AsInfo>,
    /// Normalized edges: key is (low, high) by ASN; value records the
    /// relationship *as seen from the low-numbered AS*.
    edges: BTreeMap<(AsNumber, AsNumber), EdgeRel>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeRel {
    /// Low-numbered AS is customer of high-numbered.
    LowCustomerOfHigh,
    /// High-numbered AS is customer of low-numbered.
    HighCustomerOfLow,
    Peer,
}

impl AsGraph {
    pub fn new() -> Self {
        AsGraph::default()
    }

    pub fn add_as(&mut self, info: AsInfo) {
        assert!(
            self.nodes.insert(info.asn, info.clone()).is_none(),
            "duplicate AS {}",
            info.asn
        );
    }

    /// Record that `customer` buys transit from `provider`.
    pub fn add_c2p(&mut self, customer: AsNumber, provider: AsNumber) {
        self.add_edge(customer, provider, RelKind::CustomerToProvider);
    }

    /// Record a settlement-free peering between `a` and `b`.
    pub fn add_p2p(&mut self, a: AsNumber, b: AsNumber) {
        self.add_edge(a, b, RelKind::PeerToPeer);
    }

    fn add_edge(&mut self, a: AsNumber, b: AsNumber, rel: RelKind) {
        assert!(self.nodes.contains_key(&a), "unknown AS {a}");
        assert!(self.nodes.contains_key(&b), "unknown AS {b}");
        assert_ne!(a, b, "self edges not allowed");
        let (key, norm) = if a < b {
            (
                (a, b),
                match rel {
                    RelKind::CustomerToProvider => EdgeRel::LowCustomerOfHigh,
                    RelKind::PeerToPeer => EdgeRel::Peer,
                },
            )
        } else {
            (
                (b, a),
                match rel {
                    RelKind::CustomerToProvider => EdgeRel::HighCustomerOfLow,
                    RelKind::PeerToPeer => EdgeRel::Peer,
                },
            )
        };
        assert!(
            self.edges.insert(key, norm).is_none(),
            "duplicate relationship between {} and {}",
            key.0,
            key.1
        );
    }

    pub fn contains(&self, asn: AsNumber) -> bool {
        self.nodes.contains_key(&asn)
    }

    pub fn info(&self, asn: AsNumber) -> &AsInfo {
        &self.nodes[&asn]
    }

    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.nodes.values()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Relationship of `a` to `b`: `Some(CustomerToProvider)` when a buys
    /// from b, `Some(PeerToPeer)` for peers, `None` when not adjacent.
    /// (If b is a's customer, the answer from `rel(b, a)` is c2p.)
    pub fn rel(&self, a: AsNumber, b: AsNumber) -> Option<RelKind> {
        let key = if a < b { (a, b) } else { (b, a) };
        let e = self.edges.get(&key)?;
        Some(match (e, a < b) {
            (EdgeRel::Peer, _) => RelKind::PeerToPeer,
            (EdgeRel::LowCustomerOfHigh, true) | (EdgeRel::HighCustomerOfLow, false) => {
                RelKind::CustomerToProvider
            }
            _ => return None,
        })
    }

    /// True when `a` and `b` are adjacent at the AS level.
    pub fn adjacent(&self, a: AsNumber, b: AsNumber) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.contains_key(&key)
    }

    /// All neighbors of `a`, with the relationship from `a`'s perspective:
    /// the kind is how *a* relates (Customer = a is customer of neighbor).
    pub fn neighbors(&self, a: AsNumber) -> Vec<(AsNumber, Neighborhood)> {
        let mut out = Vec::new();
        for (&(lo, hi), &e) in &self.edges {
            let (other, hood) = if lo == a {
                (
                    hi,
                    match e {
                        EdgeRel::Peer => Neighborhood::Peer,
                        EdgeRel::LowCustomerOfHigh => Neighborhood::Provider,
                        EdgeRel::HighCustomerOfLow => Neighborhood::Customer,
                    },
                )
            } else if hi == a {
                (
                    lo,
                    match e {
                        EdgeRel::Peer => Neighborhood::Peer,
                        EdgeRel::LowCustomerOfHigh => Neighborhood::Customer,
                        EdgeRel::HighCustomerOfLow => Neighborhood::Provider,
                    },
                )
            } else {
                continue;
            };
            out.push((other, hood));
        }
        out
    }

    /// Providers of `a`.
    pub fn providers(&self, a: AsNumber) -> Vec<AsNumber> {
        self.neighbors(a)
            .into_iter()
            .filter(|(_, h)| *h == Neighborhood::Provider)
            .map(|(n, _)| n)
            .collect()
    }

    /// Customers of `a`.
    pub fn customers(&self, a: AsNumber) -> Vec<AsNumber> {
        self.neighbors(a)
            .into_iter()
            .filter(|(_, h)| *h == Neighborhood::Customer)
            .map(|(n, _)| n)
            .collect()
    }

    /// Peers of `a`.
    pub fn peers(&self, a: AsNumber) -> Vec<AsNumber> {
        self.neighbors(a)
            .into_iter()
            .filter(|(_, h)| *h == Neighborhood::Peer)
            .map(|(n, _)| n)
            .collect()
    }

    /// Sibling set of `a`: every AS sharing `a`'s organization (including
    /// `a` itself). Mirrors CAIDA's AS-to-organization grouping (§3.2).
    pub fn siblings(&self, a: AsNumber) -> BTreeSet<AsNumber> {
        let org = &self.info(a).org;
        self.nodes
            .values()
            .filter(|i| &i.org == org)
            .map(|i| i.asn)
            .collect()
    }

    /// All AS-level adjacencies, normalized (low ASN first).
    pub fn adjacencies(&self) -> impl Iterator<Item = (AsNumber, AsNumber, RelKind)> + '_ {
        self.edges.iter().map(|(&(lo, hi), &e)| {
            let rel = match e {
                EdgeRel::Peer => RelKind::PeerToPeer,
                // Normalized view: relationship of lo to hi.
                EdgeRel::LowCustomerOfHigh => RelKind::CustomerToProvider,
                EdgeRel::HighCustomerOfLow => RelKind::CustomerToProvider,
            };
            match e {
                EdgeRel::HighCustomerOfLow => (hi, lo, rel),
                _ => (lo, hi, rel),
            }
        })
    }
}

/// How a neighbor relates to the AS being asked about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighborhood {
    /// Neighbor sells transit to the AS.
    Provider,
    /// Neighbor buys transit from the AS.
    Customer,
    Peer,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asn(n: u32) -> AsNumber {
        AsNumber(n)
    }

    fn info(n: u32, kind: AsKind) -> AsInfo {
        AsInfo {
            asn: asn(n),
            name: format!("as{n}"),
            kind,
            org: format!("org{n}"),
            pops: vec!["nyc".into()],
        }
    }

    fn tiny() -> AsGraph {
        let mut g = AsGraph::new();
        g.add_as(info(100, AsKind::Transit));
        g.add_as(info(200, AsKind::AccessIsp));
        g.add_as(info(300, AsKind::Content));
        g.add_c2p(asn(200), asn(100)); // access buys from transit
        g.add_p2p(asn(200), asn(300)); // access peers with content
        g.add_c2p(asn(300), asn(100)); // content buys from transit
        g
    }

    #[test]
    fn rel_is_directional() {
        let g = tiny();
        assert_eq!(g.rel(asn(200), asn(100)), Some(RelKind::CustomerToProvider));
        assert_eq!(g.rel(asn(100), asn(200)), None); // 100 is not a customer of 200
        assert_eq!(g.rel(asn(200), asn(300)), Some(RelKind::PeerToPeer));
        assert_eq!(g.rel(asn(300), asn(200)), Some(RelKind::PeerToPeer));
        assert!(g.adjacent(asn(100), asn(300)));
        assert!(!g.adjacent(asn(100), asn(100)));
    }

    #[test]
    fn neighborhood_views() {
        let g = tiny();
        assert_eq!(g.providers(asn(200)), vec![asn(100)]);
        assert_eq!(g.peers(asn(200)), vec![asn(300)]);
        let mut custs = g.customers(asn(100));
        custs.sort();
        assert_eq!(custs, vec![asn(200), asn(300)]);
    }

    #[test]
    fn siblings_by_org() {
        let mut g = tiny();
        let mut twin = info(201, AsKind::AccessIsp);
        twin.org = "org200".into();
        g.add_as(twin);
        let sib = g.siblings(asn(200));
        assert!(sib.contains(&asn(200)) && sib.contains(&asn(201)));
        assert_eq!(sib.len(), 2);
        assert_eq!(g.siblings(asn(100)).len(), 1);
    }

    #[test]
    fn adjacencies_normalized() {
        let g = tiny();
        let adj: Vec<_> = g.adjacencies().collect();
        assert_eq!(adj.len(), 3);
        // Every c2p tuple lists (customer, provider).
        for (a, b, rel) in adj {
            if rel == RelKind::CustomerToProvider {
                assert_eq!(g.rel(a, b), Some(RelKind::CustomerToProvider));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate relationship")]
    fn duplicate_edge_rejected() {
        let mut g = tiny();
        g.add_p2p(asn(100), asn(200));
    }
}
