//! Compile an AS-level world into a router-level `manic_netsim::Network`.
//!
//! The compilation mirrors how real networks are laid out at the level of
//! detail the paper's measurements can observe:
//!
//! * every AS gets one backbone (BB) router per PoP, full-meshed with
//!   propagation delays derived from metro geography;
//! * every AS gets a host router at its first PoP terminating its announced
//!   host space — the "destinations in the address space of the neighbor
//!   network" TSLP probes toward (§3.1);
//! * every AS-level adjacency is realized as one or more *IP-level
//!   interdomain links* (the unit of measurement in the paper): a border
//!   router pair per common metro, numbered from a /30 owned by the provider
//!   (customer links) or the lower-ASN side (peering links), or from the IXP
//!   LAN for exchange-based peerings;
//! * FIBs implement the Gao-Rexford AS-level decision with **hot-potato**
//!   egress: each backbone router exits via the lowest-latency metro that has
//!   a link to the chosen next-hop AS, load-balancing across parallel links
//!   there (per-flow ECMP).
//!
//! Vantage points are plain hosts attached to an access-ISP backbone router.

use crate::addressing::Addressing;
use crate::artifacts::Artifacts;
use crate::asgraph::{AsGraph, RelKind};
use crate::bgp::Routing;
use manic_netsim::icmp::IcmpProfile;
use manic_netsim::noise;
use manic_netsim::queue::QueueModel;
use manic_netsim::topo::Direction;
use manic_netsim::{
    AsNumber, Fib, IfaceId, Ipv4, LinkId, LinkKind, Network, Prefix, RouterId, Topology,
};
use std::collections::{BTreeMap, HashMap};

/// Errors turning a scenario description into a world. Scenario input
/// (metro codes, VP placements, host plans) ultimately arrives from the
/// CLI and the serving layer, so a bad spec must surface as a reportable
/// error, not a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A PoP code that is not in the metro geography table.
    UnknownMetro(String),
    /// An AS was asked to host something (VP, secondary host) at a PoP it
    /// does not have.
    NoSuchPop { as_name: String, pop: String },
    /// `World::try_vp` was asked for a VP name that was never placed.
    UnknownVp(String),
    /// `World::try_secondary_host_addr` for an `(asn, pop)` with no
    /// secondary host.
    NoSecondaryHost { asn: AsNumber, pop: String },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::UnknownMetro(code) => write!(f, "unknown metro {code}"),
            CompileError::NoSuchPop { as_name, pop } => {
                write!(f, "{as_name} has no PoP {pop}")
            }
            CompileError::UnknownVp(name) => write!(f, "unknown VP {name}"),
            CompileError::NoSecondaryHost { asn, pop } => {
                write!(f, "no secondary host for {asn} at {pop}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Approximate metro coordinates in a plane where one unit of euclidean
/// distance equals one millisecond of one-way propagation delay, plus the
/// metro's standard-time UTC offset. Fallible variant of [`metro_info`]
/// for code paths fed by unvalidated scenario input.
pub fn try_metro_info(code: &str) -> Result<(f64, f64, i8), CompileError> {
    metro_table(code).ok_or_else(|| CompileError::UnknownMetro(code.to_string()))
}

/// Like [`try_metro_info`] but panics on an unknown code — for call sites
/// whose metros were already validated by [`compile`].
pub fn metro_info(code: &str) -> (f64, f64, i8) {
    metro_table(code).unwrap_or_else(|| panic!("unknown metro {code}"))
}

fn metro_table(code: &str) -> Option<(f64, f64, i8)> {
    match code {
        "nyc" => Some((46.0, 13.0, -5)),
        "bos" => Some((48.0, 11.0, -5)),
        "ash" => Some((44.0, 16.0, -5)), // Ashburn, VA
        "atl" => Some((40.0, 22.0, -5)),
        "mia" => Some((44.0, 30.0, -5)),
        "chi" => Some((36.0, 14.0, -6)),
        "dfw" => Some((30.0, 25.0, -6)),
        "hou" => Some((32.0, 28.0, -6)),
        "den" => Some((22.0, 17.0, -7)),
        "phx" => Some((17.0, 26.0, -7)),
        "lax" => Some((8.0, 25.0, -8)),
        "sjc" => Some((4.0, 20.0, -8)),
        "sea" => Some((6.0, 8.0, -8)),
        "lon" => Some((76.0, 5.0, 0)),
        "fra" => Some((82.0, 7.0, 1)),
        "ams" => Some((78.0, 4.0, 1)),
        _ => None,
    }
}

/// One-way propagation delay between two metros, ms (minimum 0.8 within a metro).
pub fn metro_delay(a: &str, b: &str) -> f64 {
    if a == b {
        return 0.8;
    }
    let (xa, ya, _) = metro_info(a);
    let (xb, yb, _) = metro_info(b);
    ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt().max(0.8)
}

/// Compilation knobs.
#[derive(Debug, Clone)]
pub struct CompileConfig {
    pub seed: u64,
    /// Maximum number of metros at which one adjacency gets links.
    pub max_link_metros: usize,
    /// Probability of a second parallel link at a metro (per-flow ECMP case).
    pub parallel_link_prob: f64,
    /// Fraction of border routers whose ICMP is rate limited (Table 1's
    /// measurement-artifact confounder).
    pub rate_limited_frac: f64,
    /// Fraction of border routers that answer on a slow path.
    pub slow_path_frac: f64,
    /// Fraction of border routers with episodic (day-granular) ICMP
    /// unresponsiveness — §5.1's "high far-end loss uncorrelated with
    /// latency" confounder.
    pub flaky_frac: f64,
    /// Queue model applied to interdomain links.
    pub interdomain_queue: QueueModel,
    /// Additional host routers: `(asn, pop)` pairs terminating a /22 carve
    /// of the AS's host space at a secondary PoP. Used to place NDT-server
    /// style destinations whose hot-potato return path differs from the
    /// primary host's (the paper's Link-2 asymmetry, §5.3).
    pub secondary_hosts: Vec<(AsNumber, String)>,
}

impl Default for CompileConfig {
    fn default() -> Self {
        CompileConfig {
            seed: 0xC0FFEE,
            max_link_metros: 3,
            parallel_link_prob: 0.25,
            rate_limited_frac: 0.04,
            slow_path_frac: 0.04,
            flaky_frac: 0.08,
            interdomain_queue: QueueModel::default(),
            secondary_hosts: Vec::new(),
        }
    }
}

/// A vantage point: a measurement host inside an access ISP.
#[derive(Debug, Clone)]
pub struct VantagePoint {
    /// Stable name, `{isp}-{pop}` (e.g. `comcast-chi`).
    pub name: String,
    pub asn: AsNumber,
    pub pop: String,
    pub router: RouterId,
    pub addr: Ipv4,
}

/// Ground truth for one IP-level interdomain link.
#[derive(Debug, Clone)]
pub struct GtLink {
    pub link: LinkId,
    /// Side A of the link (`Link::ifaces[0]`).
    pub a_asn: AsNumber,
    /// Side B (`Link::ifaces[1]`).
    pub b_asn: AsNumber,
    /// Border routers on each side.
    pub a_br: RouterId,
    pub b_br: RouterId,
    /// Addresses on the interdomain /30 (or IXP LAN).
    pub a_ext: Ipv4,
    pub b_ext: Ipv4,
    /// Internal (backbone-facing) interface addresses of the border routers —
    /// what a TTL-limited probe from inside the respective AS observes as the
    /// link's near end.
    pub a_int: Ipv4,
    pub b_int: Ipv4,
    /// Metro where each side's border router homes (differ for remote peering).
    pub a_metro: String,
    pub b_metro: String,
    /// Whether the link crosses the IXP LAN.
    pub via_ixp: bool,
}

impl GtLink {
    /// Does `asn` own one side of this link?
    pub fn touches(&self, asn: AsNumber) -> bool {
        self.a_asn == asn || self.b_asn == asn
    }

    /// The other side's ASN relative to `asn`.
    pub fn neighbor_of(&self, asn: AsNumber) -> AsNumber {
        if self.a_asn == asn {
            self.b_asn
        } else {
            debug_assert_eq!(self.b_asn, asn);
            self.a_asn
        }
    }

    /// Probing from inside `asn`: the near-end target (border router of
    /// `asn`, answering from its backbone-facing interface).
    pub fn near_addr_from(&self, asn: AsNumber) -> Ipv4 {
        if self.a_asn == asn {
            self.a_int
        } else {
            self.b_int
        }
    }

    /// Probing from inside `asn`: the far-end target (the neighbor's border
    /// interface on the link itself).
    pub fn far_addr_from(&self, asn: AsNumber) -> Ipv4 {
        if self.a_asn == asn {
            self.b_ext
        } else {
            self.a_ext
        }
    }

    /// Direction of traffic flowing *toward* `asn` across this link (the
    /// direction that congests when `asn` is the eyeball side).
    pub fn dir_toward(&self, asn: AsNumber) -> Direction {
        if self.a_asn == asn {
            Direction::BtoA
        } else {
            Direction::AtoB
        }
    }
}

/// A secondary destination host placed at a non-primary PoP.
#[derive(Debug, Clone)]
pub struct SecondaryHost {
    pub asn: AsNumber,
    pub pop: String,
    /// The /22 carve of the AS host space this host terminates.
    pub prefix: Prefix,
    pub router: RouterId,
}

/// A compiled world: network + ground truth + the artifacts the measurement
/// stack consumes.
pub struct World {
    pub net: Network,
    pub graph: AsGraph,
    pub routing: Routing,
    pub addressing: Addressing,
    pub vps: Vec<VantagePoint>,
    pub gt_links: Vec<GtLink>,
    pub artifacts: Artifacts,
    /// Host (destination) router of each AS.
    pub host_routers: BTreeMap<AsNumber, RouterId>,
    /// Backbone router per (AS, pop).
    pub bb_routers: BTreeMap<(AsNumber, String), RouterId>,
    /// Secondary destination hosts (see [`CompileConfig::secondary_hosts`]).
    pub secondary_hosts: Vec<SecondaryHost>,
}

impl World {
    /// Ground-truth interdomain links touching `asn`.
    pub fn links_of(&self, asn: AsNumber) -> Vec<&GtLink> {
        self.gt_links.iter().filter(|l| l.touches(asn)).collect()
    }

    /// Ground-truth links between a specific pair.
    pub fn links_between(&self, a: AsNumber, b: AsNumber) -> Vec<&GtLink> {
        self.gt_links
            .iter()
            .filter(|l| (l.a_asn == a && l.b_asn == b) || (l.a_asn == b && l.b_asn == a))
            .collect()
    }

    /// A responding destination address inside `asn`'s host space.
    pub fn host_addr(&self, asn: AsNumber, index: u32) -> Ipv4 {
        let hp = self.addressing.of(asn).host_prefix;
        hp.nth(1 + index)
    }

    /// A responding address served by the secondary host of `asn` at `pop`.
    pub fn try_secondary_host_addr(
        &self,
        asn: AsNumber,
        pop: &str,
        index: u32,
    ) -> Result<(Ipv4, RouterId), CompileError> {
        let sh = self
            .secondary_hosts
            .iter()
            .find(|s| s.asn == asn && s.pop == pop)
            .ok_or_else(|| CompileError::NoSecondaryHost { asn, pop: pop.to_string() })?;
        Ok((sh.prefix.nth(1 + index), sh.router))
    }

    /// Panicking convenience for experiment code whose `(asn, pop)` pairs
    /// are compiled into the binary; anything fed by external input should
    /// use [`Self::try_secondary_host_addr`].
    pub fn secondary_host_addr(&self, asn: AsNumber, pop: &str, index: u32) -> (Ipv4, RouterId) {
        self.try_secondary_host_addr(asn, pop, index)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The VP with the given name, if it was placed.
    pub fn try_vp(&self, name: &str) -> Result<&VantagePoint, CompileError> {
        self.vps
            .iter()
            .find(|v| v.name == name)
            .ok_or_else(|| CompileError::UnknownVp(name.to_string()))
    }

    /// Panicking convenience for test/experiment code with hard-coded VP
    /// names; external input goes through [`Self::try_vp`].
    pub fn vp(&self, name: &str) -> &VantagePoint {
        self.try_vp(name).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Working state while wiring one AS's routers.
struct AsPlumbing {
    /// bb router per pop code.
    bb: BTreeMap<String, RouterId>,
    /// bb iface used to reach another pop: (from_pop, to_pop) -> iface.
    mesh: HashMap<(String, String), IfaceId>,
    /// Direct /32 attachments at a bb: (pop, peer addr) -> bb iface.
    local: HashMap<String, Vec<(Ipv4, IfaceId)>>,
    /// Links of this AS: (gt index, my egress bb iface is resolved later).
    links: Vec<usize>,
    host_router: Option<RouterId>,
    host_bb_iface: Option<(String, IfaceId)>,
    /// Secondary hosts: (pop, carved prefix, bb iface toward the host,
    /// host router).
    secondary: Vec<(String, Prefix, IfaceId, RouterId)>,
}

/// Compile a world.
///
/// `vp_placements`: `(asn, pop)` pairs; `ixp_pairs`: adjacencies whose links
/// cross the IXP LAN instead of a private /30. Bad scenario input — a PoP
/// code outside the metro table, a VP or secondary host placed at a PoP the
/// AS does not have — is an error, not a panic: scenario specs arrive from
/// the CLI.
pub fn compile(
    graph: AsGraph,
    vp_placements: &[(AsNumber, &str)],
    ixp_pairs: &[(AsNumber, AsNumber)],
    cfg: &CompileConfig,
) -> Result<World, CompileError> {
    // Validate every referenced metro up front so the plumbing below can
    // use the infallible lookups.
    for info in graph.ases() {
        for pop in &info.pops {
            try_metro_info(pop)?;
        }
    }
    let mut addressing = Addressing::new();
    for info in graph.ases() {
        addressing.register(info.asn);
    }
    let routing = Routing::compute(&graph);
    let mut topo = Topology::new();
    let mut plumbing: BTreeMap<AsNumber, AsPlumbing> = BTreeMap::new();
    let mut gt_links: Vec<GtLink> = Vec::new();
    let mut secondary_hosts: Vec<SecondaryHost> = Vec::new();

    // --- Routers: backbone mesh, host router ---------------------------------
    for info in graph.ases() {
        assert!(!info.pops.is_empty(), "AS {} has no PoPs", info.asn);
        assert!(info.pops.len() <= 32, "PoP plan supports 32 PoPs per AS");
        let mut pl = AsPlumbing {
            bb: BTreeMap::new(),
            mesh: HashMap::new(),
            local: HashMap::new(),
            links: Vec::new(),
            host_router: None,
            host_bb_iface: None,
            secondary: Vec::new(),
        };
        for pop in &info.pops {
            let (_, _, tz) = metro_info(pop);
            let r = topo.add_router(
                info.asn,
                format!("{}-bb-{}", info.name, pop),
                pop.clone(),
                tz,
                IcmpProfile::default(),
            );
            pl.bb.insert(pop.clone(), r);
        }
        // Full mesh between pops.
        for (i, p) in info.pops.iter().enumerate() {
            for q in info.pops.iter().skip(i + 1) {
                let ap = addressing.of_mut(info.asn).next_pop_addr(i as u8);
                let qi = info.pops.iter().position(|x| x == q).unwrap() as u8;
                let aq = addressing.of_mut(info.asn).next_pop_addr(qi);
                let ip_ = topo.add_iface(pl.bb[p], ap);
                let iq = topo.add_iface(pl.bb[q], aq);
                topo.connect(
                    ip_,
                    iq,
                    LinkKind::Internal,
                    metro_delay(p, q),
                    100_000.0,
                    QueueModel { jitter_ms: 0.1, ..QueueModel::default() },
                    None,
                    None,
                );
                pl.mesh.insert((p.clone(), q.clone()), ip_);
                pl.mesh.insert((q.clone(), p.clone()), iq);
            }
        }
        // Host router at pops[0].
        let hpop = info.pops[0].clone();
        let (_, _, tz) = metro_info(&hpop);
        let host = topo.add_router(
            info.asn,
            format!("{}-host", info.name),
            hpop.clone(),
            tz,
            IcmpProfile::default(),
        );
        let a_bb = addressing.of_mut(info.asn).next_pop_addr(0);
        let a_h = addressing.of_mut(info.asn).next_pop_addr(0);
        let i_bb = topo.add_iface(pl.bb[&hpop], a_bb);
        let i_h = topo.add_iface(host, a_h);
        topo.connect(i_bb, i_h, LinkKind::Access, 0.3, 10_000.0, QueueModel::default(), None, None);
        topo.add_host_prefix(addressing.of(info.asn).host_prefix, host);
        pl.local.entry(hpop.clone()).or_default().push((a_h, i_bb));
        pl.host_router = Some(host);
        pl.host_bb_iface = Some((hpop, i_bb));

        // Secondary hosts at non-primary PoPs: each terminates a /22 carve
        // of the host space (10.i.120.0/22, 10.i.124.0/22).
        let wanted: Vec<String> = cfg
            .secondary_hosts
            .iter()
            .filter(|(a, _)| *a == info.asn)
            .map(|(_, p)| p.clone())
            .collect();
        for (k, pop) in wanted.iter().enumerate() {
            assert!(k < 2, "at most two secondary hosts per AS");
            let pop_idx = info
                .pops
                .iter()
                .position(|p| p == pop)
                .ok_or_else(|| CompileError::NoSuchPop {
                    as_name: info.name.clone(),
                    pop: pop.clone(),
                })? as u8;
            let (_, _, tz) = metro_info(pop);
            let idx_octet = addressing.of(info.asn).index;
            let prefix = Prefix::new(Ipv4::new(10, idx_octet, 120 + 4 * k as u8, 0), 22);
            let r = topo.add_router(
                info.asn,
                format!("{}-host-{pop}", info.name),
                pop.clone(),
                tz,
                IcmpProfile::default(),
            );
            let a_bb = addressing.of_mut(info.asn).next_pop_addr(pop_idx);
            let a_h = addressing.of_mut(info.asn).next_pop_addr(pop_idx);
            let i_bb = topo.add_iface(pl.bb[pop], a_bb);
            let i_h = topo.add_iface(r, a_h);
            topo.connect(i_bb, i_h, LinkKind::Access, 0.3, 10_000.0, QueueModel::default(), None, None);
            topo.add_host_prefix(prefix, r);
            pl.local.entry(pop.clone()).or_default().push((a_h, i_bb));
            pl.secondary.push((pop.clone(), prefix, i_bb, r));
            secondary_hosts.push(SecondaryHost { asn: info.asn, pop: pop.clone(), prefix, router: r });
        }
        plumbing.insert(info.asn, pl);
    }

    // --- Vantage points -------------------------------------------------------
    let mut vps = Vec::new();
    for &(asn, pop) in vp_placements {
        let info = graph.info(asn);
        let pop_idx = info
            .pops
            .iter()
            .position(|p| p == pop)
            .ok_or_else(|| CompileError::NoSuchPop {
                as_name: info.name.clone(),
                pop: pop.to_string(),
            })? as u8;
        let (_, _, tz) = metro_info(pop);
        let name = format!("{}-{}", info.name, pop);
        let r = topo.add_router(asn, format!("vp-{name}"), pop, tz, IcmpProfile::default());
        let a_bb = addressing.of_mut(asn).next_pop_addr(pop_idx);
        let a_vp = addressing.of_mut(asn).next_pop_addr(pop_idx);
        let pl = plumbing.get_mut(&asn).unwrap();
        let i_bb = topo.add_iface(pl.bb[pop], a_bb);
        let i_vp = topo.add_iface(r, a_vp);
        // Broadband-plan capacity: panelist VPs sit behind ~20 Mbit/s access
        // links, which caps the throughput validations the way real
        // SamKnows/Ark whiteboxes are capped.
        topo.connect(i_bb, i_vp, LinkKind::Access, 1.5, 20.0, QueueModel::default(), None, None);
        pl.local.entry(pop.to_string()).or_default().push((a_vp, i_bb));
        vps.push(VantagePoint { name, asn, pop: pop.to_string(), router: r, addr: a_vp });
    }

    // --- Interdomain links ----------------------------------------------------
    let adjacencies: Vec<(AsNumber, AsNumber, RelKind)> = graph.adjacencies().collect();
    for (x, y, rel) in adjacencies {
        // x is the customer for c2p; normalized low-ASN first for p2p.
        let xinfo = graph.info(x).clone();
        let yinfo = graph.info(y).clone();
        let via_ixp = ixp_pairs
            .iter()
            .any(|&(a, b)| (a == x && b == y) || (a == y && b == x));
        // Metros where both are present, in x's pop order.
        let mut metros: Vec<(String, String)> = xinfo
            .pops
            .iter()
            .filter(|p| yinfo.pops.contains(p))
            .map(|p| (p.clone(), p.clone()))
            .collect();
        if metros.is_empty() {
            // Remote peering: x reaches into y's first PoP.
            metros.push((xinfo.pops[0].clone(), yinfo.pops[0].clone()));
        }
        metros.truncate(cfg.max_link_metros);
        for (mx, my) in metros {
            let n_parallel = 1 + noise::bernoulli(
                cfg.seed ^ 0x0A11,
                (x.0 as u64) << 32 | y.0 as u64,
                mx.as_bytes().iter().map(|&b| b as u64).sum(),
                cfg.parallel_link_prob,
            ) as usize;
            for copy in 0..n_parallel {
                let gt = build_interdomain_link(
                    &mut topo,
                    &mut addressing,
                    &graph,
                    &mut plumbing,
                    (x, &xinfo.name, &mx),
                    (y, &yinfo.name, &my),
                    rel,
                    via_ixp,
                    copy,
                    cfg,
                );
                let idx = gt_links.len();
                plumbing.get_mut(&x).unwrap().links.push(idx);
                plumbing.get_mut(&y).unwrap().links.push(idx);
                gt_links.push(gt);
            }
        }
    }

    // --- FIBs -----------------------------------------------------------------
    let fibs = build_fibs(&topo, &graph, &routing, &addressing, &plumbing, &gt_links, &vps);

    let artifacts = Artifacts::build(&graph, &addressing, ixp_pairs);
    let host_routers = plumbing
        .iter()
        .map(|(&asn, pl)| (asn, pl.host_router.unwrap()))
        .collect();
    let bb_routers = plumbing
        .iter()
        .flat_map(|(&asn, pl)| {
            pl.bb.iter().map(move |(pop, &r)| ((asn, pop.clone()), r))
        })
        .collect();

    Ok(World {
        net: Network::new(topo, fibs, cfg.seed),
        graph,
        routing,
        addressing,
        vps,
        gt_links,
        artifacts,
        host_routers,
        bb_routers,
        secondary_hosts,
    })
}

/// Create border routers + the interdomain link for one (adjacency, metro).
#[allow(clippy::too_many_arguments)]
fn build_interdomain_link(
    topo: &mut Topology,
    addressing: &mut Addressing,
    graph: &AsGraph,
    plumbing: &mut BTreeMap<AsNumber, AsPlumbing>,
    (x, xname, mx): (AsNumber, &str, &str),
    (y, yname, my): (AsNumber, &str, &str),
    rel: RelKind,
    via_ixp: bool,
    copy: usize,
    cfg: &CompileConfig,
) -> GtLink {
    let stream = (x.0 as u64) << 32 | y.0 as u64;
    let salt = copy as u64
        + mx.as_bytes().iter().map(|&b| b as u64).sum::<u64>() * 131;

    let br_profile = |asn: AsNumber, which: u64| -> IcmpProfile {
        let h = noise::uniform(cfg.seed ^ 0xB50F, stream ^ which, salt ^ asn.0 as u64);
        if h < cfg.rate_limited_frac {
            // Below the 1 Hz loss-probing rate: the loss module sees 60-80%
            // far loss at all times (the paper's Table 1 artifact), while
            // 5-minute TSLP probes still get through.
            IcmpProfile::rate_limited(0.3)
        } else if h < cfg.rate_limited_frac + cfg.slow_path_frac {
            IcmpProfile::slow(25.0)
        } else if h < cfg.rate_limited_frac + cfg.slow_path_frac + cfg.flaky_frac {
            IcmpProfile {
                flaky: Some(manic_netsim::icmp::FlakyProfile {
                    day_prob: 0.35,
                    drop_prob: 0.9,
                    // 07:00-12:00 UTC = small hours across US timezones.
                    window_start_hour: 7,
                    window_end_hour: 12,
                }),
                ..IcmpProfile::default()
            }
        } else {
            IcmpProfile::default()
        }
    };

    // Border routers.
    let (.., tzx) = metro_info(mx);
    let (.., tzy) = metro_info(my);
    let brx = topo.add_router(
        x,
        format!("{xname}-br-{my}-{yname}{copy}"),
        mx,
        tzx,
        br_profile(x, 0xA),
    );
    let bry = topo.add_router(
        y,
        format!("{yname}-br-{mx}-{xname}{copy}"),
        my,
        tzy,
        br_profile(y, 0xB),
    );

    // Internal attachment of each BR to its backbone.
    let attach = |topo: &mut Topology,
                  addressing: &mut Addressing,
                  plumbing: &mut BTreeMap<AsNumber, AsPlumbing>,
                  graph: &AsGraph,
                  asn: AsNumber,
                  br: RouterId,
                  metro: &str|
     -> (Ipv4, IfaceId) {
        let pop_idx = graph.info(asn).pops.iter().position(|p| p == metro).unwrap() as u8;
        let a_bb = addressing.of_mut(asn).next_pop_addr(pop_idx);
        let a_br = addressing.of_mut(asn).next_pop_addr(pop_idx);
        let pl = plumbing.get_mut(&asn).unwrap();
        let i_bb = topo.add_iface(pl.bb[metro], a_bb);
        let i_br = topo.add_iface(br, a_br);
        topo.connect(i_bb, i_br, LinkKind::Internal, 0.3, 100_000.0, QueueModel::default(), None, None);
        pl.local.entry(metro.to_string()).or_default().push((a_br, i_bb));
        (a_br, i_bb)
    };
    let (a_int, _) = attach(topo, addressing, plumbing, graph, x, brx, mx);
    let (b_int, _) = attach(topo, addressing, plumbing, graph, y, bry, my);

    // The interdomain /30 (or IXP LAN pair). Ownership: provider numbers
    // customer links; lower ASN numbers peering links.
    let (a_ext, b_ext) = if via_ixp {
        addressing.next_ixp_pair()
    } else {
        let owner = match rel {
            RelKind::CustomerToProvider => y, // x is the customer
            RelKind::PeerToPeer => {
                if x < y {
                    x
                } else {
                    y
                }
            }
        };
        let (_, n1, n2) = addressing.of_mut(owner).next_linknet();
        // .1 goes to the owner's side.
        if owner == x {
            (n1, n2)
        } else {
            (n2, n1)
        }
    };
    let i_xe = topo.add_iface(brx, a_ext);
    let i_ye = topo.add_iface(bry, b_ext);
    let delay = 0.2 + 0.8 * noise::uniform(cfg.seed ^ 0xDE1A, stream, salt)
        + if mx != my { metro_delay(mx, my) } else { 0.0 };
    let capacity = 10_000.0; // 10G port; capacity matters relatively, not absolutely.
    let link = topo.connect(
        i_xe,
        i_ye,
        LinkKind::Interdomain,
        delay,
        capacity,
        cfg.interdomain_queue,
        None,
        None,
    );

    GtLink {
        link,
        a_asn: x,
        b_asn: y,
        a_br: brx,
        b_br: bry,
        a_ext,
        b_ext,
        a_int,
        b_int,
        a_metro: mx.to_string(),
        b_metro: my.to_string(),
        via_ixp,
    }
}

/// Build the single routing epoch for every router.
fn build_fibs(
    topo: &Topology,
    graph: &AsGraph,
    routing: &Routing,
    addressing: &Addressing,
    plumbing: &BTreeMap<AsNumber, AsPlumbing>,
    gt_links: &[GtLink],
    vps: &[VantagePoint],
) -> Vec<Fib> {
    let mut fibs: Vec<Fib> = (0..topo.routers.len()).map(|_| Fib::new()).collect();

    for info in graph.ases() {
        let asn = info.asn;
        let pl = &plumbing[&asn];

        // Per-link bookkeeping from this AS's perspective.
        struct MyLink {
            neighbor: AsNumber,
            my_metro: String,
            /// bb iface that reaches my BR (for local egress).
            bb_to_br: IfaceId,
            /// my BR's external iface.
            ext_iface: IfaceId,
            /// my BR router.
            br: RouterId,
            my_ext: Ipv4,
            their_ext: Ipv4,
        }
        let mut my_links: Vec<MyLink> = Vec::new();
        for &idx in &pl.links {
            let gt = &gt_links[idx];
            let mine_is_a = gt.a_asn == asn;
            let (br, my_metro, my_ext, their_ext) = if mine_is_a {
                (gt.a_br, gt.a_metro.clone(), gt.a_ext, gt.b_ext)
            } else {
                (gt.b_br, gt.b_metro.clone(), gt.b_ext, gt.a_ext)
            };
            // bb iface to this BR: find the local attachment recorded for the
            // BR's internal addr.
            let my_int = if mine_is_a { gt.a_int } else { gt.b_int };
            let bb_to_br = pl.local[&my_metro]
                .iter()
                .find(|(addr, _)| *addr == my_int)
                .map(|&(_, i)| i)
                .expect("BR attachment recorded");
            let ext_iface = topo.iface_by_addr(my_ext).unwrap().id;
            my_links.push(MyLink {
                neighbor: gt.neighbor_of(asn),
                my_metro,
                bb_to_br,
                ext_iface,
                br,
                my_ext,
                their_ext,
            });
        }

        // ---- Backbone routers ----
        for (pop, &bb) in &pl.bb {
            let fib = &mut fibs[bb.0 as usize];
            let my_addr = addressing.of(asn);

            // Mesh routes to other pops' infrastructure subnets.
            for (qpop, &_qbb) in &pl.bb {
                if qpop == pop {
                    continue;
                }
                let qidx = info.pops.iter().position(|p| p == qpop).unwrap() as u8;
                let via = pl.mesh[&(pop.clone(), qpop.clone())];
                fib.insert(my_addr.pop_subnet(qidx), vec![via]);
            }
            // Local /32 attachments (BR internals, host, VPs).
            if let Some(locals) = pl.local.get(pop) {
                for &(addr, iface) in locals {
                    fib.insert(Prefix::host(addr), vec![iface]);
                }
            }
            // Host prefix: toward pops[0].
            let (hpop, h_iface) = pl.host_bb_iface.as_ref().unwrap();
            if hpop == pop {
                fib.insert(my_addr.host_prefix, vec![*h_iface]);
            } else {
                let via = pl.mesh[&(pop.clone(), hpop.clone())];
                fib.insert(my_addr.host_prefix, vec![via]);
            }
            // Secondary host carves (more specific than the /18).
            for (spop, sprefix, s_iface, _) in &pl.secondary {
                if spop == pop {
                    fib.insert(*sprefix, vec![*s_iface]);
                } else {
                    let via = pl.mesh[&(pop.clone(), spop.clone())];
                    fib.insert(*sprefix, vec![via]);
                }
            }
            // Own linknet /30s: route each to the owning link's metro.
            for ml in &my_links {
                let p30 = Prefix::new(ml.my_ext, 30);
                if !my_addr.linknet_block().covers(&p30) {
                    // IXP LAN or neighbor-owned /30: host routes for both ends.
                    for ext in [ml.my_ext, ml.their_ext] {
                        if addressing.block_owner(ext) != Some(asn) {
                            let nh = if &ml.my_metro == pop {
                                ml.bb_to_br
                            } else {
                                pl.mesh[&(pop.clone(), ml.my_metro.clone())]
                            };
                            fib.insert(Prefix::host(ext), vec![nh]);
                        }
                    }
                    continue;
                }
                let nh = if &ml.my_metro == pop {
                    ml.bb_to_br
                } else {
                    pl.mesh[&(pop.clone(), ml.my_metro.clone())]
                };
                fib.insert(p30, vec![nh]);
            }

            // External destinations: hot-potato egress per destination AS.
            for dst in graph.ases() {
                if dst.asn == asn {
                    continue;
                }
                let Some(next) = routing.next_as(asn, dst.asn) else { continue };
                // Candidate links to `next`, grouped by my metro.
                let mut best: Option<(f64, Vec<IfaceId>)> = None;
                for ml in my_links.iter().filter(|m| m.neighbor == next) {
                    let cost = if &ml.my_metro == pop {
                        0.0
                    } else {
                        metro_delay(pop, &ml.my_metro)
                    };
                    let egress = if &ml.my_metro == pop {
                        ml.bb_to_br
                    } else {
                        pl.mesh[&(pop.clone(), ml.my_metro.clone())]
                    };
                    match &mut best {
                        None => best = Some((cost, vec![egress])),
                        Some((c, group)) => {
                            if cost < *c - 1e-9 {
                                *c = cost;
                                *group = vec![egress];
                            } else if (cost - *c).abs() <= 1e-9 && !group.contains(&egress) {
                                group.push(egress);
                            }
                        }
                    }
                }
                if let Some((_, group)) = best {
                    fib.insert(addressing.of(dst.asn).block, group);
                }
            }
        }

        // ---- Border routers ----
        for ml in &my_links {
            let fib = &mut fibs[ml.br.0 as usize];
            // Default: everything back into the backbone.
            let int_iface = topo
                .router(ml.br)
                .ifaces
                .iter()
                .map(|&i| topo.iface(i))
                .find(|i| i.id != ml.ext_iface)
                .expect("BR has an internal iface")
                .id;
            fib.insert("0.0.0.0/0".parse().unwrap(), vec![int_iface]);
            // Destinations whose AS-level next hop is this neighbor: across.
            for dst in graph.ases() {
                if dst.asn == asn {
                    continue;
                }
                if routing.next_as(asn, dst.asn) == Some(ml.neighbor) {
                    fib.insert(addressing.of(dst.asn).block, vec![ml.ext_iface]);
                }
            }
            // The far side of my own /30 (and the IXP LAN peer).
            fib.insert(Prefix::host(ml.their_ext), vec![ml.ext_iface]);
        }

        // ---- Host routers ----
        let mut hosts = vec![pl.host_router.unwrap()];
        hosts.extend(pl.secondary.iter().map(|&(_, _, _, r)| r));
        for host in hosts {
            let h_iface = topo
                .router(host)
                .ifaces
                .first()
                .map(|&i| topo.iface(i).id)
                .expect("host router has an iface");
            fibs[host.0 as usize].insert("0.0.0.0/0".parse().unwrap(), vec![h_iface]);
        }
    }

    // ---- VP hosts ----
    for vp in vps {
        let iface = topo
            .router(vp.router)
            .ifaces
            .first()
            .map(|&i| topo.iface(i).id)
            .expect("VP has an iface");
        fibs[vp.router.0 as usize].insert("0.0.0.0/0".parse().unwrap(), vec![iface]);
    }

    fibs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::{AsInfo, AsKind};

    fn expect_err(r: Result<World, CompileError>) -> CompileError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected a compile error"),
        }
    }

    fn graph_with_pops(pops: &[&str]) -> AsGraph {
        let mut g = AsGraph::new();
        g.add_as(AsInfo {
            asn: AsNumber(65001),
            name: "solo".into(),
            kind: AsKind::AccessIsp,
            org: "solo".into(),
            pops: pops.iter().map(|p| p.to_string()).collect(),
        });
        g
    }

    #[test]
    fn unknown_metro_is_an_error_not_a_panic() {
        assert_eq!(
            try_metro_info("zzz"),
            Err(CompileError::UnknownMetro("zzz".into()))
        );
        let err = expect_err(compile(
            graph_with_pops(&["nyc", "zzz"]),
            &[],
            &[],
            &CompileConfig::default(),
        ));
        assert_eq!(err, CompileError::UnknownMetro("zzz".into()));
        assert_eq!(err.to_string(), "unknown metro zzz");
    }

    #[test]
    fn vp_at_absent_pop_is_an_error() {
        let err = expect_err(compile(
            graph_with_pops(&["nyc"]),
            &[(AsNumber(65001), "chi")],
            &[],
            &CompileConfig::default(),
        ));
        assert_eq!(
            err,
            CompileError::NoSuchPop { as_name: "solo".into(), pop: "chi".into() }
        );
    }

    #[test]
    fn secondary_host_at_absent_pop_is_an_error() {
        let cfg = CompileConfig {
            secondary_hosts: vec![(AsNumber(65001), "lax".into())],
            ..CompileConfig::default()
        };
        let err = expect_err(compile(graph_with_pops(&["nyc"]), &[], &[], &cfg));
        assert_eq!(
            err,
            CompileError::NoSuchPop { as_name: "solo".into(), pop: "lax".into() }
        );
    }

    #[test]
    fn world_lookups_report_errors() {
        let w = compile(graph_with_pops(&["nyc"]), &[], &[], &CompileConfig::default())
            .expect("single-AS world compiles");
        assert_eq!(
            w.try_vp("nope").unwrap_err(),
            CompileError::UnknownVp("nope".into())
        );
        assert_eq!(
            w.try_secondary_host_addr(AsNumber(65001), "nyc", 0).unwrap_err(),
            CompileError::NoSecondaryHost { asn: AsNumber(65001), pop: "nyc".into() }
        );
    }
}
