//! Interned metro symbols.
//!
//! Every world — hand-built or generated — places PoPs in the same sixteen
//! metros the compiler knows coordinates for ([`crate::compile::metro_info`]).
//! Historically the worlds spelled those metros as raw string literals, which
//! meant a typo ("nye") only surfaced as a compile-time `UnknownMetro` error
//! deep inside `compile()`. The interner gives each metro a dense stable id:
//! world builders hold `MetroId`s (one byte each, `Copy`, comparable), and
//! resolve them to the canonical `&'static str` code only at the
//! `AsGraph`/`compile()` boundary. `manic-worldgen`'s compact topology stores
//! arena-packed `MetroId`s instead of heap strings for every PoP of every AS.
//!
//! The id space is closed: [`MetroId::ALL`] is the full metro universe, in
//! the same order as the compiler's coordinate table, so ids double as
//! indices into per-metro arrays.

/// Dense identifier of one metro; index into [`METRO_CODES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetroId(pub u8);

/// Canonical metro codes, in the compiler's coordinate-table order.
pub const METRO_CODES: &[&str] = &[
    "nyc", "bos", "ash", "atl", "mia", "chi", "dfw", "hou", "den", "phx", "lax", "sjc", "sea",
    "lon", "fra", "ams",
];

/// Named ids for the worlds that spell metros in source.
pub mod metros {
    use super::MetroId;
    pub const NYC: MetroId = MetroId(0);
    pub const BOS: MetroId = MetroId(1);
    pub const ASH: MetroId = MetroId(2);
    pub const ATL: MetroId = MetroId(3);
    pub const MIA: MetroId = MetroId(4);
    pub const CHI: MetroId = MetroId(5);
    pub const DFW: MetroId = MetroId(6);
    pub const HOU: MetroId = MetroId(7);
    pub const DEN: MetroId = MetroId(8);
    pub const PHX: MetroId = MetroId(9);
    pub const LAX: MetroId = MetroId(10);
    pub const SJC: MetroId = MetroId(11);
    pub const SEA: MetroId = MetroId(12);
    pub const LON: MetroId = MetroId(13);
    pub const FRA: MetroId = MetroId(14);
    pub const AMS: MetroId = MetroId(15);
}

impl MetroId {
    /// Every metro, in id order.
    pub const ALL: std::ops::Range<u8> = 0..METRO_CODES.len() as u8;

    /// The canonical code ("nyc", "sjc", ...).
    pub fn code(self) -> &'static str {
        METRO_CODES[self.0 as usize]
    }

    /// Standard-time UTC offset of the metro.
    pub fn tz(self) -> i8 {
        crate::compile::metro_info(self.code()).2
    }
}

/// Intern a metro code; `None` for codes the compiler has no coordinates for.
pub fn intern_metro(code: &str) -> Option<MetroId> {
    METRO_CODES
        .iter()
        .position(|c| *c == code)
        .map(|i| MetroId(i as u8))
}

/// Number of metros in the closed universe.
pub fn metro_count() -> usize {
    METRO_CODES.len()
}

/// Resolve a slice of ids to owned code strings — the shape
/// `AsInfo::pops` wants.
pub fn codes(ids: &[MetroId]) -> Vec<String> {
    ids.iter().map(|m| m.code().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::try_metro_info;

    #[test]
    fn every_symbol_resolves_in_the_compiler_table() {
        for i in MetroId::ALL {
            let id = MetroId(i);
            assert!(try_metro_info(id.code()).is_ok(), "metro {}", id.code());
        }
    }

    #[test]
    fn interner_round_trips() {
        for i in MetroId::ALL {
            let id = MetroId(i);
            assert_eq!(intern_metro(id.code()), Some(id));
        }
        assert_eq!(intern_metro("zzz"), None);
        assert_eq!(metro_count(), METRO_CODES.len());
    }

    #[test]
    fn named_ids_match_codes() {
        assert_eq!(metros::NYC.code(), "nyc");
        assert_eq!(metros::SJC.code(), "sjc");
        assert_eq!(metros::AMS.code(), "ams");
        assert_eq!(metros::NYC.tz(), -5);
        assert_eq!(metros::SJC.tz(), -8);
    }
}
