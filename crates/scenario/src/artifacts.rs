//! bdrmap input artifacts.
//!
//! In production, bdrmap consumes (§3.2): a prefix-to-AS mapping built from
//! public BGP data (RouteViews, RIPE RIS), CAIDA AS relationships, a curated
//! IXP prefix list (PCH + PeeringDB), WHOIS delegations, and a manually
//! reviewed sibling list. The scenario layer emits the exact same tables
//! from the generated world, so `manic-bdrmap` runs on the same inputs it
//! would in production — provenance differs, format does not.

use crate::addressing::{ixp_lan, Addressing};
use crate::asgraph::{AsGraph, RelKind};
use manic_netsim::{AsNumber, Ipv4, Prefix};
use std::collections::BTreeMap;

/// The table bundle handed to border mapping.
#[derive(Debug, Clone, Default)]
pub struct Artifacts {
    /// Announced prefixes with their origin AS (the BGP-derived prefix2as).
    pub prefix2as: Vec<(Prefix, AsNumber)>,
    /// AS relationships: (customer, provider) pairs and unordered peer pairs.
    pub c2p: Vec<(AsNumber, AsNumber)>,
    pub p2p: Vec<(AsNumber, AsNumber)>,
    /// IXP LAN prefixes (PCH/PeeringDB-style list).
    pub ixp_prefixes: Vec<Prefix>,
    /// Organization -> member ASes (CAIDA as2org-style, post manual review).
    pub org_members: BTreeMap<String, Vec<AsNumber>>,
}

impl Artifacts {
    pub fn build(graph: &AsGraph, addressing: &Addressing, ixp_pairs: &[(AsNumber, AsNumber)]) -> Self {
        let mut prefix2as: Vec<(Prefix, AsNumber)> = addressing
            .registered()
            .map(|asn| (addressing.of(asn).block, asn))
            .collect();
        prefix2as.sort();

        let mut c2p = Vec::new();
        let mut p2p = Vec::new();
        for (a, b, rel) in graph.adjacencies() {
            match rel {
                RelKind::CustomerToProvider => c2p.push((a, b)),
                RelKind::PeerToPeer => p2p.push((a, b)),
            }
        }
        let ixp_prefixes = if ixp_pairs.is_empty() { vec![] } else { vec![ixp_lan()] };

        let mut org_members: BTreeMap<String, Vec<AsNumber>> = BTreeMap::new();
        for info in graph.ases() {
            org_members.entry(info.org.clone()).or_default().push(info.asn);
        }

        Artifacts { prefix2as, c2p, p2p, ixp_prefixes, org_members }
    }

    /// Origin AS of `addr` by longest matching announced prefix.
    pub fn origin(&self, addr: Ipv4) -> Option<AsNumber> {
        self.prefix2as
            .iter()
            .filter(|(p, _)| p.contains(addr))
            .max_by_key(|(p, _)| p.len())
            .map(|&(_, asn)| asn)
    }

    /// Is `addr` on an IXP LAN?
    pub fn is_ixp(&self, addr: Ipv4) -> bool {
        self.ixp_prefixes.iter().any(|p| p.contains(addr))
    }

    /// Sibling set of `asn` (ASes sharing its organization), including itself.
    pub fn siblings(&self, asn: AsNumber) -> Vec<AsNumber> {
        self.org_members
            .values()
            .find(|members| members.contains(&asn))
            .cloned()
            .unwrap_or_else(|| vec![asn])
    }

    /// Relationship as the bdrmap heuristics consume it: is `a` a customer
    /// of `b`?
    pub fn is_customer_of(&self, a: AsNumber, b: AsNumber) -> bool {
        self.c2p.contains(&(a, b))
    }

    /// Are `a` and `b` settlement-free peers?
    pub fn are_peers(&self, a: AsNumber, b: AsNumber) -> bool {
        self.p2p.contains(&(a, b)) || self.p2p.contains(&(b, a))
    }

    /// All routed prefixes (what a VP traceroutes toward, §3.2: "trace the
    /// path to every routed prefix observed in BGP").
    pub fn routed_prefixes(&self) -> &[(Prefix, AsNumber)] {
        &self.prefix2as
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::{AsInfo, AsKind};

    fn asn(n: u32) -> AsNumber {
        AsNumber(n)
    }

    fn build() -> Artifacts {
        let mut g = AsGraph::new();
        for (n, org) in [(10u32, "orgA"), (11, "orgA"), (20, "orgB")] {
            g.add_as(AsInfo {
                asn: asn(n),
                name: format!("as{n}"),
                kind: AsKind::Transit,
                org: org.into(),
                pops: vec!["nyc".into()],
            });
        }
        g.add_c2p(asn(10), asn(20));
        g.add_p2p(asn(10), asn(11));
        let mut addr = Addressing::new();
        for a in [asn(10), asn(11), asn(20)] {
            addr.register(a);
        }
        Artifacts::build(&g, &addr, &[(asn(10), asn(11))])
    }

    #[test]
    fn origin_lookup() {
        let a = build();
        assert_eq!(a.origin(Ipv4::new(10, 0, 5, 5)), Some(asn(10)));
        assert_eq!(a.origin(Ipv4::new(10, 2, 0, 1)), Some(asn(20)));
        assert_eq!(a.origin(Ipv4::new(10, 99, 0, 1)), None);
    }

    #[test]
    fn ixp_membership() {
        let a = build();
        assert!(a.is_ixp(Ipv4::new(10, 250, 0, 3)));
        assert!(!a.is_ixp(Ipv4::new(10, 0, 0, 3)));
    }

    #[test]
    fn siblings_via_org() {
        let a = build();
        let sib = a.siblings(asn(10));
        assert!(sib.contains(&asn(10)) && sib.contains(&asn(11)));
        assert_eq!(a.siblings(asn(20)), vec![asn(20)]);
        assert_eq!(a.siblings(asn(999)), vec![asn(999)]);
    }

    #[test]
    fn relationships() {
        let a = build();
        assert!(a.is_customer_of(asn(10), asn(20)));
        assert!(!a.is_customer_of(asn(20), asn(10)));
        assert!(a.are_peers(asn(10), asn(11)));
        assert!(a.are_peers(asn(11), asn(10)));
    }
}
