//! Interdomain route computation under the Gao-Rexford conditions.
//!
//! For every destination AS we compute, at every other AS, the preferred
//! next-hop AS using the standard policy model:
//!
//! * **Preference**: routes learned from customers beat routes learned from
//!   peers beat routes learned from providers; ties break on shorter AS-path
//!   length, then on lowest next-hop ASN (a deterministic stand-in for
//!   router-id tie-breaking).
//! * **Export (valley-free)**: an AS exports customer routes to everyone,
//!   but routes learned from a peer or provider only to its customers.
//!
//! The result is the AS-level forwarding function that the router-level
//! compiler (see [`crate::compile`]) turns into per-router FIBs, with
//! hot-potato egress selection among the parallel links to the chosen
//! next-hop AS.

use crate::asgraph::{AsGraph, Neighborhood};
use manic_netsim::AsNumber;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// How the selected route was learned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteKind {
    // Order matters: lower = more preferred.
    /// Destination is the AS itself.
    Origin,
    /// Learned from a customer.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider.
    Provider,
}

/// Route selected by one AS toward one destination AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    pub kind: RouteKind,
    /// AS-path length in AS hops (0 at the origin).
    pub path_len: u32,
    /// The neighbor the traffic is handed to (== self at the origin).
    pub next_hop: AsNumber,
}

/// Complete routing state: `route(src, dst)` for all reachable pairs.
#[derive(Debug, Default)]
pub struct Routing {
    /// dst -> (src -> route)
    tables: HashMap<AsNumber, BTreeMap<AsNumber, Route>>,
}

impl Routing {
    /// Compute routes for every destination in the graph.
    pub fn compute(graph: &AsGraph) -> Self {
        let mut tables = HashMap::new();
        for dst in graph.ases() {
            tables.insert(dst.asn, Self::compute_for(graph, dst.asn));
        }
        Routing { tables }
    }

    /// The route `src` uses toward `dst`, if reachable.
    pub fn route(&self, src: AsNumber, dst: AsNumber) -> Option<Route> {
        self.tables.get(&dst)?.get(&src).copied()
    }

    /// Next-hop AS from `src` toward `dst` (None at origin or unreachable).
    pub fn next_as(&self, src: AsNumber, dst: AsNumber) -> Option<AsNumber> {
        let r = self.route(src, dst)?;
        if r.kind == RouteKind::Origin {
            None
        } else {
            Some(r.next_hop)
        }
    }

    /// Full AS path from `src` to `dst` (inclusive of both endpoints).
    /// Panics on routing loops, which the Gao-Rexford computation cannot
    /// produce; used heavily in tests.
    pub fn as_path(&self, src: AsNumber, dst: AsNumber) -> Option<Vec<AsNumber>> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            let next = self.next_as(cur, dst)?;
            assert!(!path.contains(&next), "routing loop at {next} toward {dst}");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Per-destination table computation (three-phase BFS).
    fn compute_for(graph: &AsGraph, dst: AsNumber) -> BTreeMap<AsNumber, Route> {
        let mut best: BTreeMap<AsNumber, Route> = BTreeMap::new();
        best.insert(dst, Route { kind: RouteKind::Origin, path_len: 0, next_hop: dst });

        // Phase 1 — customer routes: propagate from dst upward along
        // customer->provider edges. A provider learns the route from its
        // customer and may re-export it upward (customer routes export to
        // everyone). BFS by path length; ties broken by lowest next-hop ASN
        // (we process neighbor offers in sorted order and only accept
        // strictly better ones).
        let mut queue = VecDeque::from([dst]);
        while let Some(cur) = queue.pop_front() {
            let cur_route = best[&cur];
            let mut providers = graph.providers(cur);
            providers.sort();
            for p in providers {
                let cand = Route {
                    kind: RouteKind::Customer,
                    path_len: cur_route.path_len + 1,
                    next_hop: cur,
                };
                if Self::better(best.get(&p), cand) {
                    best.insert(p, cand);
                    queue.push_back(p);
                }
            }
        }

        // Phase 2 — peer routes: an AS adjacent via p2p to any AS holding a
        // customer (or origin) route gets a one-hop-extended peer route.
        // Peer routes are not re-exported to peers/providers, so no
        // propagation beyond a single peering edge.
        let holders: Vec<(AsNumber, Route)> =
            best.iter().map(|(&a, &r)| (a, r)).collect();
        for (holder, route) in holders {
            if route.kind > RouteKind::Customer {
                continue;
            }
            let mut peers = graph.peers(holder);
            peers.sort();
            for peer in peers {
                let cand = Route {
                    kind: RouteKind::Peer,
                    path_len: route.path_len + 1,
                    next_hop: holder,
                };
                if Self::better(best.get(&peer), cand) {
                    best.insert(peer, cand);
                }
            }
        }

        // Phase 3 — provider routes: propagate downward along
        // provider->customer edges from every AS that has any route. BFS in
        // order of path length so shorter provider routes win.
        let mut frontier: Vec<AsNumber> = best.keys().copied().collect();
        frontier.sort_by_key(|a| (best[a].path_len, a.0));
        let mut queue: VecDeque<AsNumber> = frontier.into();
        while let Some(cur) = queue.pop_front() {
            let cur_route = best[&cur];
            let mut customers = graph.customers(cur);
            customers.sort();
            for c in customers {
                let cand = Route {
                    kind: RouteKind::Provider,
                    path_len: cur_route.path_len + 1,
                    next_hop: cur,
                };
                if Self::better(best.get(&c), cand) {
                    best.insert(c, cand);
                    queue.push_back(c);
                }
            }
        }

        best
    }

    /// Is `cand` strictly preferred over the incumbent?
    fn better(incumbent: Option<&Route>, cand: Route) -> bool {
        match incumbent {
            None => true,
            Some(inc) => {
                (cand.kind, cand.path_len, cand.next_hop.0)
                    < (inc.kind, inc.path_len, inc.next_hop.0)
            }
        }
    }
}

/// Check that an AS path is valley-free and respects export rules:
/// the path (from source to destination) must consist of zero or more
/// customer->provider steps, at most one peer step, then zero or more
/// provider->customer steps.
pub fn is_valley_free(graph: &AsGraph, path: &[AsNumber]) -> bool {
    #[derive(PartialEq, PartialOrd)]
    enum Phase {
        Up,
        Peered,
        Down,
    }
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let hood = graph
            .neighbors(w[0])
            .into_iter()
            .find(|(n, _)| *n == w[1])
            .map(|(_, h)| h);
        let Some(hood) = hood else { return false };
        match hood {
            Neighborhood::Provider => {
                // Going up is only allowed before any peer/down step.
                if phase > Phase::Up {
                    return false;
                }
            }
            Neighborhood::Peer => {
                if phase > Phase::Up {
                    return false;
                }
                phase = Phase::Peered;
            }
            Neighborhood::Customer => {
                phase = Phase::Down;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asgraph::{AsInfo, AsKind};

    fn asn(n: u32) -> AsNumber {
        AsNumber(n)
    }

    fn add(g: &mut AsGraph, n: u32, kind: AsKind) {
        g.add_as(AsInfo {
            asn: asn(n),
            name: format!("as{n}"),
            kind,
            org: format!("org{n}"),
            pops: vec!["nyc".into()],
        });
    }

    /// Classic motif:
    ///         T1 --- T2         (peers)
    ///        /  \    |
    ///      A     B   C          (A,B customers of T1; C customer of T2)
    ///      |
    ///      S                    (stub customer of A)
    /// plus A peers with C.
    fn world() -> AsGraph {
        let mut g = AsGraph::new();
        add(&mut g, 1, AsKind::Transit); // T1
        add(&mut g, 2, AsKind::Transit); // T2
        add(&mut g, 10, AsKind::AccessIsp); // A
        add(&mut g, 11, AsKind::AccessIsp); // B
        add(&mut g, 12, AsKind::Content); // C
        add(&mut g, 20, AsKind::Stub); // S
        g.add_p2p(asn(1), asn(2));
        g.add_c2p(asn(10), asn(1));
        g.add_c2p(asn(11), asn(1));
        g.add_c2p(asn(12), asn(2));
        g.add_c2p(asn(20), asn(10));
        g.add_p2p(asn(10), asn(12));
        g
    }

    #[test]
    fn customer_routes_preferred() {
        let g = world();
        let r = Routing::compute(&g);
        // T1 reaches S via its customer A (customer route), not any other way.
        let route = r.route(asn(1), asn(20)).unwrap();
        assert_eq!(route.kind, RouteKind::Customer);
        assert_eq!(route.next_hop, asn(10));
        assert_eq!(r.as_path(asn(1), asn(20)).unwrap(), vec![asn(1), asn(10), asn(20)]);
    }

    #[test]
    fn peer_route_beats_provider_route() {
        let g = world();
        let r = Routing::compute(&g);
        // A -> C: direct peering (peer route, len 1) beats A->T1->T2->C
        // (provider route, len 3).
        let route = r.route(asn(10), asn(12)).unwrap();
        assert_eq!(route.kind, RouteKind::Peer);
        assert_eq!(route.next_hop, asn(12));
    }

    #[test]
    fn provider_route_as_last_resort() {
        let g = world();
        let r = Routing::compute(&g);
        // B -> C must go up to T1, across the T1-T2 peering, down to C.
        let path = r.as_path(asn(11), asn(12)).unwrap();
        assert_eq!(path, vec![asn(11), asn(1), asn(2), asn(12)]);
        assert_eq!(r.route(asn(11), asn(12)).unwrap().kind, RouteKind::Provider);
    }

    #[test]
    fn no_valley_paths() {
        let g = world();
        let r = Routing::compute(&g);
        let all: Vec<AsNumber> = g.ases().map(|i| i.asn).collect();
        for &src in &all {
            for &dst in &all {
                if src == dst {
                    continue;
                }
                let path = r.as_path(src, dst).expect("connected world");
                assert!(is_valley_free(&g, &path), "valley in {path:?}");
            }
        }
    }

    #[test]
    fn peer_routes_not_transited() {
        let g = world();
        let r = Routing::compute(&g);
        // S -> C: S's provider A has a peer route to C, which A exports to
        // its customer S. Path S-A-C.
        assert_eq!(r.as_path(asn(20), asn(12)).unwrap(), vec![asn(20), asn(10), asn(12)]);
        // But T1 must NOT route to C via its customer A's peering (A would
        // not export a peer route to its provider): T1 goes via T2.
        assert_eq!(r.as_path(asn(1), asn(12)).unwrap(), vec![asn(1), asn(2), asn(12)]);
    }

    #[test]
    fn origin_route() {
        let g = world();
        let r = Routing::compute(&g);
        let route = r.route(asn(10), asn(10)).unwrap();
        assert_eq!(route.kind, RouteKind::Origin);
        assert_eq!(r.next_as(asn(10), asn(10)), None);
    }

    #[test]
    fn disconnected_pair_unreachable() {
        let mut g = world();
        add(&mut g, 99, AsKind::Stub);
        let r = Routing::compute(&g);
        assert!(r.route(asn(10), asn(99)).is_none());
        assert!(r.as_path(asn(10), asn(99)).is_none());
    }

    #[test]
    fn valley_detector_rejects_valleys() {
        let g = world();
        // B -> T1 -> A -> S is fine (up, down, down)...
        assert!(is_valley_free(&g, &[asn(11), asn(1), asn(10), asn(20)]));
        // ...but A -> T1 -> B is up then down: fine too.
        assert!(is_valley_free(&g, &[asn(10), asn(1), asn(11)]));
        // S -> A -> C -> T2: peer step then *up* — a valley.
        assert!(!is_valley_free(&g, &[asn(20), asn(10), asn(12), asn(2)]));
        // T2 -> T1 -> T2? unknown edge direction repeats — not adjacent twice.
        // A -> C -> T2 -> T1: peer then up — valley.
        assert!(!is_valley_free(&g, &[asn(10), asn(12), asn(2)]));
    }
}
