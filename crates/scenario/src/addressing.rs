//! Address-space allocation for simulated ASes.
//!
//! Every AS receives one /16 from 10.0.0.0/8, carved as follows:
//!
//! ```text
//! 10.<i>.0.0/16         announced block of AS i
//!   10.<i>.<p>.0/24     infrastructure subnet of PoP p (p < 32): router
//!                       interfaces, VP access links
//!   10.<i>.64.0/18      host space, terminated at the AS's host router —
//!                       these are the "destinations in the address space of
//!                       the neighbor network" TSLP prefers (§3.1)
//!   10.<i>.200.0/22     interdomain link /30s *owned by this AS*
//! ```
//!
//! Interdomain /30 ownership follows operational convention: the provider
//! numbers customer links; peering links are numbered by the lower-ASN side.
//! This reproduces the border-mapping ambiguity bdrmap has to solve — the
//! far side of a link often answers from the *near* network's address space.
//!
//! The IXP LAN is 10.250.0.0/24, outside every AS block.

use manic_netsim::{AsNumber, Ipv4, Prefix};
use std::collections::BTreeMap;

/// Per-AS allocation state.
#[derive(Debug, Clone)]
pub struct AsAddressing {
    pub asn: AsNumber,
    /// Index of the AS (second octet of all its addresses).
    pub index: u8,
    /// The announced /16.
    pub block: Prefix,
    /// Host space terminated at the host router.
    pub host_prefix: Prefix,
    /// Next free host offset within each PoP subnet.
    pop_next: BTreeMap<u8, u32>,
    /// Next free /30 slot in the linknet block.
    linknet_next: u32,
    /// Next host address offset.
    host_next: u32,
}

impl AsAddressing {
    fn new(asn: AsNumber, index: u8) -> Self {
        let block = Prefix::new(Ipv4::new(10, index, 0, 0), 16);
        let host_prefix = Prefix::new(Ipv4::new(10, index, 64, 0), 18);
        AsAddressing { asn, index, block, host_prefix, pop_next: BTreeMap::new(), linknet_next: 0, host_next: 0 }
    }

    /// Next infrastructure address in PoP `p`'s /24 (p must be < 32).
    pub fn next_pop_addr(&mut self, pop_index: u8) -> Ipv4 {
        assert!(pop_index < 32, "PoP index {pop_index} exceeds the /24 plan");
        let next = self.pop_next.entry(pop_index).or_insert(1);
        assert!(*next < 255, "PoP subnet exhausted for AS {}", self.asn);
        let addr = Ipv4::new(10, self.index, pop_index, *next as u8);
        *next += 1;
        addr
    }

    /// The /24 infrastructure subnet of PoP `p`.
    pub fn pop_subnet(&self, pop_index: u8) -> Prefix {
        Prefix::new(Ipv4::new(10, self.index, pop_index, 0), 24)
    }

    /// Allocate a fresh /30 linknet; returns `(prefix, addr_1, addr_2)`.
    pub fn next_linknet(&mut self) -> (Prefix, Ipv4, Ipv4) {
        assert!(self.linknet_next < 256, "linknet block exhausted for AS {}", self.asn);
        let slot = self.linknet_next;
        self.linknet_next += 1;
        // 10.i.200.0/22 == 4 x /24; each /24 holds 64 /30s.
        let third = 200 + (slot / 64) as u8;
        let fourth = ((slot % 64) * 4) as u8;
        let base = Ipv4::new(10, self.index, third, fourth);
        (Prefix::new(base, 30), Ipv4(base.0 + 1), Ipv4(base.0 + 2))
    }

    /// The whole linknet block.
    pub fn linknet_block(&self) -> Prefix {
        Prefix::new(Ipv4::new(10, self.index, 200, 0), 22)
    }

    /// A responding destination address within the host space.
    pub fn next_host_addr(&mut self) -> Ipv4 {
        assert!((self.host_next as u64) < self.host_prefix.size() - 2, "host space exhausted");
        let addr = self.host_prefix.nth(self.host_next + 1);
        self.host_next += 1;
        addr
    }
}

/// Global allocator: one block per AS plus the IXP LAN.
#[derive(Debug, Default)]
pub struct Addressing {
    per_as: BTreeMap<AsNumber, AsAddressing>,
    order: Vec<AsNumber>,
    ixp_next: u32,
}

/// The shared IXP LAN prefix (Packet-Clearing-House-style exchange list).
pub fn ixp_lan() -> Prefix {
    Prefix::new(Ipv4::new(10, 250, 0, 0), 24)
}

impl Addressing {
    pub fn new() -> Self {
        Addressing::default()
    }

    /// Register an AS and allocate its /16. ASes get indices in
    /// registration order; at most 200 ASes fit the plan.
    pub fn register(&mut self, asn: AsNumber) {
        assert!(!self.per_as.contains_key(&asn), "AS {asn} already registered");
        let index = self.order.len();
        assert!(index < 200, "address plan supports at most 200 ASes");
        self.order.push(asn);
        self.per_as.insert(asn, AsAddressing::new(asn, index as u8));
    }

    pub fn of(&self, asn: AsNumber) -> &AsAddressing {
        &self.per_as[&asn]
    }

    pub fn of_mut(&mut self, asn: AsNumber) -> &mut AsAddressing {
        self.per_as.get_mut(&asn).expect("AS not registered")
    }

    /// Two addresses on the IXP LAN for an exchange-fabric "link".
    pub fn next_ixp_pair(&mut self) -> (Ipv4, Ipv4) {
        assert!(self.ixp_next + 2 < 255, "IXP LAN exhausted");
        let a = ixp_lan().nth(self.ixp_next + 1);
        let b = ixp_lan().nth(self.ixp_next + 2);
        self.ixp_next += 2;
        (a, b)
    }

    /// Which registered AS owns `addr` by block coverage (the prefix2as
    /// view; the IXP LAN belongs to no AS).
    pub fn block_owner(&self, addr: Ipv4) -> Option<AsNumber> {
        // Second octet is the AS index by construction.
        let idx = addr.octets()[1] as usize;
        self.order.get(idx).copied().filter(|asn| self.of(*asn).block.contains(addr))
    }

    pub fn registered(&self) -> impl Iterator<Item = AsNumber> + '_ {
        self.order.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_disjoint_and_indexed() {
        let mut a = Addressing::new();
        a.register(AsNumber(7922));
        a.register(AsNumber(15169));
        assert_eq!(a.of(AsNumber(7922)).block.to_string(), "10.0.0.0/16");
        assert_eq!(a.of(AsNumber(15169)).block.to_string(), "10.1.0.0/16");
        assert_eq!(a.block_owner(Ipv4::new(10, 1, 33, 4)), Some(AsNumber(15169)));
        assert_eq!(a.block_owner(Ipv4::new(10, 9, 0, 1)), None);
        assert_eq!(a.block_owner(Ipv4::new(10, 250, 0, 1)), None);
    }

    #[test]
    fn pop_addrs_unique() {
        let mut a = Addressing::new();
        a.register(AsNumber(1));
        let s = a.of_mut(AsNumber(1));
        let x = s.next_pop_addr(0);
        let y = s.next_pop_addr(0);
        let z = s.next_pop_addr(3);
        assert_ne!(x, y);
        assert_eq!(x.octets()[2], 0);
        assert_eq!(z.octets()[2], 3);
        assert!(s.pop_subnet(0).contains(x));
        assert!(!s.pop_subnet(0).contains(z));
    }

    #[test]
    fn linknets_are_slash30s() {
        let mut a = Addressing::new();
        a.register(AsNumber(1));
        let s = a.of_mut(AsNumber(1));
        let (p1, a1, b1) = s.next_linknet();
        let (p2, ..) = s.next_linknet();
        assert_eq!(p1.len(), 30);
        assert_ne!(p1, p2);
        assert!(p1.contains(a1) && p1.contains(b1));
        assert!(s.linknet_block().covers(&p1));
        // Exactly the .1 and .2 of the /30.
        assert_eq!(a1.0, p1.addr().0 + 1);
        assert_eq!(b1.0, p1.addr().0 + 2);
    }

    #[test]
    fn many_linknets_stay_in_block() {
        let mut a = Addressing::new();
        a.register(AsNumber(1));
        let s = a.of_mut(AsNumber(1));
        for _ in 0..200 {
            let (p, ..) = s.next_linknet();
            assert!(s.linknet_block().covers(&p));
        }
    }

    #[test]
    fn host_addrs_in_host_space() {
        let mut a = Addressing::new();
        a.register(AsNumber(1));
        let s = a.of_mut(AsNumber(1));
        let h1 = s.next_host_addr();
        let h2 = s.next_host_addr();
        assert_ne!(h1, h2);
        assert!(s.host_prefix.contains(h1));
    }

    #[test]
    fn ixp_pairs_on_lan() {
        let mut a = Addressing::new();
        let (x, y) = a.next_ixp_pair();
        assert!(ixp_lan().contains(x) && ixp_lan().contains(y));
        assert_ne!(x, y);
        let (z, _) = a.next_ixp_pair();
        assert_ne!(x, z);
    }
}
