//! Congestion scheduling: scripting which interdomain links congest, when,
//! and how hard.
//!
//! The longitudinal study (§6) observes congestion episodes that build up
//! over months, persist, and dissipate — e.g. Comcast–Google congestion
//! peaking in December 2016 and disappearing by July 2017 while
//! Comcast–Tata rises in the second half of 2017 (Figure 7). A
//! [`CongestionEpisode`] expresses one such arc: an (access ISP, provider)
//! pair, a month range, a target *daily overload duration*, and the fraction
//! of the pair's parallel links affected.
//!
//! The daily duration is the natural control variable because the paper's
//! congestion metric is the fraction of the day a link spends congested
//! (day-link congestion percentage). [`amplitude_for_duration`] inverts the
//! diurnal demand shape to find the amplitude that keeps utilization at or
//! above capacity for the requested number of hours per day.

use manic_netsim::traffic::{DiurnalDemand, MonthScale};
use manic_netsim::AsNumber;

/// One scripted congestion arc between an access ISP and a transit/content
/// provider.
#[derive(Debug, Clone)]
pub struct CongestionEpisode {
    /// Access ISP side.
    pub ap: AsNumber,
    /// Transit / content provider side.
    pub tcp: AsNumber,
    /// First month (index since Jan 2016) of the episode.
    pub start_month: u32,
    /// One past the last month.
    pub end_month: u32,
    /// Hours per day of overload at the episode's peak.
    pub daily_hours: f64,
    /// Fraction of the pair's parallel links affected, in (0, 1].
    pub link_fraction: f64,
}

impl CongestionEpisode {
    pub fn new(ap: AsNumber, tcp: AsNumber, months: std::ops::Range<u32>, daily_hours: f64) -> Self {
        assert!(months.start < months.end, "empty episode");
        assert!(daily_hours > 0.0 && daily_hours < 24.0);
        CongestionEpisode {
            ap,
            tcp,
            start_month: months.start,
            end_month: months.end,
            daily_hours,
            link_fraction: 1.0,
        }
    }

    /// Restrict the episode to a fraction of the pair's links.
    pub fn on_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f <= 1.0);
        self.link_fraction = f;
        self
    }
}

/// Reference demand profile used to invert the shape: same peak geometry the
/// worlds install, with amplitude 1 so `shape()` can be sampled.
fn reference(base: f64) -> DiurnalDemand {
    DiurnalDemand {
        base,
        amplitude: 1.0,
        peak_hour: 21.0,
        peak_width: 2.6,
        tz_offset_hours: 0,
        weekend_factor: 1.0,
        monthly: MonthScale::flat(),
        noise_amp: 0.0,
        noise_seed: 0,
    }
}

/// Hours per day for which `base + amplitude * shape(hour) >= 1` — the daily
/// overload duration produced by a given amplitude.
pub fn overload_hours(base: f64, amplitude: f64) -> f64 {
    let d = reference(base);
    // Integrate over the day at 1-minute resolution.
    let mut minutes = 0u32;
    for m in 0..(24 * 60) {
        let h = m as f64 / 60.0;
        if base + amplitude * d.shape(h) >= 1.0 {
            minutes += 1;
        }
    }
    minutes as f64 / 60.0
}

/// Invert [`overload_hours`]: the demand amplitude that yields `hours` of
/// overload per day on top of `base` utilization. Solved by bisection; the
/// duration is monotone in the amplitude.
pub fn amplitude_for_duration(base: f64, hours: f64) -> f64 {
    assert!((0.0..1.0).contains(&base), "base utilization must be < 1");
    assert!(hours > 0.0 && hours < 20.0, "hours out of the invertible range");
    let (mut lo, mut hi) = (0.0f64, 20.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if overload_hours(base, mid) < hours {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Build the month-by-month amplitude schedule for one link given every
/// episode that applies to it, an idle amplitude, and the congested
/// amplitudes. Returns a [`MonthScale`] to multiply into a unit-amplitude
/// demand (the scale *is* the amplitude).
pub fn month_schedule(episodes: &[&CongestionEpisode], base: f64, idle_amplitude: f64) -> MonthScale {
    // Amplitude per month over the 24-month window (plus slack).
    let mut amp = vec![idle_amplitude; 30];
    for ep in episodes {
        let a = amplitude_for_duration(base, ep.daily_hours);
        for m in ep.start_month..ep.end_month.min(30) {
            amp[m as usize] = amp[m as usize].max(a);
        }
    }
    let entries = amp.into_iter().enumerate().map(|(m, a)| (m as u32, a)).collect();
    MonthScale::new(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_monotone_in_amplitude() {
        let h1 = overload_hours(0.55, 0.5);
        let h2 = overload_hours(0.55, 0.8);
        let h3 = overload_hours(0.55, 1.2);
        assert!(h1 <= h2 && h2 <= h3);
        assert_eq!(overload_hours(0.55, 0.1), 0.0);
    }

    #[test]
    fn inversion_roundtrip() {
        for &hours in &[1.0, 2.0, 4.0, 8.0, 12.0] {
            let a = amplitude_for_duration(0.55, hours);
            let got = overload_hours(0.55, a);
            assert!((got - hours).abs() < 0.25, "hours {hours} -> amp {a} -> {got}");
        }
    }

    #[test]
    fn higher_base_needs_less_amplitude() {
        let a_low = amplitude_for_duration(0.40, 3.0);
        let a_high = amplitude_for_duration(0.70, 3.0);
        assert!(a_high < a_low);
    }

    #[test]
    fn month_schedule_applies_episodes() {
        let ap = AsNumber(1);
        let tcp = AsNumber(2);
        let e1 = CongestionEpisode::new(ap, tcp, 3..6, 4.0);
        let e2 = CongestionEpisode::new(ap, tcp, 5..8, 8.0);
        let ms = month_schedule(&[&e1, &e2], 0.55, 0.3);
        let probe = |m: u32| {
            // MonthScale::at takes a SimTime; use month starts.
            ms.at(manic_netsim::time::month_start(m))
        };
        assert_eq!(probe(0), 0.3);
        let a4 = amplitude_for_duration(0.55, 4.0);
        let a8 = amplitude_for_duration(0.55, 8.0);
        assert!((probe(3) - a4).abs() < 1e-9);
        // Overlap month 5 takes the max.
        assert!((probe(5) - a8).abs() < 1e-9);
        assert!((probe(7) - a8).abs() < 1e-9);
        assert_eq!(probe(9), 0.3);
    }

    #[test]
    #[should_panic(expected = "empty episode")]
    fn empty_episode_rejected() {
        CongestionEpisode::new(AsNumber(1), AsNumber(2), 5..5, 2.0);
    }
}
