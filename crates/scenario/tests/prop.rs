//! Property-based tests: routing policy and world-compilation invariants on
//! randomized AS graphs.

use manic_netsim::AsNumber;
use manic_scenario::asgraph::{AsGraph, AsInfo, AsKind};
use manic_scenario::bgp::{is_valley_free, Routing};
use manic_scenario::compile::{compile, CompileConfig};
use proptest::prelude::*;

/// Build a random but well-formed AS graph: a tier-1 clique, mid-tier ASes
/// buying from tier-1s, and stubs buying from mid-tiers, plus random
/// peerings. Always connected through the clique.
fn arb_graph() -> impl Strategy<Value = AsGraph> {
    (
        2usize..4,                                  // tier-1s
        1usize..5,                                  // mids
        0usize..5,                                  // stubs
        prop::collection::vec((any::<u8>(), any::<u8>()), 0..8), // peering picks
    )
        .prop_map(|(n1, n2, n3, peers)| {
            let pops = ["nyc", "chi", "lax", "dfw"];
            let mut g = AsGraph::new();
            let mk = |n: u32, kind| AsInfo {
                asn: AsNumber(n),
                name: format!("as{n}"),
                kind,
                org: format!("org{n}"),
                pops: vec![pops[(n as usize) % pops.len()].to_string(), "nyc".to_string()]
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect(),
            };
            let t1: Vec<u32> = (0..n1 as u32).map(|i| 100 + i).collect();
            let mid: Vec<u32> = (0..n2 as u32).map(|i| 200 + i).collect();
            let stub: Vec<u32> = (0..n3 as u32).map(|i| 300 + i).collect();
            for &a in &t1 {
                g.add_as(mk(a, AsKind::Transit));
            }
            for &a in &mid {
                g.add_as(mk(a, AsKind::AccessIsp));
            }
            for &a in &stub {
                g.add_as(mk(a, AsKind::Stub));
            }
            for i in 0..t1.len() {
                for j in i + 1..t1.len() {
                    g.add_p2p(AsNumber(t1[i]), AsNumber(t1[j]));
                }
            }
            for (i, &m) in mid.iter().enumerate() {
                g.add_c2p(AsNumber(m), AsNumber(t1[i % t1.len()]));
            }
            for (i, &s) in stub.iter().enumerate() {
                g.add_c2p(AsNumber(s), AsNumber(mid[i % mid.len()]));
            }
            // Random extra peerings among mids/stubs.
            let lower: Vec<u32> = mid.iter().chain(&stub).copied().collect();
            for (x, y) in peers {
                if lower.len() < 2 {
                    break;
                }
                let a = lower[x as usize % lower.len()];
                let b = lower[y as usize % lower.len()];
                if a != b && !g.adjacent(AsNumber(a), AsNumber(b)) {
                    g.add_p2p(AsNumber(a), AsNumber(b));
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every computed AS path obeys the valley-free export rules.
    #[test]
    fn routing_is_always_valley_free(g in arb_graph()) {
        let routing = Routing::compute(&g);
        let ases: Vec<AsNumber> = g.ases().map(|i| i.asn).collect();
        for &src in &ases {
            for &dst in &ases {
                if src == dst {
                    continue;
                }
                if let Some(path) = routing.as_path(src, dst) {
                    prop_assert!(is_valley_free(&g, &path), "valley in {path:?}");
                    prop_assert!(path.len() <= ases.len(), "no loops");
                }
            }
        }
    }

    /// Everything is reachable through the tier-1 clique in these graphs.
    #[test]
    fn clique_worlds_fully_connected(g in arb_graph()) {
        let routing = Routing::compute(&g);
        let ases: Vec<AsNumber> = g.ases().map(|i| i.asn).collect();
        for &src in &ases {
            for &dst in &ases {
                prop_assert!(routing.route(src, dst).is_some(), "{src} cannot reach {dst}");
            }
        }
    }

    /// Compiled worlds route every host prefix end to end: a probe from any
    /// VP toward any AS's host space terminates at that AS's host router.
    #[test]
    fn compiled_worlds_route_host_space(g in arb_graph(), seed in 0u64..1000) {
        // Place one VP in the first access ISP (if any).
        let vp_as = g.ases().find(|i| i.kind == AsKind::AccessIsp).map(|i| (i.asn, i.pops[0].clone()));
        let Some((vp_asn, vp_pop)) = vp_as else { return Ok(()) };
        let cfg = CompileConfig { seed, parallel_link_prob: 0.0, ..Default::default() };
        let placements = [(vp_asn, vp_pop.as_str())];
        let world = compile(g, &placements, &[], &cfg).expect("generated graph compiles");
        let vp = &world.vps[0];
        for info in world.graph.ases() {
            let dst = world.host_addr(info.asn, 1);
            let walk = world.net.forward_path(vp.router, dst, 9, 0);
            let last = walk.last().map(|h| h.router);
            if info.asn == vp_asn {
                // Own host space still resolves (possibly zero-hop via bb).
                prop_assert!(walk.is_empty() || last.is_some());
                continue;
            }
            prop_assert_eq!(
                last,
                Some(world.host_routers[&info.asn]),
                "probe from {} to {} must reach {}'s host router",
                vp.name,
                dst,
                info.name
            );
            // And the reply routes back.
            let back = world.net.forward_path(world.host_routers[&info.asn], vp.addr, 9, 0);
            prop_assert_eq!(back.last().map(|h| h.router), Some(vp.router));
        }
    }

    /// TSLP's §7 symmetry property holds structurally in compiled worlds:
    /// the reply to a far-end probe crosses the same interdomain link the
    /// probe expired on.
    #[test]
    fn far_end_replies_cross_the_probed_link(g in arb_graph(), seed in 0u64..1000) {
        let vp_as = g.ases().find(|i| i.kind == AsKind::AccessIsp).map(|i| (i.asn, i.pops[0].clone()));
        let Some((vp_asn, vp_pop)) = vp_as else { return Ok(()) };
        let cfg = CompileConfig { seed, parallel_link_prob: 0.0, ..Default::default() };
        let placements = [(vp_asn, vp_pop.as_str())];
        let world = compile(g, &placements, &[], &cfg).expect("generated graph compiles");
        let vp = &world.vps[0];
        let handle = manic_probing::VpHandle {
            name: vp.name.clone(),
            router: vp.router,
            addr: vp.addr,
        };
        for gt in world.links_of(vp_asn) {
            let far = gt.far_addr_from(vp_asn);
            // Find a destination whose path crosses this link.
            for info in world.graph.ases() {
                let dst = world.host_addr(info.asn, 1);
                let walk = world.net.forward_path(vp.router, dst, 9, 0);
                let Some(pos) = walk.iter().position(|h| h.ingress_addr == far) else { continue };
                let pp = manic_probing::probe_path(&world.net, &handle, dst, (pos + 1) as u8, 9, 0);
                if let Some(pp) = pp {
                    prop_assert!(
                        pp.reply.iter().any(|&(l, _)| l == gt.link),
                        "far-end reply must ride the probed link"
                    );
                }
                break;
            }
        }
    }
}
