//! Inference audit trail: why did the pipeline call this link congested?
//!
//! The paper's §4.2 workflow relies on *manual inspection* of asserted
//! links; the production MANIC system answers operator challenges by showing
//! the evidence. This module records, for every congested/uncongested
//! verdict the inference layer produces, the chain of evidence behind it —
//! which level-shift episodes, which autocorrelation windows, how many bins
//! were quality-masked, which quality flags were in force — so a
//! `LinkStatus` can be explained after the fact (`manic obs explain <link>`)
//! without re-deriving anything.

use crate::journal::Value;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One piece of evidence contributing to a verdict.
#[derive(Debug, Clone)]
pub struct Evidence {
    /// Evidence kind: "level_shift", "masked_bins", "quality_flags",
    /// "autocorr_window", "autocorr_rejected", "elevation", ...
    pub kind: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl Evidence {
    pub fn new(kind: &'static str, fields: Vec<(&'static str, Value)>) -> Self {
        Evidence { kind, fields }
    }

    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    fn to_json(&self) -> String {
        let mut out = format!("{{\"kind\":\"{}\"", self.kind);
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":", crate::json_escape(k)));
            match v {
                Value::Str(s) => {
                    out.push('"');
                    out.push_str(&crate::json_escape(s));
                    out.push('"');
                }
                other => out.push_str(&other.to_string()),
            }
        }
        out.push('}');
        out
    }
}

/// One verdict with its evidence chain.
#[derive(Debug, Clone)]
pub struct AuditRecord {
    /// Sim time at which the verdict was produced.
    pub t: i64,
    pub vp: String,
    /// Near-end interface of the link (host network border).
    pub near: String,
    /// Far-end interface — the paper's link label, and the key `manic obs
    /// explain` looks up.
    pub link: String,
    /// Which detector produced the verdict: "levelshift" (§4.1 reactive
    /// trigger), "autocorr" (§4.2 recurrence), "elevation" (live dashboard).
    pub detector: &'static str,
    pub congested: bool,
    pub evidence: Vec<Evidence>,
}

impl AuditRecord {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let ev: Vec<String> = self.evidence.iter().map(|e| e.to_json()).collect();
        format!(
            "{{\"t\":{},\"vp\":\"{}\",\"near\":\"{}\",\"link\":\"{}\",\"detector\":\"{}\",\
             \"congested\":{},\"evidence\":[{}]}}",
            self.t,
            crate::json_escape(&self.vp),
            crate::json_escape(&self.near),
            crate::json_escape(&self.link),
            self.detector,
            self.congested,
            ev.join(",")
        )
    }

    /// Multi-line human rendering for the CLI.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "t={} vp={} link {} -> {} [{}] verdict: {}\n",
            self.t,
            self.vp,
            self.near,
            self.link,
            self.detector,
            if self.congested { "CONGESTED" } else { "not congested" }
        );
        for e in &self.evidence {
            out.push_str(&format!("    - {}", e.kind));
            for (k, v) in &e.fields {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Bounded store of verdict records (oldest evicted first).
pub struct AuditTrail {
    inner: Mutex<(VecDeque<AuditRecord>, u64)>,
    cap: usize,
}

/// Default capacity: a 22-month US-world study produces tens of thousands of
/// per-window verdicts; keep them all with headroom, but stay bounded.
const DEFAULT_CAP: usize = 262_144;

impl Default for AuditTrail {
    fn default() -> Self {
        AuditTrail::with_capacity(DEFAULT_CAP)
    }
}

impl AuditTrail {
    pub fn with_capacity(cap: usize) -> Self {
        AuditTrail { inner: Mutex::new((VecDeque::new(), 0)), cap: cap.max(1) }
    }

    pub fn record(&self, rec: AuditRecord) {
        if !crate::enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.0.len() >= self.cap {
            inner.0.pop_front();
            inner.1 += 1;
        }
        inner.0.push_back(rec);
    }

    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted since the last clear.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().1
    }

    /// All records for a link (matched on the far-IP label), oldest first.
    pub fn explain(&self, link: &str) -> Vec<AuditRecord> {
        self.inner
            .lock()
            .unwrap()
            .0
            .iter()
            .filter(|r| r.link == link)
            .cloned()
            .collect()
    }

    /// All records, oldest first.
    pub fn all(&self) -> Vec<AuditRecord> {
        self.inner.lock().unwrap().0.iter().cloned().collect()
    }

    /// Distinct link labels with at least one record (for CLI suggestions).
    pub fn links(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut links: Vec<String> = inner.0.iter().map(|r| r.link.clone()).collect();
        links.sort();
        links.dedup();
        links
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.0.clear();
        inner.1 = 0;
    }
}

// Recording is compiled out under `noop`; these tests only make sense
// without it.
#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn rec(t: i64, link: &str, congested: bool) -> AuditRecord {
        AuditRecord {
            t,
            vp: "vp-a".into(),
            near: "10.0.0.1".into(),
            link: link.into(),
            detector: "levelshift",
            congested,
            evidence: vec![Evidence::new(
                "level_shift",
                vec![("baseline_ms", Value::from(20.0)), ("level_ms", Value::from(45.0))],
            )],
        }
    }

    #[test]
    fn explain_filters_by_link() {
        let a = AuditTrail::with_capacity(16);
        a.record(rec(0, "10.1.0.2", true));
        a.record(rec(300, "10.2.0.2", false));
        a.record(rec(600, "10.1.0.2", true));
        let hits = a.explain("10.1.0.2");
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|r| r.congested));
        assert_eq!(a.links(), vec!["10.1.0.2".to_string(), "10.2.0.2".to_string()]);
    }

    #[test]
    fn bounded_with_eviction() {
        let a = AuditTrail::with_capacity(2);
        for t in 0..5 {
            a.record(rec(t, "l", true));
        }
        assert_eq!(a.len(), 2);
        assert_eq!(a.dropped(), 3);
        assert_eq!(a.all()[0].t, 3);
    }

    #[test]
    fn json_and_text_render() {
        let r = rec(42, "10.1.0.2", true);
        let json = r.to_json();
        assert!(json.contains("\"detector\":\"levelshift\""));
        assert!(json.contains("\"congested\":true"));
        assert!(json.contains("\"kind\":\"level_shift\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let text = r.render_text();
        assert!(text.contains("CONGESTED"));
        assert!(text.contains("baseline_ms=20"));
    }
}
