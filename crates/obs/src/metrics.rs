//! Metrics registry: atomic counters, gauges, and log-bucketed histograms.
//!
//! Design goals, in order: (1) the hot path — a counter increment inside
//! `Network::send_probe` — must cost one relaxed atomic add plus one relaxed
//! flag load; (2) no allocation after handle creation, so instrumented code
//! creates its handles once (a `OnceLock`'d struct per subsystem) and clones
//! `Arc`s; (3) export to Prometheus text format and JSON without any
//! third-party dependency.
//!
//! Naming convention: `manic_<crate>_<name>`, with Prometheus-style labels
//! baked into the registry key (`manic_probing_probes_sent{vp="acme-nyc"}`).
//! The full labeled string is the identity; two handles for the same string
//! share the same cell.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Monotone event counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// A counter not attached to any registry (tests, placeholders).
    pub fn detached() -> Self {
        Counter::new()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    fn new() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of finite histogram buckets. Upper bounds are powers of two from
/// `2^-4` (62.5 µs) to `2^23` ms (~2.3 h), which covers everything from ICMP
/// generation delay to pathological simulated RTTs; values above the last
/// bound land in the implicit `+Inf` bucket.
pub const HIST_BUCKETS: usize = 28;

/// Upper bound (`le`) of finite bucket `i`.
pub fn bucket_bound(i: usize) -> f64 {
    debug_assert!(i < HIST_BUCKETS);
    (2.0f64).powi(i as i32 - 4)
}

/// Index of the finite bucket whose bound is the smallest `>= v`, or
/// `HIST_BUCKETS` for the overflow (`+Inf`) bucket. Exact powers of two land
/// on their own bound (`le` is inclusive, as in Prometheus).
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= bucket_bound(0) {
        // Zero, negative, and NaN observations all clamp into the first
        // bucket: the histogram records latencies, where those only arise
        // from upstream bugs, and dropping them would break count == sum of
        // buckets.
        return 0;
    }
    // floor(log2(v)) from the IEEE 754 exponent (v is normal here: it
    // exceeds 0.0625).
    let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
    let mut idx = exp + 4;
    if idx >= 0 && (idx as usize) < HIST_BUCKETS && v > bucket_bound(idx as usize) {
        idx += 1;
    }
    idx.clamp(0, HIST_BUCKETS as i32) as usize
}

struct HistogramCell {
    /// Per-bucket (non-cumulative) counts; index [`HIST_BUCKETS`] is `+Inf`.
    buckets: [AtomicU64; HIST_BUCKETS + 1],
    /// Sum of observations in microseconds (observations are milliseconds);
    /// integer micro-units keep the sum a single atomic add.
    sum_micros: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }
}

/// Log-bucketed latency histogram (milliseconds).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramCell::new()))
    }

    /// A histogram not attached to any registry (tests).
    pub fn detached() -> Self {
        Histogram::new()
    }

    #[inline]
    pub fn observe(&self, v_ms: f64) {
        if !crate::enabled() {
            return;
        }
        let c = &self.0;
        c.buckets[bucket_index(v_ms)].fetch_add(1, Ordering::Relaxed);
        let micros = if v_ms.is_finite() && v_ms > 0.0 { (v_ms * 1_000.0) as u64 } else { 0 };
        c.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations — derived from the bucket counts at read time so
    /// the hot path pays one bucket add, not a second total add.
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    pub fn sum_ms(&self) -> f64 {
        self.0.sum_micros.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Non-cumulative bucket counts (`HIST_BUCKETS` finite + `+Inf` last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Fold another histogram's observations into this one.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0
            .sum_micros
            .fetch_add(other.0.sum_micros.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. One global instance (see
/// [`crate::registry`]) serves the whole process; standalone instances exist
/// for tests.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// Render `name{k1="v1",k2="v2"}` with Prometheus label-value escaping.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&prom_escape(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, double quote, newline.
pub fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Split a registry key into `(base_name, label_block)`;
/// `"a{b=\"c\"}"` -> `("a", "b=\"c\"")`, `"a"` -> `("a", "")`.
fn split_labels(full: &str) -> (&str, &str) {
    match full.find('{') {
        Some(i) => (&full[..i], full[i + 1..].trim_end_matches('}')),
        None => (full, ""),
    }
}

/// Join an existing label block with one more `k="v"` pair.
fn join_labels(block: &str, extra: &str) -> String {
    if block.is_empty() {
        extra.to_string()
    } else {
        format!("{block},{extra}")
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        full_name: &str,
        extract: impl Fn(&Metric) -> Option<T>,
        make: impl Fn() -> Metric,
    ) -> T {
        if let Some(m) = self.metrics.read().unwrap().get(full_name) {
            if let Some(v) = extract(m) {
                return v;
            }
        }
        let mut w = self.metrics.write().unwrap();
        let m = w.entry(full_name.to_string()).or_insert_with(make);
        extract(m).unwrap_or_else(|| {
            panic!("metric {full_name} already registered with a different type")
        })
    }

    /// Get-or-create a counter under its full (possibly labeled) name.
    pub fn counter(&self, full_name: &str) -> Counter {
        self.get_or_insert(
            full_name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || Metric::Counter(Counter::new()),
        )
    }

    /// Get-or-create a counter with labels.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&labeled(name, labels))
    }

    pub fn gauge(&self, full_name: &str) -> Gauge {
        self.get_or_insert(
            full_name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || Metric::Gauge(Gauge::new()),
        )
    }

    pub fn histogram(&self, full_name: &str) -> Histogram {
        self.get_or_insert(
            full_name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || Metric::Histogram(Histogram::new()),
        )
    }

    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(&labeled(name, labels))
    }

    /// Current value of a counter, 0 when absent.
    pub fn counter_value(&self, full_name: &str) -> u64 {
        match self.metrics.read().unwrap().get(full_name) {
            Some(Metric::Counter(c)) => c.get(),
            _ => 0,
        }
    }

    /// Sum of every counter whose full name starts with `prefix` (the
    /// drop-reason conservation checks sum `..._dropped{reason=...}` series).
    pub fn sum_counters_with_prefix(&self, prefix: &str) -> u64 {
        self.metrics
            .read()
            .unwrap()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, m)| match m {
                Metric::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    /// All `(full_name, value)` counter pairs, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.metrics
            .read()
            .unwrap()
            .iter()
            .filter_map(|(k, m)| match m {
                Metric::Counter(c) => Some((k.clone(), c.get())),
                _ => None,
            })
            .collect()
    }

    /// Zero every metric *in place*. Registrations survive so that handles
    /// cached in instrumented crates (`OnceLock`'d per-subsystem structs)
    /// stay attached to the cells the exporters read.
    pub fn reset(&self) {
        for m in self.metrics.read().unwrap().values() {
            match m {
                Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                Metric::Histogram(h) => {
                    for b in h.0.buckets.iter() {
                        b.store(0, Ordering::Relaxed);
                    }
                    h.0.sum_micros.store(0, Ordering::Relaxed);
                }
            }
        }
    }

    /// Render the whole registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().unwrap();
        // Group by base name so each gets exactly one # TYPE line even when
        // labeled and unlabeled variants interleave in sort order.
        let mut groups: BTreeMap<&str, Vec<(&String, &Metric)>> = BTreeMap::new();
        for (k, m) in metrics.iter() {
            groups.entry(split_labels(k).0).or_default().push((k, m));
        }
        let mut out = String::new();
        for (base, entries) in groups {
            let kind = match entries[0].1 {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {base} {kind}\n"));
            for (full, m) in entries {
                let (_, labels) = split_labels(full);
                match m {
                    Metric::Counter(c) => out.push_str(&format!("{full} {}\n", c.get())),
                    Metric::Gauge(g) => out.push_str(&format!("{full} {}\n", g.get())),
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, n) in counts.iter().take(HIST_BUCKETS).enumerate() {
                            cum += n;
                            let lb = join_labels(labels, &format!("le=\"{}\"", bucket_bound(i)));
                            out.push_str(&format!("{base}_bucket{{{lb}}} {cum}\n"));
                        }
                        let lb = join_labels(labels, "le=\"+Inf\"");
                        out.push_str(&format!("{base}_bucket{{{lb}}} {}\n", h.count()));
                        let tail = if labels.is_empty() {
                            String::new()
                        } else {
                            format!("{{{labels}}}")
                        };
                        out.push_str(&format!("{base}_sum{tail} {}\n", h.sum_ms()));
                        out.push_str(&format!("{base}_count{tail} {}\n", h.count()));
                    }
                }
            }
        }
        out
    }

    /// Render the registry as one JSON object (the metrics sidecar format):
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.read().unwrap();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (k, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    counters.push_str(&format!("\"{}\":{}", crate::json_escape(k), c.get()));
                }
                Metric::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    gauges.push_str(&format!("\"{}\":{}", crate::json_escape(k), g.get()));
                }
                Metric::Histogram(h) => {
                    if !hists.is_empty() {
                        hists.push(',');
                    }
                    let counts = h.bucket_counts();
                    let buckets: Vec<String> = counts
                        .iter()
                        .take(HIST_BUCKETS)
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(i, n)| format!("{{\"le\":{},\"n\":{n}}}", bucket_bound(i)))
                        .chain((counts[HIST_BUCKETS] > 0).then(|| {
                            format!("{{\"le\":\"+Inf\",\"n\":{}}}", counts[HIST_BUCKETS])
                        }))
                        .collect();
                    hists.push_str(&format!(
                        "\"{}\":{{\"count\":{},\"sum_ms\":{},\"buckets\":[{}]}}",
                        crate::json_escape(k),
                        h.count(),
                        h.sum_ms(),
                        buckets.join(",")
                    ));
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}")
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundary_values() {
        // Exact bounds are inclusive: 2^k lands in the bucket bounded by 2^k.
        assert_eq!(bucket_index(bucket_bound(0)), 0, "0.0625 -> first bucket");
        assert_eq!(bucket_index(1.0), 4, "1.0 == bound of bucket 4");
        assert_eq!(bucket_index(2.0), 5);
        assert_eq!(bucket_index(2.0 + 1e-12), 6, "just above a bound moves up");
        assert_eq!(bucket_index(1.999), 5);
        // Below the first bound, zero, negative, NaN: clamp to bucket 0.
        assert_eq!(bucket_index(0.01), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // Above the last bound: overflow bucket.
        let top = bucket_bound(HIST_BUCKETS - 1);
        assert_eq!(bucket_index(top), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(top * 2.0), HIST_BUCKETS);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS);
        // Every bound maps to its own bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound {i}");
        }
    }

    #[test]
    fn histogram_count_equals_bucket_sum() {
        let h = Histogram::detached();
        for v in [0.01, 0.5, 1.0, 7.3, 250.0, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 6);
        assert!((h.sum_ms() - (0.01 + 0.5 + 1.0 + 7.3 + 250.0 + 1e9)).abs() / 1e9 < 1e-3);
    }

    #[test]
    fn histogram_merge_adds_everything() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        a.observe(1.0);
        a.observe(100.0);
        b.observe(3.0);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.bucket_counts().iter().sum::<u64>(), 3);
        assert!((a.sum_ms() - 104.0).abs() < 1e-6);
        // b unchanged.
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn registry_counters_and_prefix_sums() {
        let r = Registry::new();
        r.counter("manic_test_a").add(3);
        r.counter_labeled("manic_test_dropped", &[("reason", "x")]).add(2);
        r.counter_labeled("manic_test_dropped", &[("reason", "y")]).inc();
        assert_eq!(r.counter_value("manic_test_a"), 3);
        assert_eq!(r.sum_counters_with_prefix("manic_test_dropped"), 3);
        // Same full name -> same cell.
        r.counter("manic_test_a").inc();
        assert_eq!(r.counter_value("manic_test_a"), 4);
    }

    #[test]
    fn prometheus_rendering_and_escaping() {
        let r = Registry::new();
        r.counter_labeled("manic_t_c", &[("vp", "a\"b\\c\nd")]).inc();
        r.gauge("manic_t_g").set(-5);
        r.histogram("manic_t_h").observe(1.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE manic_t_c counter\n"));
        assert!(text.contains("manic_t_c{vp=\"a\\\"b\\\\c\\nd\"} 1\n"), "{text}");
        assert!(text.contains("# TYPE manic_t_g gauge\nmanic_t_g -5\n"));
        assert!(text.contains("# TYPE manic_t_h histogram\n"));
        assert!(text.contains("manic_t_h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("manic_t_h_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("manic_t_h_sum 1\n"));
        assert!(text.contains("manic_t_h_count 1\n"));
        // Cumulative buckets are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("manic_t_h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last);
            last = v;
        }
    }

    #[test]
    fn one_type_line_per_base_even_with_interleaving_names() {
        let r = Registry::new();
        r.counter("manic_t_foo").inc();
        r.counter_labeled("manic_t_foo", &[("a", "b")]).inc();
        r.counter("manic_t_foobar").inc(); // sorts between the two above
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE manic_t_foo counter\n").count(), 1);
        assert_eq!(text.matches("# TYPE manic_t_foobar counter\n").count(), 1);
        assert_eq!(text.matches("# TYPE").count(), 2);
    }

    #[test]
    fn json_rendering_escapes_and_balances() {
        let r = Registry::new();
        r.counter_labeled("manic_t_c", &[("vp", "x\"y")]).add(7);
        r.histogram("manic_t_h").observe(0.5);
        let json = r.render_json();
        assert!(json.contains("\"manic_t_c{vp=\\\"x\\\\\\\"y\\\"}\":7"), "{json}");
        assert!(json.contains("\"count\":1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_attached() {
        let r = Registry::new();
        let h = r.counter("manic_t_x");
        h.add(9);
        r.histogram("manic_t_hh").observe(4.0);
        r.reset();
        assert_eq!(r.counter_value("manic_t_x"), 0);
        assert_eq!(r.histogram("manic_t_hh").count(), 0);
        // The pre-reset handle still feeds the registered cell.
        h.inc();
        assert_eq!(r.counter_value("manic_t_x"), 1);
    }
}
