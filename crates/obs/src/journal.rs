//! Structured event journal keyed to *sim time*.
//!
//! Every event carries the simulation timestamp at which it happened, not
//! the wall clock at which the simulator happened to execute it — a
//! fluid-mode run covers 22 months of sim time in seconds of wall time, and
//! the only timeline on which "the task quarantined, then the level shift
//! appeared" is meaningful is the simulated one. Events are key/value
//! structured (no format strings to parse back), ring-buffered in memory,
//! and optionally mirrored to a JSON-lines file sink and/or stderr.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "trace" => Level::Trace,
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" | "warning" => Level::Warn,
            "error" => Level::Error,
            _ => return None,
        })
    }

    fn from_u8(v: u8) -> Option<Level> {
        Some(match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            4 => Level::Error,
            _ => return None,
        })
    }
}

/// A structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    I64(i64),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F64(_) => out.push_str("null"),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&crate::json_escape(s));
                out.push('"');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One journal entry.
#[derive(Debug, Clone)]
pub struct Event {
    /// Simulation time (seconds since the sim epoch), NOT wall time.
    pub t: i64,
    pub level: Level,
    /// Emitting subsystem (crate short name: "netsim", "probing", ...).
    pub target: &'static str,
    /// Event name within the target, snake_case.
    pub name: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// One JSON object, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!(
            "{{\"t\":{},\"level\":\"{}\",\"target\":\"{}\",\"event\":\"{}\"",
            self.t,
            self.level.as_str(),
            self.target,
            self.name
        ));
        for (k, v) in &self.fields {
            out.push_str(&format!(",\"{}\":", crate::json_escape(k)));
            v.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// Field lookup.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    fn render_stderr(&self) -> String {
        let mut out = format!("[t={} {} {}/{}]", self.t, self.level.as_str(), self.target, self.name);
        for (k, v) in &self.fields {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

/// Sentinel for "no stderr sink".
const STDERR_OFF: u8 = u8::MAX;

struct Inner {
    ring: VecDeque<Event>,
    cap: usize,
    /// Events evicted from the ring since the last clear.
    dropped: u64,
    file: Option<std::io::BufWriter<std::fs::File>>,
}

/// The event journal: fixed-capacity in-memory ring plus optional sinks.
pub struct Journal {
    /// Events below this level are discarded at the recording site.
    min_level: AtomicU8,
    /// Events at or above this level are echoed to stderr (OFF = never).
    stderr_level: AtomicU8,
    inner: Mutex<Inner>,
}

/// Default ring capacity: enough for a multi-month fluid run's cycle and
/// health events without unbounded growth under packet-mode chatter.
const DEFAULT_CAP: usize = 65_536;

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_CAP)
    }
}

impl Journal {
    pub fn with_capacity(cap: usize) -> Self {
        Journal {
            min_level: AtomicU8::new(Level::Trace as u8),
            // Binaries that want live progress lines (the bench experiment
            // regenerators) get info events on stderr by default; the CLI
            // overrides this from --verbosity/--quiet.
            stderr_level: AtomicU8::new(Level::Info as u8),
            inner: Mutex::new(Inner {
                ring: VecDeque::with_capacity(cap.min(1024)),
                cap: cap.max(1),
                dropped: 0,
                file: None,
            }),
        }
    }

    /// Minimum level recorded at all.
    pub fn min_level(&self) -> Level {
        Level::from_u8(self.min_level.load(Ordering::Relaxed)).unwrap_or(Level::Trace)
    }

    pub fn set_min_level(&self, level: Level) {
        self.min_level.store(level as u8, Ordering::Relaxed);
    }

    /// Echo events at/above `level` to stderr; `None` silences the echo.
    pub fn set_stderr_level(&self, level: Option<Level>) {
        self.stderr_level
            .store(level.map(|l| l as u8).unwrap_or(STDERR_OFF), Ordering::Relaxed);
    }

    /// Mirror every recorded event to `path` as JSON lines (append mode).
    pub fn set_file_sink(&self, path: &std::path::Path) -> std::io::Result<()> {
        let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        self.inner.lock().unwrap().file = Some(std::io::BufWriter::new(f));
        Ok(())
    }

    pub fn record(&self, ev: Event) {
        if !crate::enabled() || ev.level < self.min_level() {
            return;
        }
        let echo = match Level::from_u8(self.stderr_level.load(Ordering::Relaxed)) {
            Some(min) => ev.level >= min,
            None => false,
        };
        if echo {
            eprintln!("{}", ev.render_stderr()); // ALLOW_PRINT: the journal IS the stderr sink
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(f) = inner.file.as_mut() {
            let _ = writeln!(f, "{}", ev.to_json());
        }
        if inner.ring.len() >= inner.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(ev);
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by ring wraparound since the last clear.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Buffered events passing `keep`, oldest first.
    pub fn events_where(&self, keep: impl Fn(&Event) -> bool) -> Vec<Event> {
        self.inner.lock().unwrap().ring.iter().filter(|e| keep(e)).cloned().collect()
    }

    /// Flush the file sink (if any) and empty the ring.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(f) = inner.file.as_mut() {
            let _ = f.flush();
        }
        inner.ring.clear();
        inner.dropped = 0;
    }
}

/// Record a structured event on the global journal, keyed to sim time `t`.
///
/// ```ignore
/// manic_obs::event!(manic_obs::INFO, "core", "bdrmap_cycle", t,
///                   vp = name.as_str(), links = n);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $name:expr, $t:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        // `NOOP` is a const evaluated against manic-obs's own features, so
        // the whole arm folds away under `--features manic-obs/noop`.
        if !$crate::NOOP {
            let lvl = $level;
            if $crate::enabled() && lvl >= $crate::journal().min_level() {
                $crate::journal().record($crate::journal::Event {
                    t: $t,
                    level: lvl,
                    target: $target,
                    name: $name,
                    fields: vec![$((stringify!($k), $crate::journal::Value::from($v))),*],
                });
            }
        }
    }};
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn ev(t: i64, level: Level, name: &'static str) -> Event {
        Event { t, level, target: "test", name, fields: vec![("k", Value::from(1u64))] }
    }

    fn quiet(cap: usize) -> Journal {
        let j = Journal::with_capacity(cap);
        j.set_stderr_level(None);
        j
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let j = quiet(3);
        for i in 0..5 {
            j.record(ev(i, Level::Info, "e"));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let ts: Vec<i64> = j.snapshot().iter().map(|e| e.t).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest evicted first");
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn min_level_filters_at_record_time() {
        let j = quiet(16);
        j.set_min_level(Level::Warn);
        j.record(ev(0, Level::Info, "dropped"));
        j.record(ev(1, Level::Error, "kept"));
        let names: Vec<&str> = j.snapshot().iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["kept"]);
    }

    #[test]
    fn json_line_escapes_strings() {
        let e = Event {
            t: 42,
            level: Level::Warn,
            target: "core",
            name: "health_transition",
            fields: vec![
                ("vp", Value::from("a\"b\\c\nd")),
                ("rounds", Value::from(7u64)),
                ("ok", Value::from(false)),
                ("ms", Value::from(1.5f64)),
            ],
        };
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"t\":42,\"level\":\"warn\",\"target\":\"core\",\"event\":\"health_transition\",\
             \"vp\":\"a\\\"b\\\\c\\nd\",\"rounds\":7,\"ok\":false,\"ms\":1.5}"
        );
        // Non-finite floats degrade to null rather than invalid JSON.
        let e2 = Event {
            t: 0,
            level: Level::Info,
            target: "t",
            name: "n",
            fields: vec![("x", Value::from(f64::NAN))],
        };
        assert!(e2.to_json().contains("\"x\":null"));
    }

    #[test]
    fn level_parsing_round_trips() {
        for l in [Level::Trace, Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("loud"), None);
        assert!(Level::Debug < Level::Error);
    }

    #[test]
    fn events_where_filters() {
        let j = quiet(16);
        j.record(ev(0, Level::Info, "a"));
        j.record(ev(1, Level::Warn, "b"));
        let warns = j.events_where(|e| e.level >= Level::Warn);
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].name, "b");
        assert_eq!(warns[0].field("k"), Some(&Value::U64(1)));
    }
}
