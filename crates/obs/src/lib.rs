//! `manic-obs`: zero-dependency observability for the MANIC reproduction.
//!
//! Three stores, each a process-wide singleton, all keyed to **sim time**
//! (seconds since the 2016-01-01 UTC epoch, the same clock every other crate
//! uses) rather than wall clock — a 22-month study replayed in 40 seconds
//! must journal events at the times they *happened in the simulation*:
//!
//! * [`registry()`] — atomic counters, gauges, and log-bucketed histograms,
//!   exported as Prometheus text or JSON. Names follow
//!   `manic_<crate>_<name>`; per-VP/per-reason breakdowns are labels.
//! * [`journal()`] — structured events (level, target, name, fields) in a
//!   bounded ring buffer, with optional stderr and JSONL file sinks.
//!   Emit via the [`event!`] macro.
//! * [`audit()`] — the inference audit trail: every congested/uncongested
//!   verdict with its evidence chain, queryable per link.
//!
//! Two kill switches: the `noop` cargo feature compiles every call site to
//! nothing (via [`NOOP`], a `const` evaluated *in this crate* so caller-side
//! macro expansions see the right value), and [`set_enabled`] flips a
//! runtime atomic that the hot-path `inc()`/`record()` methods check first.

pub mod audit;
pub mod journal;
pub mod metrics;

pub use audit::{AuditRecord, AuditTrail, Evidence};
pub use journal::{Event, Journal, Level, Value};
pub use metrics::{Counter, Gauge, Histogram, Registry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// True when the `noop` feature compiled instrumentation out. Referenced as
/// `$crate::NOOP` inside exported macros: a `cfg!` there would resolve
/// against the *calling* crate's features, a `const` resolves against ours.
pub const NOOP: bool = cfg!(feature = "noop");

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Runtime master switch. Off: counters don't count, the journal and audit
/// trail drop records on the floor. The overhead bench toggles this to
/// compare instrumented vs disabled on identical binaries.
#[inline]
pub fn enabled() -> bool {
    !NOOP && ENABLED.load(Ordering::Relaxed)
}

pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Convenience level constants so call sites can write
/// `obs::event!(obs::WARN, ...)` without importing `Level`.
pub const TRACE: Level = Level::Trace;
pub const DEBUG: Level = Level::Debug;
pub const INFO: Level = Level::Info;
pub const WARN: Level = Level::Warn;
pub const ERROR: Level = Level::Error;

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static JOURNAL: OnceLock<Journal> = OnceLock::new();
static AUDIT: OnceLock<AuditTrail> = OnceLock::new();

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// The process-wide event journal.
pub fn journal() -> &'static Journal {
    JOURNAL.get_or_init(Journal::default)
}

/// The process-wide inference audit trail.
pub fn audit() -> &'static AuditTrail {
    AUDIT.get_or_init(AuditTrail::default)
}

/// Clear all three stores (counters to zero, ring buffers emptied). Tests
/// that assert on global state call this first; production never does.
pub fn reset_all() {
    registry().reset();
    journal().clear();
    audit().clear();
}

/// Minimal JSON string-content escaper (backslash, quote, control chars).
/// Shared by the exporters, the journal, and the audit trail.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn runtime_switch_gates_recording() {
        // Uses detached handles so this test doesn't touch the global
        // registry that other (parallel) tests may be exercising.
        let c = Counter::detached();
        set_enabled(false);
        c.inc();
        assert_eq!(c.get(), 0);
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn singletons_are_stable() {
        let r1 = registry() as *const Registry;
        let r2 = registry() as *const Registry;
        assert_eq!(r1, r2);
        assert!(std::ptr::eq(journal(), journal()));
        assert!(std::ptr::eq(audit(), audit()));
    }
}
