//! Return-path congestion signatures (§7 extension).
//!
//! "Another approach to determine the return path relies on extracting a
//! long-term congestion signature of the path from our data. We have found
//! that a simple correlation between two TSLP time-series provides a good
//! indication that return traffic from those two targets traversed the same
//! congested path."
//!
//! Given two min-filtered far-end series, this module extracts each one's
//! *elevation signature* (the binary elevated/not pattern above the §4.2
//! threshold) and correlates them. Two targets whose replies share a
//! congested link elevate in lockstep; unrelated targets don't. The same
//! machinery flags a suspected asymmetric return path: a link whose far-end
//! signature correlates more strongly with a *different* link's far series
//! than with its own diurnal window is probably being measured through that
//! other link.

use manic_stats::acf::pearson;

/// Result of comparing two targets' congestion signatures.
#[derive(Debug, Clone, Copy)]
pub struct SignatureMatch {
    /// Pearson correlation of the elevation indicator series.
    pub correlation: f64,
    /// Bins where both series had data.
    pub overlap_bins: usize,
    /// Fraction of elevated bins in series A (diagnostic).
    pub elevated_a: f64,
    pub elevated_b: f64,
}

impl SignatureMatch {
    /// Operating point for "these replies share a congested path": strong
    /// positive correlation over a meaningful overlap, with both series
    /// actually showing congestion (correlating two flat series is
    /// meaningless).
    pub fn shared_path_suspected(&self) -> bool {
        self.correlation > 0.6
            && self.overlap_bins >= 96
            && self.elevated_a > 0.01
            && self.elevated_b > 0.01
    }
}

/// Binary elevation signature of a min-filtered series: 1.0 where the value
/// exceeds `min + elevation_ms`, 0.0 elsewhere, `None` preserved.
pub fn elevation_signature(series: &[Option<f64>], elevation_ms: f64) -> Vec<Option<f64>> {
    let min = series.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
    if !min.is_finite() {
        return vec![None; series.len()];
    }
    let thresh = min + elevation_ms;
    series
        .iter()
        .map(|v| v.map(|x| if x > thresh { 1.0 } else { 0.0 }))
        .collect()
}

/// Correlate the congestion signatures of two aligned far-end series.
///
/// Returns `None` when the overlap is too small to say anything (< 8 bins)
/// or either signature is constant over the overlap.
pub fn correlate_signatures(
    a: &[Option<f64>],
    b: &[Option<f64>],
    elevation_ms: f64,
) -> Option<SignatureMatch> {
    assert_eq!(a.len(), b.len(), "series must be aligned");
    let sig_a = elevation_signature(a, elevation_ms);
    let sig_b = elevation_signature(b, elevation_ms);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (x, y) in sig_a.iter().zip(&sig_b) {
        if let (Some(x), Some(y)) = (x, y) {
            xs.push(*x);
            ys.push(*y);
        }
    }
    if xs.len() < 8 {
        return None;
    }
    let r = pearson(&xs, &ys);
    if r.is_nan() {
        return None;
    }
    Some(SignatureMatch {
        correlation: r,
        overlap_bins: xs.len(),
        elevated_a: xs.iter().sum::<f64>() / xs.len() as f64,
        elevated_b: ys.iter().sum::<f64>() / ys.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A series elevated during [lo, hi) of each 96-bin day.
    fn diurnal(days: usize, lo: usize, hi: usize, amount: f64) -> Vec<Option<f64>> {
        (0..days * 96)
            .map(|i| {
                let iv = i % 96;
                let base = 10.0 + (i % 3) as f64 * 0.1;
                Some(if iv >= lo && iv < hi { base + amount } else { base })
            })
            .collect()
    }

    #[test]
    fn lockstep_series_correlate() {
        let a = diurnal(10, 80, 92, 30.0);
        let b = diurnal(10, 80, 92, 25.0);
        let m = correlate_signatures(&a, &b, 7.0).unwrap();
        assert!(m.correlation > 0.95, "r={}", m.correlation);
        assert!(m.shared_path_suspected());
    }

    #[test]
    fn disjoint_windows_do_not_correlate() {
        let a = diurnal(10, 80, 92, 30.0);
        let b = diurnal(10, 20, 32, 30.0);
        let m = correlate_signatures(&a, &b, 7.0).unwrap();
        assert!(m.correlation < 0.2, "r={}", m.correlation);
        assert!(!m.shared_path_suspected());
    }

    #[test]
    fn flat_series_not_suspected() {
        let a = diurnal(10, 80, 92, 30.0);
        let b = diurnal(10, 0, 0, 0.0); // never elevated
        // Constant signature -> pearson NaN -> None.
        assert!(correlate_signatures(&a, &b, 7.0).is_none());
    }

    #[test]
    fn signature_extraction() {
        let s = vec![Some(10.0), Some(25.0), None, Some(10.5)];
        let sig = elevation_signature(&s, 7.0);
        assert_eq!(sig, vec![Some(0.0), Some(1.0), None, Some(0.0)]);
        assert_eq!(elevation_signature(&[None, None], 7.0), vec![None, None]);
    }

    #[test]
    fn short_overlap_rejected() {
        let a = vec![Some(1.0); 4];
        let b = vec![Some(1.0); 4];
        assert!(correlate_signatures(&a, &b, 7.0).is_none());
    }
}
