//! Congestion inference from TSLP time series (§4).
//!
//! Two detectors, matching the paper:
//!
//! * [`levelshift`] (§4.1) — CUSUM-based detection of sustained latency
//!   level shifts, with Huber-weighted outlier handling and Student's-t
//!   significance. Operated with `l = 12` five-minute bins (shifts of at
//!   least 30 minutes) and Huber `P = 1`. Used to trigger the reactive loss
//!   prober.
//! * [`autocorr`] (§4.2) — the diurnal-recurrence method: 15-minute
//!   min-filtered bins over a 50-day window, an elevation threshold of
//!   `min RTT + 7 ms`, near-side exclusion, selection of the
//!   recurring-congestion window as the time-of-day band where the most
//!   days show elevation, false-positive rejection, and per-day congestion
//!   percentages. This is the method behind every §6 result.
//! * [`merge`] — the final stage combining per-VP inferences for one link.

pub mod autocorr;
pub mod levelshift;
pub mod mask;
pub(crate) mod obs;
pub mod merge;
pub mod returnpath;
pub mod summary;

pub use autocorr::{analyze_window, AutocorrConfig, AutocorrResult, DayEstimate, RejectReason};
pub use levelshift::{detect_level_shifts, Episode, LevelShiftConfig};
pub use mask::{apply_quality_mask, detect_level_shifts_masked, DEFAULT_REJECT};
pub use summary::{note_summary_fallback, LinkSummary, ELEVATION_MS};
pub use merge::merge_day_estimates;
pub use returnpath::{correlate_signatures, elevation_signature, SignatureMatch};
