//! Multi-VP merging (§4.2, final stage).
//!
//! "The final stage of the scheme merges estimates from all VPs that observe
//! a given interdomain link to derive an overall inference. Congestion
//! inferences for the same link based on data from different VPs are
//! typically similar. Significant differences may reflect an asymmetric
//! return path." We take, per day, the maximum estimate across VPs: a VP
//! whose replies dodge the congested link under-observes, so the most
//! congested view is the faithful one.

use crate::autocorr::DayEstimate;

/// Merge per-VP day estimates for one link. All inputs must cover the same
/// day range (estimates are keyed by `day`); days missing from a VP simply
/// don't contribute.
pub fn merge_day_estimates(per_vp: &[Vec<DayEstimate>]) -> Vec<DayEstimate> {
    use std::collections::BTreeMap;
    let mut merged: BTreeMap<usize, DayEstimate> = BTreeMap::new();
    for series in per_vp {
        for &d in series {
            merged
                .entry(d.day)
                .and_modify(|m| {
                    if d.congested_intervals > m.congested_intervals {
                        *m = d;
                    }
                })
                .or_insert(d);
        }
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(day: usize, intervals: usize) -> DayEstimate {
        DayEstimate {
            day,
            congested_intervals: intervals,
            congestion_pct: intervals as f64 / 96.0,
        }
    }

    #[test]
    fn takes_max_per_day() {
        let vp1 = vec![est(0, 4), est(1, 0), est(2, 10)];
        let vp2 = vec![est(0, 2), est(1, 6), est(2, 10)];
        let m = merge_day_estimates(&[vp1, vp2]);
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].congested_intervals, 4);
        assert_eq!(m[1].congested_intervals, 6);
        assert_eq!(m[2].congested_intervals, 10);
    }

    #[test]
    fn handles_disjoint_day_ranges() {
        let vp1 = vec![est(0, 4)];
        let vp2 = vec![est(1, 2)];
        let m = merge_day_estimates(&[vp1, vp2]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].day, 0);
        assert_eq!(m[1].day, 1);
    }

    #[test]
    fn single_vp_passthrough() {
        let vp1 = vec![est(0, 4), est(1, 5)];
        let m = merge_day_estimates(std::slice::from_ref(&vp1));
        assert_eq!(m, vp1);
    }

    #[test]
    fn empty_input() {
        assert!(merge_day_estimates(&[]).is_empty());
    }
}
