//! Quality masking: degraded windows produce *no inference*, not false ones.
//!
//! The detectors in this crate read dense `Option<f64>` bins. A bin that is
//! `None` because the link was congested enough to drop every probe carries
//! signal; a bin that is `None` (or worse, populated with suspect samples)
//! because the task was quarantined, the far interface renumbered, or the
//! router rate-limited carries none — and, adjacent to valid data, fabricates
//! exactly the step edges the CUSUM detector looks for. Masking replaces
//! bins overlapping flagged quality windows with `None` *before* detection,
//! and the level-shift wrapper additionally drops episodes whose boundaries
//! touch masked bins.

use crate::levelshift::{detect_level_shifts, Episode, LevelShiftConfig};
use manic_tsdb::quality::QualityFlags;

/// The flags that invalidate a bin for latency inference. Suspect rate
/// limiting is included: such bins are far-end-dark by definition, and any
/// stray sample inside them is untrustworthy.
pub const DEFAULT_REJECT: QualityFlags = manic_tsdb::quality::GAP
    | manic_tsdb::quality::SUSPECT_RATE_LIMITED
    | manic_tsdb::quality::RENUMBERED
    | manic_tsdb::quality::QUARANTINED;

/// Blank out every bin whose quality flags intersect `reject`.
/// `bins` and `quality` must share the bin layout (same start/width), as
/// produced by `Store::downsample_dense` / `Store::quality_dense`.
pub fn apply_quality_mask(
    bins: &mut [Option<f64>],
    quality: &[QualityFlags],
    reject: QualityFlags,
) {
    assert_eq!(bins.len(), quality.len(), "bins and quality must align");
    let mut masked = 0u64;
    for (b, &q) in bins.iter_mut().zip(quality) {
        if q & reject != 0 {
            if b.is_some() {
                masked += 1;
            }
            *b = None;
        }
    }
    crate::obs::metrics().bins_masked.add(masked);
}

/// Level-shift detection over quality-annotated bins: masks rejected bins,
/// runs the CUSUM detector, then discards episodes that begin or end on the
/// edge of a masked region (a level "shift" whose far side is fabricated by
/// missing data is not evidence of congestion onset).
pub fn detect_level_shifts_masked(
    bins: &[Option<f64>],
    quality: &[QualityFlags],
    reject: QualityFlags,
    cfg: &LevelShiftConfig,
) -> Vec<Episode> {
    let m = crate::obs::metrics();
    m.levelshift_runs.inc();
    let mut masked: Vec<Option<f64>> = bins.to_vec();
    apply_quality_mask(&mut masked, quality, reject);
    let episodes = detect_level_shifts(&masked, cfg);
    let found = episodes.len();
    m.shifts_detected.add(found as u64);
    let kept: Vec<Episode> = episodes
        .into_iter()
        .filter(|e| {
            let touches = |idx: usize| {
                let lo = idx.saturating_sub(1);
                let hi = (idx + 1).min(quality.len().saturating_sub(1));
                (lo..=hi).any(|i| quality[i] & reject != 0)
            };
            !(touches(e.start) || touches(e.end.saturating_sub(1)))
        })
        .collect();
    m.shifts_rejected_mask_edge.add((found - kept.len()) as u64);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_tsdb::quality::{QUARANTINED, RENUMBERED};

    #[test]
    fn mask_blanks_only_rejected_bins() {
        let mut bins = vec![Some(1.0), Some(2.0), Some(3.0), None];
        let quality = vec![0, QUARANTINED, RENUMBERED, 0];
        apply_quality_mask(&mut bins, &quality, QUARANTINED);
        assert_eq!(bins, vec![Some(1.0), None, Some(3.0), None]);
    }

    fn step_series(n: usize, edge: usize, low: f64, high: f64) -> Vec<Option<f64>> {
        (0..n).map(|i| Some(if i < edge { low } else { high })).collect()
    }

    #[test]
    fn clean_step_is_detected_and_survives_clean_quality() {
        let cfg = LevelShiftConfig::default();
        let bins = step_series(96, 48, 20.0, 45.0);
        let quality = vec![0; 96];
        let clean = detect_level_shifts_masked(&bins, &quality, DEFAULT_REJECT, &cfg);
        assert!(!clean.is_empty(), "genuine step must still be found");
    }

    #[test]
    fn step_fabricated_by_quarantine_is_suppressed() {
        let cfg = LevelShiftConfig::default();
        // Constant 20ms series, but a quarantined stretch in the middle was
        // polluted with garbage samples (e.g. written before the quarantine
        // annotation landed).
        let mut bins = step_series(96, 96, 20.0, 20.0);
        let mut quality = vec![0u8; 96];
        for i in 40..60 {
            bins[i] = Some(60.0);
            quality[i] = QUARANTINED;
        }
        let unmasked = detect_level_shifts(&bins, &cfg);
        assert!(!unmasked.is_empty(), "garbage fabricates a shift without masking");
        let masked = detect_level_shifts_masked(&bins, &quality, DEFAULT_REJECT, &cfg);
        assert!(masked.is_empty(), "masking turns it into no-inference: {masked:?}");
    }

    #[test]
    fn episode_bordering_masked_region_is_dropped() {
        let cfg = LevelShiftConfig::default();
        // Valid-looking step, but everything after the edge is renumbered:
        // the "elevated" samples come from a different interface.
        let bins = step_series(96, 48, 20.0, 45.0);
        let mut quality = vec![0u8; 96];
        for q in quality.iter_mut().skip(48) {
            *q = RENUMBERED;
        }
        let masked = detect_level_shifts_masked(&bins, &quality, DEFAULT_REJECT, &cfg);
        assert!(masked.is_empty(), "{masked:?}");
    }
}
