//! Level-shift detection (§4.1).
//!
//! "The level-shift detection heuristic is based on CUSUM. As a
//! pre-processing step, we select the minimum latency in a time bin to
//! filter outliers. Given a parameter l (the cut-off length), the algorithm
//! detects level-shifts of duration at least l/2. The algorithm first
//! estimates the average variance σ² of the entire time series, calculated
//! as the average variance in a moving window of length l. It then
//! determines the minimum difference Δ between the means of two adjacent
//! regimes of length l that is statistically significant according to the
//! Student's t-test (at the 95% confidence level). To handle outliers the
//! algorithm employs Huber's weight function with parameter P."
//!
//! The paper runs it with l=12 five-minute bins and P=1: shifts lasting at
//! least 30 minutes.

use manic_stats::cusum::{cusum_scan, ChangePoint};
use manic_stats::describe::{mean, variance};
use manic_stats::huber::huber_weight;
use manic_stats::ttest::min_significant_delta;

/// Detector parameters.
#[derive(Debug, Clone, Copy)]
pub struct LevelShiftConfig {
    /// Cut-off length `l` in bins (paper: 12 bins of 5 minutes).
    pub l: usize,
    /// Huber tuning constant `P` (paper: 1.0).
    pub p: f64,
    /// Significance level for the regime-difference t-test (paper: 0.05).
    pub alpha: f64,
}

impl Default for LevelShiftConfig {
    fn default() -> Self {
        LevelShiftConfig { l: 12, p: 1.0, alpha: 0.05 }
    }
}

/// A detected elevated-latency episode, in bin indices of the input series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Episode {
    /// First elevated bin.
    pub start: usize,
    /// One past the last elevated bin.
    pub end: usize,
    /// Mean level during the episode.
    pub level: f64,
    /// Baseline the series shifted from.
    pub baseline: f64,
}

impl Episode {
    pub fn duration_bins(&self) -> usize {
        self.end - self.start
    }
}

/// Run level-shift detection on a min-filtered series (missing bins allowed).
///
/// Returns episodes where the series level is significantly above the
/// series' baseline (lowest regime mean).
pub fn detect_level_shifts(series: &[Option<f64>], cfg: &LevelShiftConfig) -> Vec<Episode> {
    // Collapse missing bins, remembering original indices.
    let present: Vec<(usize, f64)> = series
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|x| (i, x)))
        .collect();
    if present.len() < 2 * cfg.l {
        return Vec::new();
    }
    let xs: Vec<f64> = present.iter().map(|&(_, x)| x).collect();

    // Average moving-window variance -> sigma^2.
    let sigma2 = moving_variance(&xs, cfg.l);
    // NaN-aware: a NaN variance must bail out, so not `sigma2 < 0.0`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(sigma2 >= 0.0) {
        return Vec::new();
    }
    // Minimum significant delta between adjacent regimes of length l.
    let min_delta = min_significant_delta(sigma2.max(1e-9), cfg.l, cfg.alpha);

    // Huber weights relative to a *rolling* median: an isolated slow-path
    // outlier sits far from its neighborhood's median and is downweighted,
    // while a sustained shift raises the local median with it and keeps full
    // weight (downweighting whole regimes would make them undetectable).
    let sigma = sigma2.sqrt().max(1e-9);
    let local = rolling_median(&xs, cfg.l);
    let weights: Vec<f64> = xs
        .iter()
        .zip(&local)
        .map(|(&x, &m)| huber_weight(x - m, sigma, cfg.p))
        .collect();

    // Weighted CUSUM segmentation with minimum regime length l/2, iterated
    // once: the second pass recomputes the Huber weights against the first
    // pass's regime means (IRLS-style), which undoes the damping the rolling
    // median applies to bins right at a shift boundary.
    let min_len = (cfg.l / 2).max(2);
    // Exploration depth: edge-hugging splits shed only `min_len` bins per
    // level, so the worst-case chain is n/min_len deep (work O(n^2/min_len),
    // trivially cheap at TSLP series sizes).
    let depth = xs.len() / min_len + 2;
    let mut weights = weights;
    let mut regimes: Vec<(usize, usize, f64)> = Vec::new();
    for _pass in 0..2 {
        let mut cps: Vec<ChangePoint> = Vec::new();
        segment_weighted(&xs, &weights, 0, min_delta, min_len, depth, &mut cps);
        cps.sort_by_key(|c| c.index);
        cps.dedup_by_key(|c| c.index);
        let mut bounds = vec![0usize];
        bounds.extend(cps.iter().map(|c| c.index));
        bounds.push(xs.len());
        bounds.dedup();
        regimes = bounds
            .windows(2)
            .map(|w| (w[0], w[1], mean(&xs[w[0]..w[1]])))
            .collect();
        // Re-weight against the fitted regimes for the next pass.
        for &(lo, hi, m) in &regimes {
            for i in lo..hi {
                weights[i] = huber_weight(xs[i] - m, sigma, cfg.p);
            }
        }
    }
    let baseline = regimes.iter().map(|&(_, _, m)| m).fold(f64::INFINITY, f64::min);

    // Elevated regimes: significantly above baseline. Merge adjacent ones.
    let mut episodes: Vec<Episode> = Vec::new();
    for &(lo, hi, m) in &regimes {
        if m - baseline >= min_delta {
            let start = present[lo].0;
            let end = present[hi - 1].0 + 1;
            match episodes.last_mut() {
                Some(last) if last.end >= start => {
                    last.end = end;
                    last.level = last.level.max(m);
                }
                _ => episodes.push(Episode { start, end, level: m, baseline }),
            }
        }
    }
    episodes
}

/// Centered rolling median with window `l` (clamped at the edges).
///
/// The per-position windows `[i-half, i+half+1)` have monotone
/// non-decreasing endpoints, so a single `SlidingMedian` slides across the
/// series with two pointers: O(n·half) memmove work instead of the
/// O(n·l·log l) full re-sort per position — and bit-identical output, since
/// `SlidingMedian::median` uses the same interpolation as
/// `describe::median`.
fn rolling_median(xs: &[f64], l: usize) -> Vec<f64> {
    let half = (l / 2).max(1);
    let mut sm = manic_stats::SlidingMedian::with_capacity(2 * half + 1);
    let (mut lo, mut hi) = (0usize, 0usize);
    (0..xs.len())
        .map(|i| {
            let new_lo = i.saturating_sub(half);
            let new_hi = (i + half + 1).min(xs.len());
            while hi < new_hi {
                sm.insert(xs[hi]);
                hi += 1;
            }
            while lo < new_lo {
                sm.remove(xs[lo]);
                lo += 1;
            }
            sm.median()
        })
        .collect()
}

/// Average variance over a moving window of length `l`.
fn moving_variance(xs: &[f64], l: usize) -> f64 {
    if xs.len() < l || l < 2 {
        return variance(xs);
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for w in xs.windows(l) {
        let v = variance(w);
        if v.is_finite() {
            sum += v;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Recursive weighted-CUSUM binary segmentation.
///
/// Plain binary segmentation stops when the top-level split is
/// insignificant — which silently misses *periodic* shifts (a series with
/// several evening episodes has near-equal half means, so the first test
/// fails even though every episode is a textbook shift). We therefore keep
/// recursing at the max-|S| point up to a depth bound even when the split
/// itself does not qualify, but only *emit* change points that pass the
/// significance test. Emission is what the caller sees; exploratory splits
/// on pure noise produce nothing because their deltas stay below
/// `min_delta`.
fn segment_weighted(
    xs: &[f64],
    ws: &[f64],
    offset: usize,
    min_delta: f64,
    min_len: usize,
    depth: usize,
    out: &mut Vec<ChangePoint>,
) {
    if xs.len() < 2 * min_len || depth == 0 {
        return;
    }
    let Some(cp) = cusum_scan(xs, Some(ws)) else { return };
    // When the extremum hugs a segment edge there is no room for two
    // regimes there; clamp the split inward rather than abandoning the
    // segment. A significant shift is emitted at the clamped position too —
    // the placement error is bounded by `min_len` (the l/2 = 30-minute
    // granularity the detector promises anyway); leaving it unemitted would
    // lose the boundary entirely whenever an exploratory edge lands within
    // `min_len` of a true shift.
    let split = cp.index.clamp(min_len, xs.len() - min_len);
    if cp.delta().abs() >= min_delta {
        out.push(ChangePoint { index: offset + split, ..cp });
    }
    segment_weighted(&xs[..split], &ws[..split], offset, min_delta, min_len, depth - 1, out);
    segment_weighted(&xs[split..], &ws[split..], offset + split, min_delta, min_len, depth - 1, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Series builder: base latency with a ripple, plus elevated windows.
    fn series(n: usize, base: f64, elevated: &[(usize, usize, f64)]) -> Vec<Option<f64>> {
        (0..n)
            .map(|i| {
                let mut v = base + (i % 4) as f64 * 0.05;
                for &(lo, hi, amount) in elevated {
                    if i >= lo && i < hi {
                        v += amount;
                    }
                }
                Some(v)
            })
            .collect()
    }

    #[test]
    fn detects_sustained_shift() {
        // 24h of 5-min bins with a 4-hour 30ms elevation.
        let s = series(288, 20.0, &[(120, 168, 30.0)]);
        let eps = detect_level_shifts(&s, &LevelShiftConfig::default());
        assert_eq!(eps.len(), 1, "{eps:?}");
        let e = eps[0];
        assert!((e.start as i64 - 120).abs() <= 2, "start {}", e.start);
        assert!((e.end as i64 - 168).abs() <= 2, "end {}", e.end);
        assert!((e.level - 50.0).abs() < 1.0);
        assert!((e.baseline - 20.0).abs() < 1.0);
    }

    #[test]
    fn ignores_short_blips() {
        // 20-minute (4-bin) spike is below the l/2 = 6-bin minimum duration.
        let s = series(288, 20.0, &[(100, 104, 30.0)]);
        let eps = detect_level_shifts(&s, &LevelShiftConfig::default());
        assert!(eps.is_empty(), "{eps:?}");
    }

    #[test]
    fn ignores_flat_series() {
        let s = series(288, 20.0, &[]);
        assert!(detect_level_shifts(&s, &LevelShiftConfig::default()).is_empty());
    }

    #[test]
    fn single_outlier_does_not_trigger() {
        let mut s = series(288, 20.0, &[]);
        s[150] = Some(500.0); // one wild slow-path response
        let eps = detect_level_shifts(&s, &LevelShiftConfig::default());
        assert!(eps.is_empty(), "{eps:?}");
    }

    #[test]
    fn detects_two_separate_episodes() {
        let s = series(288, 15.0, &[(50, 80, 25.0), (200, 260, 40.0)]);
        let eps = detect_level_shifts(&s, &LevelShiftConfig::default());
        assert_eq!(eps.len(), 2, "{eps:?}");
        assert!(eps[0].start < eps[1].start);
        assert!(eps[1].level > eps[0].level);
    }

    #[test]
    fn handles_missing_bins() {
        let mut s = series(288, 20.0, &[(120, 168, 30.0)]);
        for i in (0..288).step_by(7) {
            s[i] = None;
        }
        let eps = detect_level_shifts(&s, &LevelShiftConfig::default());
        assert_eq!(eps.len(), 1);
        assert!((eps[0].start as i64 - 120).abs() <= 8);
    }

    #[test]
    fn too_short_series_is_empty() {
        let s = series(10, 20.0, &[]);
        assert!(detect_level_shifts(&s, &LevelShiftConfig::default()).is_empty());
    }

    #[test]
    fn rolling_median_matches_naive_per_window() {
        let xs: Vec<f64> = (0..200)
            .map(|i| 20.0 + ((i * 61) % 29) as f64 * 0.3 + if i > 90 && i < 140 { 25.0 } else { 0.0 })
            .collect();
        for l in [1usize, 2, 3, 12, 13, 250] {
            let fast = rolling_median(&xs, l);
            let half = (l / 2).max(1);
            let naive: Vec<f64> = (0..xs.len())
                .map(|i| {
                    let lo = i.saturating_sub(half);
                    let hi = (i + half + 1).min(xs.len());
                    manic_stats::describe::median(&xs[lo..hi])
                })
                .collect();
            // Bit-identical, not approximately equal.
            assert_eq!(fast, naive, "l={l}");
        }
    }

    #[test]
    fn small_insignificant_shift_ignored() {
        // Shift smaller than the noise-derived minimum delta.
        let s: Vec<Option<f64>> = (0..288)
            .map(|i| {
                let noise = ((i * 31) % 13) as f64 * 0.4; // sd ~1.5
                let shift = if (120..168).contains(&i) { 0.3 } else { 0.0 };
                Some(20.0 + noise + shift)
            })
            .collect();
        let eps = detect_level_shifts(&s, &LevelShiftConfig::default());
        assert!(eps.is_empty(), "{eps:?}");
    }
}
