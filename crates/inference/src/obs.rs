//! Metric handles for the inference layer.

use crate::autocorr::RejectReason;
use manic_obs::{registry, Counter};
use std::sync::OnceLock;

pub(crate) struct Metrics {
    /// Bins blanked by quality masking before detection.
    pub bins_masked: Counter,
    /// Invocations of the masked level-shift detector.
    pub levelshift_runs: Counter,
    /// Episodes the CUSUM detector reported (pre mask-edge filter).
    pub shifts_detected: Counter,
    /// Episodes discarded because a boundary touched a masked region.
    pub shifts_rejected_mask_edge: Counter,
    /// Link-summary maintenance: rings created by store backfill.
    pub summary_backfills: Counter,
    /// Bins expired/entered as summary windows advanced.
    pub summary_bins_advanced: Counter,
    /// Committed samples folded into summary rings.
    pub summary_samples_folded: Counter,
    /// Dense detection windows served from a ring (no store rescan).
    pub summary_windows_served: Counter,
    /// Detection windows a summary could not cover (store rescan).
    pub summary_window_fallbacks: Counter,
    /// Exact level-shift analyses run through a summary.
    pub summary_exact_analyses: Counter,
    /// Refresh calls answered with the carried verdict (no detector run).
    pub summary_verdicts_carried: Counter,
    /// Autocorrelation windows analyzed / asserting recurrence.
    pub autocorr_windows: Counter,
    pub autocorr_asserted: Counter,
    /// Autocorrelation rejections by reason.
    pub autocorr_rejected_too_few_days: Counter,
    pub autocorr_rejected_dispersed_peaks: Counter,
    pub autocorr_rejected_incoherent_days: Counter,
    pub autocorr_rejected_insufficient_data: Counter,
}

impl Metrics {
    pub fn autocorr_rejected(&self, reason: RejectReason) -> &Counter {
        match reason {
            RejectReason::TooFewDays => &self.autocorr_rejected_too_few_days,
            RejectReason::DispersedPeaks => &self.autocorr_rejected_dispersed_peaks,
            RejectReason::IncoherentDays => &self.autocorr_rejected_incoherent_days,
            RejectReason::InsufficientData => &self.autocorr_rejected_insufficient_data,
        }
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = registry();
        let rej = |reason| r.counter_labeled("manic_inference_autocorr_rejected", &[("reason", reason)]);
        Metrics {
            bins_masked: r.counter("manic_inference_bins_masked"),
            levelshift_runs: r.counter("manic_inference_levelshift_runs"),
            shifts_detected: r.counter("manic_inference_shifts_detected"),
            shifts_rejected_mask_edge: r.counter("manic_inference_shifts_rejected_mask_edge"),
            summary_backfills: r.counter("manic_inference_summary_backfills"),
            summary_bins_advanced: r.counter("manic_inference_summary_bins_advanced"),
            summary_samples_folded: r.counter("manic_inference_summary_samples_folded"),
            summary_windows_served: r.counter("manic_inference_summary_windows_served"),
            summary_window_fallbacks: r.counter("manic_inference_summary_window_fallbacks"),
            summary_exact_analyses: r.counter("manic_inference_summary_exact_analyses"),
            summary_verdicts_carried: r.counter("manic_inference_summary_verdicts_carried"),
            autocorr_windows: r.counter("manic_inference_autocorr_windows"),
            autocorr_asserted: r.counter("manic_inference_autocorr_asserted"),
            autocorr_rejected_too_few_days: rej("too_few_days"),
            autocorr_rejected_dispersed_peaks: rej("dispersed_peaks"),
            autocorr_rejected_incoherent_days: rej("incoherent_days"),
            autocorr_rejected_insufficient_data: rej("insufficient_data"),
        }
    })
}
