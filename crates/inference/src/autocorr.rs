//! The autocorrelation (diurnal recurrence) method (§4.2).
//!
//! The method looks for "multi-day repetition of elevated delays at the same
//! times of day that imply congestion driven by diurnal demand":
//!
//! 1. aggregate raw TSLP samples into 15-minute bins, min-filtered;
//! 2. exclude intervals where the *near* side is elevated (congestion inside
//!    the access network, not at the interconnection);
//! 3. threshold: a far-side bin is *elevated* when it exceeds
//!    `min RTT + 7 ms` over the 50-day window;
//! 4. for each of the 96 intervals of the day, count the days elevated;
//!    the interval with the most days anchors the *recurring congestion
//!    window*, expanded to adjacent intervals with sufficiently many
//!    elevated days;
//! 5. reject false positives: multiple comparable peaks dispersed across the
//!    day, or different days driving different peaks;
//! 6. per day, the congestion estimate is the number of elevated intervals
//!    inside the recurring window (1 interval = 1/96 ≈ 1.04% of the day).

/// Intervals per day at 15-minute resolution.
pub const INTERVALS_PER_DAY: usize = 96;

/// Algorithm parameters (defaults are the paper's operating point).
#[derive(Debug, Clone, Copy)]
pub struct AutocorrConfig {
    /// Analysis window length in days (paper: 50).
    pub window_days: usize,
    /// Elevation threshold above the window minimum, ms (paper: 7).
    pub elevation_ms: f64,
    /// Minimum days the peak interval must be elevated to assert recurrence.
    pub min_days: usize,
    /// An interval joins the recurring window when its elevated-day count is
    /// at least this fraction of the peak interval's count.
    pub sufficient_frac: f64,
    /// Reject when a second cluster's peak reaches this fraction of the main
    /// peak and sits further than `cluster_gap` intervals away.
    pub ambiguity_frac: f64,
    /// Minimum separation (in intervals) for clusters to count as dispersed.
    pub cluster_gap: usize,
    /// Reject when the days contributing to the peak interval cover less
    /// than this fraction of all days showing any elevation.
    pub day_coherence_frac: f64,
}

impl Default for AutocorrConfig {
    fn default() -> Self {
        AutocorrConfig {
            window_days: 50,
            elevation_ms: 7.0,
            min_days: 5,
            sufficient_frac: 0.5,
            ambiguity_frac: 0.8,
            cluster_gap: 16, // 4 hours
            day_coherence_frac: 0.4,
        }
    }
}

/// Why the window hypothesis was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Peak interval elevated on too few days.
    TooFewDays,
    /// Multiple comparable peaks dispersed across the day.
    DispersedPeaks,
    /// Different days contribute to different peaks.
    IncoherentDays,
    /// Not enough data in the window.
    InsufficientData,
}

impl RejectReason {
    /// Stable snake_case label (metric labels, journal fields, audit trail).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::TooFewDays => "too_few_days",
            RejectReason::DispersedPeaks => "dispersed_peaks",
            RejectReason::IncoherentDays => "incoherent_days",
            RejectReason::InsufficientData => "insufficient_data",
        }
    }
}

/// Per-day congestion estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayEstimate {
    /// Day offset within the analysis window.
    pub day: usize,
    /// Elevated 15-minute intervals inside the recurring window.
    pub congested_intervals: usize,
    /// Fraction of the day congested (`congested_intervals / 96`).
    pub congestion_pct: f64,
}

/// The recurring congestion window: `len` 15-minute intervals starting at
/// interval-of-day `start`, possibly wrapping past midnight (a 9pm US-East
/// peak sits at 02:00 UTC, so wrapping is the common case for UTC-binned
/// series).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecurringWindow {
    pub start: usize,
    pub len: usize,
}

impl RecurringWindow {
    /// Is interval-of-day `iv` inside the window?
    pub fn contains(&self, iv: usize) -> bool {
        (iv + INTERVALS_PER_DAY - self.start) % INTERVALS_PER_DAY < self.len
    }

    /// Circular distance from `iv` to the window (0 when inside).
    pub fn distance(&self, iv: usize) -> usize {
        let rel = (iv + INTERVALS_PER_DAY - self.start) % INTERVALS_PER_DAY;
        if rel < self.len {
            0
        } else {
            (rel - self.len + 1).min(INTERVALS_PER_DAY - rel)
        }
    }

    /// The intervals covered, in window order.
    pub fn intervals(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).map(move |o| (self.start + o) % INTERVALS_PER_DAY)
    }
}

/// Result of analyzing one (vp, link) 50-day window.
#[derive(Debug, Clone)]
pub struct AutocorrResult {
    /// The recurring congestion window (time-of-day band), if asserted.
    pub window: Option<RecurringWindow>,
    /// Per-day estimates (zeroed when no window was found).
    pub days: Vec<DayEstimate>,
    pub rejected: Option<RejectReason>,
    /// Per-interval elevated-day counts (diagnostics, Figure 9 input).
    pub interval_counts: Vec<usize>,
    /// Per-day bitmap of congested 15-minute intervals inside the recurring
    /// window (bit `iv` set when interval `iv` was elevated). This is what
    /// the validation pipelines use to classify each 15-minute period as
    /// congested or uncongested (§5) and what Figure 9's histograms count.
    pub day_masks: Vec<u128>,
}

impl AutocorrResult {
    fn empty(ndays: usize, reason: RejectReason) -> Self {
        AutocorrResult {
            window: None,
            days: (0..ndays)
                .map(|day| DayEstimate { day, congested_intervals: 0, congestion_pct: 0.0 })
                .collect(),
            rejected: Some(reason),
            interval_counts: vec![0; INTERVALS_PER_DAY],
            day_masks: vec![0; ndays],
        }
    }
}

/// Analyze one window of aligned near/far series.
///
/// `near` and `far` are dense min-filtered 15-minute bins, one per interval,
/// covering whole days (`len == days * 96`); missing bins are `None`.
///
/// ```
/// use manic_inference::{analyze_window, AutocorrConfig};
///
/// // Fifty days with a recurring 20:00-23:00 elevation of +30 ms.
/// let far: Vec<Option<f64>> = (0..50 * 96)
///     .map(|i| Some(if (80..92).contains(&(i % 96)) { 55.0 } else { 25.0 }))
///     .collect();
/// let near = vec![Some(5.0); far.len()];
/// let r = analyze_window(&near, &far, &AutocorrConfig::default());
/// let window = r.window.expect("recurring congestion asserted");
/// assert!(window.contains(85));
/// assert!((r.days[7].congestion_pct - 12.0 / 96.0).abs() < 0.03);
/// ```
pub fn analyze_window(
    near: &[Option<f64>],
    far: &[Option<f64>],
    cfg: &AutocorrConfig,
) -> AutocorrResult {
    let result = analyze_window_inner(near, far, cfg);
    let m = crate::obs::metrics();
    m.autocorr_windows.inc();
    match result.rejected {
        Some(reason) => m.autocorr_rejected(reason).inc(),
        None => m.autocorr_asserted.inc(),
    }
    result
}

fn analyze_window_inner(
    near: &[Option<f64>],
    far: &[Option<f64>],
    cfg: &AutocorrConfig,
) -> AutocorrResult {
    assert_eq!(near.len(), far.len(), "near/far series must align");
    assert!(
        far.len().is_multiple_of(INTERVALS_PER_DAY),
        "series must cover whole days of 96 intervals"
    );
    let ndays = far.len() / INTERVALS_PER_DAY;

    let far_present: Vec<f64> = far.iter().flatten().copied().collect();
    if far_present.len() < far.len() / 4 || ndays == 0 {
        return AutocorrResult::empty(ndays, RejectReason::InsufficientData);
    }
    let far_min = far_present.iter().cloned().fold(f64::INFINITY, f64::min);
    let far_thresh = far_min + cfg.elevation_ms;
    let near_present: Vec<f64> = near.iter().flatten().copied().collect();
    let near_min = near_present.iter().cloned().fold(f64::INFINITY, f64::min);
    let near_thresh = near_min + cfg.elevation_ms;

    // Elevation matrix: day x interval; near-side elevation excludes a bin.
    let elevated = |day: usize, iv: usize| -> bool {
        let idx = day * INTERVALS_PER_DAY + iv;
        let near_elev = near[idx].map(|v| v > near_thresh).unwrap_or(false);
        if near_elev {
            return false;
        }
        far[idx].map(|v| v > far_thresh).unwrap_or(false)
    };

    // Per-interval elevated-day counts.
    let mut counts = vec![0usize; INTERVALS_PER_DAY];
    for (iv, c) in counts.iter_mut().enumerate() {
        *c = (0..ndays).filter(|&d| elevated(d, iv)).count();
    }

    let peak_iv = (0..INTERVALS_PER_DAY).max_by_key(|&iv| counts[iv]).unwrap();
    let peak = counts[peak_iv];
    if peak < cfg.min_days {
        return AutocorrResult {
            rejected: Some(RejectReason::TooFewDays),
            interval_counts: counts,
            ..AutocorrResult::empty(ndays, RejectReason::TooFewDays)
        };
    }

    // Expand the window around the peak interval, circularly: evening peaks
    // in US timezones wrap past midnight UTC.
    let sufficient = ((peak as f64 * cfg.sufficient_frac).ceil() as usize).max(cfg.min_days);
    let mut start = peak_iv;
    let mut len = 1usize;
    loop {
        let prev = (start + INTERVALS_PER_DAY - 1) % INTERVALS_PER_DAY;
        if len < INTERVALS_PER_DAY && counts[prev] >= sufficient {
            start = prev;
            len += 1;
        } else {
            break;
        }
    }
    loop {
        let next = (start + len) % INTERVALS_PER_DAY;
        if len < INTERVALS_PER_DAY && counts[next] >= sufficient {
            len += 1;
        } else {
            break;
        }
    }
    let window = RecurringWindow { start, len };

    // Rejection (a): another qualifying cluster far from the window.
    let far_cluster_peak = (0..INTERVALS_PER_DAY)
        .filter(|&iv| window.distance(iv) >= cfg.cluster_gap)
        .map(|iv| counts[iv])
        .max()
        .unwrap_or(0);
    if (far_cluster_peak as f64) >= cfg.ambiguity_frac * peak as f64 {
        return AutocorrResult {
            rejected: Some(RejectReason::DispersedPeaks),
            interval_counts: counts,
            ..AutocorrResult::empty(ndays, RejectReason::DispersedPeaks)
        };
    }

    // Rejection (b): the peak interval's contributing days must cover a fair
    // share of all days showing any elevation at all.
    let peak_days: Vec<usize> = (0..ndays).filter(|&d| elevated(d, peak_iv)).collect();
    let any_days = (0..ndays)
        .filter(|&d| (0..INTERVALS_PER_DAY).any(|iv| elevated(d, iv)))
        .count();
    if (peak_days.len() as f64) < cfg.day_coherence_frac * any_days as f64 {
        return AutocorrResult {
            rejected: Some(RejectReason::IncoherentDays),
            interval_counts: counts,
            ..AutocorrResult::empty(ndays, RejectReason::IncoherentDays)
        };
    }

    // Per-day congestion estimates within the recurring window.
    let mut days = Vec::with_capacity(ndays);
    let mut day_masks = Vec::with_capacity(ndays);
    for day in 0..ndays {
        let mut mask: u128 = 0;
        for iv in window.intervals() {
            if elevated(day, iv) {
                mask |= 1u128 << iv;
            }
        }
        let congested = mask.count_ones() as usize;
        days.push(DayEstimate {
            day,
            congested_intervals: congested,
            congestion_pct: congested as f64 / INTERVALS_PER_DAY as f64,
        });
        day_masks.push(mask);
    }

    AutocorrResult {
        window: Some(window),
        days,
        rejected: None,
        interval_counts: counts,
        day_masks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a 50-day far series: base RTT, elevated by `amount` during
    /// [start_iv, end_iv) on the listed days.
    fn far_series(
        ndays: usize,
        base: f64,
        amount: f64,
        window: (usize, usize),
        days: &[usize],
    ) -> Vec<Option<f64>> {
        (0..ndays * INTERVALS_PER_DAY)
            .map(|idx| {
                let (d, iv) = (idx / INTERVALS_PER_DAY, idx % INTERVALS_PER_DAY);
                let mut v = base + (idx % 3) as f64 * 0.2;
                if days.contains(&d) && iv >= window.0 && iv < window.1 {
                    v += amount;
                }
                Some(v)
            })
            .collect()
    }

    fn flat(ndays: usize, base: f64) -> Vec<Option<f64>> {
        far_series(ndays, base, 0.0, (0, 0), &[])
    }

    #[test]
    fn finds_recurring_evening_window() {
        let days: Vec<usize> = (0..50).collect();
        let far = far_series(50, 30.0, 35.0, (80, 92), &days); // 20:00-23:00
        let near = flat(50, 5.0);
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert!(r.rejected.is_none(), "{:?}", r.rejected);
        let w = r.window.unwrap();
        assert!((w.start as i64 - 80).abs() <= 1, "start {}", w.start);
        assert!((w.len as i64 - 12).abs() <= 2, "len {}", w.len);
        // Every day shows 12 intervals = 12.5% of the day.
        assert!(r.days.iter().all(|d| (d.congestion_pct - 0.125).abs() < 0.02));
    }

    #[test]
    fn sporadic_days_no_recurrence() {
        // Elevation on only 3 of 50 days: below min_days.
        let far = far_series(50, 30.0, 35.0, (80, 92), &[3, 17, 40]);
        let near = flat(50, 5.0);
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert_eq!(r.rejected, Some(RejectReason::TooFewDays));
        assert!(r.days.iter().all(|d| d.congested_intervals == 0));
    }

    #[test]
    fn near_side_elevation_excluded() {
        // Far elevated, but near elevated at the same times: congestion is
        // inside the access network, not at the interconnection.
        let days: Vec<usize> = (0..50).collect();
        let far = far_series(50, 30.0, 35.0, (80, 92), &days);
        let near = far_series(50, 5.0, 30.0, (80, 92), &days);
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert_eq!(r.rejected, Some(RejectReason::TooFewDays), "{:?}", r.window);
    }

    #[test]
    fn dispersed_peaks_rejected() {
        // Two equal-strength windows 8 hours apart.
        let days: Vec<usize> = (0..50).collect();
        let mut far = far_series(50, 30.0, 35.0, (80, 86), &days);
        let second = far_series(50, 30.0, 35.0, (20, 26), &days);
        for (a, b) in far.iter_mut().zip(second) {
            if let (Some(x), Some(y)) = (a.as_mut(), b) {
                *x = x.max(y);
            }
        }
        let near = flat(50, 5.0);
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert_eq!(r.rejected, Some(RejectReason::DispersedPeaks));
    }

    #[test]
    fn incoherent_days_rejected() {
        // Each day elevates a different random interval: lots of "any
        // elevation" days, few agreeing on the peak.
        let mut far = flat(50, 30.0);
        for d in 0..50usize {
            let iv = (d * 13) % INTERVALS_PER_DAY;
            far[d * INTERVALS_PER_DAY + iv] = Some(70.0);
        }
        let near = flat(50, 5.0);
        let cfg = AutocorrConfig { min_days: 1, ..Default::default() };
        let r = analyze_window(&near, &far, &cfg);
        assert!(
            matches!(
                r.rejected,
                Some(RejectReason::IncoherentDays) | Some(RejectReason::DispersedPeaks)
            ),
            "{:?}",
            r.rejected
        );
    }

    #[test]
    fn partial_days_counted_in_estimates() {
        // All days share the window, but day 7 is congested only half of it.
        let days: Vec<usize> = (0..50).collect();
        let mut far = far_series(50, 30.0, 35.0, (80, 92), &days);
        for iv in 86..92 {
            far[7 * INTERVALS_PER_DAY + iv] = Some(30.0);
        }
        let near = flat(50, 5.0);
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert!(r.rejected.is_none());
        assert_eq!(r.days[7].congested_intervals, 6);
        assert_eq!(r.days[8].congested_intervals, 12);
        // 1 interval = 1.04% (the paper's example granularity).
        assert!((1.0f64 / 96.0 - 0.0104).abs() < 1e-4);
    }

    #[test]
    fn missing_data_rejected() {
        let near = vec![None; 50 * INTERVALS_PER_DAY];
        let far = vec![None; 50 * INTERVALS_PER_DAY];
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert_eq!(r.rejected, Some(RejectReason::InsufficientData));
    }

    #[test]
    fn uncongested_link_clean() {
        let far = flat(50, 30.0);
        let near = flat(50, 5.0);
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        assert!(r.window.is_none());
        assert!(r.days.iter().all(|d| d.congestion_pct == 0.0));
    }
}
