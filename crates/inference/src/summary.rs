//! Per-link incremental inference summaries.
//!
//! `arm_reactive_loss` originally rescanned the store over the full
//! detection window for every task every time it ran: a range query, a
//! downsample, and a quality scan per link, all O(points in window). A
//! `LinkSummary` keeps the far-end series of one probing task in exactly
//! the dense form the detectors consume — a ring of per-bin minimums,
//! per-bin quality flags, and a presence bitset — updated from each
//! committed round in O(new bins). Serving a detection window is then a
//! straight copy out of the ring.
//!
//! # The canonical invariant
//!
//! At all times, the ring content over `[hi_bin - cap, hi_bin)` equals what
//! `Store::downsample_dense(key, …, Min)` / `Store::quality_dense(key, …)`
//! would return over the same bins. This holds **unconditionally of when
//! the summary was created**, because:
//!
//! * a summary is *backfilled* from the store at creation, so it starts
//!   equal by construction;
//! * each commit applies exactly the staged samples/annotations the store
//!   received, and the per-bin folds (`f64::min` over positive RTTs, `|=`
//!   over flags) are order-independent, so equality is preserved
//!   inductively.
//!
//! Creation-time independence is what makes checkpoint resume free: a
//! restored system simply recreates summaries lazily at the first
//! post-resume commit, and because the restored store is byte-identical,
//! the backfilled rings — and their [`LinkSummary::fingerprint`]s — match
//! the uninterrupted run's. The debug-assert recompute path in
//! `manic-core` checks the invariant on every served window in debug
//! builds.
//!
//! # Carried verdicts
//!
//! A byte-identical *per-round* verdict stream while skipping detection is
//! impossible: the minimum significant delta sits below the noise extremes,
//! so no cheap monotone sentinel can prove "the verdict did not change".
//! Instead [`LinkSummary::refresh`] maintains an elevation sentinel (running
//! count of consecutive present, unmasked bins more than 7 ms above the
//! baseline minimum — the §4.2 elevation criterion at the §4.1 minimum
//! duration) and re-runs the exact detector only when the sentinel arms or
//! disarms; between analyses the last exact verdict is carried. Verdicts at
//! analysis points are exact by construction; callers that need exactness
//! at an arbitrary instant (the production `arm_reactive_loss` path, the
//! benchmark's final evaluation) call [`LinkSummary::analyze_exact`].

use crate::levelshift::{Episode, LevelShiftConfig};
use crate::mask::{detect_level_shifts_masked, DEFAULT_REJECT};
use manic_tsdb::quality::QualityFlags;
use manic_tsdb::{Aggregate, BitSet, SeriesKey, Store};

/// §4.2's elevation criterion: a bin more than this far above the window
/// baseline counts as elevated for the sentinel.
pub const ELEVATION_MS: f64 = 7.0;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn div_ceil_i64(x: i64, d: i64) -> i64 {
    debug_assert!(d > 0);
    x.div_euclid(d) + i64::from(x.rem_euclid(d) != 0)
}

/// Rolling dense-bin summary of one link's far-end min-RTT series.
///
/// The ring covers absolute bins `[hi_bin - cap, hi_bin)`; bin `b` lives in
/// slot `b.rem_euclid(cap)`. Empty bins hold `f64::INFINITY` in `mins` and
/// a clear `present` bit.
#[derive(Debug, Clone)]
pub struct LinkSummary {
    bin_secs: i64,
    cap: usize,
    /// One past the newest covered absolute bin.
    hi_bin: i64,
    /// Per-bin minimum (`INFINITY` = no samples).
    mins: Vec<f64>,
    /// Per-bin OR of quality flags.
    flags: Vec<QualityFlags>,
    /// Which bins hold at least one sample.
    present: BitSet,
    // --- sentinel / carried-verdict state (not part of the fingerprint) ---
    /// Baseline minimum captured at the last exact analysis.
    base_min: f64,
    /// Consecutive elevated present bins ending at `scanned_to`.
    elev_run: u32,
    armed: bool,
    /// First bin the sentinel has not yet examined.
    scanned_to: i64,
    carried: Option<bool>,
    /// Exact analyses this summary has run (for speedup accounting).
    pub analyses: u64,
}

impl LinkSummary {
    /// Empty summary ending at `hi_end` (no store backfill — for tests and
    /// synthetic feeds that replay every sample through `observe_sample`).
    pub fn new(hi_end: i64, window_bins: usize, bin_secs: i64) -> Self {
        assert!(window_bins > 0 && bin_secs > 0);
        LinkSummary {
            bin_secs,
            cap: window_bins,
            hi_bin: div_ceil_i64(hi_end, bin_secs),
            mins: vec![f64::INFINITY; window_bins],
            flags: vec![0; window_bins],
            present: BitSet::with_len(window_bins),
            base_min: f64::INFINITY,
            elev_run: 0,
            armed: false,
            scanned_to: div_ceil_i64(hi_end, bin_secs) - window_bins as i64,
            carried: None,
            analyses: 0,
        }
    }

    /// Summary backfilled from the store over the trailing window ending at
    /// `hi_end`. This is the canonical constructor: the ring starts equal
    /// to the store's dense view by construction, regardless of how much
    /// history exists.
    pub fn backfilled(
        store: &Store,
        key: &SeriesKey,
        hi_end: i64,
        window_bins: usize,
        bin_secs: i64,
    ) -> Self {
        let mut s = LinkSummary::new(hi_end, window_bins, bin_secs);
        let from = (s.hi_bin - s.cap as i64) * bin_secs;
        let to = s.hi_bin * bin_secs;
        let mut bins = Vec::new();
        let mut qual = Vec::new();
        store.downsample_dense_into(key, from, to, bin_secs, Aggregate::Min, &mut bins);
        store.quality_dense_into(key, from, to, bin_secs, &mut qual);
        for (i, (v, q)) in bins.iter().zip(&qual).enumerate() {
            let b = s.hi_bin - s.cap as i64 + i as i64;
            let slot = b.rem_euclid(s.cap as i64) as usize;
            if let Some(v) = v {
                s.mins[slot] = *v;
                s.present.set(slot);
            }
            s.flags[slot] = *q;
        }
        crate::obs::metrics().summary_backfills.inc();
        s
    }

    pub fn bin_secs(&self) -> i64 {
        self.bin_secs
    }

    pub fn window_bins(&self) -> usize {
        self.cap
    }

    /// One past the newest covered absolute bin.
    pub fn hi_bin(&self) -> i64 {
        self.hi_bin
    }

    #[inline]
    fn slot(&self, b: i64) -> usize {
        b.rem_euclid(self.cap as i64) as usize
    }

    #[inline]
    fn lo_bin(&self) -> i64 {
        self.hi_bin - self.cap as i64
    }

    /// Advance the window so it ends at `hi_end`, expiring bins that fall
    /// out the back. O(bins advanced), never more than one full ring.
    pub fn advance_to(&mut self, hi_end: i64) {
        let new_hi = div_ceil_i64(hi_end, self.bin_secs);
        if new_hi <= self.hi_bin {
            return;
        }
        let stepped = new_hi - self.hi_bin;
        if stepped >= self.cap as i64 {
            self.mins.fill(f64::INFINITY);
            self.flags.fill(0);
            self.present.clear_all();
        } else {
            // Slots entering at the top previously held the bins expiring
            // at the bottom.
            for b in self.hi_bin..new_hi {
                let slot = self.slot(b);
                self.mins[slot] = f64::INFINITY;
                self.flags[slot] = 0;
                self.present.clear(slot);
            }
        }
        self.hi_bin = new_hi;
        self.scanned_to = self.scanned_to.max(self.lo_bin());
        crate::obs::metrics().summary_bins_advanced.add(stepped.min(self.cap as i64) as u64);
    }

    /// Fold one committed sample into its bin. Samples older than the
    /// window are ignored; a sample past `hi_bin` (a rate-budget slot that
    /// spilled over the round boundary) extends the window forward so the
    /// ring never silently diverges from the store.
    pub fn observe_sample(&mut self, t: i64, v: f64) {
        let b = t.div_euclid(self.bin_secs);
        if b >= self.hi_bin {
            self.advance_to((b + 1) * self.bin_secs);
        }
        if b < self.lo_bin() {
            return;
        }
        let slot = self.slot(b);
        self.mins[slot] = self.mins[slot].min(v);
        self.present.set(slot);
        crate::obs::metrics().summary_samples_folded.inc();
    }

    /// OR a quality annotation window into every bin it overlaps — the same
    /// per-bin overlap rule as `QualityLog::dense`.
    pub fn observe_flags(&mut self, from: i64, to: i64, fl: QualityFlags) {
        if fl == 0 || to <= from {
            return;
        }
        let b0 = from.div_euclid(self.bin_secs).max(self.lo_bin());
        let b1 = div_ceil_i64(to, self.bin_secs).min(self.hi_bin);
        for b in b0..b1 {
            let slot = self.slot(b);
            self.flags[slot] |= fl;
        }
    }

    /// Can the ring serve a dense read over `[from, to)`? Requires
    /// bin-aligned bounds fully inside the window.
    pub fn can_serve(&self, from: i64, to: i64) -> bool {
        from < to
            && from.rem_euclid(self.bin_secs) == 0
            && to.rem_euclid(self.bin_secs) == 0
            && from.div_euclid(self.bin_secs) >= self.lo_bin()
            && to.div_euclid(self.bin_secs) <= self.hi_bin
    }

    /// Copy the dense window `[from, to)` out of the ring, into the same
    /// layout `Store::downsample_dense` / `Store::quality_dense` produce.
    /// The caller must have checked [`Self::can_serve`].
    pub fn dense_into(
        &self,
        from: i64,
        to: i64,
        bins: &mut Vec<Option<f64>>,
        qual: &mut Vec<QualityFlags>,
    ) {
        assert!(self.can_serve(from, to), "window [{from}, {to}) not servable");
        bins.clear();
        qual.clear();
        let b0 = from.div_euclid(self.bin_secs);
        let b1 = to.div_euclid(self.bin_secs);
        bins.reserve((b1 - b0) as usize);
        qual.reserve((b1 - b0) as usize);
        for b in b0..b1 {
            let slot = self.slot(b);
            bins.push(self.present.get(slot).then_some(self.mins[slot]));
            qual.push(self.flags[slot]);
        }
        crate::obs::metrics().summary_windows_served.inc();
    }

    /// Exact masked level-shift detection over `[from, to)`, served from
    /// the ring. Identical output to running `detect_level_shifts_masked`
    /// on the store's dense view (the canonical invariant).
    pub fn analyze_exact(&mut self, from: i64, to: i64, cfg: &LevelShiftConfig) -> Vec<Episode> {
        let mut bins = Vec::new();
        let mut qual = Vec::new();
        self.dense_into(from, to, &mut bins, &mut qual);
        self.analyses += 1;
        crate::obs::metrics().summary_exact_analyses.inc();
        // Refresh the sentinel baseline: minimum over present unmasked bins.
        self.base_min = bins
            .iter()
            .zip(&qual)
            .filter(|&(_, &q)| q & DEFAULT_REJECT == 0)
            .filter_map(|(v, _)| *v)
            .fold(f64::INFINITY, f64::min);
        detect_level_shifts_masked(&bins, &qual, DEFAULT_REJECT, cfg)
    }

    /// Sentinel-gated verdict for the window `[from, to)`: scan only the
    /// bins appended since the last call, re-running the exact detector
    /// only when the elevation sentinel arms or disarms (or on first use).
    /// Between analyses the last exact verdict is carried; exactness at an
    /// arbitrary instant requires [`Self::analyze_exact`].
    pub fn refresh(&mut self, from: i64, to: i64, cfg: &LevelShiftConfig) -> bool {
        debug_assert!(self.can_serve(from, to));
        let arm_at = (cfg.l / 2).max(2) as u32;
        let b1 = to.div_euclid(self.bin_secs);
        let start = self.scanned_to.max(from.div_euclid(self.bin_secs));
        for b in start..b1 {
            let slot = self.slot(b);
            let masked = self.flags[slot] & DEFAULT_REJECT != 0;
            if !masked && self.present.get(slot) && self.mins[slot] > self.base_min + ELEVATION_MS
            {
                self.elev_run += 1;
            } else {
                self.elev_run = 0;
            }
        }
        self.scanned_to = self.scanned_to.max(b1);
        let armed_now = self.elev_run >= arm_at;
        if self.carried.is_none() || armed_now != self.armed {
            let verdict = !self.analyze_exact(from, to, cfg).is_empty();
            self.carried = Some(verdict);
        } else {
            crate::obs::metrics().summary_verdicts_carried.inc();
        }
        self.armed = armed_now;
        self.carried.unwrap_or(false)
    }

    /// Content fingerprint: FNV-1a over the window's dense content in
    /// chronological bin order, plus the window geometry. Deliberately
    /// excludes sentinel/carried state and any trace of *when* the summary
    /// was created — two summaries over byte-identical stores fingerprint
    /// equal even if one was maintained incrementally for weeks and the
    /// other backfilled a minute ago.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv(h, &self.bin_secs.to_le_bytes());
        h = fnv(h, &(self.cap as u64).to_le_bytes());
        h = fnv(h, &self.hi_bin.to_le_bytes());
        for b in self.lo_bin()..self.hi_bin {
            let slot = self.slot(b);
            let present = self.present.get(slot);
            h = fnv(h, &[present as u8, self.flags[slot]]);
            if present {
                h = fnv(h, &self.mins[slot].to_bits().to_le_bytes());
            }
        }
        h
    }
}

/// Count a served-window fallback (the summary could not cover the
/// requested window and the caller rescanned the store).
pub fn note_summary_fallback() {
    crate::obs::metrics().summary_window_fallbacks.inc();
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_tsdb::quality::{GAP, QUARANTINED};

    fn feed(s: &mut LinkSummary, t0: i64, vals: &[f64]) {
        for (i, &v) in vals.iter().enumerate() {
            let t = t0 + i as i64 * s.bin_secs();
            s.advance_to(t + s.bin_secs());
            s.observe_sample(t, v);
        }
    }

    #[test]
    fn ring_serves_dense_window() {
        let mut s = LinkSummary::new(0, 8, 300);
        feed(&mut s, 0, &[10.0, 11.0, 12.0, 13.0]);
        let (mut bins, mut qual) = (Vec::new(), Vec::new());
        assert!(s.can_serve(0, 1200));
        s.dense_into(0, 1200, &mut bins, &mut qual);
        assert_eq!(bins, vec![Some(10.0), Some(11.0), Some(12.0), Some(13.0)]);
        assert_eq!(qual, vec![0, 0, 0, 0]);
    }

    #[test]
    fn min_fold_and_presence() {
        let mut s = LinkSummary::new(300, 4, 300);
        s.observe_sample(10, 20.0);
        s.observe_sample(20, 15.0);
        s.observe_sample(30, 25.0);
        let (mut bins, mut qual) = (Vec::new(), Vec::new());
        s.dense_into(-900, 300, &mut bins, &mut qual);
        assert_eq!(bins, vec![None, None, None, Some(15.0)]);
    }

    #[test]
    fn advance_expires_old_bins() {
        let mut s = LinkSummary::new(0, 4, 300);
        feed(&mut s, 0, &[1.0, 2.0, 3.0, 4.0]);
        // Window is [0, 1200); advance two bins: [600, 1800).
        s.advance_to(1800);
        assert!(!s.can_serve(0, 1200), "oldest bins expired");
        let (mut bins, mut qual) = (Vec::new(), Vec::new());
        s.dense_into(600, 1800, &mut bins, &mut qual);
        assert_eq!(bins, vec![Some(3.0), Some(4.0), None, None]);
        // A jump past the whole ring clears everything.
        s.advance_to(1800 + 5 * 300);
        let hi = s.hi_bin() * 300;
        s.dense_into(hi - 4 * 300, hi, &mut bins, &mut qual);
        assert_eq!(bins, vec![None, None, None, None]);
    }

    #[test]
    fn flags_cover_overlapped_bins() {
        let mut s = LinkSummary::new(1200, 4, 300);
        s.observe_flags(250, 700, GAP);
        s.observe_flags(900, 1200, QUARANTINED);
        let (mut bins, mut qual) = (Vec::new(), Vec::new());
        s.dense_into(0, 1200, &mut bins, &mut qual);
        assert_eq!(qual, vec![GAP, GAP, GAP, QUARANTINED]);
    }

    #[test]
    fn can_serve_rejects_misaligned_and_out_of_window() {
        let s = LinkSummary::new(3000, 4, 300);
        assert!(s.can_serve(1800, 3000));
        assert!(!s.can_serve(1700, 3000), "misaligned start");
        assert!(!s.can_serve(1800, 2950), "misaligned end");
        assert!(!s.can_serve(1500, 3000), "beyond ring capacity");
        assert!(!s.can_serve(1800, 3300), "beyond window end");
        assert!(!s.can_serve(1800, 1800), "empty window");
    }

    #[test]
    fn fingerprint_is_creation_time_independent() {
        // Incrementally-maintained summary vs. one "backfilled" with the
        // same final content: identical fingerprints.
        let mut a = LinkSummary::new(0, 6, 300);
        feed(&mut a, 0, &[5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut b = LinkSummary::new(8 * 300, 6, 300);
        for (i, v) in [7.0, 8.0, 9.0, 10.0, 11.0, 12.0].iter().enumerate() {
            b.observe_sample((2 + i as i64) * 300, *v);
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Sentinel state must not leak into the fingerprint.
        let fp = a.fingerprint();
        a.refresh(2 * 300, 8 * 300, &LevelShiftConfig { l: 2, ..Default::default() });
        assert_eq!(a.fingerprint(), fp);
        // Content differences must.
        b.observe_sample(7 * 300 + 10, 1.0);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn refresh_carries_and_reanalyzes_on_transition() {
        let cfg = LevelShiftConfig::default();
        let nbins = 288i64;
        let mut s = LinkSummary::new(0, nbins as usize, 300);
        // Quiet day: first refresh analyzes, second carries.
        feed(&mut s, 0, &(0..nbins).map(|i| 20.0 + (i % 4) as f64 * 0.05).collect::<Vec<_>>());
        let hi = s.hi_bin() * 300;
        assert!(!s.refresh(hi - nbins * 300, hi, &cfg));
        assert_eq!(s.analyses, 1);
        s.advance_to(hi + 300);
        s.observe_sample(hi, 20.0);
        let hi2 = s.hi_bin() * 300;
        assert!(!s.refresh(hi2 - nbins * 300, hi2, &cfg));
        assert_eq!(s.analyses, 1, "quiet appends carry the verdict");
        // Sustained elevation arms the sentinel and forces an exact pass.
        for k in 0..48i64 {
            let t = hi2 + k * 300;
            s.advance_to(t + 300);
            s.observe_sample(t, 50.0);
        }
        let hi3 = s.hi_bin() * 300;
        let verdict = s.refresh(hi3 - nbins * 300, hi3, &cfg);
        assert!(s.analyses >= 2, "arming transition re-analyzes");
        assert!(verdict, "sustained 30ms shift detected");
    }

    #[test]
    fn analyze_exact_matches_direct_detection() {
        let cfg = LevelShiftConfig::default();
        let vals: Vec<f64> = (0..288)
            .map(|i| {
                let base = 20.0 + (i % 4) as f64 * 0.05;
                if (120..168).contains(&i) { base + 30.0 } else { base }
            })
            .collect();
        let mut s = LinkSummary::new(0, 288, 300);
        feed(&mut s, 0, &vals);
        let hi = s.hi_bin() * 300;
        let eps = s.analyze_exact(hi - 288 * 300, hi, &cfg);
        let bins: Vec<Option<f64>> = vals.iter().map(|&v| Some(v)).collect();
        let direct = detect_level_shifts_masked(&bins, &[0; 288], DEFAULT_REJECT, &cfg);
        assert_eq!(eps, direct);
        assert!(!eps.is_empty());
    }
}
