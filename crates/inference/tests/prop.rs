//! Property-based tests for the inference algorithms.

use manic_inference::autocorr::{analyze_window, AutocorrConfig, INTERVALS_PER_DAY};
use manic_inference::levelshift::{detect_level_shifts, LevelShiftConfig};
use manic_inference::merge_day_estimates;
use manic_inference::returnpath::correlate_signatures;
use manic_inference::DayEstimate;
use proptest::prelude::*;

/// Strategy: a 50-day diurnal far series with a configurable window/amount.
fn far_series(lo: usize, len: usize, amount: f64, seed: u64) -> Vec<Option<f64>> {
    (0..50 * INTERVALS_PER_DAY)
        .map(|i| {
            let iv = i % INTERVALS_PER_DAY;
            let noise = ((i as u64).wrapping_mul(seed | 1) >> 33) as f64 / (1u64 << 31) as f64;
            let inside = (iv + INTERVALS_PER_DAY - lo) % INTERVALS_PER_DAY < len;
            Some(20.0 + noise + if inside { amount } else { 0.0 })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structural invariants of the autocorrelation output, for any input:
    /// day estimates bounded, masks confined to the asserted window, counts
    /// consistent with masks.
    #[test]
    fn autocorr_output_invariants(
        lo in 0usize..INTERVALS_PER_DAY,
        len in 1usize..40,
        amount in 0.0f64..60.0,
        seed in any::<u64>(),
    ) {
        let far = far_series(lo, len, amount, seed);
        let near = vec![Some(5.0); far.len()];
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        prop_assert_eq!(r.days.len(), 50);
        prop_assert_eq!(r.day_masks.len(), 50);
        for (d, &mask) in r.days.iter().zip(&r.day_masks) {
            prop_assert!(d.congestion_pct >= 0.0 && d.congestion_pct <= 1.0);
            prop_assert_eq!(d.congested_intervals, mask.count_ones() as usize);
            match r.window {
                Some(w) => {
                    for iv in 0..INTERVALS_PER_DAY {
                        if mask & (1u128 << iv) != 0 {
                            prop_assert!(w.contains(iv), "mask bit outside window");
                        }
                    }
                }
                None => prop_assert_eq!(mask, 0),
            }
        }
        // Rejection and window assertion are mutually exclusive.
        prop_assert_eq!(r.window.is_some(), r.rejected.is_none());
    }

    /// A clean planted diurnal window above the threshold is always found,
    /// and the asserted window covers the plant.
    #[test]
    fn autocorr_finds_planted_windows(
        lo in 0usize..INTERVALS_PER_DAY,
        len in 4usize..24,
        amount in 15.0f64..60.0,
        seed in any::<u64>(),
    ) {
        let far = far_series(lo, len, amount, seed);
        let near = vec![Some(5.0); far.len()];
        let r = analyze_window(&near, &far, &AutocorrConfig::default());
        let w = r.window.expect("planted window must be found");
        for off in 0..len {
            let iv = (lo + off) % INTERVALS_PER_DAY;
            prop_assert!(w.contains(iv), "window {w:?} misses planted interval {iv}");
        }
        // Daily estimates reflect the plant's duration (within expansion).
        for d in &r.days {
            prop_assert!(d.congested_intervals >= len.saturating_sub(1));
        }
    }

    /// Level-shift episodes are ordered, disjoint, within bounds, and at
    /// least l/2 bins long.
    #[test]
    fn levelshift_episode_invariants(
        shifts in prop::collection::vec((0usize..900, 8usize..80, 5.0f64..50.0), 0..4),
        seed in any::<u64>(),
    ) {
        let n = 1000usize;
        let series: Vec<Option<f64>> = (0..n)
            .map(|i| {
                let noise = ((i as u64).wrapping_mul(seed | 1) >> 33) as f64 / (1u64 << 31) as f64;
                let mut v = 20.0 + noise * 0.5;
                for &(lo, len, amt) in &shifts {
                    if i >= lo && i < (lo + len).min(n) {
                        v += amt;
                    }
                }
                Some(v)
            })
            .collect();
        let cfg = LevelShiftConfig::default();
        let eps = detect_level_shifts(&series, &cfg);
        let mut prev_end = 0usize;
        for e in &eps {
            prop_assert!(e.start >= prev_end, "episodes ordered/disjoint");
            prop_assert!(e.end <= n);
            prop_assert!(e.end > e.start);
            prop_assert!(e.level >= e.baseline);
            prev_end = e.end;
        }
    }

    /// Merging is idempotent and commutative, and the merged estimate
    /// dominates every input.
    #[test]
    fn merge_properties(
        a in prop::collection::vec(0usize..96, 1..20),
        b in prop::collection::vec(0usize..96, 1..20),
    ) {
        let mk = |v: &[usize]| -> Vec<DayEstimate> {
            v.iter()
                .enumerate()
                .map(|(day, &iv)| DayEstimate {
                    day,
                    congested_intervals: iv,
                    congestion_pct: iv as f64 / 96.0,
                })
                .collect()
        };
        let (ea, eb) = (mk(&a), mk(&b));
        let ab = merge_day_estimates(&[ea.clone(), eb.clone()]);
        let ba = merge_day_estimates(&[eb.clone(), ea.clone()]);
        prop_assert_eq!(&ab, &ba, "commutative");
        let aa = merge_day_estimates(&[ea.clone(), ea.clone()]);
        prop_assert_eq!(&aa, &ea, "idempotent");
        for d in &ab {
            if let Some(x) = ea.iter().find(|e| e.day == d.day) {
                prop_assert!(d.congested_intervals >= x.congested_intervals);
            }
            if let Some(x) = eb.iter().find(|e| e.day == d.day) {
                prop_assert!(d.congested_intervals >= x.congested_intervals);
            }
        }
    }

    /// Signature correlation is symmetric and bounded.
    #[test]
    fn signature_correlation_symmetric(
        lo1 in 0usize..96, lo2 in 0usize..96,
        len in 4usize..24,
        seed in any::<u64>(),
    ) {
        let a = far_series(lo1, len, 30.0, seed);
        let b = far_series(lo2, len, 30.0, seed.wrapping_add(1));
        let ab = correlate_signatures(&a, &b, 7.0);
        let ba = correlate_signatures(&b, &a, 7.0);
        match (ab, ba) {
            (Some(x), Some(y)) => {
                prop_assert!((x.correlation - y.correlation).abs() < 1e-9);
                prop_assert!(x.correlation >= -1.0 - 1e-9 && x.correlation <= 1.0 + 1e-9);
            }
            (None, None) => {}
            _ => prop_assert!(false, "asymmetric None"),
        }
    }
}
