//! Property tests for the incremental `LinkSummary`: across random
//! append/annotate/gap sequences (including chaos-schedule-style quality
//! flags), the ring must stay equal to the store's dense view, exact
//! analyses must equal batch detection on the store scan, and a summary
//! backfilled mid-sequence (the checkpoint-resume path) must converge to
//! the incrementally-maintained one bit-for-bit.

use manic_inference::{detect_level_shifts_masked, LevelShiftConfig, LinkSummary, DEFAULT_REJECT};
use manic_tsdb::{Aggregate, SeriesKey, Store};
use proptest::prelude::*;

const BIN: i64 = 300;
const CAP: usize = 32;

/// One round's worth of activity: samples at offsets within the round,
/// and an optional quality annotation over a sub-window.
type Round = (Vec<(i64, f64)>, Option<(i64, i64, u8)>);

fn arb_round() -> impl Strategy<Value = Round> {
    (
        prop::collection::vec((0i64..BIN, 1.0f64..100.0), 0..4),
        (0u8..2, 0i64..BIN, 1i64..BIN, 1u8..16),
    )
        .prop_map(|(samples, (has, off, len, fl))| {
            (samples, (has == 1).then_some((off, len, fl)))
        })
}

/// Replay `rounds` into a store and a summary the way the engine's commit
/// does: store writes first, then window advance, then the same staged ops
/// folded into the ring. Returns `(store, key, summary, end_time)`.
fn replay(rounds: &[Round], resume_at: Option<usize>) -> (Store, SeriesKey, LinkSummary, i64) {
    let store = Store::new();
    let key = SeriesKey::with_tags("tslp", &[("vp", "v1"), ("link", "10.0.0.1"), ("end", "far")]);
    let mut summary = LinkSummary::new(0, CAP, BIN);
    for (r, (samples, annot)) in rounds.iter().enumerate() {
        let t0 = r as i64 * BIN;
        if let Some(&(off, len, fl)) = annot.as_ref() {
            let (f, t) = (t0 + off, (t0 + off + len).min(t0 + BIN));
            if t > f {
                store.annotate(&key, f, t, fl);
            }
        }
        for &(off, v) in samples {
            store.write(&key, t0 + off, v);
        }
        // A mid-sequence backfill models checkpoint resume: the summary is
        // recreated from the store at this round's commit and must converge
        // with the incrementally-maintained one.
        if resume_at == Some(r) {
            summary = LinkSummary::backfilled(&store, &key, t0 + BIN, CAP, BIN);
        } else {
            summary.advance_to(t0 + BIN);
            if let Some(&(off, len, fl)) = annot.as_ref() {
                let (f, t) = (t0 + off, (t0 + off + len).min(t0 + BIN));
                if t > f {
                    summary.observe_flags(f, t, fl);
                }
            }
            for &(off, v) in samples {
                summary.observe_sample(t0 + off, v);
            }
        }
    }
    let end = rounds.len() as i64 * BIN;
    (store, key, summary, end)
}

proptest! {
    /// Ring content == store dense content over any servable window.
    #[test]
    fn ring_equals_store_dense(
        rounds in prop::collection::vec(arb_round(), 1..80),
        win in 1usize..CAP,
    ) {
        let (store, key, summary, end) = replay(&rounds, None);
        let from = (end - (win as i64).min(rounds.len() as i64) * BIN).max(end - CAP as i64 * BIN);
        prop_assert!(summary.can_serve(from, end));
        let (mut bins, mut qual) = (Vec::new(), Vec::new());
        summary.dense_into(from, end, &mut bins, &mut qual);
        let store_bins = store.downsample_dense(&key, from, end, BIN, Aggregate::Min);
        let store_qual = store.quality_dense(&key, from, end, BIN);
        prop_assert_eq!(&bins, &store_bins, "mins diverged over [{}, {})", from, end);
        prop_assert_eq!(&qual, &store_qual, "flags diverged over [{}, {})", from, end);
    }

    /// Incremental exact analysis == batch detection on the store rescan.
    #[test]
    fn analyze_exact_equals_batch_detection(
        rounds in prop::collection::vec(arb_round(), 24..80),
    ) {
        let (store, key, mut summary, end) = replay(&rounds, None);
        let from = end - (CAP as i64).min(rounds.len() as i64) * BIN;
        let cfg = LevelShiftConfig::default();
        let incremental = summary.analyze_exact(from, end, &cfg);
        let bins = store.downsample_dense(&key, from, end, BIN, Aggregate::Min);
        let qual = store.quality_dense(&key, from, end, BIN);
        let batch = detect_level_shifts_masked(&bins, &qual, DEFAULT_REJECT, &cfg);
        prop_assert_eq!(incremental, batch);
    }

    /// A summary recreated by store backfill mid-sequence (checkpoint
    /// resume) fingerprints identically to one maintained incrementally
    /// from the start — creation time must be unobservable.
    #[test]
    fn backfilled_summary_converges(
        rounds in prop::collection::vec(arb_round(), 2..80),
        cut in 0usize..80,
    ) {
        let cut = cut % rounds.len();
        let (_, _, maintained, _) = replay(&rounds, None);
        let (_, _, resumed, _) = replay(&rounds, Some(cut));
        prop_assert_eq!(
            maintained.fingerprint(),
            resumed.fingerprint(),
            "backfill at round {} diverged", cut
        );
    }
}
