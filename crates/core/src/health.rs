//! Per-task health machine: bounded retries with backoff instead of
//! probing into the void.
//!
//! The production system coexisted with tasks going dark for many reasons —
//! interface silence, router reboots, renumbering, rate limiting — most of
//! them transient. Probing a dark task at full cadence wastes budget and,
//! worse, writes junk into the series. Each TSLP task therefore carries a
//! small state machine:
//!
//! ```text
//!          misses >= degrade_after        misses >= quarantine_after
//! Healthy ─────────────────────► Degraded ─────────────────────► Quarantined
//!    ▲                              │  ▲                            │   │
//!    └── oks >= probation_rounds ───┘  └──── re-probe answers ──────┘   │
//!                                                                       │
//!                     quarantines > max_quarantines                     ▼
//!                Retired ◄──────────────────────────────────── (re-quarantine,
//!            (until the next bdrmap cycle                        backoff × 2)
//!             rebuilds the probing set)
//! ```
//!
//! While `Quarantined`, the task is skipped until its exponential backoff
//! (with deterministic jitter, so re-probes from different tasks do not
//! synchronize into bursts) expires; the single re-probe round then decides
//! between recovery and a doubled backoff. `Retired` tasks stop consuming
//! budget entirely until a bdrmap cycle rebuilds the probing set.

use manic_netsim::noise;
use manic_netsim::time::SimTime;

/// Health of one probing task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Far end answering normally.
    Healthy,
    /// Consecutive far-end misses crossed the degrade threshold; still
    /// probed every round, but on probation.
    Degraded,
    /// Dark long enough to stop probing; retried after a backoff.
    Quarantined,
    /// Quarantined too many times; parked until the next bdrmap cycle.
    Retired,
}

impl HealthState {
    /// Stable snake_case label (metric labels, journal fields).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Quarantined => "quarantined",
            HealthState::Retired => "retired",
        }
    }

    /// Inverse of [`Self::as_str`] (checkpoint deserialization).
    pub fn parse(s: &str) -> Option<HealthState> {
        match s {
            "healthy" => Some(HealthState::Healthy),
            "degraded" => Some(HealthState::Degraded),
            "quarantined" => Some(HealthState::Quarantined),
            "retired" => Some(HealthState::Retired),
            _ => None,
        }
    }
}

/// Thresholds and backoff shape of the health machine.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive far-end misses before `Healthy -> Degraded`.
    pub degrade_after: u32,
    /// Consecutive far-end misses before `Degraded -> Quarantined`.
    pub quarantine_after: u32,
    /// First quarantine backoff; doubles on each re-quarantine.
    pub base_backoff_secs: i64,
    /// Backoff ceiling.
    pub max_backoff_secs: i64,
    /// Consecutive answered rounds before `Degraded -> Healthy`.
    pub probation_rounds: u32,
    /// Quarantine entries beyond this retire the task.
    pub max_quarantines: u32,
    /// Jitter on the backoff expiry, as a fraction of the backoff.
    pub jitter_frac: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            degrade_after: 2,
            quarantine_after: 4,
            base_backoff_secs: 900,
            max_backoff_secs: 7_200,
            probation_rounds: 2,
            max_quarantines: 3,
            jitter_frac: 0.25,
        }
    }
}

/// Health-machine state of one task.
#[derive(Debug, Clone)]
pub struct TaskHealth {
    pub state: HealthState,
    /// Consecutive rounds without a valid far-end response.
    misses: u32,
    /// Consecutive answered rounds while on probation.
    oks: u32,
    /// While quarantined: do not probe before this time.
    backoff_until: SimTime,
    /// Current backoff length (doubles per re-quarantine).
    backoff_secs: i64,
    /// Times this task entered quarantine since its last reset.
    pub quarantines: u32,
}

impl Default for TaskHealth {
    fn default() -> Self {
        TaskHealth {
            state: HealthState::Healthy,
            misses: 0,
            oks: 0,
            backoff_until: SimTime::MIN,
            backoff_secs: 0,
            quarantines: 0,
        }
    }
}

impl TaskHealth {
    pub fn new() -> Self {
        TaskHealth::default()
    }

    /// Should the task be probed in the round starting at `t`?
    pub fn should_probe(&self, t: SimTime) -> bool {
        match self.state {
            HealthState::Healthy | HealthState::Degraded => true,
            HealthState::Quarantined => t >= self.backoff_until,
            HealthState::Retired => false,
        }
    }

    /// Is the task's series trustworthy this round? Anything past `Healthy`
    /// gets its window annotated so inference masks it.
    pub fn is_suspect(&self) -> bool {
        self.state != HealthState::Healthy
    }

    /// Fold in one probed round's far-end outcome at time `t`.
    ///
    /// `seed`/`stream` feed the deterministic backoff jitter: pass the
    /// simulation seed and a per-task stream (e.g. hashed far IP) so
    /// distinct tasks desynchronize but a rerun reproduces exactly.
    pub fn observe(&mut self, far_ok: bool, t: SimTime, cfg: &HealthConfig, seed: u64, stream: u64) {
        match self.state {
            HealthState::Healthy => {
                if far_ok {
                    self.misses = 0;
                } else {
                    self.misses += 1;
                    if self.misses >= cfg.degrade_after {
                        self.state = HealthState::Degraded;
                        self.oks = 0;
                    }
                }
            }
            HealthState::Degraded => {
                if far_ok {
                    self.oks += 1;
                    if self.oks >= cfg.probation_rounds {
                        self.state = HealthState::Healthy;
                        self.misses = 0;
                    }
                } else {
                    self.oks = 0;
                    self.misses += 1;
                    if self.misses >= cfg.quarantine_after {
                        self.enter_quarantine(t, cfg, seed, stream);
                    }
                }
            }
            HealthState::Quarantined => {
                // Only reached on the re-probe round after backoff expiry.
                if far_ok {
                    self.state = HealthState::Degraded;
                    self.misses = 0;
                    self.oks = 1;
                } else {
                    self.enter_quarantine(t, cfg, seed, stream);
                }
            }
            HealthState::Retired => {}
        }
    }

    /// Checkpoint serialization: every field of the machine, in declaration
    /// order — `(state, misses, oks, backoff_until, backoff_secs,
    /// quarantines)`.
    pub fn to_parts(&self) -> (HealthState, u32, u32, SimTime, i64, u32) {
        (self.state, self.misses, self.oks, self.backoff_until, self.backoff_secs, self.quarantines)
    }

    /// Rebuild from [`Self::to_parts`] output; a resumed machine continues
    /// exactly where the checkpointed one stopped.
    pub fn from_parts(
        state: HealthState,
        misses: u32,
        oks: u32,
        backoff_until: SimTime,
        backoff_secs: i64,
        quarantines: u32,
    ) -> TaskHealth {
        TaskHealth { state, misses, oks, backoff_until, backoff_secs, quarantines }
    }

    fn enter_quarantine(&mut self, t: SimTime, cfg: &HealthConfig, seed: u64, stream: u64) {
        self.quarantines += 1;
        if self.quarantines > cfg.max_quarantines {
            self.state = HealthState::Retired;
            return;
        }
        self.state = HealthState::Quarantined;
        self.backoff_secs = if self.backoff_secs == 0 {
            cfg.base_backoff_secs
        } else {
            (self.backoff_secs * 2).min(cfg.max_backoff_secs)
        };
        let jitter = noise::uniform(seed ^ 0x4EA1, stream, self.quarantines as u64)
            * cfg.jitter_frac
            * self.backoff_secs as f64;
        self.backoff_until = t + self.backoff_secs + jitter as i64;
        self.misses = 0;
    }
}

/// Worker-supervision thresholds: what a panicking or deadline-blowing VP
/// round costs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Strikes beyond this retire the VP (panics are not transient noise:
    /// a worker that keeps crashing on the same state will keep crashing).
    pub max_strikes: u32,
    /// First quarantine backoff; doubles per strike.
    pub base_backoff_secs: i64,
    /// Backoff ceiling.
    pub max_backoff_secs: i64,
    /// Per-VP round deadline in wall-clock milliseconds; a round that
    /// overruns it counts as a watchdog strike. `None` disables the
    /// watchdog (the default — wall-clock deadlines are inherently
    /// non-deterministic, so they are an operational safety net, not part
    /// of the reproducibility contract).
    pub round_deadline_ms: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_strikes: 3,
            base_backoff_secs: 1_800,
            max_backoff_secs: 12 * 3_600,
            round_deadline_ms: None,
        }
    }
}

/// Supervision state of one VP worker: strike-based quarantine with
/// exponential backoff, mirroring the per-task [`TaskHealth`] machine one
/// level up. A caught panic (or a watchdog overrun) is a strike; a struck
/// VP sits out rounds until its backoff expires, and too many strikes
/// retire it until the operator intervenes.
#[derive(Debug, Clone)]
pub struct VpSupervisor {
    /// Panics / watchdog overruns since the VP was created (or restored).
    pub strikes: u32,
    /// While quarantined: do not run rounds before this sim time.
    pub quarantined_until: SimTime,
    /// Current backoff length (doubles per strike).
    backoff_secs: i64,
    /// Struck out: the VP no longer runs rounds at all.
    pub retired: bool,
}

impl Default for VpSupervisor {
    fn default() -> Self {
        VpSupervisor {
            strikes: 0,
            quarantined_until: SimTime::MIN,
            backoff_secs: 0,
            retired: false,
        }
    }
}

impl VpSupervisor {
    pub fn new() -> Self {
        VpSupervisor::default()
    }

    /// May this VP's round run at `t`?
    pub fn may_run(&self, t: SimTime) -> bool {
        !self.retired && t >= self.quarantined_until
    }

    /// Is the VP currently being held out (quarantined or retired)?
    pub fn is_isolated(&self, t: SimTime) -> bool {
        !self.may_run(t)
    }

    /// Record one strike at `t`. Returns the state the VP lands in
    /// ([`HealthState::Quarantined`] or [`HealthState::Retired`]) so the
    /// caller can meter the transition.
    pub fn strike(&mut self, t: SimTime, cfg: &SupervisorConfig) -> HealthState {
        self.strikes += 1;
        if self.strikes > cfg.max_strikes {
            self.retired = true;
            return HealthState::Retired;
        }
        self.backoff_secs = if self.backoff_secs == 0 {
            cfg.base_backoff_secs
        } else {
            (self.backoff_secs * 2).min(cfg.max_backoff_secs)
        };
        self.quarantined_until = t + self.backoff_secs;
        HealthState::Quarantined
    }

    /// Checkpoint serialization: `(strikes, quarantined_until,
    /// backoff_secs, retired)`.
    pub fn to_parts(&self) -> (u32, SimTime, i64, bool) {
        (self.strikes, self.quarantined_until, self.backoff_secs, self.retired)
    }

    /// Rebuild from [`Self::to_parts`] output.
    pub fn from_parts(strikes: u32, quarantined_until: SimTime, backoff_secs: i64, retired: bool) -> Self {
        VpSupervisor { strikes, quarantined_until, backoff_secs, retired }
    }
}

/// Bounded-retry backoff for a whole bdrmap cycle: when a cycle produces an
/// empty probing set (the VP's view collapsed — uplink outage, first-hop
/// reboot), retry on an exponential schedule instead of hammering or
/// sleeping a full `bdrmap_cycle_days`.
#[derive(Debug, Clone)]
pub struct CycleBackoff {
    /// Consecutive failed cycles.
    pub failures: u32,
    /// Do not re-attempt before this time.
    pub next_attempt: SimTime,
    base_secs: i64,
    max_secs: i64,
}

impl CycleBackoff {
    pub fn new(base_secs: i64, max_secs: i64) -> Self {
        CycleBackoff { failures: 0, next_attempt: SimTime::MIN, base_secs, max_secs }
    }

    pub fn may_attempt(&self, t: SimTime) -> bool {
        t >= self.next_attempt
    }

    pub fn note_success(&mut self) {
        self.failures = 0;
        self.next_attempt = SimTime::MIN;
    }

    pub fn note_failure(&mut self, t: SimTime) {
        self.failures += 1;
        let shift = (self.failures - 1).min(16);
        let delay = self.base_secs.saturating_mul(1 << shift).min(self.max_secs);
        self.next_attempt = t + delay;
    }

    /// Checkpoint serialization: `(failures, next_attempt, base_secs,
    /// max_secs)`.
    pub fn to_parts(&self) -> (u32, SimTime, i64, i64) {
        (self.failures, self.next_attempt, self.base_secs, self.max_secs)
    }

    /// Rebuild from [`Self::to_parts`] output.
    pub fn from_parts(failures: u32, next_attempt: SimTime, base_secs: i64, max_secs: i64) -> Self {
        CycleBackoff { failures, next_attempt, base_secs, max_secs }
    }
}

impl Default for CycleBackoff {
    fn default() -> Self {
        // First retry after 30 minutes, doubling to a 12-hour ceiling.
        CycleBackoff::new(1_800, 12 * 3_600)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig::default()
    }

    #[test]
    fn healthy_until_degrade_threshold() {
        let mut h = TaskHealth::new();
        h.observe(false, 0, &cfg(), 1, 1);
        assert_eq!(h.state, HealthState::Healthy, "one miss tolerated");
        h.observe(false, 300, &cfg(), 1, 1);
        assert_eq!(h.state, HealthState::Degraded);
        assert!(h.should_probe(600), "degraded tasks still probed");
        assert!(h.is_suspect());
    }

    #[test]
    fn probation_recovers_to_healthy() {
        let mut h = TaskHealth::new();
        for t in 0..2 {
            h.observe(false, t * 300, &cfg(), 1, 1);
        }
        assert_eq!(h.state, HealthState::Degraded);
        h.observe(true, 600, &cfg(), 1, 1);
        assert_eq!(h.state, HealthState::Degraded, "one ok is not enough");
        h.observe(true, 900, &cfg(), 1, 1);
        assert_eq!(h.state, HealthState::Healthy);
        assert!(!h.is_suspect());
    }

    #[test]
    fn quarantine_applies_backoff_and_jitter() {
        let mut h = TaskHealth::new();
        for t in 0..4i64 {
            h.observe(false, t * 300, &cfg(), 1, 1);
        }
        assert_eq!(h.state, HealthState::Quarantined);
        assert_eq!(h.quarantines, 1);
        // Backoff: not probed right away, probed after base + jitter.
        assert!(!h.should_probe(900 + 300));
        let horizon = 900 + cfg().base_backoff_secs + (cfg().base_backoff_secs as f64 * cfg().jitter_frac) as i64 + 1;
        assert!(h.should_probe(horizon));
        // Distinct streams get distinct jitter (desynchronized re-probes).
        let mut h2 = TaskHealth::new();
        for t in 0..4i64 {
            h2.observe(false, t * 300, &cfg(), 1, 2);
        }
        assert_ne!(h.backoff_until, h2.backoff_until, "jitter differs per stream");
    }

    #[test]
    fn requarantine_doubles_backoff_then_retires() {
        let c = cfg();
        let mut h = TaskHealth::new();
        let mut t = 0i64;
        for _ in 0..4 {
            h.observe(false, t, &c, 1, 1);
            t += 300;
        }
        assert_eq!(h.state, HealthState::Quarantined);
        let first_backoff = h.backoff_secs;
        assert_eq!(first_backoff, c.base_backoff_secs);
        // Re-probe fails twice more: backoff doubles, then the task retires.
        t = h.backoff_until + 1;
        h.observe(false, t, &c, 1, 1);
        assert_eq!(h.state, HealthState::Quarantined);
        assert_eq!(h.backoff_secs, 2 * first_backoff);
        t = h.backoff_until + 1;
        h.observe(false, t, &c, 1, 1);
        assert_eq!(h.quarantines, 3);
        t = h.backoff_until + 1;
        h.observe(false, t, &c, 1, 1);
        assert_eq!(h.state, HealthState::Retired, "4th quarantine > max of 3");
        assert!(!h.should_probe(t + 1_000_000));
    }

    #[test]
    fn quarantined_task_recovers_through_probation() {
        let c = cfg();
        let mut h = TaskHealth::new();
        for t in 0..4i64 {
            h.observe(false, t * 300, &c, 1, 1);
        }
        let t = h.backoff_until + 1;
        h.observe(true, t, &c, 1, 1);
        assert_eq!(h.state, HealthState::Degraded, "re-probe success -> probation");
        h.observe(true, t + 300, &c, 1, 1);
        assert_eq!(h.state, HealthState::Healthy);
    }

    #[test]
    fn backoff_caps_at_max() {
        let c = HealthConfig { max_backoff_secs: 1_000, ..cfg() };
        let mut h = TaskHealth::new();
        let mut t = 0i64;
        for _ in 0..4 {
            h.observe(false, t, &c, 1, 1);
            t += 300;
        }
        for _ in 0..1 {
            t = h.backoff_until + 1;
            h.observe(false, t, &c, 1, 1);
        }
        assert!(h.backoff_secs <= 1_000);
    }

    #[test]
    fn cycle_backoff_doubles_and_resets() {
        let mut b = CycleBackoff::new(100, 1_000);
        assert!(b.may_attempt(0));
        b.note_failure(0);
        assert!(!b.may_attempt(99));
        assert!(b.may_attempt(100));
        b.note_failure(100);
        assert_eq!(b.next_attempt, 300, "2nd failure: +200");
        b.note_failure(300);
        assert_eq!(b.next_attempt, 700, "3rd failure: +400");
        for k in 0..20 {
            b.note_failure(1_000 + k);
        }
        assert!(b.next_attempt <= 1_019 + 1_000, "delay capped");
        b.note_success();
        assert!(b.may_attempt(0));
        assert_eq!(b.failures, 0);
    }
}
