//! The fluid-mode longitudinal pipeline behind every §6 result.
//!
//! For each VP the pipeline runs one bdrmap cycle (probing-state
//! construction), synthesizes the min-per-15-minute TSLP series for every
//! maintained link over the whole study window, slides the 50-day
//! autocorrelation analysis across it, and finally merges day estimates
//! across all VPs observing the same link (§4.2's last stage).
//!
//! Output granularity matches the paper's: per link, per day, a bitmap of
//! congested 15-minute intervals — from which day-link congestion
//! percentages (§6), monthly roll-ups (Figures 7/8), and time-of-day
//! histograms (Figure 9) all derive.

use crate::system::System;
use manic_bdrmap::infer::LinkRel;
use manic_inference::autocorr::{analyze_window, AutocorrConfig, INTERVALS_PER_DAY};
use manic_netsim::time::{day_index, SimTime, SECS_PER_DAY};
use manic_netsim::{AsNumber, Ipv4};
use std::collections::{BTreeMap, BTreeSet};

/// Longitudinal run parameters.
#[derive(Debug, Clone)]
pub struct LongitudinalConfig {
    /// Study window (must be day-aligned).
    pub from: SimTime,
    pub to: SimTime,
    pub autocorr: AutocorrConfig,
    /// Sliding step between 50-day analysis windows, days.
    pub window_step_days: usize,
    /// Worker threads (VPs are processed in parallel).
    pub threads: usize,
}

impl LongitudinalConfig {
    pub fn new(from: SimTime, to: SimTime) -> Self {
        assert!(from % SECS_PER_DAY == 0 && to % SECS_PER_DAY == 0, "day-aligned window required");
        assert!(to > from);
        LongitudinalConfig {
            from,
            to,
            autocorr: AutocorrConfig::default(),
            window_step_days: 25,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        }
    }
}

/// Per-VP (unmerged) congestion record for one link — Figure 9's per-VP
/// histograms and asymmetry diagnostics need the pre-merge view.
#[derive(Debug, Clone)]
pub struct VpLinkDays {
    pub vp: String,
    pub host_as: AsNumber,
    pub neighbor_as: AsNumber,
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    pub day_masks: BTreeMap<i64, u128>,
    pub observed: BTreeSet<i64>,
}

/// Full longitudinal output.
#[derive(Debug, Clone)]
pub struct LongitudinalOutput {
    /// One record per (host org, link), merged across VPs (§4.2 final stage).
    pub merged: Vec<LinkDays>,
    /// The unmerged per-VP records.
    pub per_vp: Vec<VpLinkDays>,
}

/// Merged congestion record for one interdomain link.
#[derive(Debug, Clone)]
pub struct LinkDays {
    /// Network hosting the VPs that observed the link.
    pub host_as: AsNumber,
    pub neighbor_as: AsNumber,
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    pub rel: LinkRel,
    pub via_ixp: bool,
    /// VPs contributing to the merge.
    pub vps: Vec<String>,
    /// Absolute day index -> bitmap of congested 15-minute intervals.
    pub day_masks: BTreeMap<i64, u128>,
    /// Days with enough data to count as observed.
    pub observed: BTreeSet<i64>,
}

impl LinkDays {
    /// Fraction of `day` spent congested.
    pub fn day_pct(&self, day: i64) -> f64 {
        self.day_masks
            .get(&day)
            .map(|m| m.count_ones() as f64 / INTERVALS_PER_DAY as f64)
            .unwrap_or(0.0)
    }

    /// Number of observed days.
    pub fn observed_days(&self) -> usize {
        self.observed.len()
    }

    /// Day-links at or above the threshold fraction (the §6 "significantly
    /// congested" bar is 0.04).
    pub fn congested_days(&self, threshold: f64) -> usize {
        self.observed.iter().filter(|&&d| self.day_pct(d) >= threshold).count()
    }
}

/// Per-(vp, task) analysis: slide 50-day windows and union day masks.
///
/// Every window produces an audit-trail verdict (detector "autocorr"):
/// asserted windows carry the congested-interval count, rejected windows the
/// rejection reason — so a §6 day-link number can be traced back to the
/// exact windows that asserted it.
fn analyze_task_series(
    vp_name: &str,
    series: &manic_probing::tslp::TaskSeries,
    cfg: &LongitudinalConfig,
) -> (BTreeMap<i64, u128>, BTreeSet<i64>) {
    let total_days = ((cfg.to - cfg.from) / SECS_PER_DAY) as usize;
    let wdays = cfg.autocorr.window_days;
    let first_day = day_index(cfg.from);

    // Observed days: any far-side data at all that day.
    let mut observed = BTreeSet::new();
    for d in 0..total_days {
        let lo = d * INTERVALS_PER_DAY;
        let hi = lo + INTERVALS_PER_DAY;
        let present = series.far[lo..hi].iter().filter(|b| b.is_some()).count();
        if present >= INTERVALS_PER_DAY / 4 {
            observed.insert(first_day + d as i64);
        }
    }

    let mut masks: BTreeMap<i64, u128> = BTreeMap::new();
    if total_days < wdays {
        return (masks, observed);
    }
    let mut starts: Vec<usize> = (0..=total_days - wdays).step_by(cfg.window_step_days).collect();
    let last_start = total_days - wdays;
    if starts.last() != Some(&last_start) {
        starts.push(last_start);
    }
    for w0 in starts {
        let lo = w0 * INTERVALS_PER_DAY;
        let hi = (w0 + wdays) * INTERVALS_PER_DAY;
        let res = analyze_window(&series.near[lo..hi], &series.far[lo..hi], &cfg.autocorr);
        let window_t = cfg.from + w0 as i64 * SECS_PER_DAY;
        let congested_intervals: u32 =
            res.day_masks.iter().map(|m| m.count_ones()).sum();
        let evidence = match res.rejected {
            Some(reason) => manic_obs::Evidence::new(
                "autocorr_rejected",
                vec![
                    ("reason", manic_obs::Value::from(reason.as_str())),
                    ("window_start_t", manic_obs::Value::from(window_t)),
                    ("window_days", manic_obs::Value::from(wdays)),
                ],
            ),
            None => manic_obs::Evidence::new(
                "autocorr_window",
                vec![
                    ("window_start_t", manic_obs::Value::from(window_t)),
                    ("window_days", manic_obs::Value::from(wdays)),
                    ("congested_intervals", manic_obs::Value::from(congested_intervals as u64)),
                ],
            ),
        };
        manic_obs::audit().record(manic_obs::AuditRecord {
            t: window_t,
            vp: vp_name.to_string(),
            near: series.near_ip.to_string(),
            link: series.far_ip.to_string(),
            detector: "autocorr",
            congested: res.rejected.is_none() && congested_intervals > 0,
            evidence: vec![evidence],
        });
        if res.rejected.is_some() {
            continue;
        }
        for (d, &mask) in res.day_masks.iter().enumerate() {
            if mask != 0 {
                let day = first_day + (w0 + d) as i64;
                *masks.entry(day).or_insert(0) |= mask;
            }
        }
    }
    (masks, observed)
}

/// Run the longitudinal pipeline over every VP in the system, returning the
/// merged per-link records (see [`run_longitudinal_detailed`] for the
/// per-VP view as well).
pub fn run_longitudinal(system: &mut System, cfg: &LongitudinalConfig) -> Vec<LinkDays> {
    run_longitudinal_detailed(system, cfg).merged
}

/// Run the longitudinal pipeline over every VP in the system.
///
/// Runs one bdrmap cycle per VP at `cfg.from` (if not already run), then
/// synthesizes and analyzes in parallel.
pub fn run_longitudinal_detailed(system: &mut System, cfg: &LongitudinalConfig) -> LongitudinalOutput {
    // Probing-state construction (sequential: mutates per-VP state).
    for vi in 0..system.vps.len() {
        if system.vps[vi].active && system.vps[vi].bdrmap.is_none() {
            system.run_bdrmap_cycle(vi, cfg.from);
        }
    }

    // Parallel synthesis + analysis per VP.
    type LinkOut = (Ipv4, Ipv4, AsNumber, LinkRel, bool, BTreeMap<i64, u128>, BTreeSet<i64>);
    struct VpOut {
        vp_name: String,
        host_as: AsNumber,
        links: Vec<LinkOut>,
    }
    let net = &system.world.net;
    let vps: Vec<&crate::system::VpRuntime> = system
        .vps
        .iter()
        .filter(|v| v.active && v.bdrmap.is_some())
        .collect();
    let chunk = vps.len().div_ceil(cfg.threads.max(1));
    let outputs: Vec<VpOut> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for group in vps.chunks(chunk.max(1)) {
            handles.push(scope.spawn(move || {
                let mut outs = Vec::new();
                for vp in group {
                    let series =
                        vp.tslp.synthesize_window(net, cfg.from, cfg.to, 900);
                    let bdr = vp.bdrmap.as_ref().expect("active VPs ran a cycle");
                    let mut links = Vec::new();
                    for s in &series {
                        let Some(meta) = bdr
                            .links
                            .iter()
                            .find(|l| l.near_ip == s.near_ip && l.far_ip == s.far_ip)
                        else {
                            continue;
                        };
                        let (masks, observed) =
                            analyze_task_series(&vp.handle.name, s, cfg);
                        links.push((
                            s.near_ip,
                            s.far_ip,
                            meta.far_as,
                            meta.rel,
                            meta.via_ixp,
                            masks,
                            observed,
                        ));
                    }
                    outs.push(VpOut {
                        vp_name: vp.handle.name.clone(),
                        host_as: vp.asn,
                        links,
                    });
                }
                outs
            }));
        }
        handles.into_iter().flat_map(|h| h.join().expect("worker")).collect()
    });

    // Merge across VPs: link identity = (host org anchor, near, far).
    let mut per_vp_records = Vec::new();
    let mut merged: BTreeMap<(AsNumber, Ipv4, Ipv4), LinkDays> = BTreeMap::new();
    for out in outputs {
        // Sibling VPs share the lowest sibling ASN as the org anchor.
        let anchor = system
            .world
            .artifacts
            .siblings(out.host_as)
            .into_iter()
            .min()
            .unwrap_or(out.host_as);
        for (near, far, neighbor, rel, via_ixp, masks, observed) in out.links {
            per_vp_records.push(VpLinkDays {
                vp: out.vp_name.clone(),
                host_as: out.host_as,
                neighbor_as: neighbor,
                near_ip: near,
                far_ip: far,
                day_masks: masks.clone(),
                observed: observed.clone(),
            });
            let entry = merged.entry((anchor, near, far)).or_insert_with(|| LinkDays {
                host_as: out.host_as,
                neighbor_as: neighbor,
                near_ip: near,
                far_ip: far,
                rel,
                via_ixp,
                vps: Vec::new(),
                day_masks: BTreeMap::new(),
                observed: BTreeSet::new(),
            });
            entry.vps.push(out.vp_name.clone());
            for (day, mask) in masks {
                *entry.day_masks.entry(day).or_insert(0) |= mask;
            }
            entry.observed.extend(observed);
        }
    }
    LongitudinalOutput { merged: merged.into_values().collect(), per_vp: per_vp_records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{System, SystemConfig};
    use manic_netsim::time::{date_to_sim, Date};
    use manic_scenario::worlds::{toy, toy_asns};

    fn run_toy(days: i64) -> Vec<LinkDays> {
        let mut sys = System::new(toy(1), SystemConfig::default());
        let from = date_to_sim(Date::new(2016, 4, 1));
        let cfg = LongitudinalConfig::new(from, from + days * SECS_PER_DAY);
        run_longitudinal(&mut sys, &cfg)
    }

    #[test]
    fn congested_peer_detected_clean_peer_not() {
        let links = run_toy(60);
        let hot: Vec<&LinkDays> = links
            .iter()
            .filter(|l| l.neighbor_as == toy_asns::CDNCO)
            .collect();
        let cold: Vec<&LinkDays> = links
            .iter()
            .filter(|l| l.neighbor_as == toy_asns::VIDCO)
            .collect();
        assert!(!hot.is_empty() && !cold.is_empty());
        let hot_days: usize = hot.iter().map(|l| l.congested_days(0.04)).sum();
        let cold_days: usize = cold.iter().map(|l| l.congested_days(0.04)).sum();
        // The scripted 4h/day episode => ~16 intervals/day ≈ 16.7% per day.
        assert!(hot_days >= 40, "hot link congested most days: {hot_days}");
        assert_eq!(cold_days, 0, "clean peer stays clean");
        // Daily congestion percentage ballpark: 4h = 16.7% of the day.
        let l = hot[0];
        let some_day = *l.day_masks.keys().next().unwrap();
        let pct = l.day_pct(some_day);
        assert!((0.08..0.35).contains(&pct), "day pct {pct}");
    }

    #[test]
    fn both_vps_merge_onto_one_link_record() {
        let links = run_toy(60);
        // The nyc VP sees the nyc ACME-CDNCO link; the chi VP's hot-potato
        // egress toward CDNCO is... also visible. At minimum, merged records
        // carry VP attribution.
        for l in &links {
            assert!(!l.vps.is_empty());
            assert!(l.observed_days() > 0 || l.day_masks.is_empty());
        }
        // Two VPs exist; some link is observed by at least one VP of each
        // metro or the same link by both.
        let total_vp_refs: usize = links.iter().map(|l| l.vps.len()).sum();
        assert!(total_vp_refs >= links.len());
    }

    #[test]
    fn short_study_yields_no_masks() {
        // 20 days < the 50-day window: no autocorr results, only observation.
        let links = run_toy(20);
        assert!(links.iter().all(|l| l.day_masks.is_empty()));
        assert!(links.iter().any(|l| l.observed_days() > 0));
    }
}
