//! Metric handles for the orchestration layer.
//!
//! Border-mapping counters carry the `manic_bdrmap_` prefix even though the
//! cycle driver lives here — the naming convention follows the subsystem
//! being measured, and `core::run_bdrmap_cycle` is where discovery/loss of
//! links is actually observable (the `manic-bdrmap` crate sees one cycle at
//! a time and cannot diff consecutive probing sets).

use crate::health::HealthState;
use manic_obs::{registry, Counter, Histogram};
use std::sync::OnceLock;

pub(crate) struct Metrics {
    /// bdrmap cycles executed / cycles that produced an empty probing set.
    pub bdrmap_cycles: Counter,
    pub bdrmap_cycles_empty: Counter,
    /// Interdomain links that (dis)appeared between consecutive cycles of
    /// the same VP.
    pub bdrmap_links_discovered: Counter,
    pub bdrmap_links_lost: Counter,
    /// Ally alias tests still indeterminate after all retries (silently
    /// degraded router grouping — previously invisible).
    pub ally_indeterminate: Counter,
    /// TSLP rounds driven by `run_packet_mode`.
    pub rounds: Counter,
    /// Rounds in which a due bdrmap cycle was held back by `CycleBackoff`.
    pub backoff_waits: Counter,
    /// VPs withdrawn by host churn.
    pub vp_retired: Counter,
    /// Health-machine transitions, by destination state.
    pub health_to_healthy: Counter,
    pub health_to_degraded: Counter,
    pub health_to_quarantined: Counter,
    pub health_to_retired: Counter,
    /// Congested / clean verdicts recorded to the audit trail.
    pub verdicts_congested: Counter,
    pub verdicts_clean: Counter,
    /// Rounds executed by the parallel engine (threads > 1); `rounds` minus
    /// this is the serial-path count.
    pub parallel_rounds: Counter,
    /// Wall-clock time spent per simulated TSLP round. The serving layer's
    /// load tests watch this to prove query traffic does not slow the
    /// measurement loop.
    pub round_duration: Histogram,
    /// Wall-clock time the parallel engine spends committing staged per-VP
    /// results in VP-index order (the serialized tail of each round).
    pub commit_ms: Histogram,
    /// Checkpoints written / bytes persisted per checkpoint (snapshot +
    /// metadata) / WAL segments garbage-collected as acknowledged.
    pub checkpoint_writes: Counter,
    pub checkpoint_bytes: Counter,
    pub checkpoint_wal_gc_segments: Counter,
    pub checkpoint_write_ms: Histogram,
    /// Successful resumes from a checkpoint, and how long recovery took.
    pub recoveries: Counter,
    pub recovery_ms: Histogram,
    /// Periodic checkpoint writes that failed (run continues on the last
    /// good generation) / resume attempts that had to fall back a
    /// checkpoint generation / corrupt snapshots healed by replaying an
    /// older generation's snapshot plus further WAL.
    pub checkpoint_errors: Counter,
    pub generation_fallbacks: Counter,
    pub snapshot_heals: Counter,
    /// VP workers whose round panicked (caught and quarantined) / rounds
    /// whose watchdog deadline expired before every worker finished.
    pub vp_panics: Counter,
    pub watchdog_timeouts: Counter,
}

impl Metrics {
    pub fn health_transition(&self, to: HealthState) -> &Counter {
        match to {
            HealthState::Healthy => &self.health_to_healthy,
            HealthState::Degraded => &self.health_to_degraded,
            HealthState::Quarantined => &self.health_to_quarantined,
            HealthState::Retired => &self.health_to_retired,
        }
    }
}

static METRICS: OnceLock<Metrics> = OnceLock::new();

pub(crate) fn metrics() -> &'static Metrics {
    METRICS.get_or_init(|| {
        let r = registry();
        let health =
            |to| r.counter_labeled("manic_core_health_transitions", &[("to", to)]);
        Metrics {
            bdrmap_cycles: r.counter("manic_bdrmap_cycles"),
            bdrmap_cycles_empty: r.counter("manic_bdrmap_cycles_empty"),
            bdrmap_links_discovered: r.counter("manic_bdrmap_links_discovered"),
            bdrmap_links_lost: r.counter("manic_bdrmap_links_lost"),
            ally_indeterminate: r.counter("manic_core_ally_indeterminate"),
            rounds: r.counter("manic_core_rounds"),
            backoff_waits: r.counter("manic_core_backoff_waits"),
            vp_retired: r.counter("manic_core_vp_retired"),
            health_to_healthy: health("healthy"),
            health_to_degraded: health("degraded"),
            health_to_quarantined: health("quarantined"),
            health_to_retired: health("retired"),
            verdicts_congested: r.counter("manic_core_verdicts_congested"),
            verdicts_clean: r.counter("manic_core_verdicts_clean"),
            parallel_rounds: r.counter("manic_core_parallel_rounds"),
            round_duration: r.histogram("manic_core_round_duration_ms"),
            commit_ms: r.histogram("manic_core_commit_ms"),
            checkpoint_writes: r.counter("manic_core_checkpoint_writes"),
            checkpoint_bytes: r.counter("manic_core_checkpoint_bytes"),
            checkpoint_wal_gc_segments: r.counter("manic_core_checkpoint_wal_gc_segments"),
            checkpoint_write_ms: r.histogram("manic_core_checkpoint_write_ms"),
            recoveries: r.counter("manic_core_checkpoint_recoveries"),
            recovery_ms: r.histogram("manic_core_checkpoint_recovery_ms"),
            checkpoint_errors: r.counter("manic_core_checkpoint_errors"),
            generation_fallbacks: r.counter("manic_core_generation_fallbacks"),
            snapshot_heals: r.counter("manic_core_snapshot_heals"),
            vp_panics: r.counter("manic_core_vp_panics"),
            watchdog_timeouts: r.counter("manic_core_watchdog_timeouts"),
        }
    })
}
