//! The measurement system (Figure 1 of the paper).
//!
//! `manic-core` wires the substrate and the tools into the system the paper
//! describes: vantage points running bdrmap cycles in the background,
//! TSLP probing every five minutes against the maintained probing state,
//! reactive loss probing, a time-series backend, and the inference pipeline
//! that turns raw latency series into per-day, per-link congestion
//! estimates merged across VPs.
//!
//! Two execution modes share all of that logic:
//!
//! * **packet mode** ([`System::run_packet_mode`]) — every probe is
//!   individually forwarded through the simulator and lands in the tsdb;
//!   used for the day-scale experiments (Figure 3/6 time series) and tests;
//! * **fluid mode** ([`longitudinal`]) — the probing layer synthesizes
//!   exactly the min-per-bin statistics the packet mode would have stored
//!   (see `manic_probing::path`), which is what makes the 22-month §6
//!   studies tractable.

pub mod checkpoint;
pub(crate) mod engine;
pub mod health;
pub mod longitudinal;
pub(crate) mod obs;
pub mod system;

pub use checkpoint::{
    recover_report, recover_report_with, resume, Durable, DurabilityConfig, RecoverReport,
    ResumeInfo, StorageFindings,
};
pub use health::{CycleBackoff, HealthConfig, HealthState, SupervisorConfig, TaskHealth, VpSupervisor};
pub use longitudinal::{run_longitudinal, run_longitudinal_detailed, LinkDays, LongitudinalConfig, LongitudinalOutput, VpLinkDays};
pub use system::{LinkStatus, System, SystemConfig, TaskHealthStatus, VpRuntime};
