//! Deterministic parallel round engine.
//!
//! `run_rounds` drives the packet-mode measurement loop: every five-minute
//! round it runs each active VP's work — a bdrmap cycle when due, retirement
//! polling, and the TSLP round — and lands the results in the tsdb. With
//! `SystemConfig::threads > 1` the per-VP work is fanned out across a fixed
//! pool of `std::thread::scope` workers that pull VP indices from a shared
//! atomic counter (work stealing, since bdrmap cycles make VP cost wildly
//! uneven).
//!
//! Determinism is preserved **by construction**, not by scheduling:
//!
//! * Each VP owns its `SimState` (RNG draw counter, ICMP rate-limiter
//!   buckets) and its probing budget, so a VP's outcomes are a pure function
//!   of (seed, VP, round) — independent of which worker runs it or when.
//! * Workers never touch the store. Samples and quality annotations are
//!   staged into per-VP [`StagedOps`] buffers; after the round barrier the
//!   coordinator commits them in **VP-index order**, so the WAL byte stream,
//!   the per-series point order, `Store::content_hash`, and checkpoint
//!   contents are identical for every thread count — including `threads: 1`,
//!   which runs the exact same stage-then-commit path without spawning.
//!
//! Journal events and metrics emitted *inside* a round may interleave across
//! workers; ordering of those side channels is explicitly not part of the
//! determinism contract (DESIGN.md §5g).

use crate::system::{System, SystemConfig, VpRuntime};
use manic_netsim::time::{SimTime, SECS_PER_DAY};
use manic_probing::tslp::{End, ROUND_SECS};
use manic_scenario::World;
use manic_tsdb::{quality::QualityFlags, Point, Store};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Per-VP staging buffers: everything a round wants to persist, recorded in
/// probe order and replayed against the store at commit time. Task indices
/// resolve to series keys through the prober's cached key table, so staging
/// a sample is two pushes — no formatting, no store locks.
#[derive(Default)]
pub(crate) struct StagedOps {
    /// `(task, end, t, rtt_ms)` in probe order (grouped by task).
    samples: Vec<(u32, End, SimTime, f64)>,
    /// `(task, end, from, until, flags)` in call order.
    annots: Vec<(u32, End, SimTime, SimTime, QualityFlags)>,
}

impl StagedOps {
    pub(crate) fn sample(&mut self, ti: usize, end: End, t: SimTime, rtt_ms: f64) {
        self.samples.push((ti as u32, end, t, rtt_ms));
    }

    pub(crate) fn annotate(
        &mut self,
        ti: usize,
        end: End,
        from: SimTime,
        until: SimTime,
        flags: QualityFlags,
    ) {
        self.annots.push((ti as u32, end, from, until, flags));
    }

    /// Drop everything staged so far (a panicked round must contribute
    /// nothing to the store).
    fn discard(&mut self) {
        self.samples.clear();
        self.annots.clear();
    }

    /// Replay the staged round against the store, fold it into the VP's
    /// incremental link summaries, and clear the buffers. Samples arrive
    /// grouped by task, so each task's near/far runs become one
    /// `write_batch` per series (one shard-lock acquisition, one WAL
    /// staging pass) instead of a lock per point. `near`/`far` are reusable
    /// scratch buffers owned by the commit loop.
    fn commit(
        &mut self,
        store: &Store,
        vp: &mut VpRuntime,
        t: SimTime,
        window_bins: usize,
        near: &mut Vec<Point>,
        far: &mut Vec<Point>,
    ) {
        let tslp = &vp.tslp;
        for &(ti, end, from, until, flags) in &self.annots {
            store.annotate(tslp.key(ti as usize, end), from, until, flags);
        }
        let mut i = 0;
        while i < self.samples.len() {
            let ti = self.samples[i].0;
            near.clear();
            far.clear();
            let mut j = i;
            while j < self.samples.len() && self.samples[j].0 == ti {
                let (_, end, t, v) = self.samples[j];
                match end {
                    End::Near => near.push(Point { t, v }),
                    End::Far => far.push(Point { t, v }),
                }
                j += 1;
            }
            if !near.is_empty() {
                store.write_batch(tslp.key(ti as usize, End::Near), near);
            }
            if !far.is_empty() {
                store.write_batch(tslp.key(ti as usize, End::Far), far);
            }
            i = j;
        }

        // Incremental summary maintenance (runs every round, including
        // empty ones, so windows advance deterministically). Existing rings
        // advance in O(1 bin); tasks without a ring backfill one from the
        // store — which at this point already contains the round's writes,
        // so a fresh ring starts exactly equal to the store's dense view.
        let hi_end = t + ROUND_SECS;
        for (ti, task) in vp.tslp.tasks.iter().enumerate() {
            match vp.summaries.entry((task.near_ip, task.far_ip)) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut().advance_to(hi_end),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(manic_inference::LinkSummary::backfilled(
                        store,
                        vp.tslp.key(ti, End::Far),
                        hi_end,
                        window_bins,
                        ROUND_SECS,
                    ));
                }
            }
        }
        // Replay the staged far-end ops into the rings. The per-bin folds
        // (`min`, `|=`) are idempotent, so freshly backfilled rings — which
        // already contain this round's writes — absorb the replay unchanged.
        for &(ti, end, from, until, flags) in &self.annots {
            if end != End::Far {
                continue;
            }
            if let Some(task) = vp.tslp.tasks.get(ti as usize) {
                if let Some(s) = vp.summaries.get_mut(&(task.near_ip, task.far_ip)) {
                    s.observe_flags(from, until, flags);
                }
            }
        }
        for &(ti, end, ts, v) in &self.samples {
            if end != End::Far {
                continue;
            }
            if let Some(task) = vp.tslp.tasks.get(ti as usize) {
                if let Some(s) = vp.summaries.get_mut(&(task.near_ip, task.far_ip)) {
                    s.observe_sample(ts, v);
                }
            }
        }
        self.annots.clear();
        self.samples.clear();
    }
}

/// One VP's share of one round: bdrmap cycle when due (with empty-cycle
/// backoff), retirement polling, then the health-gated TSLP round. Mirrors
/// the original serial control loop exactly — per VP, the relative order of
/// cycle → retirement check → round is unchanged, and no step reads another
/// VP's state.
fn vp_round(
    world: &World,
    cfg: &SystemConfig,
    vp: &mut VpRuntime,
    stage: &mut StagedOps,
    t: SimTime,
    cycle_secs: i64,
) {
    if !vp.active {
        return;
    }
    let due = match vp.last_cycle {
        // Immediately-due (startup or reactive refresh), unless a string of
        // failed cycles has us backing off.
        None => {
            let ok = vp.cycle_backoff.may_attempt(t);
            if !ok {
                crate::obs::metrics().backoff_waits.inc();
            }
            ok
        }
        Some(last) => t - last >= cycle_secs,
    };
    if due {
        let n = System::bdrmap_cycle_for(world, cfg, vp, t);
        if n == 0 {
            // The VP's view collapsed (uplink outage, first-hop reboot):
            // bounded retry instead of a dead 2 days.
            vp.last_cycle = None;
            vp.cycle_backoff.note_failure(t);
            crate::obs::metrics().bdrmap_cycles_empty.inc();
            manic_obs::event!(
                manic_obs::WARN, "core", "bdrmap_cycle_empty", t,
                vp = vp.handle.name.as_str(),
            );
        } else {
            vp.cycle_backoff.note_success();
        }
    }
    // Host churn driven by the fault schedule (§3): the VP is withdrawn;
    // history remains, probing stops.
    if world.net.fault.vp_retired(vp.handle.router, t) {
        vp.active = false;
        crate::obs::metrics().vp_retired.inc();
        manic_obs::event!(
            manic_obs::WARN, "core", "vp_retired", t,
            vp = vp.handle.name.as_str(),
        );
        return;
    }
    if world.net.fault.vp_panics(vp.handle.router, t) {
        panic!("injected VP worker panic ({})", vp.handle.name);
    }
    System::round_with_health(vp, &world.net, cfg, t, stage);
}

/// [`vp_round`] under supervision: the worker is isolated with
/// `catch_unwind`, so one VP crashing (or blowing the optional wall-clock
/// deadline) costs that VP a strike — quarantine with backoff, retirement
/// after too many — instead of tearing down the whole round.
///
/// Determinism: a panic at time `t` is itself deterministic (the injected
/// kind is a pure function of `(router, t)`, and a real one reproduces from
/// the same VP state), and the partially staged ops of a panicked round are
/// discarded wholesale — so every thread count sees the same store bytes.
/// The watchdog path is the exception: it reacts to *wall-clock* overrun
/// and is therefore off by default (`round_deadline_ms: None`), an
/// operational safety net rather than part of the reproducibility contract.
fn supervised_vp_round(
    world: &World,
    cfg: &SystemConfig,
    vp: &mut VpRuntime,
    stage: &mut StagedOps,
    t: SimTime,
    cycle_secs: i64,
) {
    if !vp.supervisor.may_run(t) {
        return;
    }
    let deadline = cfg.supervisor.round_deadline_ms;
    let started = deadline.map(|_| std::time::Instant::now());
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        vp_round(world, cfg, vp, stage, t, cycle_secs)
    }));
    match outcome {
        Ok(()) => {
            if let (Some(limit), Some(started)) = (deadline, started) {
                if started.elapsed().as_millis() as u64 > limit {
                    crate::obs::metrics().watchdog_timeouts.inc();
                    let to = vp.supervisor.strike(t, &cfg.supervisor);
                    crate::obs::metrics().health_transition(to).inc();
                    manic_obs::event!(
                        manic_obs::WARN, "core", "vp_watchdog_overrun", t,
                        vp = vp.handle.name.as_str(),
                        deadline_ms = limit,
                        strikes = vp.supervisor.strikes,
                        state = to.as_str(),
                    );
                }
            }
        }
        Err(payload) => {
            // Nothing from the crashed round may reach the store: a panic
            // mid-probe leaves half a round staged.
            stage.discard();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            crate::obs::metrics().vp_panics.inc();
            let to = vp.supervisor.strike(t, &cfg.supervisor);
            crate::obs::metrics().health_transition(to).inc();
            manic_obs::event!(
                manic_obs::ERROR, "core", "vp_worker_panicked", t,
                vp = vp.handle.name.as_str(),
                panic = msg.as_str(),
                strikes = vp.supervisor.strikes,
                state = to.as_str(),
            );
        }
    }
}

/// Drive rounds over `[from, to)`; returns the number of rounds executed.
pub(crate) fn run_rounds(sys: &mut System, from: SimTime, to: SimTime) -> usize {
    let System { world, store, vps, cfg, .. } = sys;
    let cycle_secs = cfg.bdrmap_cycle_days * SECS_PER_DAY;
    let nvps = vps.len();
    let threads = cfg.threads.max(1).min(nvps.max(1));
    let mut near_scratch: Vec<Point> = Vec::new();
    let mut far_scratch: Vec<Point> = Vec::new();
    let mut rounds = 0;

    if threads <= 1 {
        // Serial path: same stage-then-commit sequence, no pool. Keeping the
        // paths identical is what makes `--threads N` byte-compatible with
        // `--threads 1`.
        let mut stages: Vec<StagedOps> = (0..nvps).map(|_| StagedOps::default()).collect();
        let mut t = from;
        while t < to {
            let round_started = std::time::Instant::now();
            for (vp, stage) in vps.iter_mut().zip(stages.iter_mut()) {
                supervised_vp_round(world, cfg, vp, stage, t, cycle_secs);
            }
            let m = crate::obs::metrics();
            let commit_started = std::time::Instant::now();
            for (vp, stage) in vps.iter_mut().zip(stages.iter_mut()) {
                stage.commit(
                    store,
                    vp,
                    t,
                    cfg.summary_window_bins,
                    &mut near_scratch,
                    &mut far_scratch,
                );
            }
            m.commit_ms.observe(commit_started.elapsed().as_secs_f64() * 1e3);
            m.rounds.inc();
            m.round_duration.observe(round_started.elapsed().as_secs_f64() * 1e3);
            rounds += 1;
            t += ROUND_SECS;
        }
        return rounds;
    }

    // Parallel path: a persistent pool synchronized by a barrier (two waits
    // per round: start and done). Each slot pairs one VP's runtime with its
    // staging buffer; the work-stealing index hands slots to whichever
    // worker is free, and the per-slot mutex is uncontended (each slot is
    // claimed exactly once per round).
    let slots: Vec<Mutex<(&mut VpRuntime, StagedOps)>> = vps
        .iter_mut()
        .map(|vp| Mutex::new((vp, StagedOps::default())))
        .collect();
    let barrier = Barrier::new(threads + 1);
    let done = AtomicBool::new(false);
    let cur_t = AtomicI64::new(0);
    let next = AtomicUsize::new(0);
    let world = &*world;
    let cfg = &*cfg;

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    break;
                }
                let t = cur_t.load(Ordering::Acquire);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= nvps {
                        break;
                    }
                    let mut slot = slots[i].lock().unwrap();
                    let (vp, stage) = &mut *slot;
                    supervised_vp_round(world, cfg, vp, stage, t, cycle_secs);
                }
                barrier.wait();
            });
        }

        let mut t = from;
        while t < to {
            let round_started = std::time::Instant::now();
            cur_t.store(t, Ordering::Release);
            next.store(0, Ordering::Release);
            barrier.wait(); // release the round to the pool
            barrier.wait(); // all VPs done; staged results quiescent
            let m = crate::obs::metrics();
            let commit_started = std::time::Instant::now();
            for slot in &slots {
                let mut guard = slot.lock().unwrap();
                let (vp, stage) = &mut *guard;
                stage.commit(
                    store,
                    vp,
                    t,
                    cfg.summary_window_bins,
                    &mut near_scratch,
                    &mut far_scratch,
                );
            }
            m.commit_ms.observe(commit_started.elapsed().as_secs_f64() * 1e3);
            m.rounds.inc();
            m.parallel_rounds.inc();
            m.round_duration.observe(round_started.elapsed().as_secs_f64() * 1e3);
            rounds += 1;
            t += ROUND_SECS;
        }
        done.store(true, Ordering::Release);
        barrier.wait();
    });
    rounds
}
