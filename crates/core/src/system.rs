//! System orchestration: VPs, probing state, measurement scheduling.

use crate::health::{CycleBackoff, HealthConfig, HealthState, SupervisorConfig, TaskHealth, VpSupervisor};
use manic_bdrmap::{infer, BdrmapResult};
use manic_inference::{detect_level_shifts_masked, LevelShiftConfig, DEFAULT_REJECT};
use manic_netsim::time::SimTime;
use manic_netsim::{Ipv4, SimState};
use manic_probing::loss::LossTarget;
use manic_probing::tslp::{select_targets, End, TslpProber, ROUND_SECS};
use manic_probing::{ally_test, trace, LossProber, Traceroute, VpHandle};
use manic_scenario::World;
use manic_tsdb::{quality, Aggregate, Store};

/// System-wide configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Days between bdrmap cycles (the paper: a full cycle takes 1-3 days).
    pub bdrmap_cycle_days: i64,
    /// Traceroute attempts per hop.
    pub trace_attempts: u32,
    /// Level-shift configuration for reactive loss triggering (§3.3).
    pub levelshift: LevelShiftConfig,
    /// Maximum links under concurrent loss probing (budget bound).
    pub max_loss_targets: usize,
    /// Reactive probing-set updates (§3.2's future work, implemented): when
    /// a task's far end stops answering from the expected interface for
    /// this many consecutive rounds, re-run the VP's bdrmap cycle
    /// immediately instead of waiting for the scheduled one. Zero disables.
    pub reactive_mismatch_rounds: u32,
    /// Per-task health machine thresholds (degrade / quarantine / retire).
    pub health: HealthConfig,
    /// Worker-supervision thresholds: panic/watchdog strikes per VP.
    pub supervisor: SupervisorConfig,
    /// Worker threads for the round engine. 1 = serial; anything higher
    /// fans VPs out across a fixed pool. Every value produces byte-identical
    /// stores (see DESIGN.md §5g), so this is purely a throughput knob.
    pub threads: usize,
    /// Length of each task's incremental [`manic_inference::LinkSummary`]
    /// ring, in five-minute bins (default: 8640 = 30 days — the longest
    /// window the reactive level-shift path analyzes). Detection windows
    /// inside the ring are served without rescanning the store.
    pub summary_window_bins: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            bdrmap_cycle_days: 2,
            trace_attempts: 2,
            levelshift: LevelShiftConfig::default(),
            max_loss_targets: 30,
            reactive_mismatch_rounds: 3,
            health: HealthConfig::default(),
            supervisor: SupervisorConfig::default(),
            threads: 1,
            summary_window_bins: 8640,
        }
    }
}

/// The attributes of one inferred border link the control loop consults per
/// round, denormalized out of `BdrmapResult::links` into a map keyed by
/// `(near_ip, far_ip)`. Rebuilt on every bdrmap cycle; turns the per-task
/// `links.iter().find(...)` scans (O(tasks × links) per call) into hash
/// lookups.
#[derive(Debug, Clone, Copy)]
pub struct LinkMeta {
    pub far_as: manic_netsim::AsNumber,
    pub rel: manic_bdrmap::infer::LinkRel,
}

/// Per-VP runtime state.
pub struct VpRuntime {
    pub handle: VpHandle,
    pub asn: manic_netsim::AsNumber,
    pub tslp: TslpProber,
    pub loss: LossProber,
    /// Simulation state (rate limiter buckets etc.) for this VP's probes.
    pub sim: SimState,
    /// Latest border-mapping result.
    pub bdrmap: Option<BdrmapResult>,
    /// `(near_ip, far_ip) → link` index over `bdrmap`'s inferred links,
    /// rebuilt whenever `bdrmap` changes.
    pub bdrmap_links: std::collections::HashMap<(Ipv4, Ipv4), LinkMeta>,
    /// Incremental far-end series summaries, one per probing task, updated
    /// from each round's committed staged ops (see
    /// [`manic_inference::LinkSummary`]). Created lazily at commit time by
    /// store backfill, so they never need checkpointing.
    pub summaries: std::collections::HashMap<(Ipv4, Ipv4), manic_inference::LinkSummary>,
    /// When the probing set was last refreshed.
    pub last_cycle: Option<SimTime>,
    /// Consecutive rounds each task spent without a valid far-end response,
    /// keyed by (near, far) — drives reactive probing-set updates.
    pub stale_rounds: std::collections::HashMap<(Ipv4, Ipv4), u32>,
    /// Per-task health machines, keyed by (near, far). Reset on every
    /// bdrmap cycle (a fresh probing set gets a fresh chance).
    pub health: std::collections::HashMap<(Ipv4, Ipv4), TaskHealth>,
    /// Bounded-retry schedule for failed (empty) bdrmap cycles.
    pub cycle_backoff: CycleBackoff,
    /// Worker supervision: strikes from caught panics / watchdog overruns,
    /// and the quarantine they impose.
    pub supervisor: VpSupervisor,
    /// Whether the VP is currently hosted. §3: "Due to the volunteer-based
    /// nature of Ark VP hosting, there is churn in the set of usable VPs"
    /// (86 over the study, 63 by December 2017). Retired VPs stop probing;
    /// their historical data stays in the store.
    pub active: bool,
}

/// One dashboard row: the current state of one probed interdomain link.
#[derive(Debug, Clone)]
pub struct LinkStatus {
    pub vp: String,
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    pub neighbor: Option<manic_netsim::AsNumber>,
    pub rel: manic_bdrmap::infer::LinkRel,
    /// Most recent far-end min-RTT sample in the lookback window, ms.
    pub far_latest_ms: Option<f64>,
    /// Minimum far-end RTT over the lookback window (the baseline).
    pub far_baseline_ms: Option<f64>,
    pub near_latest_ms: Option<f64>,
    /// Latest far-end sample exceeds baseline + 7 ms (the §4.2 elevation
    /// criterion applied live).
    pub elevated: bool,
}

/// One row of the serving layer's health report: the health-machine state
/// of one probing task (tasks the machine has never had to act on report
/// `Healthy`).
#[derive(Debug, Clone)]
pub struct TaskHealthStatus {
    pub vp: String,
    pub vp_active: bool,
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    pub state: HealthState,
}

/// The assembled measurement system.
pub struct System {
    pub world: World,
    /// Shared so a serving layer can read series concurrently with the
    /// measurement loop; `Store`'s methods take `&self`, so existing
    /// `sys.store.…` call sites are unaffected by the `Arc`.
    pub store: std::sync::Arc<Store>,
    pub vps: Vec<VpRuntime>,
    pub cfg: SystemConfig,
    /// Provenance of the world this system runs — `(library name,
    /// determinism fingerprint)` — surfaced by the serving layer's health
    /// report. `None` for worlds built outside the library resolver.
    pub world_label: Option<(String, u64)>,
}

impl System {
    /// Build a system over a compiled world, one runtime per VP.
    pub fn new(world: World, cfg: SystemConfig) -> Self {
        let vps = world
            .vps
            .iter()
            .map(|vp| VpRuntime {
                handle: VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr },
                asn: vp.asn,
                tslp: TslpProber::new(
                    VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr },
                    0,
                ),
                loss: LossProber::new(
                    VpHandle { name: vp.name.clone(), router: vp.router, addr: vp.addr },
                    0,
                ),
                sim: SimState::new(),
                bdrmap: None,
                bdrmap_links: std::collections::HashMap::new(),
                summaries: std::collections::HashMap::new(),
                last_cycle: None,
                stale_rounds: std::collections::HashMap::new(),
                health: std::collections::HashMap::new(),
                cycle_backoff: CycleBackoff::default(),
                supervisor: VpSupervisor::new(),
                active: true,
            })
            .collect();
        // Stripe the store to the world's scale: the far-link keyspace
        // grows with the ground-truth roster (near/far x tslp/loss series
        // per observed link), so planetary worlds get wider stripes while
        // the hand-built worlds keep the classic layout.
        let shards = manic_tsdb::recommended_shards(4 * world.gt_links.len());
        System {
            world,
            store: std::sync::Arc::new(Store::with_shards(shards)),
            vps,
            cfg,
            world_label: None,
        }
    }

    /// Attach the world-provenance label surfaced in health reports.
    pub fn set_world_label(&mut self, name: &str, fingerprint: u64) {
        self.world_label = Some((name.to_string(), fingerprint));
    }

    /// Run one full bdrmap cycle for VP `vi` at time `t`: traceroute to every
    /// routed prefix, alias resolution, border inference, probing-set update.
    pub fn run_bdrmap_cycle(&mut self, vi: usize, t: SimTime) -> usize {
        Self::bdrmap_cycle_for(&self.world, &self.cfg, &mut self.vps[vi], t)
    }

    /// [`Self::run_bdrmap_cycle`] against explicit borrows, so the engine can
    /// drive one VP's cycle from a worker thread while other VPs run theirs.
    /// Touches only `vp`, the read-only world, and process-wide obs sinks —
    /// every store-visible effect goes through the staged commit path.
    pub(crate) fn bdrmap_cycle_for(
        world: &World,
        cfg: &SystemConfig,
        vp: &mut VpRuntime,
        t: SimTime,
    ) -> usize {
        // Traceroute to every routed prefix (two destinations each for flow
        // diversity across parallel links).
        // Traces are paced across the cycle (production bdrmap spreads a
        // full cycle over 1-3 days at 100 pps), so token-bucket ICMP rate
        // limiters recover between visits instead of blacking out whole
        // swaths of the topology.
        let mut traces: Vec<Traceroute> = Vec::new();
        let mut when = t;
        for (i, &(_, asn)) in world.artifacts.routed_prefixes().iter().enumerate() {
            if asn == vp.asn {
                continue;
            }
            for k in 0..2u32 {
                let dst = world.host_addr(asn, k);
                let flow = (i as u16).wrapping_mul(7).wrapping_add(k as u16);
                traces.push(trace(
                    &world.net,
                    &mut vp.sim,
                    &vp.handle,
                    dst,
                    flow,
                    when,
                    40,
                    cfg.trace_attempts,
                ));
                when += 30;
            }
        }
        // Border inference with a live Ally oracle.
        let net = &world.net;
        let handle = vp.handle.clone();
        let mut alias_state = SimState::new();
        // Ally probes are as lossy as any other probe; retry a few times
        // (spaced out, like scamper) before reporting indeterminate.
        let mut alias_at = t;
        let mut oracle = |a: Ipv4, b: Ipv4| {
            for _ in 0..3 {
                alias_at += 5;
                if let Some(v) = ally_test(net, &mut alias_state, &handle, a, b, alias_at) {
                    return Some(v);
                }
            }
            // All retries exhausted: the pair stays ungrouped this cycle.
            crate::obs::metrics().ally_indeterminate.inc();
            None
        };
        let result = infer(&traces, &world.artifacts, vp.asn, &mut oracle);

        // TSLP probing-state update (§3.1): keep stable destinations.
        let links: Vec<(Ipv4, Ipv4)> =
            result.links.iter().map(|l| (l.near_ip, l.far_ip)).collect();
        let artifacts = &world.artifacts;
        let far_as_of = |far_ip: Ipv4| {
            result
                .links
                .iter()
                .find(|l| l.far_ip == far_ip)
                .map(|l| l.far_as)
        };
        let tasks = select_targets(&traces, &links, |dst, far_ip| {
            match (artifacts.origin(dst), far_as_of(far_ip)) {
                (Some(o), Some(n)) => o == n,
                _ => false,
            }
        });
        // Diff against the previous probing set: links entering and leaving
        // the VP's view are the paper's "probing-state stability" signal.
        let old_keys: std::collections::HashSet<(Ipv4, Ipv4)> =
            vp.tslp.tasks.iter().map(|k| (k.near_ip, k.far_ip)).collect();
        let new_keys: std::collections::HashSet<(Ipv4, Ipv4)> =
            tasks.iter().map(|k| (k.near_ip, k.far_ip)).collect();
        let discovered = new_keys.difference(&old_keys).count();
        let lost = old_keys.difference(&new_keys).count();
        vp.tslp.update_targets(tasks);
        vp.bdrmap_links = result
            .links
            .iter()
            .map(|l| ((l.near_ip, l.far_ip), LinkMeta { far_as: l.far_as, rel: l.rel }))
            .collect();
        vp.bdrmap = Some(result);
        // Summaries follow the probing set: tasks that survived re-selection
        // keep their ring (series continuity), dropped tasks free theirs,
        // new tasks backfill lazily at the next commit.
        vp.summaries.retain(|k, _| new_keys.contains(k));
        vp.last_cycle = Some(t);
        vp.stale_rounds.clear();
        // A fresh probing set clears all health state: retired tasks that
        // survived re-selection get probed again from scratch.
        vp.health.clear();
        let m = crate::obs::metrics();
        m.bdrmap_cycles.inc();
        m.bdrmap_links_discovered.add(discovered as u64);
        m.bdrmap_links_lost.add(lost as u64);
        manic_obs::event!(
            manic_obs::INFO, "core", "bdrmap_cycle", t,
            vp = vp.handle.name.as_str(),
            traces = traces.len(),
            links = vp.tslp.tasks.len(),
            discovered = discovered,
            lost = lost,
        );
        vp.tslp.tasks.len()
    }

    /// Fold one round's samples into the per-task staleness counters and
    /// report whether any task has been dark long enough to warrant a
    /// reactive bdrmap cycle.
    fn note_round_health(
        vp: &mut VpRuntime,
        samples: &[(usize, manic_probing::tslp::TslpSample)],
        threshold: u32,
    ) -> bool {
        use std::collections::HashMap;
        let mut far_ok: HashMap<usize, bool> = HashMap::new();
        for (ti, s) in samples {
            if s.end == End::Far {
                let e = far_ok.entry(*ti).or_insert(false);
                *e |= s.rtt_ms.is_some();
            }
        }
        let mut trigger = false;
        for (ti, ok) in far_ok {
            let Some(task) = vp.tslp.tasks.get(ti) else { continue };
            let key = (task.near_ip, task.far_ip);
            if ok {
                vp.stale_rounds.remove(&key);
            } else {
                let c = vp.stale_rounds.entry(key).or_insert(0);
                *c += 1;
                if threshold > 0 && *c >= threshold {
                    trigger = true;
                }
            }
        }
        trigger
    }

    /// Run packet-mode measurement from `from` to `to`: bdrmap cycles on
    /// their cadence and a TSLP round every five minutes, all landing in the
    /// tsdb. Returns the number of TSLP rounds executed.
    ///
    /// Hardened control loop: VP retirement is polled from the fault
    /// schedule, empty bdrmap cycles retry on an exponential backoff instead
    /// of waiting a full cycle, unhealthy tasks are skipped per their health
    /// machine (their windows annotated `QUARANTINED|GAP`), and suspect
    /// sample windows (renumbered responder, far-dark-while-near-fine) are
    /// annotated so inference masks them.
    ///
    /// With `cfg.threads > 1` the rounds are fanned out across a worker pool
    /// (`crate::engine`); the store contents are byte-identical for every
    /// thread count.
    pub fn run_packet_mode(&mut self, from: SimTime, to: SimTime) -> usize {
        crate::engine::run_rounds(self, from, to)
    }

    /// One TSLP round for one VP under the health machine: skip tasks whose
    /// machine says not to probe, fold far-end outcomes back in, and stage
    /// the round's samples and quality annotations into `stage` — nothing is
    /// written to the store here, so the engine can run VPs concurrently and
    /// commit their staged results in VP-index order.
    pub(crate) fn round_with_health(
        vp: &mut VpRuntime,
        net: &manic_netsim::Network,
        cfg: &SystemConfig,
        t: SimTime,
        stage: &mut crate::engine::StagedOps,
    ) {
        use std::collections::{HashMap, HashSet};
        let probe_mask: Vec<bool> = vp
            .tslp
            .tasks
            .iter()
            .map(|task| {
                vp.health
                    .get(&(task.near_ip, task.far_ip))
                    .is_none_or(|h| h.should_probe(t))
            })
            .collect();
        // Skipped tasks get their window flagged: a gap the prober chose.
        for (ti, &probed) in probe_mask.iter().enumerate() {
            if !probed {
                for end in [End::Near, End::Far] {
                    stage.annotate(ti, end, t, t + ROUND_SECS, quality::QUARANTINED | quality::GAP);
                }
            }
        }
        let samples =
            vp.tslp
                .probe_round_masked(net, &mut vp.sim, t, |ti| probe_mask[ti]);
        for &(ti, s) in &samples {
            if let Some(rtt) = s.rtt_ms {
                stage.sample(ti, s.end, s.t, rtt);
            }
        }

        let mut far_ok: HashMap<usize, bool> = HashMap::new();
        let mut near_ok: HashMap<usize, bool> = HashMap::new();
        let mut mismatched: HashSet<(usize, End)> = HashSet::new();
        for (ti, s) in &samples {
            let slot = match s.end {
                End::Far => far_ok.entry(*ti).or_insert(false),
                End::Near => near_ok.entry(*ti).or_insert(false),
            };
            *slot |= s.rtt_ms.is_some();
            if s.mismatched {
                mismatched.insert((*ti, s.end));
            }
        }
        for (ti, task) in vp.tslp.tasks.iter().enumerate() {
            let Some(&ok) = far_ok.get(&ti) else { continue };
            let key = (task.near_ip, task.far_ip);
            // Jitter stream per task so quarantined tasks re-probe
            // desynchronized rather than in lockstep bursts.
            let stream = task.far_ip.0 as u64 ^ ((task.near_ip.0 as u64) << 32);
            let before =
                vp.health.get(&key).map(|h| h.state).unwrap_or(HealthState::Healthy);
            let h = vp.health.entry(key).or_default();
            h.observe(ok, t, &cfg.health, net.seed, stream);
            let after = h.state;
            if after != before {
                crate::obs::metrics().health_transition(after).inc();
                let lvl = match after {
                    HealthState::Quarantined | HealthState::Retired => manic_obs::WARN,
                    _ => manic_obs::INFO,
                };
                manic_obs::event!(
                    lvl, "core", "health_transition", t,
                    vp = vp.handle.name.as_str(),
                    near = task.near_ip.to_string(),
                    far = task.far_ip.to_string(),
                    from = before.as_str(),
                    to = after.as_str(),
                );
            }
            if mismatched.contains(&(ti, End::Far)) {
                // Response from the wrong address: renumbering or a moved
                // route. Samples were already discarded; flag the window so
                // any adjacent inference treats it as untrustworthy.
                stage.annotate(ti, End::Far, t, t + ROUND_SECS, quality::RENUMBERED);
            } else if !ok && near_ok.get(&ti).copied().unwrap_or(false) {
                // Far end dark while the near end (same path prefix, same
                // probes) answers: the classic ICMP rate-limiting signature
                // (§5.2), not path loss.
                stage.annotate(ti, End::Far, t, t + ROUND_SECS, quality::SUSPECT_RATE_LIMITED);
            }
        }
        if Self::note_round_health(vp, &samples, cfg.reactive_mismatch_rounds) {
            // Reactive update (§3.2): refresh the probing set now.
            vp.last_cycle = None;
        }
    }

    /// §3.3 reactive selection: pick links whose far-end TSLP series shows a
    /// level shift within `[from, to)`, restricted to peers/providers (or
    /// any link when the relationship is unknown to the static list), and
    /// arm the loss prober with them.
    pub fn arm_reactive_loss(&mut self, vi: usize, from: SimTime, to: SimTime) -> usize {
        use manic_bdrmap::infer::LinkRel;
        let vp = &mut self.vps[vi];
        let mut targets = Vec::new();
        if vp.bdrmap.is_none() {
            return 0;
        }
        // Dense-window scratch, reused across tasks (one allocation per
        // call instead of two per link).
        let mut bins: Vec<Option<f64>> = Vec::new();
        let mut qual: Vec<manic_tsdb::quality::QualityFlags> = Vec::new();
        for (ti, task) in vp.tslp.tasks.iter().enumerate() {
            let tkey = (task.near_ip, task.far_ip);
            let Some(link) = vp.bdrmap_links.get(&tkey) else { continue };
            if link.rel == LinkRel::Customer {
                continue; // §3.3: only peers and providers
            }
            let key = vp.tslp.key(ti, End::Far);
            // Serve the dense window from the task's incremental summary
            // when it covers `[from, to)`; fall back to a store rescan
            // otherwise (window predates the ring, or no commit has run
            // yet). The summary content is provably identical to the store
            // scan — checked here in debug builds on every served window.
            let served = match vp.summaries.get(&tkey) {
                Some(s) if s.can_serve(from, to) => {
                    s.dense_into(from, to, &mut bins, &mut qual);
                    true
                }
                _ => false,
            };
            if served {
                #[cfg(debug_assertions)]
                {
                    let store_bins =
                        self.store.downsample_dense(key, from, to, ROUND_SECS, Aggregate::Min);
                    let store_qual = self.store.quality_dense(key, from, to, ROUND_SECS);
                    debug_assert_eq!(
                        bins, store_bins,
                        "summary ring diverged from store (bins) for {key:?}"
                    );
                    debug_assert_eq!(
                        qual, store_qual,
                        "summary ring diverged from store (quality) for {key:?}"
                    );
                }
            } else {
                manic_inference::note_summary_fallback();
                self.store
                    .downsample_dense_into(key, from, to, ROUND_SECS, Aggregate::Min, &mut bins);
                self.store.quality_dense_into(key, from, to, ROUND_SECS, &mut qual);
            }
            // Quality-masked detection: windows the control loop flagged
            // (quarantine gaps, renumbering, suspected rate limiting) must
            // yield *no inference*, not a fabricated level shift.
            let shifts =
                detect_level_shifts_masked(&bins, &qual, DEFAULT_REJECT, &self.cfg.levelshift);
            // Audit every verdict — congested or not — with the evidence it
            // rests on, so `manic obs explain <far-ip>` can reconstruct it.
            let masked_bins = qual.iter().filter(|&&q| q & DEFAULT_REJECT != 0).count();
            let flags_in_force =
                qual.iter().fold(0, |acc, &q| acc | (q & DEFAULT_REJECT));
            let m = crate::obs::metrics();
            let mut evidence = vec![
                manic_obs::Evidence::new(
                    "masked_bins",
                    vec![
                        ("masked", manic_obs::Value::from(masked_bins)),
                        ("total", manic_obs::Value::from(bins.len())),
                    ],
                ),
                manic_obs::Evidence::new(
                    "quality_flags",
                    vec![("flags", manic_obs::Value::from(flags_in_force as u64))],
                ),
            ];
            for ep in &shifts {
                evidence.push(manic_obs::Evidence::new(
                    "level_shift",
                    vec![
                        ("start_t", manic_obs::Value::from(from + ep.start as i64 * ROUND_SECS)),
                        ("end_t", manic_obs::Value::from(from + ep.end as i64 * ROUND_SECS)),
                        ("duration_bins", manic_obs::Value::from(ep.end - ep.start)),
                        ("baseline_ms", manic_obs::Value::from(ep.baseline)),
                        ("level_ms", manic_obs::Value::from(ep.level)),
                    ],
                ));
            }
            let congested = !shifts.is_empty();
            if congested { m.verdicts_congested.inc() } else { m.verdicts_clean.inc() }
            manic_obs::audit().record(manic_obs::AuditRecord {
                t: to,
                vp: vp.handle.name.clone(),
                near: task.near_ip.to_string(),
                link: task.far_ip.to_string(),
                detector: "levelshift",
                congested,
                evidence,
            });
            if shifts.is_empty() {
                continue;
            }
            let Some(dest) = task.dests.first() else { continue };
            targets.push(LossTarget {
                near_ip: task.near_ip,
                far_ip: task.far_ip,
                dst: dest.dst,
                near_ttl: dest.near_ttl,
                far_ttl: dest.far_ttl,
                flow_id: task.flow_id,
            });
            if targets.len() >= self.cfg.max_loss_targets {
                break;
            }
        }
        let n = targets.len();
        vp.loss.set_targets(targets);
        n
    }

    /// One row of the near-real-time link dashboard (the paper's Grafana
    /// front-end view, contribution 4). Records an `elevation` audit
    /// verdict per task — this is the interactive dashboard path.
    pub fn snapshot(&self, vi: usize, now: SimTime, lookback: SimTime) -> Vec<LinkStatus> {
        self.link_statuses(vi, now, lookback, true)
    }

    /// The dashboard rows of one VP, optionally without the audit-trail
    /// side effect. The serving layer rebuilds its read snapshot on a
    /// periodic cadence and must not flood the audit trail with one
    /// `elevation` record per link per rebuild; the interactive dashboard
    /// (`snapshot`) still records every verdict it shows.
    pub fn link_statuses(
        &self,
        vi: usize,
        now: SimTime,
        lookback: SimTime,
        record_audit: bool,
    ) -> Vec<LinkStatus> {
        use manic_bdrmap::infer::LinkRel;
        let vp = &self.vps[vi];
        let mut out = Vec::new();
        for (ti, task) in vp.tslp.tasks.iter().enumerate() {
            let read = |end: End| {
                let key = vp.tslp.key(ti, end);
                let pts = self.store.query(key, now - lookback, now + 1);
                let latest = pts.last().map(|p| p.v);
                let baseline = pts
                    .iter()
                    .map(|p| p.v)
                    .fold(f64::INFINITY, f64::min);
                (latest, baseline.is_finite().then_some(baseline))
            };
            let (far_latest, far_baseline) = read(End::Far);
            let (near_latest, _) = read(End::Near);
            let elevated = match (far_latest, far_baseline) {
                (Some(l), Some(b)) => l > b + 7.0,
                _ => false,
            };
            if record_audit {
                // Every dashboard verdict is auditable: record the live
                // §4.2 elevation evidence (latest vs. lookback baseline
                // + 7 ms).
                manic_obs::audit().record(manic_obs::AuditRecord {
                    t: now,
                    vp: vp.handle.name.clone(),
                    near: task.near_ip.to_string(),
                    link: task.far_ip.to_string(),
                    detector: "elevation",
                    congested: elevated,
                    evidence: vec![manic_obs::Evidence::new(
                        "elevation",
                        vec![
                            ("far_latest_ms", manic_obs::Value::from(far_latest.unwrap_or(f64::NAN))),
                            ("far_baseline_ms", manic_obs::Value::from(far_baseline.unwrap_or(f64::NAN))),
                            ("threshold_ms", manic_obs::Value::from(7.0)),
                            ("lookback_s", manic_obs::Value::from(lookback)),
                        ],
                    )],
                });
            }
            let rel = vp
                .bdrmap_links
                .get(&(task.near_ip, task.far_ip))
                .map(|l| (l.far_as, l.rel));
            out.push(LinkStatus {
                vp: vp.handle.name.clone(),
                near_ip: task.near_ip,
                far_ip: task.far_ip,
                neighbor: rel.map(|(a, _)| a),
                rel: rel.map(|(_, r)| r).unwrap_or(LinkRel::Unknown),
                far_latest_ms: far_latest,
                far_baseline_ms: far_baseline,
                near_latest_ms: near_latest,
                elevated,
            });
        }
        out
    }

    /// Dashboard rows across every VP (active and retired — retired VPs'
    /// history remains queryable), with no audit side effects. This is the
    /// serving layer's snapshot-export entry point.
    pub fn all_link_statuses(&self, now: SimTime, lookback: SimTime) -> Vec<LinkStatus> {
        (0..self.vps.len())
            .flat_map(|vi| self.link_statuses(vi, now, lookback, false))
            .collect()
    }

    /// Health-machine state of every probing task across every VP. Tasks
    /// the machine never acted on report `Healthy`.
    pub fn health_report(&self) -> Vec<TaskHealthStatus> {
        let mut out = Vec::new();
        for vp in &self.vps {
            for task in &vp.tslp.tasks {
                let state = vp
                    .health
                    .get(&(task.near_ip, task.far_ip))
                    .map(|h| h.state)
                    .unwrap_or(HealthState::Healthy);
                out.push(TaskHealthStatus {
                    vp: vp.handle.name.clone(),
                    vp_active: vp.active,
                    near_ip: task.near_ip,
                    far_ip: task.far_ip,
                    state,
                });
            }
        }
        out
    }

    /// Retire a VP (host churn): it stops probing; its history remains.
    pub fn retire_vp(&mut self, vi: usize) {
        self.vps[vi].active = false;
    }

    /// Number of currently active VPs.
    pub fn active_vps(&self) -> usize {
        self.vps.iter().filter(|v| v.active).count()
    }

    /// Index of a VP by name.
    pub fn vp_index(&self, name: &str) -> usize {
        self.vps
            .iter()
            .position(|v| v.handle.name == name)
            .unwrap_or_else(|| panic!("unknown VP {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manic_netsim::time::{datetime_to_sim, Date};
    use manic_probing::tslp::series_key;
    use manic_scenario::worlds::{toy, toy_asns};

    #[test]
    fn bdrmap_cycle_builds_probing_state() {
        let mut sys = System::new(toy(1), SystemConfig::default());
        let n = sys.run_bdrmap_cycle(0, 0);
        assert!(n >= 3, "tasks for transit + 2 peers + customer, got {n}");
        let vp = &sys.vps[0];
        assert!(vp.bdrmap.is_some());
        // Every task has 1-3 destinations with far_ttl == near_ttl + 1.
        for task in &vp.tslp.tasks {
            assert!(!task.dests.is_empty() && task.dests.len() <= 3);
            for d in &task.dests {
                assert_eq!(d.far_ttl, d.near_ttl + 1);
            }
        }
    }

    #[test]
    fn packet_mode_fills_store() {
        let mut sys = System::new(toy(1), SystemConfig::default());
        let from = datetime_to_sim(Date::new(2016, 6, 7), 0, 0, 0);
        let rounds = sys.run_packet_mode(from, from + 3600);
        assert_eq!(rounds, 12);
        assert!(sys.store.series_count() > 0);
        // The far series of the congested link has ~1 sample per round per dest.
        let vp = &sys.vps[0];
        let gt = &sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let task = vp
            .tslp
            .tasks
            .iter()
            .find(|t| t.far_ip == gt.far_addr_from(toy_asns::ACME))
            .expect("task for the congested link");
        let key = series_key(&vp.handle.name, task, End::Far);
        let pts = sys.store.query(&key, from, from + 3600);
        assert!(pts.len() >= 12, "{} far samples", pts.len());
    }

    #[test]
    fn reactive_loss_arms_on_congested_link() {
        let mut sys = System::new(toy(1), SystemConfig::default());
        // Evening with the scripted 4h congestion window (9pm NYC = 02 UTC).
        let from = datetime_to_sim(Date::new(2016, 6, 7), 22, 0, 0);
        let to = from + 8 * 3600;
        sys.run_packet_mode(from, to);
        let n = sys.arm_reactive_loss(0, from, to);
        assert!(n >= 1, "congested peering should trigger loss probing");
        // The congested link is among the targets.
        let gt = &sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let far = gt.far_addr_from(toy_asns::ACME);
        assert!(sys.vps[0].loss.targets.iter().any(|t| t.far_ip == far));
    }

    #[test]
    fn snapshot_flags_the_congested_link_live() {
        let mut sys = System::new(toy(1), SystemConfig::default());
        // Evening: the cdnco peering is congested.
        let from = datetime_to_sim(Date::new(2016, 6, 7), 22, 0, 0);
        let to = from + 5 * 3600;
        sys.run_packet_mode(from, to);
        let rows = sys.snapshot(0, to - 300, 4 * 3600);
        assert!(!rows.is_empty());
        let gt = &sys.world.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
        let far = gt.far_addr_from(toy_asns::ACME);
        let hot = rows.iter().find(|r| r.far_ip == far).expect("dashboard row");
        assert!(hot.elevated, "{hot:?}");
        assert!(hot.far_latest_ms.unwrap() > hot.far_baseline_ms.unwrap() + 7.0);
        // The clean vidco peering is not elevated.
        let clean_far = sys.world.links_between(toy_asns::ACME, toy_asns::VIDCO)[0]
            .far_addr_from(toy_asns::ACME);
        if let Some(clean) = rows.iter().find(|r| r.far_ip == clean_far) {
            assert!(!clean.elevated, "{clean:?}");
        }
        // Relationship attribution present.
        assert_eq!(hot.neighbor, Some(toy_asns::CDNCO));
    }

    #[test]
    fn quiet_period_arms_nothing() {
        let mut sys = System::new(toy(1), SystemConfig::default());
        // 06:00-14:00 UTC = 1am-9am NYC: no congestion scripted.
        let from = datetime_to_sim(Date::new(2016, 6, 7), 6, 0, 0);
        let to = from + 8 * 3600;
        sys.run_packet_mode(from, to);
        let n = sys.arm_reactive_loss(0, from, to);
        assert_eq!(n, 0, "no level shifts in quiet hours");
    }
}
