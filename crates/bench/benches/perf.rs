//! Performance benchmarks for the core primitives.
//!
//! These gauge the system's capacity headroom: a production deployment
//! probes thousands of links from dozens of VPs, so FIB lookups, probe
//! forwarding, series synthesis, and the inference passes must be cheap.
//! Run with `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use manic_inference::{analyze_window, detect_level_shifts, AutocorrConfig, LevelShiftConfig};
use manic_netsim::{Fib, IfaceId, Ipv4, Prefix, ProbeSpec, SimState};
use manic_probing::tslp::synthesize_task;
use manic_probing::VpHandle;
use manic_scenario::worlds::{toy, toy_asns};
use manic_tsdb::{Aggregate, SeriesKey, Store};

fn bench_fib(c: &mut Criterion) {
    // A FIB with 512 routes of mixed length, queried across the space.
    let mut fib = Fib::new();
    for i in 0..256u32 {
        fib.insert(Prefix::new(Ipv4::new(10, (i % 200) as u8, (i / 8) as u8, 0), 24), vec![IfaceId(i)]);
        fib.insert(Prefix::new(Ipv4::new(10, (i % 200) as u8, 0, 0), 16), vec![IfaceId(i)]);
    }
    let dsts: Vec<Ipv4> = (0..1024u32).map(|i| Ipv4::new(10, (i % 211) as u8, (i % 97) as u8, 1)).collect();
    c.bench_function("fib_lookup_1k", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &d in &dsts {
                if fib.lookup(std::hint::black_box(d)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_forwarding(c: &mut Criterion) {
    let w = toy(1);
    let vp = w.vp("acme-nyc");
    let dst = w.host_addr(toy_asns::CDNCO, 0);
    c.bench_function("netsim_send_probe", |b| {
        let mut st = SimState::new();
        let mut t = 0i64;
        b.iter(|| {
            t += 1;
            w.net.send_probe(
                &mut st,
                ProbeSpec { src: vp.router, src_addr: vp.addr, dst, ttl: 4, flow_id: 7 },
                t,
            )
        })
    });
}

fn bench_tslp_synthesis(c: &mut Criterion) {
    let w = toy(1);
    let gt = &w.links_between(toy_asns::ACME, toy_asns::CDNCO)[0];
    let vpr = w.vp("acme-nyc");
    let vp = VpHandle { name: vpr.name.clone(), router: vpr.router, addr: vpr.addr };
    let task = manic_probing::TslpTask {
        near_ip: gt.near_addr_from(toy_asns::ACME),
        far_ip: gt.far_addr_from(toy_asns::ACME),
        dests: vec![manic_probing::TslpDest { dst: w.host_addr(toy_asns::CDNCO, 0), near_ttl: 2, far_ttl: 3 }],
        flow_id: 7,
    };
    // One link-day at 15-minute bins: the unit of the longitudinal sweep.
    c.bench_function("tslp_synthesize_link_day", |b| {
        b.iter(|| synthesize_task(&w.net, &vp, &task, 0, 86_400, 900))
    });
}

fn bench_autocorr(c: &mut Criterion) {
    // A 50-day window with a clean diurnal congestion pattern.
    let far: Vec<Option<f64>> = (0..50 * 96)
        .map(|i| {
            let iv = i % 96;
            Some(if (80..92).contains(&iv) { 65.0 } else { 30.0 + (i % 3) as f64 * 0.2 })
        })
        .collect();
    let near = vec![Some(5.0); 50 * 96];
    let cfg = AutocorrConfig::default();
    c.bench_function("autocorr_50day_window", |b| {
        b.iter(|| analyze_window(&near, &far, &cfg))
    });
}

fn bench_levelshift(c: &mut Criterion) {
    // One week of 5-minute bins with two planted shifts.
    let series: Vec<Option<f64>> = (0..2016)
        .map(|i| {
            let base = 20.0 + (i % 5) as f64 * 0.1;
            let shift = if (500..700).contains(&i) || (1400..1500).contains(&i) { 30.0 } else { 0.0 };
            Some(base + shift)
        })
        .collect();
    let cfg = LevelShiftConfig::default();
    c.bench_function("levelshift_week", |b| {
        b.iter(|| detect_level_shifts(&series, &cfg))
    });
}

fn bench_tsdb(c: &mut Criterion) {
    c.bench_function("tsdb_ingest_10k", |b| {
        b.iter_batched(
            Store::new,
            |store| {
                let key = SeriesKey::with_tags("tslp", &[("vp", "a"), ("link", "L"), ("end", "far")]);
                for t in 0..10_000i64 {
                    store.write(&key, t * 300, 20.0 + (t % 7) as f64);
                }
                store
            },
            BatchSize::SmallInput,
        )
    });
    let store = Store::new();
    let key = SeriesKey::with_tags("tslp", &[("vp", "a"), ("link", "L"), ("end", "far")]);
    for t in 0..100_000i64 {
        store.write(&key, t * 300, 20.0 + (t % 7) as f64);
    }
    c.bench_function("tsdb_downsample_100k_min", |b| {
        b.iter(|| store.downsample(&key, 0, 100_000 * 300, 900, Aggregate::Min))
    });
}

fn bench_stats(c: &mut Criterion) {
    let a: Vec<f64> = (0..500).map(|i| 20.0 + (i % 13) as f64 * 0.3).collect();
    let bvec: Vec<f64> = (0..500).map(|i| 21.0 + (i % 11) as f64 * 0.3).collect();
    c.bench_function("ttest_500x500", |b| {
        b.iter(|| manic_stats::two_sample_t(&a, &bvec, manic_stats::Tails::TwoSided))
    });
    c.bench_function("binomial_proportion_test", |b| {
        b.iter(|| {
            manic_stats::two_proportion_z_test(
                std::hint::black_box(812),
                86_400,
                std::hint::black_box(214),
                432_000,
                manic_stats::Tails::Greater,
            )
        })
    });
}

fn bench_macro(c: &mut Criterion) {
    use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
    use manic_netsim::time::{date_to_sim, Date, SECS_PER_DAY};

    // A full bdrmap cycle on the toy world: traceroutes to every prefix,
    // alias resolution, inference, probing-set update.
    c.bench_function("bdrmap_cycle_toy", |b| {
        b.iter_batched(
            || System::new(toy(1), SystemConfig::default()),
            |mut sys| {
                sys.run_bdrmap_cycle(0, 0);
                sys
            },
            BatchSize::SmallInput,
        )
    });

    // Sixty simulated days of the full longitudinal pipeline on the toy
    // world (discovery + synthesis + sliding autocorrelation + merge).
    let mut group = c.benchmark_group("macro");
    group.sample_size(10);
    group.bench_function("longitudinal_toy_60d", |b| {
        b.iter_batched(
            || System::new(toy(1), SystemConfig::default()),
            |mut sys| {
                let from = date_to_sim(Date::new(2016, 4, 1));
                let cfg = LongitudinalConfig::new(from, from + 60 * SECS_PER_DAY);
                run_longitudinal(&mut sys, &cfg)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fib,
    bench_forwarding,
    bench_tslp_synthesis,
    bench_autocorr,
    bench_levelshift,
    bench_tsdb,
    bench_stats,
    bench_macro
);
criterion_main!(benches);
