//! Figure 3: TSLP latency and loss time series for a congested
//! Verizon–Google link, December 7–9 2017, with inferred congestion shading.

use crate::{at, SEED};
use manic_analysis::study::{congestion_windows, is_congested_at};
use manic_core::{run_longitudinal, LinkDays, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::format_sim;
use manic_probing::loss::{LossTarget, WINDOW_SECS};
use manic_probing::tslp::{series_key, End, ROUND_SECS};
use manic_scenario::worlds::{us_asns, us_broadband};
use manic_tsdb::Aggregate;
use std::fmt::Write as _;

/// Analysis window feeding the autocorrelation classifier (>= 50 days and
/// covering the December days we plot).
fn analysis_window() -> (i64, i64) {
    (at(2017, 10, 20), at(2018, 1, 1))
}

pub fn run() -> String {
    let mut sys = System::new(us_broadband(SEED), SystemConfig::default());
    let (from, to) = analysis_window();
    let links = run_longitudinal(&mut sys, &LongitudinalConfig::new(from, to));

    // The most congested Verizon-Google link in December 2017.
    let dec = manic_netsim::time::day_index(at(2017, 12, 1));
    let link: &LinkDays = links
        .iter()
        .filter(|l| l.host_as == us_asns::VERIZON && l.neighbor_as == us_asns::GOOGLE)
        .max_by_key(|l| {
            l.day_masks
                .range(dec..)
                .map(|(_, m)| m.count_ones())
                .sum::<u32>()
        })
        .expect("a Verizon-Google link exists");
    let vp_name = link.vps[0].clone();
    let vi = sys.vp_index(&vp_name);

    // --- Packet-mode TSLP + loss over Dec 7-9 ---
    let plot_from = at(2017, 12, 7);
    let plot_to = at(2017, 12, 10);
    {
        let world = &sys.world;
        let vp = &mut sys.vps[vi];
        let task = vp
            .tslp
            .tasks
            .iter()
            .find(|t| t.far_ip == link.far_ip)
            .expect("TSLP task for the link")
            .clone();
        let dest = task.dests[0];
        vp.loss.set_targets(vec![LossTarget {
            near_ip: task.near_ip,
            far_ip: task.far_ip,
            dst: dest.dst,
            near_ttl: dest.near_ttl,
            far_ttl: dest.far_ttl,
            flow_id: task.flow_id,
        }]);
        let mut t = plot_from;
        while t < plot_to {
            vp.tslp.probe_round(&world.net, &mut vp.sim, t, &sys.store);
            t += ROUND_SECS;
        }
        let mut w = plot_from;
        while w < plot_to {
            vp.loss.probe_window(&world.net, &mut vp.sim, w, &sys.store);
            w += WINDOW_SECS;
        }
    }

    // --- Render ---
    let vp = &sys.vps[vi];
    let task = vp.tslp.tasks.iter().find(|t| t.far_ip == link.far_ip).unwrap();
    let k_far = series_key(&vp.handle.name, task, End::Far);
    let k_near = series_key(&vp.handle.name, task, End::Near);
    let loss_tgt = &vp.loss.targets[0];
    let k_loss_far = manic_probing::loss::series_key(&vp.handle.name, loss_tgt, End::Far);
    let k_loss_near = manic_probing::loss::series_key(&vp.handle.name, loss_tgt, End::Near);

    let shade = congestion_windows(link, plot_from, plot_to);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — TSLP latency (top) and loss (bottom) for the verizon <-> google link\n({} .. {}), VP {}, link far IP {}.\nInferred congestion windows are marked '#'.\n",
        format_sim(plot_from),
        format_sim(plot_to),
        vp.handle.name,
        link.far_ip
    );
    let _ = writeln!(
        out,
        "{:<18} {:>9} {:>9} {:>9} {:>9}  cong",
        "UTC time", "near ms", "far ms", "near loss", "far loss"
    );
    // Print one row per 30 minutes; collect congested/uncongested stats over
    // the full 5-minute resolution.
    let mut far_c = Vec::new();
    let mut far_u = Vec::new();
    let mut loss_c = Vec::new();
    let mut loss_u = Vec::new();
    let mut t = plot_from;
    while t < plot_to {
        let far = sys.store.downsample(&k_far, t, t + 1800, 1800, Aggregate::Min);
        let near = sys.store.downsample(&k_near, t, t + 1800, 1800, Aggregate::Min);
        let lf = sys.store.downsample(&k_loss_far, t, t + 1800, 1800, Aggregate::Mean);
        let ln_ = sys.store.downsample(&k_loss_near, t, t + 1800, 1800, Aggregate::Mean);
        let congested = is_congested_at(link, t);
        let fmt = |v: Option<f64>, pct: bool| match v {
            Some(x) if pct => format!("{:.2}%", 100.0 * x),
            Some(x) => format!("{x:.2}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<18} {:>9} {:>9} {:>9} {:>9}  {}",
            format_sim(t),
            fmt(near.first().map(|p| p.v), false),
            fmt(far.first().map(|p| p.v), false),
            fmt(ln_.first().map(|p| p.v), true),
            fmt(lf.first().map(|p| p.v), true),
            if congested { "#" } else { "" }
        );
        // Fine-grained stats.
        for p in sys.store.downsample(&k_far, t, t + 1800, 300, Aggregate::Min) {
            if is_congested_at(link, p.t) {
                far_c.push(p.v);
            } else {
                far_u.push(p.v);
            }
        }
        for p in sys.store.query(&k_loss_far, t, t + 1800) {
            if is_congested_at(link, p.t) {
                loss_c.push(p.v);
            } else {
                loss_u.push(p.v);
            }
        }
        t += 1800;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let _ = writeln!(
        out,
        "\nSummary: far RTT mean {:.1} ms congested vs {:.1} ms uncongested;\nfar loss mean {:.2}% congested vs {:.2}% uncongested; {} inferred windows.",
        mean(&far_c),
        mean(&far_u),
        100.0 * mean(&loss_c),
        100.0 * mean(&loss_u),
        shade.len()
    );
    out
}
