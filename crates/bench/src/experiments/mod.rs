//! Experiment regenerators, one per paper table/figure (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for paper-vs-measured records).

pub mod fig3;
pub mod longitudinal;
pub mod ndt;
pub mod operator;
pub mod table1;
pub mod youtube;
