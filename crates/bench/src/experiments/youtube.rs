//! Figures 4 and 5: YouTube streaming performance during congested vs
//! uncongested periods (§5.2).
//!
//! Mirrors the paper's two collections: SamKnows-style VPs in Comcast
//! streaming from Google caches during the Comcast–Google congestion era
//! (late 2016 – early 2017), plus one Ark-style VP in CenturyLink during
//! late 2017 (the CenturyLink–Google arc). Links qualify with ≥ 50 tests
//! during inferred-congested periods, as in the paper.

use crate::{at, SEED};
use manic_analysis::study::is_congested_at;
use manic_core::{run_longitudinal, LinkDays, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::SimTime;
use manic_netsim::LinkKind;
use manic_probing::VpHandle;
use manic_scenario::compile::metro_info;
use manic_scenario::worlds::{us_asns, us_broadband};
use manic_stats::describe::{median, quantile};
use manic_valid::youtube::{run_youtube_test, YoutubeConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One streaming observation tagged by link and classification.
struct Obs {
    vp: String,
    link_label: String,
    congested: bool,
    tput: f64,
    startup: f64,
    failed: bool,
}

fn collect(
    sys: &System,
    links: &[LinkDays],
    vp_names: &[&str],
    from: SimTime,
    to: SimTime,
    out: &mut Vec<Obs>,
) {
    let world = &sys.world;
    let cfg = YoutubeConfig::default();
    for &vp_name in vp_names {
        let vpr = world.vp(vp_name);
        let vp = VpHandle { name: vpr.name.clone(), router: vpr.router, addr: vpr.addr };
        let tz = metro_info(&vpr.pop).2;
        let cache = world.host_addr(us_asns::GOOGLE, 3);
        let cache_router = world.host_routers[&us_asns::GOOGLE];
        for t in super::ndt::test_times(from, to, tz) {
            let Some(r) = run_youtube_test(&world.net, &vp, cache, cache_router, t, 0x717, &cfg)
            else {
                continue;
            };
            // Map the test to the interdomain link it crossed (§3.5: via the
            // post-test traceroute).
            let Some(&(l, _)) = r
                .forward_links
                .iter()
                .find(|&&(l, _)| world.net.topo.link(l).kind == LinkKind::Interdomain)
            else {
                continue;
            };
            let Some(gt) = world.gt_links.iter().find(|g| g.link == l) else { continue };
            let Some(rec) = links.iter().find(|x| x.far_ip == gt.a_ext || x.far_ip == gt.b_ext)
            else {
                continue;
            };
            out.push(Obs {
                vp: vp_name.to_string(),
                link_label: rec.far_ip.to_string(),
                congested: is_congested_at(rec, t),
                tput: r.on_throughput_mbps,
                startup: r.startup_delay_s,
                failed: r.failed,
            });
        }
    }
}

pub fn run() -> (String, String) {
    // Era A: Comcast VPs during the Comcast-Google arc (SamKnows stand-ins).
    let mut sys_a = System::new(us_broadband(SEED), SystemConfig::default());
    let links_a = run_longitudinal(
        &mut sys_a,
        &LongitudinalConfig::new(at(2016, 11, 1), at(2017, 3, 1)),
    );
    let mut obs = Vec::new();
    collect(
        &sys_a,
        &links_a,
        &["comcast-chi", "comcast-nyc", "comcast-ash", "comcast-atl", "comcast-dfw", "comcast-den", "comcast-sea"],
        at(2016, 11, 1),
        at(2017, 3, 1),
        &mut obs,
    );
    // Era B: the CenturyLink Ark VP during late 2017.
    let mut sys_b = System::new(us_broadband(SEED), SystemConfig::default());
    let links_b = run_longitudinal(
        &mut sys_b,
        &LongitudinalConfig::new(at(2017, 10, 1), at(2018, 1, 1)),
    );
    collect(&sys_b, &links_b, &["centurylink-den"], at(2017, 10, 1), at(2018, 1, 1), &mut obs);

    // Qualify links: >= 50 tests during congested periods.
    let mut per_link: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for o in &obs {
        let e = per_link.entry((o.vp.clone(), o.link_label.clone())).or_insert((0, 0));
        if o.congested {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    let qualified: Vec<(String, String)> = per_link
        .iter()
        .filter(|(_, &(c, _))| c >= 50)
        .map(|(k, _)| k.clone())
        .collect();
    let obs: Vec<&Obs> = obs
        .iter()
        .filter(|o| qualified.contains(&(o.vp.clone(), o.link_label.clone())))
        .collect();

    // ---- Figure 4: CDFs ----
    let tput_c: Vec<f64> = obs.iter().filter(|o| o.congested).map(|o| o.tput).collect();
    let tput_u: Vec<f64> = obs.iter().filter(|o| !o.congested).map(|o| o.tput).collect();
    let st_c: Vec<f64> = obs.iter().filter(|o| o.congested).map(|o| o.startup).collect();
    let st_u: Vec<f64> = obs.iter().filter(|o| !o.congested).map(|o| o.startup).collect();
    let mut fig4 = String::from(
        "Figure 4 — YouTube streaming CDFs, congested vs uncongested periods.\n\n(a) ON-period throughput (Mbit/s)\n",
    );
    let _ = writeln!(fig4, "{:<6} {:>12} {:>12}", "q", "congested", "uncongested");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let _ = writeln!(
            fig4,
            "{:<6} {:>12.2} {:>12.2}",
            q,
            quantile(&tput_c, q),
            quantile(&tput_u, q)
        );
    }
    let med_drop = 100.0 * (1.0 - median(&tput_c) / median(&tput_u));
    let _ = writeln!(
        fig4,
        "median throughput: {:.1} -> {:.1} Mbps ({:.1}% lower when congested)\n",
        median(&tput_u),
        median(&tput_c),
        med_drop
    );
    fig4.push_str("(b) startup delay (s)\n");
    let _ = writeln!(fig4, "{:<6} {:>12} {:>12}", "q", "congested", "uncongested");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let _ = writeln!(
            fig4,
            "{:<6} {:>12.3} {:>12.3}",
            q,
            quantile(&st_c, q),
            quantile(&st_u, q)
        );
    }
    let within2 = |v: &[f64]| {
        100.0 * v.iter().filter(|&&x| x <= 2.0).count() as f64 / v.len().max(1) as f64
    };
    let _ = writeln!(
        fig4,
        "median startup: {:.3}s -> {:.3}s ({:.1}% inflated when congested);\nstreams starting within 2s: {:.1}% congested vs {:.1}% uncongested.\n({} qualified links, {} congested / {} uncongested tests)",
        median(&st_u),
        median(&st_c),
        100.0 * (median(&st_c) / median(&st_u) - 1.0),
        within2(&st_c),
        within2(&st_u),
        qualified.len(),
        tput_c.len(),
        tput_u.len(),
    );

    // ---- Figure 5: failure rates per VP/link ----
    let mut fig5 = String::from(
        "Figure 5 — streaming failure rates per (VP, link), congested vs\nuncongested periods.\n\n",
    );
    let _ = writeln!(
        fig5,
        "{:<18} {:<14} {:>10} {:>12} {:>7}",
        "VP", "link (far IP)", "cong fail", "uncong fail", "ratio"
    );
    for (vp, label) in &qualified {
        let fail_rate = |want_cong: bool| {
            let sel: Vec<&&Obs> = obs
                .iter()
                .filter(|o| &o.vp == vp && &o.link_label == label && o.congested == want_cong)
                .collect();
            let bad = sel.iter().filter(|o| o.failed).count();
            bad as f64 / sel.len().max(1) as f64
        };
        let fc = fail_rate(true);
        let fu = fail_rate(false);
        let _ = writeln!(
            fig5,
            "{:<18} {:<14} {:>9.1}% {:>11.1}% {:>7}",
            vp,
            label,
            100.0 * fc,
            100.0 * fu,
            if fu > 0.0 { format!("{:.1}x", fc / fu) } else { "inf".into() }
        );
    }
    (fig4, fig5)
}
