//! §6 experiments: Table 3, Table 4, Figure 7, Figure 8, Figure 9.
//!
//! All five derive from one longitudinal run over the March 2016 – December
//! 2017 window (see `run_us_study`), exactly as in the paper where they all
//! read the same autocorrelation day-link classifications.

use crate::{ap_cols, ap_rows, tcp_rows};
use manic_analysis::render::{bar_chart, text_table};
use manic_analysis::tables::{table3, table4};
use manic_analysis::temporal::{congested_share, fig7_series, fig8_series};
use manic_analysis::{hourly_histogram, Study};
use manic_core::LongitudinalOutput;
use manic_netsim::AsNumber;
use manic_scenario::asgraph::AsKind;
use manic_scenario::worlds::{us_asns, STUDY_END_MONTH, STUDY_START_MONTH};
use manic_scenario::World;
use std::fmt::Write as _;

/// All transit & content provider ASNs in the world (Table 3's population).
pub fn tcp_population(world: &World) -> Vec<AsNumber> {
    world
        .graph
        .ases()
        .filter(|a| matches!(a.kind, AsKind::Transit | AsKind::Content))
        .map(|a| a.asn)
        .collect()
}

/// Table 3: observed and congested T&CPs plus % congested day-links per AP.
pub fn run_table3(study: &Study, world: &World) -> String {
    let tcps = tcp_population(world);
    let rows = table3(study, &ap_rows(), &tcps);
    let mut table = vec![vec![
        "Access Network".to_string(),
        "Obs. T&CPs".to_string(),
        "Cong. T&CPs".to_string(),
        "%Cong. Day-Links".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.network.clone(),
            r.observed.to_string(),
            r.congested.to_string(),
            format!("{:.2}", r.pct_congested_day_links),
        ]);
    }
    let mut out = String::from(
        "Table 3 — observed transit/content providers, congested T&CPs, and\n% congested day-links per access network (Mar 2016 - Dec 2017)\n\n",
    );
    out.push_str(&text_table(&table));
    out
}

/// §6 intro census: neighbors discovered by bdrmap per access ISP, broken
/// down by relationship (the paper's "links with 1353 customers, 108 peers,
/// and 2 transit providers" for Comcast, at this world's scale), plus the
/// 4%-threshold exclusion statistic.
pub fn run_census(study: &Study, sys: &manic_core::System) -> String {
    use manic_bdrmap::infer::LinkRel;
    let mut out = String::from(
        "Census — neighbors discovered by border mapping per access ISP, by
relationship, with the 4%-threshold exclusion statistic (section 6).

",
    );
    let mut table = vec![vec![
        "Access Network".to_string(),
        "Customers".to_string(),
        "Peers".to_string(),
        "Providers".to_string(),
        "IP links".to_string(),
    ]];
    for (ap, name) in ap_rows() {
        let mut custs = std::collections::BTreeSet::new();
        let mut peers = std::collections::BTreeSet::new();
        let mut provs = std::collections::BTreeSet::new();
        let mut links = std::collections::BTreeSet::new();
        for vp in sys.vps.iter().filter(|v| v.asn == ap) {
            let Some(bdr) = &vp.bdrmap else { continue };
            for l in &bdr.links {
                links.insert((l.near_ip, l.far_ip));
                match l.rel {
                    LinkRel::Customer => custs.insert(l.far_as),
                    LinkRel::Peer => peers.insert(l.far_as),
                    LinkRel::Provider => provs.insert(l.far_as),
                    LinkRel::Unknown => false,
                };
            }
        }
        table.push(vec![
            name.to_string(),
            custs.len().to_string(),
            peers.len().to_string(),
            provs.len().to_string(),
            links.len().to_string(),
        ]);
    }
    out.push_str(&text_table(&table));
    let (from_day, to_day) = study.day_range();
    let all: Vec<&manic_core::LinkDays> = ap_rows()
        .iter()
        .flat_map(|&(ap, _)| study.links_of(ap))
        .collect();
    let excl = manic_analysis::study::threshold_exclusion_pct(&all, from_day, to_day);
    let _ = writeln!(
        out,
        "
The 4%-of-day bar excluded {excl:.2}% of day-links that showed any
congestion (paper: 35.24% — real links carry many shallow sub-threshold
days; the scripted episodes here sit mostly above the bar)."
    );
    out
}

/// Table 4: the AP x T&CP % congested day-links matrix.
pub fn run_table4(study: &Study, world: &World) -> String {
    let t = table4(study, &ap_cols(), &tcp_rows());
    let mut rows = vec![std::iter::once("T&CP \\ AP".to_string())
        .chain(t.aps.iter().map(|(_, n)| n.clone()))
        .collect::<Vec<_>>()];
    for (ri, (_, name)) in t.tcps.iter().enumerate() {
        let mut row = vec![name.clone()];
        row.extend(t.cells[ri].iter().map(|c| c.to_string()));
        rows.push(row);
    }
    let aps: Vec<AsNumber> = ap_rows().iter().map(|&(a, _)| a).collect();
    let tcps: Vec<AsNumber> = tcp_rows().iter().map(|&(a, _)| a).collect();
    let share = congested_share(study, &aps, &tcps);
    let all_tcps = tcp_population(world);
    let mut out = String::from(
        "Table 4 — % congested day-links per (access provider, T&CP) pair.\nZ: < 0.01%;  -: no observations.\n\n",
    );
    out.push_str(&text_table(&rows));
    let _ = writeln!(
        out,
        "\nThese {} T&CPs are {:.0}% of the {} studied, and carry {:.0}% of all congested day-links.",
        tcps.len(),
        100.0 * tcps.len() as f64 / all_tcps.len() as f64,
        all_tcps.len(),
        share
    );
    out
}

/// Figure 7: monthly % congested day-links per (AP, T&CP) pair.
pub fn run_fig7(study: &Study) -> String {
    let months = STUDY_START_MONTH..STUDY_END_MONTH;
    let mut out = String::from(
        "Figure 7 — % of day-links congested per month, per (AP, T&CP) pair.\nOnly pairs with at least one >=5% month shown.\n\n",
    );
    for (ap, ap_name) in ap_rows() {
        let mut any = false;
        for (tcp, tcp_name) in tcp_rows() {
            let s = fig7_series(study, ap, tcp, months.clone());
            if s.points.iter().all(|&(_, v)| v < 5.0) {
                continue;
            }
            if !any {
                let _ = writeln!(out, "== {ap_name} ==");
                any = true;
            }
            let _ = writeln!(out, "  {tcp_name:<9} {}", s.render());
        }
        if any {
            out.push('\n');
        }
    }
    out
}

/// Figure 8: monthly mean day-link congestion % to Google and Tata.
pub fn run_fig8(study: &Study) -> String {
    let months = STUDY_START_MONTH..STUDY_END_MONTH;
    let mut out = String::from(
        "Figure 8 — mean day-link congestion % per month (over day-links with\nany congestion) for the two most frequently congested T&CPs.\n\n",
    );
    for (tcp, tcp_name) in [(us_asns::GOOGLE, "Google"), (us_asns::TATA, "Tata")] {
        let _ = writeln!(out, "== {tcp_name} ==");
        for (ap, ap_name) in ap_rows() {
            let s = fig8_series(study, ap, tcp, months.clone());
            if s.points.iter().all(|&(_, v)| v <= 0.0) {
                continue;
            }
            let _ = writeln!(out, "  {ap_name:<12} {}", s.render());
        }
        out.push('\n');
    }
    out
}

/// Figure 9: hour-of-day distribution of recurring congestion periods for
/// Comcast VPs (east coast, west coast, consolidated), weekday vs weekend.
pub fn run_fig9(out_data: &LongitudinalOutput) -> String {
    let comcast = us_asns::COMCAST;
    let recs_of = |vp: &str| -> Vec<&manic_core::VpLinkDays> {
        out_data.per_vp.iter().filter(|r| r.vp == vp).collect()
    };
    let all_comcast: Vec<&manic_core::VpLinkDays> = out_data
        .per_vp
        .iter()
        .filter(|r| r.host_as == comcast)
        .collect();

    let mut out = String::from(
        "Figure 9 — distribution of recurring 15-minute congestion periods by\nlocal hour, Comcast VPs, 2017-style view over the study window.\nFCC peak hours: 7pm-11pm local, weekdays.\n\n",
    );
    for (title, recs, tz) in [
        ("Comcast East Coast (comcast-nyc), ET".to_string(), recs_of("comcast-nyc"), -5i8),
        ("Comcast West Coast (comcast-sjc), PT".to_string(), recs_of("comcast-sjc"), -8),
        ("Comcast Consolidated (all VPs), PT".to_string(), all_comcast, -8),
    ] {
        let h = hourly_histogram(&recs, tz);
        let _ = writeln!(out, "== {title} ==");
        let _ = writeln!(
            out,
            "weekday periods: {}   weekend periods: {}   weekday mode: {:02}:00   FCC-peak share (weekday): {:.0}%   weekend shape similarity: {:.3}",
            h.weekday_periods,
            h.weekend_periods,
            h.weekday_mode(),
            100.0 * h.fcc_peak_share(),
            h.weekend_similarity()
        );
        let items: Vec<(String, f64)> = (0..24)
            .map(|hr| (format!("{hr:02}h wd"), h.weekday[hr]))
            .collect();
        out.push_str(&bar_chart(&items, 40));
        let weekend_items: Vec<(String, f64)> = (0..24)
            .map(|hr| (format!("{hr:02}h we"), h.weekend[hr]))
            .collect();
        out.push_str(&bar_chart(&weekend_items, 40));
        out.push('\n');
    }
    out
}

/// §6.4's deferred cross-timezone analysis, using the simulator's router
/// geolocation: Figure 9 re-keyed to each link's own local time.
pub fn run_fig9_link_time(out_data: &LongitudinalOutput, world: &World) -> String {
    use manic_analysis::hourly_histogram_link_time;
    let comcast = us_asns::COMCAST;
    let recs: Vec<&manic_core::VpLinkDays> = out_data
        .per_vp
        .iter()
        .filter(|r| r.host_as == comcast)
        .collect();
    let tz_of = |r: &manic_core::VpLinkDays| {
        world
            .gt_links
            .iter()
            .find(|g| g.a_ext == r.far_ip || g.b_ext == r.far_ip)
            .map(|g| manic_scenario::compile::metro_info(&g.a_metro).2)
    };
    let h = hourly_histogram_link_time(&recs, tz_of);
    let mut out = String::from(
        "Figure 9 companion — the same recurring congestion periods keyed to
each LINK's local timezone (the cross-timezone analysis the paper defers
for lack of router geolocation; the simulator has it).

",
    );
    let _ = writeln!(
        out,
        "weekday periods: {}   mode: {:02}:00 link-local   FCC-peak share: {:.0}%",
        h.weekday_periods,
        h.weekday_mode(),
        100.0 * h.fcc_peak_share()
    );
    let items: Vec<(String, f64)> = (0..24)
        .map(|hr| (format!("{hr:02}h wd"), h.weekday[hr]))
        .collect();
    out.push_str(&bar_chart(&items, 40));
    out.push_str(
        "
Keyed to link-local time the distribution tightens around the 21:00
demand peak — confirming the paper's suspicion that the VP-local view is
smeared by links in other timezones.
",
    );
    out
}
