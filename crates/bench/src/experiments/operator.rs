//! §5.4: operator validation against withheld ground truth.
//!
//! The simulator plays the operator: its per-link utilization (which the
//! inference pipeline never reads) is compared with the autocorrelation
//! classifications.
//!
//! * Operator 1 (AT&T-style): seven links to three transit providers and
//!   one content provider; inferences from one October 2017 week (plus a
//!   dissipated-by-October link checked in May 2017).
//! * Operator 2 (Comcast-style): twenty links to two transit and two
//!   content providers across 2017 — ten classified congested, ten
//!   uncongested — audited against utilization.

use crate::{at, SEED};
use manic_core::{run_longitudinal, LinkDays, LongitudinalConfig, System, SystemConfig};
use manic_inference::DayEstimate;
use manic_netsim::time::day_index;
use manic_netsim::topo::Direction;
use manic_scenario::worlds::{us_asns, us_broadband};
use manic_valid::operator::{audit, AuditOutcome};
use std::fmt::Write as _;

/// Day estimates of a merged record over a window, for the audit API.
fn estimates(link: &LinkDays, from: i64, to: i64) -> Vec<DayEstimate> {
    (from..to)
        .map(|d| {
            let iv = link
                .day_masks
                .get(&d)
                .map(|m| m.count_ones() as usize)
                .unwrap_or(0);
            DayEstimate { day: (d - from) as usize, congested_intervals: iv, congestion_pct: iv as f64 / 96.0 }
        })
        .collect()
}

/// The simulated link + congested direction behind a merged record.
fn gt_of(
    world: &manic_scenario::World,
    link: &LinkDays,
) -> Option<(manic_netsim::LinkId, Direction)> {
    let gt = world
        .gt_links
        .iter()
        .find(|g| {
            (g.a_ext == link.far_ip || g.b_ext == link.far_ip)
                && (g.a_int == link.near_ip || g.b_int == link.near_ip)
        })?;
    Some((gt.link, gt.dir_toward(link.host_as)))
}

pub fn run() -> String {
    let mut sys = System::new(us_broadband(SEED), SystemConfig::default());
    let links = run_longitudinal(
        &mut sys,
        &LongitudinalConfig::new(at(2016, 11, 1), at(2018, 1, 1)),
    );
    let world = &sys.world;
    let mut out = String::from("Section 5.4 — operator validation against link utilization.\n\n");

    // ---- Operator 1: AT&T, 7 links to Tata/XO/Telia + Google ----
    let op1_tcps = [us_asns::TATA, us_asns::XO, us_asns::TELIA, us_asns::GOOGLE];
    let mut op1: Vec<(String, manic_netsim::LinkId, Direction, Vec<DayEstimate>)> = Vec::new();
    let (oct_from, oct_to) = (at(2017, 10, 1), at(2017, 11, 1));
    for link in links.iter().filter(|l| l.host_as == us_asns::ATT) {
        if !op1_tcps.contains(&link.neighbor_as) || op1.len() >= 7 {
            continue;
        }
        let Some((lid, dir)) = gt_of(world, link) else { continue };
        let label = format!("att->{} ({})", world.graph.info(link.neighbor_as).name, link.far_ip);
        op1.push((label, lid, dir, estimates(link, day_index(oct_from), day_index(oct_to))));
    }
    let rep1 = audit(&world.net, &op1, oct_from, oct_to, 3);
    let _ = writeln!(out, "Operator 1 (AT&T-style), {} links, October 2017:", rep1.outcomes.len());
    for (label, o) in &rep1.outcomes {
        let verdict = match o {
            AuditOutcome::TruePositive => "congested, operator confirms",
            AuditOutcome::TrueNegative => "uncongested, operator confirms",
            AuditOutcome::FalsePositive => "congested, operator DENIES",
            AuditOutcome::FalseNegative => "uncongested, operator shows congestion",
        };
        let _ = writeln!(out, "  {label:<36} {verdict}");
    }
    let _ = writeln!(
        out,
        "  => {} of {} inferences confirmed.\n",
        rep1.count(AuditOutcome::TruePositive) + rep1.count(AuditOutcome::TrueNegative),
        rep1.outcomes.len()
    );

    // ---- Operator 2: Comcast, 10 congested + 10 uncongested links, 2017 ----
    let (y_from, y_to) = (at(2017, 1, 1), at(2018, 1, 1));
    let (d_from, d_to) = (day_index(y_from), day_index(y_to));
    let op2_tcps = [us_asns::TATA, us_asns::NTT, us_asns::XO, us_asns::GOOGLE, us_asns::NETFLIX, us_asns::VODAFONE, us_asns::TELIA];
    let mut congested_links: Vec<&LinkDays> = Vec::new();
    let mut clean_links: Vec<&LinkDays> = Vec::new();
    for link in links.iter().filter(|l| l.host_as == us_asns::COMCAST) {
        if !op2_tcps.contains(&link.neighbor_as) && !clean_links.is_empty() {
            // Fill the uncongested half from any Comcast neighbor.
        }
        let cong_days = link
            .observed
            .range(d_from..d_to)
            .filter(|&&d| link.day_pct(d) >= 0.04)
            .count();
        if cong_days >= 5 && congested_links.len() < 10 && op2_tcps.contains(&link.neighbor_as) {
            congested_links.push(link);
        } else if cong_days == 0 && clean_links.len() < 10 && link.observed_days() > 100 {
            clean_links.push(link);
        }
    }
    let mut op2 = Vec::new();
    for link in congested_links.iter().chain(&clean_links) {
        let Some((lid, dir)) = gt_of(world, link) else { continue };
        let label = format!(
            "comcast->{} ({})",
            world.graph.info(link.neighbor_as).name,
            link.far_ip
        );
        op2.push((label, lid, dir, estimates(link, d_from, d_to)));
    }
    let rep2 = audit(&world.net, &op2, y_from, y_to, 5);
    let _ = writeln!(
        out,
        "Operator 2 (Comcast-style), {} links audited across 2017:",
        rep2.outcomes.len()
    );
    let _ = writeln!(
        out,
        "  true positives:  {:>2}  (inferred congested, utilization reached 100%)",
        rep2.count(AuditOutcome::TruePositive)
    );
    let _ = writeln!(
        out,
        "  true negatives:  {:>2}  (inferred clean, utilization stayed clear)",
        rep2.count(AuditOutcome::TrueNegative)
    );
    let _ = writeln!(out, "  false positives: {:>2}", rep2.count(AuditOutcome::FalsePositive));
    let _ = writeln!(out, "  false negatives: {:>2}", rep2.count(AuditOutcome::FalseNegative));
    let _ = writeln!(
        out,
        "  => all consistent: {}\n\nPaper: operator 1 confirmed 7/7; operator 2's utilization was consistent\nwith all 20 inferences (10 TP + 10 TN).",
        rep2.all_consistent()
    );
    out
}
