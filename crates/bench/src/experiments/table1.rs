//! Table 1: loss-rate validation of congestion inferences (§5.1).
//!
//! For every month-link (one month of data for one interdomain link from one
//! VP, March–December 2017) that was significantly congested, the reactive
//! loss prober's per-window loss rates are split into congested/uncongested
//! periods by the autocorrelation classification and scored against the
//! far-end and localization binomial tests.

use crate::{at, SEED};
use manic_analysis::study::is_congested_at;
use manic_bdrmap::infer::LinkRel;
use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::month_start;
use manic_probing::loss::{LossProber, LossTarget};
use manic_probing::tslp::End;
use manic_probing::VpHandle;
use manic_scenario::worlds::us_broadband;
use manic_valid::lossval::{classify_month_links, LossValInput};
use std::fmt::Write as _;

pub fn run() -> String {
    let mut sys = System::new(us_broadband(SEED), SystemConfig::default());
    // Classification over March - December 2017 (months 14..24), with enough
    // leading context for the 50-day windows.
    let links = run_longitudinal(
        &mut sys,
        &LongitudinalConfig::new(at(2017, 1, 1), at(2018, 1, 1)),
    );

    let mut inputs: Vec<LossValInput> = Vec::new();
    let mut skipped_no_task = 0usize;
    for link in &links {
        // §3.3 restriction: peers and providers only.
        if !matches!(link.rel, LinkRel::Peer | LinkRel::Provider) {
            continue;
        }
        // Use the first observing VP (the paper's loss collection ran from a
        // VP subset too).
        let vp_name = &link.vps[0];
        let vi = sys.vp_index(vp_name);
        let vp = &sys.vps[vi];
        let Some(task) = vp.tslp.tasks.iter().find(|t| t.far_ip == link.far_ip) else {
            skipped_no_task += 1;
            continue;
        };
        let dest = task.dests[0];
        let target = LossTarget {
            near_ip: task.near_ip,
            far_ip: task.far_ip,
            dst: dest.dst,
            near_ttl: dest.near_ttl,
            far_ttl: dest.far_ttl,
            flow_id: task.flow_id,
        };
        let handle = VpHandle {
            name: vp.handle.name.clone(),
            router: vp.handle.router,
            addr: vp.handle.addr,
        };
        for month in 14u32..24 {
            let m_from = month_start(month);
            let m_to = month_start(month + 1);
            let from_day = manic_netsim::time::day_index(m_from);
            let to_day = manic_netsim::time::day_index(m_to);
            let congested_days = link
                .observed
                .range(from_day..to_day)
                .filter(|&&d| link.day_pct(d) >= 0.04)
                .count();
            if congested_days == 0 {
                continue;
            }
            // Synthesize the month of loss probing for this link.
            let mut prober = LossProber::new(handle.clone(), m_from);
            prober.set_targets(vec![target.clone()]);
            let windows = prober.synthesize_window(&sys.world.net, m_from, m_to);
            let mut far_c = (0u64, 0u64);
            let mut far_u = (0u64, 0u64);
            let mut near_c = (0u64, 0u64);
            let mut near_u = (0u64, 0u64);
            for (_, samples) in windows {
                for s in samples {
                    let congested = is_congested_at(link, s.window_start + 150);
                    let slot = match (s.end, congested) {
                        (End::Far, true) => &mut far_c,
                        (End::Far, false) => &mut far_u,
                        (End::Near, true) => &mut near_c,
                        (End::Near, false) => &mut near_u,
                    };
                    slot.0 += s.lost as u64;
                    slot.1 += s.sent as u64;
                }
            }
            inputs.push(LossValInput {
                vp: vp_name.clone(),
                link_label: link.far_ip.to_string(),
                month,
                significantly_congested: true,
                far_congested: far_c,
                far_uncongested: far_u,
                near_congested: near_c,
                near_uncongested: near_u,
            });
        }
    }

    let table = classify_month_links(&inputs, 0.05);
    let mut out = String::from(
        "Table 1 — correlation between congestion inferences and loss\nmeasurements, month-links March-December 2017.\n\n",
    );
    let _ = writeln!(
        out,
        "{:<26} {:<26} {:>8} {:>8}",
        "Far-End Higher During", "Far-End Higher than", "# Month-", "% Month-"
    );
    let _ = writeln!(
        out,
        "{:<26} {:<26} {:>8} {:>8}",
        "Congestion", "Near-End", "Links", "Links"
    );
    let _ = writeln!(
        out,
        "{:<26} {:<26} {:>8} {:>8.0}%",
        "True", "True", table.both, table.pct_both()
    );
    let _ = writeln!(
        out,
        "{:<26} {:<26} {:>8} {:>8.0}%",
        "True", "False", table.far_only, table.pct_far_only()
    );
    let _ = writeln!(
        out,
        "{:<26} {:<26} {:>8} {:>8.0}%",
        "False", "-", table.contradicting, table.pct_contradicting()
    );
    let _ = writeln!(
        out,
        "\n{} candidate month-links ({} skipped for missing probing state);\n{} with a statistically significant far-end difference entered the tests;\n{} of the passing month-links show suspicious always-high far loss\n(ICMP rate limiting artifact, retained as in the paper).",
        table.candidates, skipped_no_task, table.significant, table.suspicious_high_loss
    );
    let _ = writeln!(
        out,
        "\nPaper's split over 145 significant month-links: 81% / 8% / 11%."
    );
    out
}
