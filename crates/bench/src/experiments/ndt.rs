//! Table 2 and Figure 6: NDT throughput validation (§5.3).
//!
//! Three links, as in the paper:
//! * **Link 1** — Comcast–Tata in New York: forward and download data paths
//!   both cross the congested NYC link → stark, significant throughput drop;
//! * **Link 2** — Comcast–Tata in Chicago: the forward path crosses the
//!   congested Chicago link but download data returns over the clean Ashburn
//!   link → no significant difference;
//! * **Link 3** — CenturyLink–Cogent: briefly (≈36 min/day) congested →
//!   small but statistically significant difference.

use crate::{at, SEED};
use manic_analysis::study::is_congested_at;
use manic_core::{run_longitudinal, LinkDays, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{format_sim, local_hour, SimTime};
use manic_netsim::{LinkId, Network};
use manic_probing::VpHandle;
use manic_scenario::compile::metro_info;
use manic_scenario::worlds::{us_asns, us_broadband};
use manic_stats::ttest::{two_sample_t, Tails};
use manic_valid::ndt::{run_ndt, NdtResult, NdtServer};
use manic_valid::tcpmodel::TcpModelConfig;
use std::fmt::Write as _;

/// NDT collection period (paper: 15 Nov - 31 Dec 2017).
fn collection() -> (SimTime, SimTime) {
    (at(2017, 11, 15), at(2018, 1, 1))
}

/// §3.5 cadence: every 15 minutes 5pm-11pm local, hourly otherwise.
pub fn test_times(from: SimTime, to: SimTime, tz: i8) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut t = from;
    while t < to {
        let lh = local_hour(t, tz);
        let step = if (17.0..23.0).contains(&lh) { 900 } else { 3600 };
        out.push(t);
        t += step;
    }
    out
}

struct NdtCase {
    label: String,
    vp: String,
    server: NdtServer,
}

fn cases(sys: &System) -> Vec<NdtCase> {
    let world = &sys.world;
    let tata_primary = NdtServer {
        name: "ndt-tata-nyc".into(),
        asn: us_asns::TATA,
        addr: world.host_addr(us_asns::TATA, 7),
        router: world.host_routers[&us_asns::TATA],
    };
    let (ash_addr, ash_router) = world.secondary_host_addr(us_asns::TATA, "ash", 7);
    let tata_ash = NdtServer {
        name: "ndt-tata-ash".into(),
        asn: us_asns::TATA,
        addr: ash_addr,
        router: ash_router,
    };
    let cogent = NdtServer {
        name: "ndt-cogent".into(),
        asn: us_asns::COGENT,
        addr: world.host_addr(us_asns::COGENT, 7),
        router: world.host_routers[&us_asns::COGENT],
    };
    vec![
        NdtCase { label: "Link 1 [Comcast-Tata, NYC]".into(), vp: "comcast-nyc".into(), server: tata_primary },
        NdtCase { label: "Link 2 [Comcast-Tata, CHI]".into(), vp: "comcast-chi".into(), server: tata_ash },
        NdtCase { label: "Link 3 [CentLink-Cogent]".into(), vp: "centurylink-den".into(), server: cogent },
    ]
}

/// The merged link record matching a forward path's interdomain crossing.
fn forward_link_record<'a>(
    net: &Network,
    links: &'a [LinkDays],
    world: &manic_scenario::World,
    forward: &[(LinkId, manic_netsim::topo::Direction)],
) -> Option<&'a LinkDays> {
    let crossing = forward
        .iter()
        .find(|&&(l, _)| net.topo.link(l).kind == manic_netsim::LinkKind::Interdomain)?;
    let gt = world.gt_links.iter().find(|g| g.link == crossing.0)?;
    links
        .iter()
        .find(|l| l.far_ip == gt.a_ext || l.far_ip == gt.b_ext)
}

/// Run one case: collect download samples split by TSLP classification.
fn run_case(
    sys: &System,
    links: &[LinkDays],
    case: &NdtCase,
    sample: &mut Vec<NdtResult>,
) -> (Vec<f64>, Vec<f64>) {
    let world = &sys.world;
    let vpr = world.vp(&case.vp);
    let vp = VpHandle { name: vpr.name.clone(), router: vpr.router, addr: vpr.addr };
    let tz = metro_info(&vpr.pop).2;
    let (from, to) = collection();
    let cfg = TcpModelConfig::default();
    let mut cong = Vec::new();
    let mut uncong = Vec::new();
    for t in test_times(from, to, tz) {
        let Some(r) = run_ndt(&world.net, &vp, &case.server, t, 0x5D7, &cfg) else { continue };
        let Some(record) = forward_link_record(&world.net, links, world, &r.forward_links) else {
            continue;
        };
        if is_congested_at(record, t) {
            cong.push(r.download_mbps);
        } else {
            uncong.push(r.download_mbps);
        }
        sample.push(r);
    }
    (cong, uncong)
}

pub fn run() -> String {
    let mut sys = System::new(us_broadband(SEED), SystemConfig::default());
    let links = run_longitudinal(
        &mut sys,
        &LongitudinalConfig::new(at(2017, 10, 20), at(2018, 1, 1)),
    );
    let mut out = String::from(
        "Table 2 — average NDT download throughput (Mbit/s) during periods TSLP\nclassified congested vs uncongested, 15 Nov - 31 Dec 2017.\n\n",
    );
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>8} {:>12} {:>7} {:>7}",
        "Link [VP AS - Server AS]", "Uncong.", "Cong.", "t-test p", "n_unc", "n_con"
    );
    for case in cases(&sys) {
        let mut sample = Vec::new();
        let (cong, uncong) = run_case(&sys, &links, &case, &mut sample);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let p = two_sample_t(&uncong, &cong, Tails::TwoSided).map(|t| t.p);
        let _ = writeln!(
            out,
            "{:<28} {:>8.2} {:>8.2} {:>12} {:>7} {:>7}",
            case.label,
            mean(&uncong),
            mean(&cong),
            match p {
                Some(p) if p < 0.001 => "<0.001".to_string(),
                Some(p) => format!("{p:.3}"),
                None => "n/a".to_string(),
            },
            uncong.len(),
            cong.len(),
        );
    }
    out.push_str(
        "\nExpected shape (paper): Link 1 collapses with p<0.001; Link 2 shows no\nsignificant difference (download data returns over the clean Ashburn link);\nLink 3 differs slightly but significantly.\n",
    );
    out
}

/// Figure 6: TSLP latency + NDT download time series for Link 1, Dec 7-11.
pub fn run_fig6() -> String {
    let mut sys = System::new(us_broadband(SEED), SystemConfig::default());
    let links = run_longitudinal(
        &mut sys,
        &LongitudinalConfig::new(at(2017, 10, 20), at(2018, 1, 1)),
    );
    let case = cases(&sys).remove(0);
    let world = &sys.world;
    let vpr = world.vp(&case.vp);
    let vp = VpHandle { name: vpr.name.clone(), router: vpr.router, addr: vpr.addr };
    let tz = metro_info(&vpr.pop).2;
    let vi = sys.vp_index(&case.vp);

    // Locate the far-end TSLP path for the link the NDT forward path crosses.
    let probe = run_ndt(&world.net, &vp, &case.server, at(2017, 12, 7), 0x5D7, &TcpModelConfig::default())
        .expect("routable");
    let record = forward_link_record(&world.net, &links, world, &probe.forward_links)
        .expect("link classified");
    let task = sys.vps[vi]
        .tslp
        .tasks
        .iter()
        .find(|t| t.far_ip == record.far_ip)
        .expect("tslp task")
        .clone();
    let dest = task.dests[0];
    let pp = manic_probing::probe_path(&world.net, &vp, dest.dst, dest.far_ttl, task.flow_id, at(2017, 12, 7))
        .expect("path");

    let from = at(2017, 12, 7);
    let to = at(2017, 12, 12);
    let mut out = String::from(
        "Figure 6 — TSLP far-end latency and NDT download throughput,\nComcast-Tata Link 1, Dec 7-11 2017. '#' marks inferred congestion.\n\n",
    );
    let _ = writeln!(out, "{:<18} {:>9} {:>10}  cong", "UTC time", "far ms", "down Mbps");
    let tests = test_times(from, to, tz);
    let mut t = from;
    while t < to {
        let rtt = pp.min_rtt(&world.net, t);
        // The NDT sample nearest this half-hour, if any.
        let ndt = tests
            .iter()
            .filter(|&&x| x >= t && x < t + 1800)
            .filter_map(|&x| run_ndt(&world.net, &vp, &case.server, x, 0x5D7, &TcpModelConfig::default()))
            .map(|r| r.download_mbps)
            .next();
        let _ = writeln!(
            out,
            "{:<18} {:>9.2} {:>10}  {}",
            format_sim(t),
            rtt,
            ndt.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            if is_congested_at(record, t) { "#" } else { "" }
        );
        t += 1800;
    }
    out
}
