//! Shared harness for the experiment binaries (one per paper table/figure).
//!
//! Every binary follows the same pattern: build the US-broadband world (or
//! the focused sub-scenario an experiment needs), run the measurement
//! pipeline, compute the paper artifact, print it in the paper's shape, and
//! write a copy under `results/`. `EXPERIMENTS.md` records the paper-vs-
//! measured comparison for each.

use manic_analysis::Study;
use manic_core::{run_longitudinal_detailed, LongitudinalConfig, LongitudinalOutput, System, SystemConfig};
use manic_netsim::time::{date_to_sim, month_start, Date, SimTime};
use manic_scenario::worlds::{self, us_broadband};
use manic_scenario::World;
use std::io::Write as _;
use std::path::PathBuf;

/// Deterministic seed for every headline experiment.
pub const SEED: u64 = 0x5167_C044;

/// The §6 study window: March 2016 .. end of December 2017.
pub fn study_window() -> (SimTime, SimTime) {
    (
        month_start(worlds::STUDY_START_MONTH),
        month_start(worlds::STUDY_END_MONTH),
    )
}

/// Convenience date constructor.
pub fn at(y: i32, m: u8, d: u8) -> SimTime {
    date_to_sim(Date::new(y, m, d))
}

/// Build the US-broadband measurement system.
pub fn us_system() -> System {
    System::new(us_broadband(SEED), SystemConfig::default())
}

/// Run the full longitudinal pipeline over the §6 window and wrap it in a
/// `Study`. This is the shared engine behind Tables 3-4 and Figures 7-9.
pub fn run_us_study(system: &mut System) -> (Study, LongitudinalOutput) {
    let (from, to) = study_window();
    let cfg = LongitudinalConfig::new(from, to);
    let out = run_longitudinal_detailed(system, &cfg);
    (Study::new(out.merged.clone(), from, to), out)
}

/// Display names of the eight US access ISPs, Table 3 row order.
pub fn ap_rows() -> Vec<(manic_netsim::AsNumber, &'static str)> {
    use manic_scenario::worlds::us_asns::*;
    vec![
        (CENTURYLINK, "CenturyLink"),
        (ATT, "AT&T"),
        (COX, "Cox"),
        (COMCAST, "Comcast"),
        (CHARTER, "Charter"),
        (TWC, "TWC"),
        (VERIZON, "Verizon"),
        (RCN, "RCN"),
    ]
}

/// Table 4 column order (as printed in the paper).
pub fn ap_cols() -> Vec<(manic_netsim::AsNumber, &'static str)> {
    use manic_scenario::worlds::us_asns::*;
    vec![
        (COMCAST, "Comcast"),
        (VERIZON, "Verizon"),
        (CENTURYLINK, "CenturyLink"),
        (ATT, "AT&T"),
        (COX, "Cox"),
        (TWC, "TWC"),
        (CHARTER, "Charter"),
        (RCN, "RCN"),
    ]
}

/// Table 4 row T&CPs.
pub fn tcp_rows() -> Vec<(manic_netsim::AsNumber, &'static str)> {
    use manic_scenario::worlds::us_asns::*;
    vec![
        (GOOGLE, "Google"),
        (TATA, "Tata"),
        (NTT, "NTT"),
        (XO, "XO"),
        (NETFLIX, "Netflix"),
        (LEVEL3, "Level3"),
        (VODAFONE, "Vodafone"),
        (TELIA, "Telia"),
        (ZAYO, "Zayo"),
    ]
}

/// Name of an AS in a world.
pub fn as_name(world: &World, asn: manic_netsim::AsNumber) -> String {
    world.graph.info(asn).name.clone()
}

/// Write an experiment's text output under `results/`, plus a metrics
/// sidecar (`<name>.metrics.json`) snapshotting every counter, gauge, and
/// histogram the run touched — the experiment's observability record.
///
/// The save is announced through the journal (echoed to stderr at the
/// default Info level), not a bare eprintln, so `--quiet` harnesses and the
/// CI artifact both see it consistently.
pub fn save_result(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = if name.contains('.') {
        dir.join(name)
    } else {
        dir.join(format!("{name}.txt"))
    };
    let mut f = std::fs::File::create(&path).expect("create result file");
    f.write_all(contents.as_bytes()).expect("write result");
    let stem = name.split('.').next().unwrap_or(name);
    let sidecar = dir.join(format!("{stem}.metrics.json"));
    std::fs::write(&sidecar, manic_obs::registry().render_json())
        .expect("write metrics sidecar");
    manic_obs::event!(
        manic_obs::INFO, "bench", "result_saved", 0,
        path = path.display().to_string(),
        metrics = sidecar.display().to_string(),
    );
    path
}

pub mod experiments;
