//! Hostile-client chaos harness for the manic-serve overload controls.
//!
//! `serve_load` answers "how fast"; this binary answers "does it survive".
//! A seeded fleet of hostile clients — slowloris header-dribblers, valid
//! requests trickled a byte at a time, mid-request aborts, pipelined
//! garbage and body-carrying requests, oversized URIs and header blocks,
//! connection-flood bursts, and silent idlers — attacks a live server
//! while paced well-behaved clients and a health prober measure what the
//! abuse costs legitimate traffic, and the measurement loop runs in the
//! same process to measure what it costs the science.
//!
//! Hard gates (any failure exits non-zero):
//!
//! * zero panics anywhere in the process (panic hook counts them);
//! * every hostile-client kind shows up in its rejection metric
//!   (header-timeout disconnects, idle reaps, 413/414/431/400 parser
//!   rejections) — abuse that is absorbed silently is a bug;
//! * the health prober sees `/api/health` answer 200 on every probe — the
//!   priority lane stays open no matter what;
//! * well-behaved p99 stays under budget (`SERVE_CHAOS_P99_MS`, 50 ms);
//! * resident-set growth across the attack stays bounded
//!   (`SERVE_CHAOS_RSS_MB`, 128 MB) — no unbounded buffering;
//! * measurement-round degradation vs the quiet baseline stays under
//!   `SERVE_CHAOS_MAX_DEGRADATION_PCT` (2%);
//! * a second server with a hair-trigger circuit breaker opens it under
//!   slow renders, rejects with 503, and keeps `/api/health` serving.
//!
//! Fleet size and duration scale with `SERVE_CHAOS_PAIRS` and
//! `SERVE_CHAOS_ATTACK_SECS` so CI can run a reduced ~30 s smoke while
//! the full fleet runs on dedicated hardware. Writes
//! `BENCH_serve_chaos.json` at the repo root and a text report under
//! `results/`.
//!
//! ```text
//! cargo run --release -p manic-bench --bin serve_chaos
//! ```

use manic_core::{System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use manic_serve::{OverloadConfig, ServeConfig, ServeState, Server, SnapshotHub};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic base seed for the fleet's RNG streams.
const SEED: u64 = 0xC4A0_5EED;
const WARMUP_SIM_HOURS: i64 = 6;
const BASELINE_SECS: u64 = 3;

/// Panic counter fed by the process-wide panic hook: any panic on any
/// thread (server workers included — they share the process) fails the run.
static PANICS: AtomicU64 = AtomicU64::new(0);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Small deterministic xorshift64* stream, one per hostile thread.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn t0() -> i64 {
    date_to_sim(Date::new(2017, 3, 1))
}

/// Resident set size from `/proc/self/status`, in KiB (0 if unreadable —
/// the RSS gate is skipped off-Linux rather than failed).
fn rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(addr)?;
    s.set_nodelay(true).ok();
    s.set_read_timeout(Some(Duration::from_secs(5))).ok();
    s.set_write_timeout(Some(Duration::from_secs(5))).ok();
    Ok(s)
}

/// Consume one `Content-Length`-framed response; returns the status code.
fn read_response(r: &mut BufReader<TcpStream>, scratch: &mut Vec<u8>) -> std::io::Result<u16> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "closed"));
    }
    let status = line.get(9..12).and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut content_len = 0usize;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "closed"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_len = v.trim().parse().unwrap_or(0);
        }
    }
    scratch.resize(content_len, 0);
    r.read_exact(scratch)?;
    Ok(status)
}

/// One round-trip on a fresh connection; returns the status (0 on error).
fn one_shot(addr: SocketAddr, path: &str) -> u16 {
    let Ok(s) = connect(addr) else { return 0 };
    let mut conn = BufReader::new(s);
    let req = format!("GET {path} HTTP/1.1\r\nHost: c\r\nConnection: close\r\n\r\n");
    if conn.get_mut().write_all(req.as_bytes()).is_err() {
        return 0;
    }
    let mut scratch = Vec::new();
    read_response(&mut conn, &mut scratch).unwrap_or(0)
}

/// Shared kill switch + per-kind activity counter for one hostile thread.
struct Hostile {
    stop: Arc<AtomicBool>,
    attempts: Arc<AtomicU64>,
}

impl Hostile {
    fn running(&self) -> bool {
        !self.stop.load(Ordering::Acquire)
    }
    fn tick(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
    }
    /// Sleep in small slices so shutdown stays prompt.
    fn nap(&self, total: Duration) {
        let deadline = Instant::now() + total;
        while self.running() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Slowloris: drip one header byte at a time, far slower than the header
/// deadline. The server must cut the connection; we reconnect and repeat.
fn slowloris(addr: SocketAddr, h: Hostile) {
    let head = b"GET /api/links HTTP/1.1\r\nHost: slow\r\nX-Drip: ";
    while h.running() {
        h.tick();
        let Ok(mut s) = connect(addr) else {
            h.nap(Duration::from_millis(50));
            continue;
        };
        for chunk in head.chunks(1) {
            if !h.running() || s.write_all(chunk).is_err() {
                break;
            }
            h.nap(Duration::from_millis(40));
        }
        // Keep dripping until the server hangs up on us.
        while h.running() && s.write_all(b"z").is_ok() {
            h.nap(Duration::from_millis(40));
        }
    }
}

/// Byte-dribbler: a valid request sent one byte per tick. Slow enough that
/// the header deadline fires mid-request; the bytes themselves are legal.
fn dribbler(addr: SocketAddr, h: Hostile) {
    let req = b"GET /api/health HTTP/1.1\r\nHost: dribble\r\nAccept: application/json\r\n\r\n";
    while h.running() {
        h.tick();
        let Ok(mut s) = connect(addr) else {
            h.nap(Duration::from_millis(50));
            continue;
        };
        let mut cut = false;
        for b in req.iter() {
            if !h.running() || s.write_all(std::slice::from_ref(b)).is_err() {
                cut = true;
                break;
            }
            h.nap(Duration::from_millis(25));
        }
        if !cut {
            // Made it under the deadline: drain the response politely.
            let mut conn = BufReader::new(s);
            let mut scratch = Vec::new();
            let _ = read_response(&mut conn, &mut scratch);
        }
    }
}

/// Mid-request aborts: write part of a request (sometimes all of it) and
/// slam the connection shut without reading anything.
fn aborter(addr: SocketAddr, h: Hostile, mut rng: Rng) {
    let req: &[u8] = b"GET /api/links HTTP/1.1\r\nHost: abort\r\n\r\n";
    while h.running() {
        h.tick();
        let Ok(mut s) = connect(addr) else {
            h.nap(Duration::from_millis(20));
            continue;
        };
        let cut = (rng.below(req.len() as u64 + 1)) as usize;
        let _ = s.write_all(&req[..cut]);
        drop(s); // RST or FIN mid-parse, server's choice how it lands
        h.nap(Duration::from_millis(5 + rng.below(10)));
    }
}

/// Pipelined garbage: random byte soup, interleaved with body-carrying
/// requests the server must refuse with 413 rather than buffer.
fn garbage(addr: SocketAddr, h: Hostile, mut rng: Rng) {
    while h.running() {
        h.tick();
        let Ok(mut s) = connect(addr) else {
            h.nap(Duration::from_millis(20));
            continue;
        };
        let mut payload = Vec::with_capacity(512);
        match rng.below(3) {
            0 => {
                // Raw soup.
                for _ in 0..64 + rng.below(256) {
                    payload.push(rng.next() as u8);
                }
            }
            1 => {
                // A POST with a body, pipelined ahead of a valid GET the
                // server will never reach (the 413 closes the stream).
                payload.extend_from_slice(
                    b"POST /api/links HTTP/1.1\r\nHost: g\r\nContent-Length: 64\r\n\r\n",
                );
                payload.extend(std::iter::repeat_n(b'x', 64));
                payload.extend_from_slice(b"GET /api/links HTTP/1.1\r\nHost: g\r\n\r\n");
            }
            _ => {
                // Valid request line, then header soup with no terminator.
                payload.extend_from_slice(b"GET /api/links HTTP/1.1\r\n");
                for _ in 0..rng.below(8) {
                    for _ in 0..rng.below(40) {
                        payload.push(rng.next() as u8);
                    }
                    payload.extend_from_slice(b"\r\n");
                }
                payload.extend_from_slice(b"\x00\x01\xfe\xff\r\n\r\n");
            }
        }
        let _ = s.write_all(&payload);
        // Read whatever error response comes back (or EOF), then move on.
        let mut sink = [0u8; 1024];
        s.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let _ = s.read(&mut sink);
        h.nap(Duration::from_millis(10));
    }
}

/// Oversized URIs and header blocks, alternating; expects 414/431.
fn oversize(addr: SocketAddr, h: Hostile, mut rng: Rng) {
    while h.running() {
        h.tick();
        let Ok(mut s) = connect(addr) else {
            h.nap(Duration::from_millis(20));
            continue;
        };
        let payload = if rng.below(2) == 0 {
            let mut p = b"GET /".to_vec();
            p.extend(std::iter::repeat_n(b'u', 64 * 1024));
            p.extend_from_slice(b" HTTP/1.1\r\n\r\n");
            p
        } else {
            let mut p = b"GET /api/links HTTP/1.1\r\nX-Pad: ".to_vec();
            p.extend(std::iter::repeat_n(b'h', 64 * 1024));
            p.extend_from_slice(b"\r\n\r\n");
            p
        };
        let _ = s.write_all(&payload);
        let mut sink = [0u8; 1024];
        s.set_read_timeout(Some(Duration::from_millis(200))).ok();
        let _ = s.read(&mut sink);
        h.nap(Duration::from_millis(20));
    }
}

/// Flood bursts: open a clutch of connections at once, fire one request
/// each, read the responses, drop them all, breathe, repeat.
fn flood(addr: SocketAddr, h: Hostile) {
    const CLUTCH: usize = 24;
    while h.running() {
        h.tick();
        let mut conns = Vec::with_capacity(CLUTCH);
        for _ in 0..CLUTCH {
            if let Ok(mut s) = connect(addr) {
                let _ = s.write_all(b"GET /api/links HTTP/1.1\r\nHost: f\r\n\r\n");
                conns.push(BufReader::new(s));
            }
        }
        let mut scratch = Vec::new();
        for conn in conns.iter_mut() {
            let _ = read_response(conn, &mut scratch);
        }
        drop(conns);
        h.nap(Duration::from_millis(100));
    }
}

/// Idler: connect, send nothing, hold the socket. The server must reap it
/// at the keep-alive timeout instead of letting budget leak away.
fn idler(addr: SocketAddr, h: Hostile) {
    while h.running() {
        h.tick();
        let Ok(mut s) = connect(addr) else {
            h.nap(Duration::from_millis(50));
            continue;
        };
        // Wait for the server to hang up (EOF) or for shutdown.
        s.set_read_timeout(Some(Duration::from_millis(250))).ok();
        let mut sink = [0u8; 64];
        while h.running() {
            match s.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
    }
}

/// Well-behaved paced client: one request per interval on a keep-alive
/// connection, per-request latency in µs, failures counted.
fn law_abiding(
    addr: SocketAddr,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> (Vec<u64>, u64, u64) {
    let mut lat = Vec::with_capacity(1 << 14);
    let (mut ok, mut bad) = (0u64, 0u64);
    let mut conn = None;
    let mut scratch = Vec::with_capacity(64 * 1024);
    let mut next = Instant::now();
    while !stop.load(Ordering::Acquire) {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        } else if now > next + interval * 8 {
            next = now; // fell behind: re-anchor, don't burst
        }
        next += interval;
        if conn.is_none() {
            conn = connect(addr).ok().map(BufReader::new);
        }
        let Some(c) = conn.as_mut() else {
            bad += 1;
            continue;
        };
        let started = Instant::now();
        let done = c
            .get_mut()
            .write_all(b"GET /api/links HTTP/1.1\r\nHost: good\r\n\r\n")
            .and_then(|_| read_response(c, &mut scratch));
        match done {
            Ok(200) => {
                ok += 1;
                lat.push(started.elapsed().as_micros() as u64);
            }
            Ok(_) => {
                bad += 1;
                conn = None;
            }
            Err(_) => {
                bad += 1;
                conn = None;
            }
        }
    }
    (lat, ok, bad)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Nanoseconds this thread has spent on-CPU, from
/// `/proc/thread-self/schedstat` (`None` off-Linux or without schedstats).
fn thread_cpu_ns() -> Option<u64> {
    std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// Run the measurement loop for `secs` wall seconds, timing each sim
/// quantum; returns (per-quantum wall µs, on-CPU ns for the whole phase).
/// The 1 ms breather between quanta keeps the sim from starving every
/// other thread on small machines — degradation is judged on per-quantum
/// cost, not loop throughput, so the breather is free.
fn run_sim_for(sys: &mut System, t: &mut i64, secs: u64) -> (Vec<u64>, Option<u64>) {
    let mut samples = Vec::with_capacity(4096);
    let cpu0 = thread_cpu_ns();
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        let next = *t + 1800;
        let started = Instant::now();
        sys.run_packet_mode(*t, next);
        samples.push(started.elapsed().as_micros() as u64);
        *t = next;
        std::thread::sleep(Duration::from_millis(1));
    }
    let cpu = match (cpu0, thread_cpu_ns()) {
        (Some(a), Some(b)) if b > a => Some(b - a),
        _ => None,
    };
    (samples, cpu)
}

/// Median of unsorted per-quantum samples, in milliseconds.
fn median_ms(samples: &[u64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_unstable();
    percentile(&s, 0.50) as f64 / 1e3
}

struct Gate {
    name: &'static str,
    detail: String,
    pass: bool,
}

fn main() {
    manic_obs::journal().set_stderr_level(Some(manic_obs::Level::Warn));

    // Count every panic in the process, then let the default hook report it.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        PANICS.fetch_add(1, Ordering::SeqCst);
        default_hook(info);
    }));

    let pairs = env_u64("SERVE_CHAOS_PAIRS", 3) as usize;
    let attack_secs = env_u64("SERVE_CHAOS_ATTACK_SECS", 8);
    let p99_budget_ms = env_f64("SERVE_CHAOS_P99_MS", 50.0);
    let rss_budget_mb = env_f64("SERVE_CHAOS_RSS_MB", 128.0);
    let max_degradation = env_f64("SERVE_CHAOS_MAX_DEGRADATION_PCT", 2.0);
    let well_rps = env_u64("SERVE_CHAOS_WELL_RPS", 200);

    // World + warmed-up measurement system, same recipe as serve_load.
    let mut sys = System::new(toy(42), SystemConfig::default());
    let hub = Arc::new(SnapshotHub::new());
    let store = Arc::clone(&sys.store);
    let from = t0();
    let mut t = from;
    sys.run_packet_mode(from, from + WARMUP_SIM_HOURS * 3600);
    t += WARMUP_SIM_HOURS * 3600;
    hub.publish_from(&sys, t, 6 * 3600);

    // Server under attack: loopback traffic shares one client IP, so the
    // per-IP limiter is off and overload control carries the whole load.
    // Short header deadline and keep-alive so slowloris cuts and idle reaps
    // both land well inside the attack window.
    // Slow clients legitimately pin a worker each until their deadline
    // fires, so the pool must be sized above the fleet's concurrency — an
    // 8-worker default against ~20 connection-holding attackers measures
    // pool exhaustion, not overload control.
    let cfg = ServeConfig {
        workers: 16 + pairs * 8,
        rate_limit_rps: 0,
        keep_alive_timeout: Duration::from_secs(1),
        overload: OverloadConfig {
            header_read_timeout: Duration::from_millis(400),
            ..OverloadConfig::default()
        },
        ..ServeConfig::default()
    };
    let state = Arc::new(ServeState::new(Arc::clone(&hub), store, &cfg));
    let server = Server::start("127.0.0.1:0", state, &cfg).expect("bind loopback");
    let addr = server.local_addr();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(// ALLOW_PRINT: bench output
        "serve_chaos: http://{addr}, {cores} core(s), {pairs} hostile pair(s), \
         {attack_secs}s attack"
    );

    // Phase 1: quiet baseline for the measurement loop.
    let rss_start_kib = rss_kib();
    let (baseline, baseline_cpu) = run_sim_for(&mut sys, &mut t, BASELINE_SECS);
    let baseline_ms = median_ms(&baseline);
    let rss_before_kib = rss_kib();

    // Metric snapshot before the attack; gates check deltas.
    let r = manic_obs::registry();
    let m0: Vec<(&str, u64)> = METRIC_GATES
        .iter()
        .map(|(_, series)| (*series, r.counter_value(series)))
        .collect();

    // Phase 2: the fleet. Hostile threads per kind scale with `pairs`.
    let stop = Arc::new(AtomicBool::new(false));
    let mut hostile_handles = Vec::new();
    let mut kind_attempts: Vec<(&'static str, Arc<AtomicU64>)> = Vec::new();
    type Launch = (&'static str, fn(SocketAddr, Hostile, Rng));
    let kinds: &[Launch] = &[
        ("slowloris", |a, h, _| slowloris(a, h)),
        ("dribbler", |a, h, _| dribbler(a, h)),
        ("aborter", aborter),
        ("garbage", garbage),
        ("oversize", oversize),
        ("flood", |a, h, _| flood(a, h)),
        ("idler", |a, h, _| idler(a, h)),
    ];
    for (ki, (kind, launch)) in kinds.iter().enumerate() {
        let attempts = Arc::new(AtomicU64::new(0));
        kind_attempts.push((kind, Arc::clone(&attempts)));
        for pi in 0..pairs {
            let h = Hostile { stop: Arc::clone(&stop), attempts: Arc::clone(&attempts) };
            let rng = Rng::new(SEED ^ ((ki as u64) << 32) ^ pi as u64);
            let launch = *launch;
            hostile_handles.push(
                std::thread::Builder::new()
                    .name(format!("chaos-{kind}-{pi}"))
                    .spawn(move || launch(addr, h, rng))
                    .expect("spawn hostile client"),
            );
        }
    }

    // Well-behaved clients: two paced threads sharing the offered rate.
    const WELL_CLIENTS: usize = 2;
    let interval = Duration::from_nanos(WELL_CLIENTS as u64 * 1_000_000_000 / well_rps.max(1));
    let well_handles: Vec<_> = (0..WELL_CLIENTS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || law_abiding(addr, interval, stop))
        })
        .collect();

    // Health prober: fresh connection every 50 ms; every probe must be 200.
    let prober = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let (mut probes, mut ok) = (0u64, 0u64);
            while !stop.load(Ordering::Acquire) {
                probes += 1;
                if one_shot(addr, "/api/health") == 200 {
                    ok += 1;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            (probes, ok)
        })
    };

    // The measurement loop runs through the whole attack.
    let (attacked, attacked_cpu) = run_sim_for(&mut sys, &mut t, attack_secs);
    let attacked_ms = median_ms(&attacked);

    stop.store(true, Ordering::Release);
    let mut harness_panics = 0u64;
    for hh in hostile_handles {
        if hh.join().is_err() {
            harness_panics += 1;
        }
    }
    let mut lat = Vec::new();
    let (mut well_ok, mut well_bad) = (0u64, 0u64);
    for wh in well_handles {
        let (l, ok, bad) = wh.join().unwrap_or((Vec::new(), 0, 1));
        lat.extend(l);
        well_ok += ok;
        well_bad += bad;
    }
    let (probes, probes_ok) = prober.join().unwrap_or((1, 0));
    let rss_after_kib = rss_kib();

    // Phase 3: breaker drill on a second server tuned so every cache-miss
    // render counts as slow. Distinct bins defeat the response cache.
    let drill_cfg = ServeConfig {
        rate_limit_rps: 0,
        overload: OverloadConfig {
            breaker_streak: 2,
            breaker_slow_ms: 0.0,
            breaker_cooldown: Duration::from_secs(60),
            ..OverloadConfig::default()
        },
        ..ServeConfig::default()
    };
    let drill_state = Arc::new(ServeState::new(
        Arc::clone(&hub),
        Arc::clone(&sys.store),
        &drill_cfg,
    ));
    let drill = Server::start("127.0.0.1:0", drill_state, &drill_cfg).expect("bind drill");
    let far = hub
        .current()
        .links
        .first()
        .map(|l| l.far_ip.to_string())
        .expect("toy world has links");
    let breaker_before = r.counter_value("manic_serve_breaker_rejected");
    let mut drill_503 = 0u64;
    for bin in 0..12u64 {
        let path = format!("/api/link/{far}/timeseries?bin={}&agg=min", 300 + bin * 60);
        if one_shot(drill.local_addr(), &path) == 503 {
            drill_503 += 1;
        }
    }
    let drill_health = one_shot(drill.local_addr(), "/api/health");
    let breaker_tripped = r.counter_value("manic_serve_breaker_rejected") - breaker_before;
    drill.shutdown();
    server.shutdown();

    // ---- Gates ----
    lat.sort_unstable();
    let p50_ms = percentile(&lat, 0.50) as f64 / 1e3;
    let p99_ms = percentile(&lat, 0.99) as f64 / 1e3;
    // Degradation is judged on the sim thread's *on-CPU* cost per quantum:
    // wall time on a shared core mostly measures the scheduler, while CPU
    // time is immune to preemption yet still catches lock contention,
    // allocator pressure, and cache pollution the serving layer inflicts.
    // Falls back to wall-clock medians where schedstats are unavailable.
    let cpu_per_quantum = |cpu: Option<u64>, n: usize| -> Option<f64> {
        match cpu {
            Some(ns) if n > 0 => Some(ns as f64 / n as f64 / 1e6),
            _ => None,
        }
    };
    let base_cost = cpu_per_quantum(baseline_cpu, baseline.len());
    let attack_cost = cpu_per_quantum(attacked_cpu, attacked.len());
    let (degradation, cost_kind, base_shown, attack_shown) = match (base_cost, attack_cost) {
        (Some(b), Some(a)) if b > 0.0 => {
            (100.0 * (a - b).max(0.0) / b, "cpu/quantum", b, a)
        }
        _ if baseline_ms > 0.0 => (
            100.0 * (attacked_ms - baseline_ms).max(0.0) / baseline_ms,
            "median wall/quantum",
            baseline_ms,
            attacked_ms,
        ),
        _ => (0.0, "unmeasured", 0.0, 0.0),
    };
    let rss_growth_mb = (rss_after_kib.saturating_sub(rss_before_kib)) as f64 / 1024.0;
    let panics = PANICS.load(Ordering::SeqCst) + harness_panics;

    let mut gates = vec![
        Gate {
            name: "no_panics",
            detail: format!("{panics} panic(s) observed"),
            pass: panics == 0,
        },
        Gate {
            name: "health_always_answers",
            detail: format!("{probes_ok}/{probes} probes returned 200"),
            pass: probes > 0 && probes_ok == probes,
        },
        Gate {
            name: "well_behaved_p99",
            detail: format!(
                "p99 {p99_ms:.3} ms <= {p99_budget_ms} ms budget \
                 ({well_ok} ok / {well_bad} failed)"
            ),
            pass: well_ok > 0 && p99_ms <= p99_budget_ms,
        },
        Gate {
            name: "rss_bounded",
            detail: format!("grew {rss_growth_mb:.1} MB <= {rss_budget_mb} MB budget"),
            pass: rss_before_kib == 0 || rss_growth_mb <= rss_budget_mb,
        },
        Gate {
            name: "round_degradation",
            detail: format!(
                "{cost_kind} {base_shown:.3} ms quiet -> {attack_shown:.3} ms \
                 under attack ({degradation:.2}% <= {max_degradation}%)"
            ),
            pass: degradation <= max_degradation,
        },
        Gate {
            name: "breaker_drill",
            detail: format!(
                "{drill_503} x 503, {breaker_tripped} breaker rejections, \
                 health {drill_health}"
            ),
            pass: drill_503 > 0 && breaker_tripped > 0 && drill_health == 200,
        },
    ];
    for ((label, series), (_, before)) in METRIC_GATES.iter().zip(&m0) {
        let delta = r.counter_value(series).saturating_sub(*before);
        gates.push(Gate {
            name: label,
            detail: format!("{series} +{delta}"),
            pass: delta > 0,
        });
    }

    // ---- Report ----
    let mut txt = String::new();
    let _ = writeln!(
        txt,
        "serve_chaos: {pairs} hostile pair(s) x {} kind(s), {attack_secs}s attack, \
         {cores} core(s)",
        kind_attempts.len()
    );
    for (kind, attempts) in &kind_attempts {
        let _ = writeln!(txt, "  {kind:<10} {:>8} attack cycles", attempts.load(Ordering::Relaxed));
    }
    let _ = writeln!(
        txt,
        "well-behaved: {well_ok} ok / {well_bad} failed, p50 {p50_ms:.3} ms, p99 {p99_ms:.3} ms"
    );
    let _ = writeln!(txt, "health: {probes_ok}/{probes} probes ok");
    let _ = writeln!(
        txt,
        "sim quanta: wall median {baseline_ms:.3} ms quiet ({} samples), \
         {attacked_ms:.3} ms under attack ({} samples)",
        baseline.len(),
        attacked.len()
    );
    let _ = writeln!(
        txt,
        "sim cost: {cost_kind} {base_shown:.3} ms quiet -> {attack_shown:.3} ms \
         under attack ({degradation:.2}% degradation)"
    );
    let _ = writeln!(
        txt,
        "rss: {:.1} MB at start, {:.1} MB pre-attack, {:.1} MB post-attack \
         ({rss_growth_mb:+.1} MB across the attack)",
        rss_start_kib as f64 / 1024.0,
        rss_before_kib as f64 / 1024.0,
        rss_after_kib as f64 / 1024.0
    );
    let mut all_pass = true;
    for g in &gates {
        all_pass &= g.pass;
        let _ = writeln!(
            txt,
            "gate {:<28} {}  ({})",
            g.name,
            if g.pass { "PASS" } else { "FAIL" },
            g.detail
        );
    }
    print!("{txt}"); // ALLOW_PRINT: bench output
    manic_bench::save_result("serve_chaos", &txt);

    // Repo-root gate record (stable name; CI uploads it as an artifact).
    let gates_json: Vec<String> = gates
        .iter()
        .map(|g| {
            format!(
                "    {{\"gate\": \"{}\", \"pass\": {}, \"detail\": \"{}\"}}",
                g.name,
                g.pass,
                g.detail.replace('"', "'")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve_chaos\",\n  \"seed\": \"{SEED:#x}\",\n  \
         \"pairs\": {pairs},\n  \"attack_secs\": {attack_secs},\n  \
         \"cores\": {cores},\n  \"well_ok\": {well_ok},\n  \"well_failed\": {well_bad},\n  \
         \"p50_ms\": {p50_ms:.3},\n  \"p99_ms\": {p99_ms:.3},\n  \
         \"health_probes\": {probes},\n  \"health_ok\": {probes_ok},\n  \
         \"baseline_wall_median_ms\": {baseline_ms:.3},\n  \
         \"attacked_wall_median_ms\": {attacked_ms:.3},\n  \
         \"cost_kind\": \"{cost_kind}\",\n  \
         \"baseline_cost_ms\": {base_shown:.3},\n  \
         \"attacked_cost_ms\": {attack_shown:.3},\n  \
         \"degradation_pct\": {degradation:.2},\n  \
         \"rss_growth_mb\": {rss_growth_mb:.1},\n  \"panics\": {panics},\n  \
         \"pass\": {all_pass},\n  \"gates\": [\n{}\n  ]\n}}\n",
        gates_json.join(",\n")
    );
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_serve_chaos.json"), &json)
        .expect("write BENCH_serve_chaos.json");

    if !all_pass {
        eprintln!("serve_chaos: GATE FAILURE"); // ALLOW_PRINT: bench output
        std::process::exit(1);
    }
}

/// Every hostile kind must leave a mark in its rejection metric — the
/// (gate label, metric series) pairs checked as deltas across the attack.
const METRIC_GATES: &[(&str, &str)] = &[
    ("slowloris_cut", "manic_serve_disconnects{kind=\"header_timeout\"}"),
    ("idlers_reaped", "manic_serve_disconnects{kind=\"idle_timeout\"}"),
    ("oversized_uri_rejected", "manic_serve_parse_rejected{reason=\"uri_too_long\"}"),
    ("oversized_headers_rejected", "manic_serve_parse_rejected{reason=\"headers_too_large\"}"),
    ("bodies_rejected", "manic_serve_parse_rejected{reason=\"body\"}"),
    ("garbage_rejected", "manic_serve_parse_rejected{reason=\"malformed\"}"),
];
