//! Regenerate Figure 5 (streaming failure rates per VP/link).
fn main() {
    let (_, fig5) = manic_bench::experiments::youtube::run();
    println!("{fig5}");
    manic_bench::save_result("fig5_failure_rates", &fig5);
}
