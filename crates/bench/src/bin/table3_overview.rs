//! Regenerate Table 3 (per-access-ISP congestion overview).
fn main() {
    let mut sys = manic_bench::us_system();
    let (study, _) = manic_bench::run_us_study(&mut sys);
    let out = manic_bench::experiments::longitudinal::run_table3(&study, &sys.world);
    println!("{out}");
    manic_bench::save_result("table3_overview", &out);
}
