//! Regenerate Table 4 (AP x T&CP % congested day-links matrix).
fn main() {
    let mut sys = manic_bench::us_system();
    let (study, _) = manic_bench::run_us_study(&mut sys);
    let out = manic_bench::experiments::longitudinal::run_table4(&study, &sys.world);
    println!("{out}");
    manic_bench::save_result("table4_matrix", &out);
}
