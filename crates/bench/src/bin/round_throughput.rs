//! Round-engine throughput: rounds/sec on the US world at 1/2/4/8 threads.
//!
//! Each configuration runs the identical packet-mode window from the same
//! seed; the serial (1-thread) run is the baseline. Two things come out:
//!
//! * the perf trajectory (`BENCH_round_throughput.json` at the repo root,
//!   `results/round_throughput.metrics.json` for the observability record);
//! * a hard determinism gate: every thread count must produce a
//!   byte-identical store hash and identical congestion verdicts. A speedup
//!   regression is a warning on starved hardware; a hash divergence is a
//!   correctness bug and fails the binary outright.
//!
//! Speedup thresholds are scaled by the *effective* parallelism
//! `min(threads, available cores)` — an N-thread pool cannot beat serial on
//! fewer than N cores, and CI runners come in many shapes. On >= 8 cores
//! the full ISSUE gate applies: >= 2.5x at 4 threads, >= 4x at 8.

use manic_bench::{save_result, us_system, SEED};
use manic_netsim::time::{datetime_to_sim, Date};
use std::fmt::Write as _;
use std::time::Instant;

/// Simulated window: long enough that every VP runs its startup bdrmap
/// cycle (the dominant, most uneven cost) plus a tail of steady TSLP rounds.
const WINDOW_SECS: i64 = 2 * 3600;

/// Minimum speedup vs. serial required at `eff` effective cores. `eff = 1`
/// still gates at 0.85: the pool must not be pathologically slower than the
/// serial path even when it cannot win.
fn required_speedup(eff: usize) -> f64 {
    match eff {
        0 | 1 => 0.85,
        2 => 1.4,
        3 => 1.9,
        4..=7 => 2.5,
        _ => 4.0,
    }
}

struct Run {
    threads: usize,
    wall_s: f64,
    rounds: usize,
    hash: u64,
    series: usize,
    points: usize,
    verdicts: Vec<String>,
}

fn run_once(threads: usize, from: i64, to: i64) -> Run {
    let mut sys = us_system();
    sys.cfg.threads = threads;
    let started = Instant::now();
    let rounds = sys.run_packet_mode(from, to);
    let wall_s = started.elapsed().as_secs_f64();
    let mut verdicts: Vec<String> = Vec::new();
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, to);
        verdicts.extend(sys.vps[vi].loss.targets.iter().map(|t| t.far_ip.to_string()));
    }
    verdicts.sort();
    verdicts.dedup();
    Run {
        threads,
        wall_s,
        rounds,
        hash: sys.store.content_hash(),
        series: sys.store.series_count(),
        points: sys.store.point_count(),
        verdicts,
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let from = datetime_to_sim(Date::new(2017, 3, 6), 20, 0, 0);
    let to = from + WINDOW_SECS;

    let runs: Vec<Run> = [1usize, 2, 4, 8]
        .iter()
        .map(|&n| run_once(n, from, to))
        .collect();
    let base = &runs[0];
    let base_rps = base.rounds as f64 / base.wall_s;

    let mut txt = String::new();
    let _ = writeln!(
        txt,
        "round_throughput: US world, seed {SEED:#x}, {} rounds/run, {cores} core(s)",
        base.rounds
    );
    let _ = writeln!(txt, "{:>7} {:>9} {:>11} {:>9} {:>18}", "threads", "wall_s", "rounds/s", "speedup", "store_hash");
    let mut hash_ok = true;
    let mut speedup_ok = true;
    let mut rows = String::new();
    for r in &runs {
        let rps = r.rounds as f64 / r.wall_s;
        let speedup = rps / base_rps;
        let eff = r.threads.min(cores);
        let need = required_speedup(eff);
        let identical = r.hash == base.hash
            && r.verdicts == base.verdicts
            && r.series == base.series
            && r.points == base.points;
        hash_ok &= identical;
        let pass = speedup >= need;
        speedup_ok &= pass;
        let _ = writeln!(
            txt,
            "{:>7} {:>9.3} {:>11.2} {:>8.2}x {:>18} {}",
            r.threads,
            r.wall_s,
            rps,
            speedup,
            format!("{:016x}", r.hash),
            if !identical {
                "DIVERGED"
            } else if pass {
                "ok"
            } else {
                "slow (below gate for this core count)"
            }
        );
        let _ = writeln!(
            rows,
            "    {{\"threads\": {}, \"effective_cores\": {}, \"wall_s\": {:.4}, \
             \"rounds_per_s\": {:.4}, \"speedup\": {:.4}, \"required_speedup\": {:.2}, \
             \"store_hash\": \"{:016x}\", \"identical_to_serial\": {}}},",
            r.threads, eff, r.wall_s, rps, speedup, need, r.hash, identical
        );
    }
    let _ = writeln!(
        txt,
        "baseline: {base_rps:.2} rounds/s serial; store series={} points={} \
         verdicts={}",
        base.series,
        base.points,
        if base.verdicts.is_empty() { "-".into() } else { base.verdicts.join(",") }
    );
    let _ = writeln!(
        txt,
        "determinism: {}",
        if hash_ok { "all thread counts byte-identical" } else { "HASH DIVERGENCE" }
    );

    print!("{txt}"); // ALLOW_PRINT: bench output
    save_result("round_throughput", &txt);

    // Repo-root trajectory file (stable name, one JSON object per run of
    // this binary; CI uploads it as an artifact).
    let rows_json: Vec<String> = rows
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.trim_end_matches(',').to_string())
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"round_throughput\",\n  \"world\": \"us\",\n  \
         \"seed\": \"{SEED:#x}\",\n  \"window_secs\": {WINDOW_SECS},\n  \
         \"rounds\": {},\n  \"cores\": {cores},\n  \
         \"baseline_rounds_per_s\": {:.4},\n  \"deterministic\": {},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        base.rounds,
        base_rps,
        hash_ok,
        rows_json.join(",\n")
    );
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_round_throughput.json"), &json)
        .expect("write BENCH_round_throughput.json");

    assert!(
        hash_ok,
        "store hash / verdicts diverged across thread counts — determinism bug"
    );
    assert!(
        speedup_ok,
        "round throughput below the gate for this machine's core count"
    );
}
