//! Regenerate the Section 5.4 operator ground-truth validation.
fn main() {
    let out = manic_bench::experiments::operator::run();
    println!("{out}");
    manic_bench::save_result("sec54_operator_validation", &out);
}
