//! Regenerate Figure 3 (TSLP latency + loss time series, Verizon-Google).
fn main() {
    let out = manic_bench::experiments::fig3::run();
    println!("{out}");
    manic_bench::save_result("fig3_timeseries", &out);
}
