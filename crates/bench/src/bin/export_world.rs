//! Public-data export (contribution 4: "we are publicly releasing our
//! analysis scripts, and the underlying datasets"): dump the US world's
//! AS-level metadata, interdomain-link ground truth, and the bdrmap input
//! artifacts as JSON under `results/world.json`.

use manic_scenario::asgraph::AsKind;
use manic_scenario::worlds::us_broadband;

fn main() {
    let w = us_broadband(manic_bench::SEED);
    let ases: Vec<serde_json::Value> = w
        .graph
        .ases()
        .map(|a| {
            serde_json::json!({
                "asn": a.asn.0,
                "name": a.name,
                "kind": match a.kind {
                    AsKind::AccessIsp => "access",
                    AsKind::Transit => "transit",
                    AsKind::Content => "content",
                    AsKind::Stub => "stub",
                    AsKind::Ixp => "ixp",
                },
                "org": a.org,
                "pops": a.pops,
                "block": w.addressing.of(a.asn).block.to_string(),
            })
        })
        .collect();
    let links: Vec<serde_json::Value> = w
        .gt_links
        .iter()
        .map(|l| {
            serde_json::json!({
                "a_asn": l.a_asn.0,
                "b_asn": l.b_asn.0,
                "a_ext": l.a_ext.to_string(),
                "b_ext": l.b_ext.to_string(),
                "a_int": l.a_int.to_string(),
                "b_int": l.b_int.to_string(),
                "metro": l.a_metro,
                "via_ixp": l.via_ixp,
            })
        })
        .collect();
    let vps: Vec<serde_json::Value> = w
        .vps
        .iter()
        .map(|v| {
            serde_json::json!({
                "name": v.name,
                "asn": v.asn.0,
                "pop": v.pop,
                "addr": v.addr.to_string(),
            })
        })
        .collect();
    let relationships: Vec<serde_json::Value> = w
        .artifacts
        .c2p
        .iter()
        .map(|(c, p)| serde_json::json!({"customer": c.0, "provider": p.0}))
        .chain(
            w.artifacts
                .p2p
                .iter()
                .map(|(a, b)| serde_json::json!({"peer_a": a.0, "peer_b": b.0})),
        )
        .collect();
    let doc = serde_json::json!({
        "description": "manic-rs US-broadband world (synthetic; addresses are RFC1918)",
        "seed": manic_bench::SEED,
        "ases": ases,
        "interdomain_links": links,
        "vantage_points": vps,
        "relationships": relationships,
        "ixp_prefixes": w.artifacts.ixp_prefixes.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    let path = manic_bench::save_result("world.json", &text);
    println!(
        "exported {} ASes, {} interdomain links, {} VPs to {}",
        doc["ases"].as_array().unwrap().len(),
        doc["interdomain_links"].as_array().unwrap().len(),
        doc["vantage_points"].as_array().unwrap().len(),
        path.display()
    );
}
