//! Ablation: autocorrelation-method parameters (§4.2 design choices).
//!
//! The paper sets the elevation threshold at `min RTT + 7 ms`, the analysis
//! window at 50 days, and requires a multi-day recurrence. This harness
//! sweeps those choices on the toy world (where ground truth is scripted)
//! and scores day-level classification against the simulator's utilization:
//! a day is truly congested when the link spends ≥ 4% of it at ≥ 100%
//! utilization — the same bar the inference side uses on its own estimate.
//!
//! ```text
//! cargo run --release -p manic-bench --bin ablation_autocorr
//! ```

use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_inference::AutocorrConfig;
use manic_netsim::time::{date_to_sim, day_start, Date, SECS_PER_DAY};
use manic_netsim::topo::Direction;
use manic_netsim::LinkId;
use manic_scenario::schedule::CongestionEpisode;
use manic_scenario::worlds::{install_congestion, toy, toy_asns};
use std::fmt::Write as _;

/// A *hard* variant of the toy world: shallow congestion (45 minutes/day on
/// one peer, a borderline 20 minutes on another), a small 14 ms buffer, and
/// strong 4 ms queueing jitter — so the elevation threshold and recurrence
/// requirements actually matter.
fn hard_world(seed: u64) -> manic_scenario::World {
    let mut world = toy(seed);
    for gt in world.gt_links.clone() {
        let link = world.net.topo.link_mut(gt.link);
        link.queue.buffer_ms = 14.0;
        link.queue.jitter_ms = 4.0;
    }
    let episodes = vec![
        CongestionEpisode::new(toy_asns::ACME, toy_asns::CDNCO, 0..30, 0.75),
        CongestionEpisode::new(toy_asns::ACME, toy_asns::VIDCO, 0..30, 0.33),
    ];
    install_congestion(&mut world, &episodes);
    world
}

/// Ground truth: congested 15-minute intervals of `day`. §5.4's operator
/// criterion is utilization that "approaches or reaches 100%"; 0.97 is the
/// approach bar (standing queues already form there).
fn gt_intervals(net: &manic_netsim::Network, link: LinkId, dir: Direction, day: i64) -> usize {
    (0..96)
        .filter(|iv| {
            let t = day_start(day) + iv * 900 + 450;
            net.link_state(link, dir, t).utilization >= 0.97
        })
        .count()
}

fn main() {
    let from = date_to_sim(Date::new(2016, 4, 1));
    let days = 75i64;
    let to = from + days * SECS_PER_DAY;

    let mut out = String::from(
        "Ablation — autocorrelation parameters vs ground truth (hard toy world:\n\
         14 ms buffers, 4 ms jitter, 45- and 20-minute daily overloads; 75 days).\n\
         truth: a day-link is congested when utilization approaches 100% (>=97%)\n         for >= 4% of the day, the section-5.4 operator criterion.\n\n",
    );
    let _ = writeln!(
        out,
        "{:<12} {:<12} {:<9} {:>10} {:>8} {:>8} {:>12}",
        "elevation", "window", "min_days", "precision", "recall", "FP-days", "day-pct MAE"
    );

    for (elevation_ms, window_days, min_days) in [
        (3.0, 50, 5),
        (5.0, 50, 5),
        (7.0, 50, 5), // the paper's operating point
        (10.0, 50, 5),
        (15.0, 50, 5),
        (7.0, 25, 5),
        (7.0, 75, 5),
        (7.0, 50, 3),
        (7.0, 50, 10),
        (7.0, 50, 25),
    ] {
        let mut sys = System::new(hard_world(13), SystemConfig::default());
        let mut cfg = LongitudinalConfig::new(from, to);
        cfg.autocorr = AutocorrConfig {
            elevation_ms,
            window_days,
            min_days,
            ..AutocorrConfig::default()
        };
        let links = run_longitudinal(&mut sys, &cfg);

        // Score every link-day against ground truth.
        let (mut tp, mut fp, mut fn_, mut mae, mut true_days) = (0usize, 0usize, 0usize, 0.0f64, 0usize);
        for link in &links {
            let Some(gt) = sys.world.gt_links.iter().find(|g| {
                (g.a_ext == link.far_ip || g.b_ext == link.far_ip)
                    && (g.a_int == link.near_ip || g.b_int == link.near_ip)
            }) else {
                continue;
            };
            let dir = gt.dir_toward(link.host_as);
            for &day in &link.observed {
                let truth_iv = gt_intervals(&sys.world.net, gt.link, dir, day);
                let truth = truth_iv >= 4;
                let inferred_pct = link.day_pct(day);
                let inferred = inferred_pct >= 0.04;
                match (inferred, truth) {
                    (true, true) => {
                        tp += 1;
                        mae += (inferred_pct - truth_iv as f64 / 96.0).abs();
                        true_days += 1;
                    }
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    (false, false) => {}
                }
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fn_).max(1) as f64;
        let _ = writeln!(
            out,
            "{:<12} {:<12} {:<9} {:>9.1}% {:>7.1}% {:>8} {:>11.1}%",
            format!("+{elevation_ms} ms"),
            format!("{window_days} d"),
            min_days,
            100.0 * precision,
            100.0 * recall,
            fp,
            100.0 * mae / true_days.max(1) as f64,
        );
    }
    out.push_str(
        "\nReading: with realistic jitter and a small buffer, thresholds below the\n\
         jitter band admit false-positive days, while thresholds near the buffer\n\
         depth miss the real (shallow) overloads entirely. The paper's +7 ms / 50 d\n\
         point balances the two; window length and min_days trade recurrence\n\
         confidence against detection of short-lived congestion.\n",
    );
    println!("{out}");
    manic_bench::save_result("ablation_autocorr", &out);
}
