//! Inference throughput: incremental `LinkSummary` maintenance vs. the
//! full-rescan baseline, gated at >= 5x on planet-20k with a 30-day window.
//!
//! Leg A (the headline number) synthesizes a deterministic per-link min-RTT
//! history for every ground-truth interconnect of a worldgen planet —
//! diurnal evening congestion on some links, rate-limit quality masks on
//! others — writes it to a columnar `Store`, backfills one `LinkSummary`
//! per link (the checkpoint-resume path), then times two ways of answering
//! "is this link congested right now?" for a day of fresh rounds:
//!
//! * **incremental** — fold the round's samples into the ring and call
//!   [`LinkSummary::refresh`]: O(new bins) sentinel scan, exact detector
//!   only on arm/disarm transitions;
//! * **baseline** — what `arm_reactive_loss` did before this PR: a dense
//!   store rescan of the whole window plus a full detector run per link.
//!
//! The speedup is `incremental link-rounds/s / baseline link-rounds/s` and
//! must clear 5x. Before any timing is trusted, a verification pass proves
//! the ring *is* the store: per-link dense windows (mins and quality flags)
//! must match bit-for-bit (FNV-hashed, hard fail on divergence), and exact
//! ring-served verdicts must equal batch detection on the store scan.
//!
//! Leg B re-asserts PR 5's guarantee now that summaries ride along in the
//! round commit: packet-mode runs at 1/2/4/8 threads must produce identical
//! store hashes, verdicts, and summary fingerprints.
//!
//! Knobs (CI smoke uses a smaller world): `INFER_WORLD` (default
//! `planet-20k`), `INFER_DAYS` (window length, default 30), `INFER_ROUNDS`
//! (timed rounds, default 288 = one day), `INFER_BASE_SAMPLES` (baseline
//! rescans to time, default 1000).

use manic_bench::{save_result, SEED};
use manic_core::{System, SystemConfig};
use manic_inference::{
    detect_level_shifts_masked, LevelShiftConfig, LinkSummary, DEFAULT_REJECT,
};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use manic_tsdb::quality::SUSPECT_RATE_LIMITED;
use manic_tsdb::{Aggregate, Point, SeriesKey, Store};
use manic_worldgen::build_world;
use std::fmt::Write as _;
use std::time::Instant;

const BIN: i64 = 300;
const BINS_PER_DAY: i64 = 288;
const REQUIRED_SPEEDUP: f64 = 5.0;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Deterministic per-(link, bin) min-RTT sample: per-link base, bounded
/// hash noise, and a 25 ms evening plateau on every 16th link — big enough
/// and long enough (4 h = 48 bins) that the level-shift detector must fire.
fn synth(li: usize, b: i64) -> f64 {
    let h = (li as u64 ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0x100_0000_01b3)
        ^ (b as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    let noise = (h % 1024) as f64 / 512.0;
    let base = 20.0 + (li % 23) as f64;
    let hour = b.rem_euclid(BINS_PER_DAY) / 12;
    let evening = li.is_multiple_of(16) && (18..22).contains(&hour);
    base + noise + if evening { 25.0 } else { 0.0 }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over one dense window (presence, min bits, quality flags).
fn window_hash(h: u64, bins: &[Option<f64>], qual: &[u8]) -> u64 {
    let mut h = h;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    };
    for (v, &q) in bins.iter().zip(qual) {
        eat(v.is_some() as u8);
        eat(q);
        if let Some(v) = v {
            for byte in v.to_bits().to_le_bytes() {
                eat(byte);
            }
        }
    }
    h
}

struct ThreadRun {
    threads: usize,
    wall_s: f64,
    hash: u64,
    verdicts: Vec<String>,
    summaries: Vec<(String, u64)>,
}

/// Leg B: one packet-mode run of the toy world — store hash, verdicts, and
/// the fingerprint of every incremental summary the commit path maintained.
fn thread_run(threads: usize, from: i64, to: i64) -> ThreadRun {
    let mut sys = System::new(toy(SEED), SystemConfig::default());
    sys.cfg.threads = threads;
    let started = Instant::now();
    sys.run_packet_mode(from, to);
    let wall_s = started.elapsed().as_secs_f64();
    let mut verdicts: Vec<String> = Vec::new();
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, to);
        verdicts.extend(sys.vps[vi].loss.targets.iter().map(|t| t.far_ip.to_string()));
    }
    verdicts.sort();
    verdicts.dedup();
    let mut summaries = Vec::new();
    for vp in &sys.vps {
        for ((near, far), s) in &vp.summaries {
            summaries.push((format!("{}/{near}/{far}", vp.handle.name), s.fingerprint()));
        }
    }
    summaries.sort();
    ThreadRun { threads, wall_s, hash: sys.store.content_hash(), verdicts, summaries }
}

fn main() {
    let world_name =
        std::env::var("INFER_WORLD").unwrap_or_else(|_| "planet-20k".to_string());
    let days = env_usize("INFER_DAYS", 30);
    let rounds = env_usize("INFER_ROUNDS", BINS_PER_DAY as usize);
    let window_bins = days * BINS_PER_DAY as usize;
    let cfg = LevelShiftConfig::default();

    // --- Build the world: the gt_links roster is the link population. ---
    let t_build = Instant::now();
    let world = build_world(&world_name, SEED).expect("build INFER_WORLD");
    let build_s = t_build.elapsed().as_secs_f64();
    let links = world.gt_links.len();
    assert!(links > 0, "world {world_name} has no ground-truth links");

    // --- Untimed: synthesize `days` of history into the columnar store. ---
    let t_hist = Instant::now();
    let store = Store::new();
    let keys: Vec<SeriesKey> = (0..links)
        .map(|li| {
            SeriesKey::with_tags(
                "tslp",
                &[("vp", "bench"), ("link", &li.to_string()), ("end", "far")],
            )
        })
        .collect();
    let hist_bins = window_bins as i64;
    let mut pts: Vec<Point> = Vec::with_capacity(window_bins);
    for (li, key) in keys.iter().enumerate() {
        pts.clear();
        for b in 0..hist_bins {
            pts.push(Point { t: b * BIN + 11, v: synth(li, b) });
        }
        store.write_batch(key, &pts);
        if li.is_multiple_of(7) {
            // Rate-limit suspicion over the early-morning hours of every
            // fifth day: the detectors must mask these bins on both paths.
            for d in (0..days as i64).step_by(5) {
                let f = (d * BINS_PER_DAY + 24) * BIN;
                store.annotate(key, f, f + 36 * BIN, SUSPECT_RATE_LIMITED);
            }
        }
    }
    let hist_s = t_hist.elapsed().as_secs_f64();

    // --- Backfill one summary per link (the checkpoint-resume path). ---
    let t_back = Instant::now();
    let mut summaries: Vec<LinkSummary> = keys
        .iter()
        .map(|k| LinkSummary::backfilled(&store, k, hist_bins * BIN, window_bins, BIN))
        .collect();
    let backfill_s = t_back.elapsed().as_secs_f64();

    // --- Timed leg 1: incremental maintenance + refresh, per link-round. ---
    let carried0 = manic_obs::registry()
        .counter("manic_inference_summary_verdicts_carried")
        .get();
    let mut congested_hits = 0u64;
    let t_inc = Instant::now();
    for r in 0..rounds {
        let b = hist_bins + r as i64;
        let t0 = b * BIN;
        let annotate_round = r == rounds / 2;
        for (li, (key, s)) in keys.iter().zip(summaries.iter_mut()).enumerate() {
            s.advance_to(t0 + BIN);
            if annotate_round && li.is_multiple_of(7) {
                store.annotate(key, t0, t0 + BIN, SUSPECT_RATE_LIMITED);
                s.observe_flags(t0, t0 + BIN, SUSPECT_RATE_LIMITED);
            }
            let v = synth(li, b);
            store.write(key, t0 + 11, v);
            s.observe_sample(t0 + 11, v);
            let to = s.hi_bin() * BIN;
            congested_hits += s.refresh(to - hist_bins * BIN, to, &cfg) as u64;
        }
    }
    let inc_s = t_inc.elapsed().as_secs_f64();
    let link_rounds = links * rounds;
    let inc_rate = link_rounds as f64 / inc_s;
    let exact_analyses: u64 = summaries.iter().map(|s| s.analyses).sum();
    let carried = manic_obs::registry()
        .counter("manic_inference_summary_verdicts_carried")
        .get()
        - carried0;

    // --- Timed leg 2: the pre-PR baseline — full store rescan + detector
    // per link, sampled and extrapolated to a rate. ---
    let to_f = (hist_bins + rounds as i64) * BIN;
    let from_f = to_f - hist_bins * BIN;
    let base_samples = env_usize("INFER_BASE_SAMPLES", 1000).min(link_rounds).max(1);
    let (mut bins, mut qual) = (Vec::new(), Vec::new());
    let mut base_episodes = 0usize;
    let t_base = Instant::now();
    for i in 0..base_samples {
        let li = (i * 37) % links;
        store.downsample_dense_into(&keys[li], from_f, to_f, BIN, Aggregate::Min, &mut bins);
        store.quality_dense_into(&keys[li], from_f, to_f, BIN, &mut qual);
        base_episodes += detect_level_shifts_masked(&bins, &qual, DEFAULT_REJECT, &cfg).len();
    }
    let base_s = t_base.elapsed().as_secs_f64();
    let base_rate = base_samples as f64 / base_s;
    let speedup = inc_rate / base_rate;

    // --- Verify: the ring IS the store. Dense windows bit-identical for
    // every link (hashed), exact verdicts identical on a spread of links
    // including every congested one. Hard fail on any divergence. ---
    let (mut ring_bins, mut ring_qual) = (Vec::new(), Vec::new());
    let (mut hash_ring, mut hash_store) = (FNV_OFFSET, FNV_OFFSET);
    let mut verdict_links = 0usize;
    for (li, (key, s)) in keys.iter().zip(summaries.iter_mut()).enumerate() {
        assert!(s.can_serve(from_f, to_f), "link {li}: ring cannot serve final window");
        s.dense_into(from_f, to_f, &mut ring_bins, &mut ring_qual);
        store.downsample_dense_into(key, from_f, to_f, BIN, Aggregate::Min, &mut bins);
        store.quality_dense_into(key, from_f, to_f, BIN, &mut qual);
        assert!(
            ring_bins == bins && ring_qual == qual,
            "link {li}: ring diverged from store over [{from_f}, {to_f})"
        );
        hash_ring = window_hash(hash_ring, &ring_bins, &ring_qual);
        hash_store = window_hash(hash_store, &bins, &qual);
        if li.is_multiple_of(5) || li.is_multiple_of(16) {
            let ring_eps = s.analyze_exact(from_f, to_f, &cfg);
            let store_eps = detect_level_shifts_masked(&bins, &qual, DEFAULT_REJECT, &cfg);
            assert!(
                ring_eps == store_eps,
                "link {li}: incremental verdict diverged from batch detection"
            );
            verdict_links += 1;
        }
    }
    assert_eq!(
        hash_ring, hash_store,
        "aggregate dense-window hash diverged between ring and store"
    );

    // --- Leg B: thread-count determinism with summaries in the commit. ---
    let from_b = date_to_sim(Date::new(2017, 3, 1));
    let to_b = from_b + 6 * 3600;
    let truns: Vec<ThreadRun> =
        [1usize, 2, 4, 8].iter().map(|&n| thread_run(n, from_b, to_b)).collect();
    let tbase = &truns[0];
    assert!(!tbase.summaries.is_empty(), "serial run built no link summaries");
    let threads_ok = truns.iter().all(|r| {
        r.hash == tbase.hash && r.verdicts == tbase.verdicts && r.summaries == tbase.summaries
    });

    // --- Report. ---
    let mut txt = String::new();
    let _ = writeln!(
        txt,
        "inference_throughput: {world_name}, seed {SEED:#x}, {links} links, \
         {days}-day window ({window_bins} bins), {rounds} timed rounds"
    );
    let _ = writeln!(
        txt,
        "setup: build {build_s:.2}s, history {hist_s:.2}s ({} pts), backfill {backfill_s:.2}s",
        store.point_count()
    );
    let _ = writeln!(
        txt,
        "incremental: {link_rounds} link-rounds in {inc_s:.3}s = {inc_rate:.0} links/s \
         ({exact_analyses} exact analyses, {carried} carried, {congested_hits} congested hits)"
    );
    let _ = writeln!(
        txt,
        "baseline:    {base_samples} full rescans in {base_s:.3}s = {base_rate:.0} links/s \
         ({base_episodes} episodes)"
    );
    let _ = writeln!(
        txt,
        "speedup: {speedup:.1}x (gate >= {REQUIRED_SPEEDUP}x) — {}",
        if speedup >= REQUIRED_SPEEDUP { "ok" } else { "BELOW GATE" }
    );
    let _ = writeln!(
        txt,
        "verify: {links} dense windows bit-identical (hash {hash_ring:016x}), \
         {verdict_links} verdicts identical"
    );
    for r in &truns {
        let _ = writeln!(
            txt,
            "threads {}: wall {:.2}s hash {:016x} summaries {} {}",
            r.threads,
            r.wall_s,
            r.hash,
            r.summaries.len(),
            if r.hash == tbase.hash && r.summaries == tbase.summaries {
                "ok"
            } else {
                "DIVERGED"
            }
        );
    }

    print!("{txt}"); // ALLOW_PRINT: bench output
    save_result("inference_throughput", &txt);

    let trows: Vec<String> = truns
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"wall_s\": {:.4}, \"store_hash\": \"{:016x}\", \
                 \"summaries\": {}, \"identical_to_serial\": {}}}",
                r.threads,
                r.wall_s,
                r.hash,
                r.summaries.len(),
                r.hash == tbase.hash && r.verdicts == tbase.verdicts
                    && r.summaries == tbase.summaries
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"inference_throughput\",\n  \"world\": \"{world_name}\",\n  \
         \"seed\": \"{SEED:#x}\",\n  \"links\": {links},\n  \"window_days\": {days},\n  \
         \"window_bins\": {window_bins},\n  \"timed_rounds\": {rounds},\n  \
         \"incremental\": {{\"link_rounds\": {link_rounds}, \"wall_s\": {inc_s:.4}, \
         \"links_per_s\": {inc_rate:.2}, \"exact_analyses\": {exact_analyses}, \
         \"carried_verdicts\": {carried}, \"backfill_s\": {backfill_s:.4}}},\n  \
         \"baseline\": {{\"samples\": {base_samples}, \"wall_s\": {base_s:.4}, \
         \"links_per_s\": {base_rate:.2}}},\n  \
         \"speedup\": {speedup:.2},\n  \"required_speedup\": {REQUIRED_SPEEDUP},\n  \
         \"verify\": {{\"dense_links\": {links}, \"dense_hash\": \"{hash_ring:016x}\", \
         \"verdict_links\": {verdict_links}, \"identical\": true}},\n  \
         \"threads_deterministic\": {threads_ok},\n  \"threads\": [\n{}\n  ],\n  \
         \"pass\": {}\n}}\n",
        trows.join(",\n"),
        threads_ok && speedup >= REQUIRED_SPEEDUP
    );
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_inference_throughput.json"), &json)
        .expect("write BENCH_inference_throughput.json");

    assert!(
        threads_ok,
        "store hash / verdicts / summary fingerprints diverged across thread counts"
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "incremental inference speedup {speedup:.1}x below the {REQUIRED_SPEEDUP}x gate"
    );
}
