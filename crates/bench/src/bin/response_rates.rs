//! §3.2's operational health claim: "the response rate to our TSLP probes
//! was greater than 90% for many of our VPs." One simulated day of
//! packet-mode probing across every US vantage point, reporting per-VP TSLP
//! response rates.

use manic_core::{System, SystemConfig};
use manic_probing::tslp::ROUND_SECS;
use manic_scenario::worlds::us_broadband;
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn main() {
    let mut sys = System::new(us_broadband(manic_bench::SEED), SystemConfig::default());
    let from = manic_bench::at(2017, 3, 1);
    let to = from + 86_400;
    for vi in 0..sys.vps.len() {
        sys.run_bdrmap_cycle(vi, from);
    }
    let mut sent: BTreeMap<String, usize> = BTreeMap::new();
    let mut answered: BTreeMap<String, usize> = BTreeMap::new();
    let mut t = from;
    while t < to {
        for vp in &mut sys.vps {
            let samples = vp.tslp.probe_round(&sys.world.net, &mut vp.sim, t, &sys.store);
            let s = sent.entry(vp.handle.name.clone()).or_default();
            let a = answered.entry(vp.handle.name.clone()).or_default();
            *s += samples.len();
            *a += samples.iter().filter(|(_, x)| x.rtt_ms.is_some()).count();
        }
        t += ROUND_SECS;
    }
    let mut out = String::from(
        "TSLP response rates — one simulated day of packet-mode probing,\nevery US-world vantage point (section 3.2 reports >90% for many VPs).\n\n",
    );
    let mut above_90 = 0usize;
    for (vp, &s) in &sent {
        let a = answered[vp];
        let rate = 100.0 * a as f64 / s.max(1) as f64;
        if rate > 90.0 {
            above_90 += 1;
        }
        let _ = writeln!(out, "  {vp:<18} {a:>7}/{s:<7} {rate:>6.2}%");
    }
    let _ = writeln!(
        out,
        "\n{} of {} VPs above 90% (rate-limited and flaky border routers pull a\nfew below — the same pathologies the paper's deployment saw).",
        above_90,
        sent.len()
    );
    println!("{out}");
    manic_bench::save_result("response_rates", &out);
}
