//! Observability overhead check: the whole subsystem must cost <5% on the
//! packet-mode hot path.
//!
//! Runs `System::run_packet_mode` over the same window with recording
//! enabled (the default) and disabled (`manic_obs::set_enabled(false)`, the
//! same kill switch operators get), interleaved to cancel out thermal and
//! cache drift, and reports the relative cost of the enabled runs.

use manic_core::{System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use std::time::Instant;

const HOURS: i64 = 5 * 24;
const PAIRS: usize = 9;

fn run_once(enabled: bool) -> f64 {
    manic_obs::set_enabled(enabled);
    manic_obs::reset_all();
    let mut sys = System::new(toy(1), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 6, 7));
    let start = Instant::now();
    sys.run_packet_mode(from, from + HOURS * 3600);
    start.elapsed().as_secs_f64()
}

fn main() {
    // Measure the recording cost, not terminal I/O: the Info-level stderr
    // echo would time the console, so keep only warnings during the runs.
    manic_obs::journal().set_stderr_level(Some(manic_obs::Level::Warn));
    // Warm-up (page cache, lazy statics) discarded.
    run_once(true);
    run_once(false);

    let mut on = Vec::with_capacity(PAIRS);
    let mut off = Vec::with_capacity(PAIRS);
    for _ in 0..PAIRS {
        on.push(run_once(true));
        off.push(run_once(false));
    }
    manic_obs::set_enabled(true);
    manic_obs::journal().set_stderr_level(Some(manic_obs::Level::Info));

    // The verdict comes from the median of per-pair ratios: each on/off
    // pair runs back-to-back, so slow load drift on a shared machine cancels
    // within a pair instead of biasing one whole arm of the comparison.
    let mut ratios: Vec<f64> =
        on.iter().zip(off.iter()).map(|(a, b)| a / b).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = 100.0 * (ratios[ratios.len() / 2] - 1.0);
    let best_on = on.iter().cloned().fold(f64::INFINITY, f64::min);
    let best_off = off.iter().cloned().fold(f64::INFINITY, f64::min);
    let verdict = if overhead_pct < 5.0 { "PASS" } else { "FAIL" };

    let mut out = String::from(
        "Observability overhead — run_packet_mode, toy world, 5-day window\n\n",
    );
    out.push_str(&format!(
        "  recording enabled:  {:.4} s (best of {PAIRS})\n",
        best_on
    ));
    out.push_str(&format!(
        "  recording disabled: {:.4} s (best of {PAIRS})\n",
        best_off
    ));
    out.push_str(&format!(
        "  overhead:           {overhead_pct:+.2}%  (median pair ratio, budget <5%)  [{verdict}]\n"
    ));
    print!("{out}");
    manic_bench::save_result("obs_overhead", &out);
    if verdict == "FAIL" {
        std::process::exit(1);
    }
}
