//! What-if: capacity upgrade at the most congested interconnection.
//!
//! §8 frames the system as leverage for peering negotiations and regulatory
//! oversight: persistent congestion that a capacity augment would resolve.
//! This experiment re-runs the world with the CenturyLink–Google
//! interconnection doubled in capacity from July 2017 (demand/capacity
//! halves) and shows the inference pipeline independently reporting the
//! resolution — the monitoring story a third party would tell a regulator.

use manic_analysis::temporal::fig7_series;
use manic_analysis::Study;
use manic_core::{run_longitudinal, LongitudinalConfig, System, SystemConfig};
use manic_scenario::schedule::CongestionEpisode;
use manic_scenario::worlds::{install_congestion, us_asns, us_broadband, us_schedule};
use std::fmt::Write as _;

/// Month the upgrade lands (July 2017).
const UPGRADE_MONTH: u32 = 18;

fn run_study(schedule: &[CongestionEpisode]) -> Study {
    let mut world = us_broadband(manic_bench::SEED);
    install_congestion(&mut world, schedule);
    let mut sys = System::new(world, SystemConfig::default());
    let (from, to) = manic_bench::study_window();
    let links = run_longitudinal(&mut sys, &LongitudinalConfig::new(from, to));
    Study::new(links, from, to)
}

fn main() {
    // Baseline schedule vs. one where every CenturyLink-Google episode ends
    // at the upgrade month (capacity doubled => utilization halves => the
    // diurnal peak no longer reaches the onset).
    let baseline = us_schedule();
    let upgraded: Vec<CongestionEpisode> = baseline
        .iter()
        .filter_map(|e| {
            if e.ap == us_asns::CENTURYLINK && e.tcp == us_asns::GOOGLE {
                if e.start_month >= UPGRADE_MONTH {
                    return None;
                }
                let mut e = e.clone();
                e.end_month = e.end_month.min(UPGRADE_MONTH);
                Some(e)
            } else {
                Some(e.clone())
            }
        })
        .collect();

    let before = run_study(&baseline);
    let after = run_study(&upgraded);

    let mut out = String::from(
        "What-if — CenturyLink-Google interconnection capacity doubled in July\n2017. Third-party monthly congestion view (Figure 7 row), before and\nafter, as a regulator tracking the §8 policy story would see it.\n\n",
    );
    let months = manic_scenario::worlds::STUDY_START_MONTH..manic_scenario::worlds::STUDY_END_MONTH;
    let s_before = fig7_series(&before, us_asns::CENTURYLINK, us_asns::GOOGLE, months.clone());
    let s_after = fig7_series(&after, us_asns::CENTURYLINK, us_asns::GOOGLE, months.clone());
    let _ = writeln!(out, "as deployed:    {}", s_before.render());
    let _ = writeln!(out, "with upgrade:   {}", s_after.render());
    let post_before: f64 = months
        .clone()
        .filter(|&m| m >= UPGRADE_MONTH)
        .filter_map(|m| s_before.value_at(m))
        .sum::<f64>()
        / (24 - UPGRADE_MONTH) as f64;
    let post_after: f64 = months
        .clone()
        .filter(|&m| m >= UPGRADE_MONTH)
        .filter_map(|m| s_after.value_at(m))
        .sum::<f64>()
        / (24 - UPGRADE_MONTH) as f64;
    let _ = writeln!(
        out,
        "\nPost-upgrade mean congested day-links: {post_before:.1}% -> {post_after:.1}%.\nThe pipeline reports the resolution without any knowledge of the upgrade —\nexactly the third-party transparency §8 argues for.",
    );
    assert!(
        post_after < post_before / 4.0,
        "upgrade must be visible to the inference pipeline"
    );
    println!("{out}");
    manic_bench::save_result("whatif_upgrade", &out);
}
