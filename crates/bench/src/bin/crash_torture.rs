//! Crash-torture harness for the durability subsystem.
//!
//! Phase 1 — SIGKILL trials: run `manic run --data-dir` as a child process,
//! kill it with SIGKILL at a seeded fraction of the expected wall time, then
//! `manic recover` and `manic run --resume` the same directory. A trial
//! passes when the resumed run's final `store:` and `verdicts:` summary
//! lines are byte-identical to an uninterrupted reference run — the store
//! hash covers every point, so a single lost or duplicated sample fails the
//! trial. Durability policies and checkpoint cadences are cycled across
//! trials; kills that land before the first checkpoint must fall back to a
//! fresh start and still converge.
//!
//! Phase 2 — durability overhead: interleaved in-memory / durable pairs
//! (the `obs_overhead` methodology) over the same measurement window, with
//! the default `every-64` group-commit policy. Mid-run checkpoints are
//! disabled so the number isolates the per-round WAL streaming cost;
//! checkpoint cost is reported separately (it is a cadence the operator
//! trades against recovery time, not a per-round tax). Budget: <5%.
//!
//! Exits non-zero on any trial violation or an overhead budget FAIL.

use manic_core::{Durable, DurabilityConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_probing::tslp::ROUND_SECS;
use manic_scenario::worlds::toy;
use manic_tsdb::FsyncPolicy;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const TRIALS: usize = 50;
const TRIAL_HOURS: i64 = 168;
const OVERHEAD_HOURS: i64 = 5 * 24;
const OVERHEAD_PAIRS: usize = 7;
const POLICIES: [&str; 4] = ["always", "every-8", "every-64", "never"];
const CADENCES: [u64; 3] = [6, 12, 48];

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform-ish fraction in [0.05, 0.95] from a trial seed.
fn kill_fraction(seed: u64) -> f64 {
    0.05 + 0.90 * (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

fn manic_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let bin = me.with_file_name("manic");
    if !bin.is_file() {
        eprintln!(
            "crash_torture: `manic` binary not found at {} — build it first \
             (cargo build --release -p manic-cli)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin
}

/// The machine-parseable summary lines an uninterrupted or resumed run
/// prints: (`store: ...`, `verdicts: ...`).
fn summary_lines(stdout: &str) -> Option<(String, String)> {
    let store = stdout.lines().find(|l| l.starts_with("store:"))?.to_string();
    let verdicts = stdout.lines().find(|l| l.starts_with("verdicts:"))?.to_string();
    Some((store, verdicts))
}

fn grab_field(line: &str, key: &str) -> Option<String> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).map(str::to_string))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct TrialOutcome {
    kind: &'static str,
    policy: &'static str,
    cadence: u64,
    recovery_ms: Option<f64>,
    tail_records: u64,
    tail_torn: u64,
    violation: Option<String>,
}

fn run_trial(
    bin: &PathBuf,
    root: &Path,
    trial: usize,
    reference: &(String, String),
    durable_ref_secs: f64,
) -> TrialOutcome {
    let policy = POLICIES[trial % POLICIES.len()];
    let cadence = CADENCES[trial % CADENCES.len()];
    let dir = root.join(format!("t{trial:02}"));
    let _ = std::fs::remove_dir_all(&dir);
    let seed = manic_bench::SEED ^ trial as u64;
    let frac = kill_fraction(seed);

    let hours = TRIAL_HOURS.to_string();
    let cadence_s = cadence.to_string();
    let dir_s = dir.to_str().expect("utf-8 temp path").to_string();
    let fail = |msg: String| TrialOutcome {
        kind: "failed",
        policy,
        cadence,
        recovery_ms: None,
        tail_records: 0,
        tail_torn: 0,
        violation: Some(msg),
    };

    // Spawn the run that will be killed. The binary is spawned directly (no
    // shell) so the SIGKILL hits the measurement process, not a wrapper.
    let mut child = match Command::new(bin)
        .args([
            "run", "--hours", &hours, "--data-dir", &dir_s, "--durability", policy,
            "--checkpoint-every", &cadence_s, "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return fail(format!("spawn: {e}")),
    };
    std::thread::sleep(Duration::from_secs_f64(frac * durable_ref_secs));
    let completed_early = matches!(child.try_wait(), Ok(Some(_)));
    let _ = child.kill();
    let _ = child.wait();

    // Recover report: must succeed with an intact hash whenever a checkpoint
    // exists; the torn-tail accounting comes from the same scan the resume
    // path uses.
    let has_checkpoint = dir.join("checkpoint.json").is_file();
    let mut tail_records = 0;
    let mut tail_torn = 0;
    if has_checkpoint {
        let out = Command::new(bin).args(["recover", &dir_s]).output();
        let out = match out {
            Ok(o) => o,
            Err(e) => return fail(format!("recover spawn: {e}")),
        };
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        if !out.status.success() {
            return fail(format!("recover exited {:?}: {text}", out.status.code()));
        }
        if text.contains("HASH MISMATCH") {
            return fail("recover reported HASH MISMATCH".into());
        }
        if let Some(tline) = text.lines().find(|l| l.trim_start().starts_with("wal tail:")) {
            tail_records = grab_field(tline, "records=")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            tail_torn = grab_field(tline, "torn=")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
        }
    }

    // Resume (fresh fallback when the kill landed before the first
    // checkpoint) and require byte-identical summary lines vs the reference.
    // The resume leg uses a long checkpoint cadence: the trial's (possibly
    // aggressive) cadence matters for where the kill can land, not for the
    // correctness of the replayed continuation, and a full-store snapshot
    // every 6 rounds makes 50 trials crawl.
    let out = match Command::new(bin)
        .args([
            "run", "--hours", &hours, "--data-dir", &dir_s, "--resume",
            "--durability", "every-64", "--checkpoint-every", "1000", "--quiet",
        ])
        .output()
    {
        Ok(o) => o,
        Err(e) => return fail(format!("resume spawn: {e}")),
    };
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    if !out.status.success() {
        return fail(format!("resume exited {:?}", out.status.code()));
    }
    let Some((store, verdicts)) = summary_lines(&text) else {
        return fail("resume printed no summary lines".into());
    };
    if store != reference.0 {
        return fail(format!("store mismatch: {store:?} != {:?}", reference.0));
    }
    if verdicts != reference.1 {
        return fail(format!("verdict mismatch: {verdicts:?} != {:?}", reference.1));
    }
    let resumed_line = text.lines().find(|l| l.starts_with("resumed:"));
    let recovery_ms = resumed_line
        .and_then(|l| grab_field(l, "recovered_in_ms="))
        .and_then(|v| v.parse().ok());
    if let Some(l) = resumed_line {
        if grab_field(l, "hash_ok=").as_deref() == Some("false") {
            return fail("resume snapshot hash_ok=false".into());
        }
    }

    let kind = if completed_early {
        "completed-before-kill"
    } else if resumed_line.is_some() {
        "resumed-from-checkpoint"
    } else {
        "fresh-fallback"
    };
    let _ = std::fs::remove_dir_all(&dir);
    TrialOutcome { kind, policy, cadence, recovery_ms, tail_records, tail_torn, violation: None }
}

/// One in-memory measurement window: plain `run_packet_mode` rounds.
fn run_in_memory() -> f64 {
    let mut sys = System::new(toy(1), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 6, 7));
    let to = from + OVERHEAD_HOURS * 3600;
    let start = Instant::now();
    let mut t = from;
    while t < to {
        sys.run_packet_mode(t, t + ROUND_SECS);
        t += ROUND_SECS;
    }
    start.elapsed().as_secs_f64()
}

/// The same window under the default `every-64` WAL, timing only the
/// measurement rounds (`run_window`); the final checkpoint is outside the
/// timed region.
fn run_durable(dir: &PathBuf) -> (f64, f64) {
    let _ = std::fs::remove_dir_all(dir);
    let sys = System::new(toy(1), SystemConfig::default());
    let from = date_to_sim(Date::new(2016, 6, 7));
    let to = from + OVERHEAD_HOURS * 3600;
    let cfg = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(64),
        checkpoint_every_rounds: u64::MAX,
        ..DurabilityConfig::default()
    };
    let mut sys = sys;
    let mut d = Durable::create(&sys, "toy", 1, dir, from, to, cfg).expect("create durable");
    let start = Instant::now();
    d.run_window(&mut sys, to, &|| false).expect("run_window");
    let rounds_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    d.finalize(&sys, to).expect("finalize");
    let checkpoint_secs = start.elapsed().as_secs_f64();
    drop(d);
    let _ = std::fs::remove_dir_all(dir);
    (rounds_secs, checkpoint_secs)
}

fn main() {
    let bin = manic_binary();
    let root = std::env::temp_dir().join(format!("manic-crash-torture-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("create temp root");
    let mut out = String::new();
    let mut violations: Vec<String> = Vec::new();

    // Uninterrupted references: the in-memory run defines the expected
    // summary; a durable run must already match it (WAL on, no crash).
    let hours = TRIAL_HOURS.to_string();
    let ref_out = Command::new(&bin)
        .args(["run", "--hours", &hours, "--quiet"])
        .output()
        .expect("reference run");
    assert!(ref_out.status.success(), "reference run failed");
    let reference = summary_lines(&String::from_utf8_lossy(&ref_out.stdout))
        .expect("reference run printed no summary");

    let dref_dir = root.join("durable-ref");
    let dref_start = Instant::now();
    let dref_out = Command::new(&bin)
        .args([
            "run", "--hours", &hours, "--data-dir", dref_dir.to_str().unwrap(),
            "--checkpoint-every", "1000", "--quiet",
        ])
        .output()
        .expect("durable reference run");
    let durable_ref_secs = dref_start.elapsed().as_secs_f64();
    assert!(dref_out.status.success(), "durable reference run failed");
    let dref = summary_lines(&String::from_utf8_lossy(&dref_out.stdout))
        .expect("durable reference printed no summary");
    let durable_matches = dref == reference;
    if !durable_matches {
        violations.push(format!(
            "uninterrupted durable run diverged from in-memory run: {dref:?} vs {reference:?}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dref_dir);

    out.push_str(&format!(
        "Crash torture — {TRIALS} SIGKILL trials, toy world, {TRIAL_HOURS} h window\n\n\
         reference:        {}\n\
         reference:        {}\n\
         durable == in-memory (uninterrupted): {}\n\n",
        reference.0,
        reference.1,
        if durable_matches { "yes" } else { "NO" },
    ));

    // Phase 1: the kill loop.
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    let mut recovery: Vec<f64> = Vec::new();
    let mut tail_records = 0u64;
    let mut tail_torn = 0u64;
    for trial in 0..TRIALS {
        let o = run_trial(&bin, &root, trial, &reference, durable_ref_secs);
        if let Some(v) = &o.violation {
            violations.push(format!(
                "trial {trial} ({} ckpt-every {}): {v}",
                o.policy, o.cadence
            ));
        }
        match kinds.iter_mut().find(|(k, _)| *k == o.kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((o.kind, 1)),
        }
        if let Some(ms) = o.recovery_ms {
            recovery.push(ms);
        }
        tail_records += o.tail_records;
        tail_torn += o.tail_torn;
    }
    kinds.sort_by_key(|k| std::cmp::Reverse(k.1));
    out.push_str("trial outcomes:\n");
    for (k, n) in &kinds {
        out.push_str(&format!("  {k:24} {n}\n"));
    }
    out.push_str(&format!(
        "  discarded WAL tail:      {tail_records} records across trials ({tail_torn} torn, all truncated)\n"
    ));
    recovery.sort_by(|a, b| a.partial_cmp(b).unwrap());
    out.push_str(&format!(
        "recovery time:    p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms ({} resumed trials)\n\n",
        percentile(&recovery, 0.50),
        percentile(&recovery, 0.90),
        percentile(&recovery, 0.99),
        recovery.len(),
    ));

    // Phase 2: durability overhead, interleaved pairs.
    let ov_dir = root.join("overhead");
    run_in_memory();
    run_durable(&ov_dir); // warm-up pair discarded
    let mut ratios = Vec::with_capacity(OVERHEAD_PAIRS);
    let mut best_mem = f64::INFINITY;
    let mut best_dur = f64::INFINITY;
    let mut checkpoints = Vec::with_capacity(OVERHEAD_PAIRS);
    for _ in 0..OVERHEAD_PAIRS {
        let mem = run_in_memory();
        let (dur, ckpt) = run_durable(&ov_dir);
        best_mem = best_mem.min(mem);
        best_dur = best_dur.min(dur);
        ratios.push(dur / mem);
        checkpoints.push(ckpt);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    checkpoints.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let overhead_pct = 100.0 * (ratios[ratios.len() / 2] - 1.0);
    let overhead_ok = overhead_pct < 5.0;
    if !overhead_ok {
        violations.push(format!("durability overhead {overhead_pct:+.2}% breaches the 5% budget"));
    }
    out.push_str(&format!(
        "durability overhead — measurement rounds, toy world, {OVERHEAD_HOURS} h window, every-64:\n\
         \x20 in-memory rounds:  {best_mem:.4} s (best of {OVERHEAD_PAIRS})\n\
         \x20 durable rounds:    {best_dur:.4} s (best of {OVERHEAD_PAIRS})\n\
         \x20 overhead:          {overhead_pct:+.2}%  (median pair ratio, budget <5%)  [{}]\n\
         \x20 checkpoint cost:   {:.1} ms median for the full-store snapshot (amortized by cadence, excluded from round timing)\n\n",
        if overhead_ok { "PASS" } else { "FAIL" },
        checkpoints[checkpoints.len() / 2] * 1e3,
    ));

    out.push_str(&format!("violations: {}\n", violations.len()));
    for v in &violations {
        out.push_str(&format!("  - {v}\n"));
    }
    out.push_str(&format!(
        "verdict: {}\n",
        if violations.is_empty() { "PASS" } else { "FAIL" }
    ));

    print!("{out}");
    manic_bench::save_result("crash_torture", &out);
    let _ = std::fs::remove_dir_all(&root);
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
