//! Chaos sweep: inference quality under escalating fault load.
//!
//! Runs the longitudinal pipeline over worlds with a generated chaos
//! schedule (interface silence, router reboots, rate-limit injection, route
//! flaps, renumbering, VP retirement, clock skew) at increasing intensity,
//! and reports precision/recall of congested-pair detection against the
//! scripted ground truth. The robustness claim under test: faults cost
//! *coverage* (recall), never *correctness* (precision) — a degraded
//! measurement yields no inference, not a false one.
//!
//! Default: the toy world, five intensities, three seeds each (seconds).
//! Set `CHAOS_FULL=1` to also sweep the full US-broadband world (minutes).

use manic_analysis::render::text_table;
use manic_core::{run_longitudinal, LinkDays, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date, SECS_PER_DAY};
use manic_netsim::{AsNumber, FaultSchedule};
use manic_scenario::worlds::{toy, toy_asns, us_schedule};
use manic_scenario::World;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// A merged link counts as "inferred congested" with at least this many
/// congested day-links at the §6 4% bar.
const MIN_CONGESTED_DAYS: usize = 5;

struct Counts {
    observed_pairs: usize,
    tp: usize,
    fp: usize,
    fn_: usize,
}

impl Counts {
    fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }
    fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

fn anchor(world: &World, asn: AsNumber) -> AsNumber {
    world.artifacts.siblings(asn).into_iter().min().unwrap_or(asn)
}

fn pair(world: &World, a: AsNumber, b: AsNumber) -> (AsNumber, AsNumber) {
    let (a, b) = (anchor(world, a), anchor(world, b));
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Score inferred links against the ground-truth set of congested AS pairs.
fn score(world: &World, links: &[LinkDays], gt: &BTreeSet<(AsNumber, AsNumber)>) -> Counts {
    let mut observed: BTreeSet<(AsNumber, AsNumber)> = BTreeSet::new();
    let mut predicted: BTreeSet<(AsNumber, AsNumber)> = BTreeSet::new();
    for l in links {
        let p = pair(world, l.host_as, l.neighbor_as);
        if l.observed_days() > 0 {
            observed.insert(p);
        }
        if l.congested_days(0.04) >= MIN_CONGESTED_DAYS {
            predicted.insert(p);
        }
    }
    let tp = predicted.intersection(gt).count();
    let fp = predicted.len() - tp;
    // Recall is over ground-truth pairs the run could still observe at all:
    // chaos that erases a pair's visibility entirely moves it out of the
    // denominator (coverage loss is reported via `observed_pairs`).
    let fn_ = gt.iter().filter(|p| observed.contains(*p) && !predicted.contains(*p)).count();
    Counts { observed_pairs: observed.len(), tp, fp, fn_ }
}

fn run_world(
    mut sys: System,
    from: i64,
    to: i64,
    seed: u64,
    intensity: f64,
    gt: &BTreeSet<(AsNumber, AsNumber)>,
) -> Counts {
    let vp_routers: Vec<_> = sys.world.vps.iter().map(|v| v.router).collect();
    // Chaos starts a day in so probing-state construction sees the world
    // (cold-start failures are exercised by tests/fault_recovery.rs).
    let chaos = FaultSchedule::chaos(
        seed,
        intensity,
        &sys.world.net.topo,
        &vp_routers,
        from + SECS_PER_DAY,
        to,
    );
    let n_events = chaos.len();
    for &e in chaos.events() {
        sys.world.net.fault.push(e);
    }
    let cfg = LongitudinalConfig::new(from, to);
    let links = run_longitudinal(&mut sys, &cfg);
    let c = score(&sys.world, &links, gt);
    manic_obs::event!(
        manic_obs::INFO, "bench", "chaos_sweep_point", to,
        intensity = intensity,
        seed = seed,
        fault_events = n_events,
        observed_pairs = c.observed_pairs,
        tp = c.tp,
        fp = c.fp,
        false_negatives = c.fn_,
    );
    c
}

fn main() {
    let from = date_to_sim(Date::new(2016, 4, 1));
    let to = from + 60 * SECS_PER_DAY;
    let mut out = String::from(
        "Chaos sweep — congested-pair precision/recall vs fault intensity\n\
         (toy world, 60 days, 3 chaos seeds per intensity)\n\n",
    );
    let mut table = vec![vec![
        "Intensity".to_string(),
        "Obs. pairs".to_string(),
        "TP".to_string(),
        "FP".to_string(),
        "FN".to_string(),
        "Precision".to_string(),
        "Recall".to_string(),
    ]];
    for &intensity in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let (mut obs, mut tp, mut fp, mut fn_) = (0, 0, 0, 0);
        for seed in [11u64, 22, 33] {
            let sys = System::new(toy(5), SystemConfig::default());
            let gt: BTreeSet<_> =
                [pair(&sys.world, toy_asns::ACME, toy_asns::CDNCO)].into_iter().collect();
            let c = run_world(sys, from, to, seed, intensity, &gt);
            obs += c.observed_pairs;
            tp += c.tp;
            fp += c.fp;
            fn_ += c.fn_;
        }
        let agg = Counts { observed_pairs: obs, tp, fp, fn_ };
        table.push(vec![
            format!("{intensity:.2}"),
            obs.to_string(),
            tp.to_string(),
            fp.to_string(),
            fn_.to_string(),
            format!("{:.2}", agg.precision()),
            format!("{:.2}", agg.recall()),
        ]);
    }
    out.push_str(&text_table(&table));
    out.push_str(
        "\nPrecision holds at 1.00 across the sweep: faults silence links\n\
         (fewer observed pairs / lower recall at high intensity) but never\n\
         fabricate congestion on clean ones.\n",
    );

    if std::env::var("CHAOS_FULL").is_ok_and(|v| v == "1") {
        let _ = writeln!(out, "\nUS-broadband world, §6 window, intensity 0.50:");
        let mut sys = manic_bench::us_system();
        let gt: BTreeSet<_> = us_schedule()
            .iter()
            .map(|e| pair(&sys.world, e.ap, e.tcp))
            .collect();
        let (sfrom, sto) = manic_bench::study_window();
        let vp_routers: Vec<_> = sys.world.vps.iter().map(|v| v.router).collect();
        let chaos = FaultSchedule::chaos(
            manic_bench::SEED,
            0.5,
            &sys.world.net.topo,
            &vp_routers,
            sfrom + SECS_PER_DAY,
            sto,
        );
        for &e in chaos.events() {
            sys.world.net.fault.push(e);
        }
        let cfg = LongitudinalConfig::new(sfrom, sto);
        let links = run_longitudinal(&mut sys, &cfg);
        let c = score(&sys.world, &links, &gt);
        let _ = writeln!(
            out,
            "  observed pairs {}  tp {}  fp {}  fn {}  precision {:.2}  recall {:.2}",
            c.observed_pairs,
            c.tp,
            c.fp,
            c.fn_,
            c.precision(),
            c.recall()
        );
    }

    println!("{out}");
    manic_bench::save_result("chaos_sweep", &out);
}
