//! Ablation: level-shift parameters (§4.1 design choices).
//!
//! The paper runs the detector with cut-off length l = 12 five-minute bins
//! (30-minute minimum shift) and Huber P = 1. This harness sweeps both on a
//! synthetic week containing known shifts plus slow-path outlier spikes,
//! reporting hit rate, false positives, and boundary error.
//!
//! ```text
//! cargo run --release -p manic-bench --bin ablation_levelshift
//! ```

use manic_inference::{detect_level_shifts, LevelShiftConfig};
use manic_netsim::noise;
use std::fmt::Write as _;

/// A synthetic week of 5-minute min-filtered bins: base ripple, two planted
/// 3-hour shifts per day, and isolated slow-path spikes.
fn week(seed: u64) -> (Vec<Option<f64>>, Vec<(usize, usize)>) {
    let bins = 7 * 288;
    let mut series = Vec::with_capacity(bins);
    let mut truth = Vec::new();
    for day in 0..7 {
        let start = day * 288 + 252; // 21:00
        truth.push((start, start + 36)); // 3 hours
    }
    for i in 0..bins {
        let mut v = 20.0 + noise::uniform(seed, 1, i as u64) * 0.8;
        if truth.iter().any(|&(lo, hi)| i >= lo && i < hi) {
            v += 35.0;
        }
        // ~1% of bins are isolated slow-path outliers.
        if noise::bernoulli(seed, 2, i as u64, 0.01) {
            v += 80.0;
        }
        series.push(Some(v));
    }
    (series, truth)
}

fn main() {
    let (series, truth) = week(0xAB1A);
    let mut out = String::from(
        "Ablation — level-shift parameters on a synthetic week\n\
         (7 planted 3-hour shifts of +35 ms, 1% isolated +80 ms outliers).\n\n",
    );
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:>9} {:>10} {:>14}",
        "l", "P", "detected", "spurious", "boundary err"
    );
    for (l, p) in [
        (6, 1.0),
        (12, 1.0), // the paper's operating point
        (24, 1.0),
        (48, 1.0),
        (12, 0.5),
        (12, 3.0),
        (12, 5.0),
    ] {
        let cfg = LevelShiftConfig { l, p, alpha: 0.05 };
        let eps = detect_level_shifts(&series, &cfg);
        // A truth window counts as detected when any episode overlaps it;
        // an episode is spurious when it overlaps no truth window. Boundary
        // error is scored on episodes anchored near one truth start.
        let overlaps = |e: &manic_inference::Episode, lo: usize, hi: usize| e.start < hi && e.end > lo;
        let detected = truth
            .iter()
            .filter(|&&(lo, hi)| eps.iter().any(|e| overlaps(e, lo, hi)))
            .count();
        let spurious = eps
            .iter()
            .filter(|e| !truth.iter().any(|&(lo, hi)| overlaps(e, lo, hi)))
            .count();
        let mut boundary = 0i64;
        let mut matched = 0i64;
        for e in &eps {
            if let Some(&(lo, hi)) = truth
                .iter()
                .find(|&&(lo, _)| (e.start as i64 - lo as i64).abs() <= 48)
            {
                boundary += (e.start as i64 - lo as i64).abs() + (e.end as i64 - hi as i64).abs();
                matched += 1;
            }
        }
        let _ = writeln!(
            out,
            "{:<6} {:<6} {:>7}/7 {:>10} {:>11} bins",
            l,
            p,
            detected,
            spurious,
            if matched > 0 { boundary / matched } else { -1 },
        );
    }
    out.push_str(
        "\nReading: this series is adversarial (1% isolated +80 ms spikes inflate the\n\
         variance estimate and attract exploratory splits). No spurious episodes at\n\
         any setting. Very small l fragments on noise and misses episodes; very\n\
         large l catches everything but smears boundaries by hours. The paper's\n\
         l=12 / P=1 point detects nearly all episodes at the detector's promised\n\
         30-minute granularity; in the system it is a *trigger* for reactive loss\n\
         probing (section 3.3), where a missed episode on one day simply triggers\n\
         on the next recurrence.\n",
    );
    println!("{out}");
    manic_bench::save_result("ablation_levelshift", &out);
}
