//! Run every paper-artifact experiment and save results under `results/`.
use manic_bench::experiments as exp;

fn section(title: &str, body: &str, file: &str) {
    println!("\n================================================================");
    println!("== {title}");
    println!("================================================================\n");
    println!("{body}");
    manic_bench::save_result(file, body);
}

fn main() {
    // The §6 longitudinal family shares one study run.
    let mut sys = manic_bench::us_system();
    let (study, out_data) = manic_bench::run_us_study(&mut sys);
    section("Table 3", &exp::longitudinal::run_table3(&study, &sys.world), "table3_overview");
    section("Census (sec. 6 intro)", &exp::longitudinal::run_census(&study, &sys), "census");
    section("Table 4", &exp::longitudinal::run_table4(&study, &sys.world), "table4_matrix");
    section("Figure 7", &exp::longitudinal::run_fig7(&study), "fig7_temporal");
    section("Figure 8", &exp::longitudinal::run_fig8(&study), "fig8_degree");
    section("Figure 9", &exp::longitudinal::run_fig9(&out_data), "fig9_comcast_hours");
    section(
        "Figure 9 companion (link-local time)",
        &exp::longitudinal::run_fig9_link_time(&out_data, &sys.world),
        "fig9_link_time",
    );
    drop(sys);

    section("Figure 3", &exp::fig3::run(), "fig3_timeseries");
    section("Table 2", &exp::ndt::run(), "table2_ndt");
    section("Figure 6", &exp::ndt::run_fig6(), "fig6_ndt_timeseries");
    let (fig4, fig5) = exp::youtube::run();
    section("Figure 4", &fig4, "fig4_youtube_cdfs");
    section("Figure 5", &fig5, "fig5_failure_rates");
    section("Table 1", &exp::table1::run(), "table1_loss_validation");
    section("Section 5.4", &exp::operator::run(), "sec54_operator_validation");
    println!("\nAll experiments complete; outputs saved under results/.");
    println!("Surveys and ablations have their own binaries: asymmetry_survey,");
    println!("response_rates, ablation_autocorr, ablation_levelshift, export_world.");
}
