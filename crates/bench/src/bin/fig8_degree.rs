//! Regenerate Figure 8 (monthly mean congestion to Google and Tata).
fn main() {
    let mut sys = manic_bench::us_system();
    let (study, _) = manic_bench::run_us_study(&mut sys);
    let out = manic_bench::experiments::longitudinal::run_fig8(&study);
    println!("{out}");
    manic_bench::save_result("fig8_degree", &out);
}
