//! Regenerate Figure 7 (monthly % congested day-links per pair).
fn main() {
    let mut sys = manic_bench::us_system();
    let (study, _) = manic_bench::run_us_study(&mut sys);
    let out = manic_bench::experiments::longitudinal::run_fig7(&study);
    println!("{out}");
    manic_bench::save_result("fig7_temporal", &out);
}
