//! Regenerate Figure 4 (YouTube throughput/startup CDFs) and Figure 5 data.
fn main() {
    let (fig4, fig5) = manic_bench::experiments::youtube::run();
    println!("{fig4}");
    println!("{fig5}");
    manic_bench::save_result("fig4_youtube_cdfs", &fig4);
    manic_bench::save_result("fig5_failure_rates", &fig5);
}
