//! World sweep: per-world accuracy gates over the generated world library.
//!
//! For each library world this sweep (a) builds it twice and hard-fails on
//! fingerprint divergence, (b) checks the planetary structural floors,
//! (c) measures compile time, peak-RSS proxy, and packet-engine round
//! throughput — including a threads=1 vs threads=N store-hash equality
//! gate — and (d) runs the full longitudinal pipeline over every scenario
//! in the library, scoring congested-pair verdicts against the planted
//! ground truth. Gates: precision >= 0.95 and recall >= 0.90 per scenario.
//!
//! Results go to `results/world_sweep.txt` (+ metrics sidecar) and the
//! machine-readable `BENCH_world_scale.json` at the repo root. Any gate
//! failure exits non-zero, so CI can consume this directly.
//!
//! Default: the `sim-5k` world (CI smoke scale: 5,000 ASes, 32 VPs). Set
//! `WORLD_FULL=1` to also sweep `planet-20k` (20,000 ASes, 200 VPs —
//! minutes). `WORLD_WORLDS=a,b` overrides the world list.

use manic_analysis::render::text_table;
use manic_core::{run_longitudinal, LinkDays, LongitudinalConfig, System, SystemConfig};
use manic_netsim::time::{month_start, SECS_PER_DAY};
use manic_netsim::AsNumber;
use manic_scenario::World;
use manic_worldgen::scenarios::pair_key;
use manic_worldgen::{compile_world, scenario_library, BuiltWorld, STUDY_MONTHS};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

const MIN_CONGESTED_DAYS: usize = 5;
const PRECISION_FLOOR: f64 = 0.95;
const RECALL_FLOOR: f64 = 0.90;

/// Peak resident set size of this process in KiB (Linux `VmHWM`; 0 where
/// /proc is unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().unwrap_or(0);
        }
    }
    0
}

struct Counts {
    observed_pairs: usize,
    tp: usize,
    fp: usize,
    fn_: usize,
}

impl Counts {
    fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 { 1.0 } else { self.tp as f64 / (self.tp + self.fp) as f64 }
    }
    fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 { 1.0 } else { self.tp as f64 / (self.tp + self.fn_) as f64 }
    }
}

/// Score merged links against planted ground truth, mirroring the chaos
/// sweep's rules: predicted = pairs at or above the day-link bar; recall is
/// over plant pairs the run observed at all.
fn score(links: &[LinkDays], gt: &BTreeSet<(AsNumber, AsNumber)>) -> Counts {
    let mut observed: BTreeSet<(AsNumber, AsNumber)> = BTreeSet::new();
    let mut predicted: BTreeSet<(AsNumber, AsNumber)> = BTreeSet::new();
    for l in links {
        let p = pair_key(l.host_as, l.neighbor_as);
        if l.observed_days() > 0 {
            observed.insert(p);
        }
        if l.congested_days(0.04) >= MIN_CONGESTED_DAYS {
            predicted.insert(p);
        }
    }
    let tp = predicted.intersection(gt).count();
    let fp = predicted.len() - tp;
    let fn_ = gt.iter().filter(|p| observed.contains(*p) && !predicted.contains(*p)).count();
    Counts { observed_pairs: observed.len(), tp, fp, fn_ }
}

struct ScenarioResult {
    key: &'static str,
    counts: Counts,
    wall_s: f64,
}

struct WorldReport {
    name: String,
    built: BuiltWorld,
    compile_ms: f64,
    rebuild_fingerprint: u64,
    rounds_per_sec: f64,
    thread_hashes: (u64, u64),
    /// Process-wide `VmHWM` sampled when this world's sweep finished — a
    /// high-water proxy, monotone across the sweep order.
    peak_rss_kb: u64,
    scenarios: Vec<ScenarioResult>,
}

fn study_bounds() -> (i64, i64) {
    let from = month_start(STUDY_MONTHS.start);
    (from, from + 60 * SECS_PER_DAY)
}

/// Six simulated hours of the packet-mode round engine at `threads`
/// workers; returns (rounds/sec, store content hash).
fn throughput_probe(world: World, threads: usize) -> (f64, u64) {
    let mut sys = System::new(world, SystemConfig { threads, ..SystemConfig::default() });
    let (from, _) = study_bounds();
    let started = Instant::now();
    let rounds = sys.run_packet_mode(from, from + 6 * 3600);
    let wall = started.elapsed().as_secs_f64();
    (rounds as f64 / wall.max(1e-9), sys.store.content_hash())
}

fn sweep_world(name: &str, failures: &mut Vec<String>) -> WorldReport {
    let seed = manic_bench::SEED;
    let started = Instant::now();
    let built = compile_world(name, seed).expect("library world compiles");
    let compile_ms = started.elapsed().as_secs_f64() * 1e3;

    // Determinism gate: an independent rebuild must fingerprint identically.
    let rebuild = compile_world(name, seed).expect("library world compiles");
    if rebuild.fingerprint != built.fingerprint {
        failures.push(format!(
            "{name}: fingerprint diverged across rebuilds ({:016x} vs {:016x})",
            built.fingerprint, rebuild.fingerprint
        ));
    }

    // Structural floors for the planetary tier.
    if name.starts_with("planet") {
        let st = &built.stats;
        if st.total_ases < 20_000 || st.vps < 200 || st.interconnects < 5_000 {
            failures.push(format!(
                "{name}: structural floor violated (ases {}, vps {}, interconnects {})",
                st.total_ases, st.vps, st.interconnects
            ));
        }
    }

    // Round-engine throughput, and the cross-thread determinism gate: the
    // same six simulated hours at 1 worker and N workers must land the
    // byte-identical store.
    let steady_world = |key: &str| -> World {
        let mut b = compile_world(name, seed).expect("library world compiles");
        let scenario = scenario_library()
            .into_iter()
            .find(|s| s.key == key)
            .expect("library scenario");
        scenario.install(&mut b.world, seed, STUDY_MONTHS);
        b.world
    };
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let (rps_1, hash_1) = throughput_probe(steady_world("steady"), 1);
    let (rps_n, hash_n) = throughput_probe(steady_world("steady"), threads);
    if hash_1 != hash_n {
        failures.push(format!(
            "{name}: store hash diverged across thread counts (1: {hash_1:016x}, \
             {threads}: {hash_n:016x})"
        ));
    }

    // Accuracy per library scenario.
    let (from, to) = study_bounds();
    let mut scenarios = Vec::new();
    for scenario in scenario_library() {
        let mut b = compile_world(name, seed).expect("library world compiles");
        let planted = scenario.install(&mut b.world, seed, STUDY_MONTHS);
        let mut sys = System::new(b.world, SystemConfig::default());
        let t = Instant::now();
        let cfg = LongitudinalConfig::new(from, to);
        let links = run_longitudinal(&mut sys, &cfg);
        let wall_s = t.elapsed().as_secs_f64();
        let counts = score(&links, &planted.gt);
        if counts.precision() < PRECISION_FLOOR {
            failures.push(format!(
                "{name}/{}: precision {:.3} below {PRECISION_FLOOR}",
                scenario.key,
                counts.precision()
            ));
        }
        if counts.recall() < RECALL_FLOOR {
            failures.push(format!(
                "{name}/{}: recall {:.3} below {RECALL_FLOOR}",
                scenario.key,
                counts.recall()
            ));
        }
        manic_obs::event!(
            manic_obs::INFO, "bench", "world_sweep_point", to,
            world = name.to_string(),
            scenario = scenario.key,
            observed_pairs = counts.observed_pairs,
            tp = counts.tp,
            fp = counts.fp,
            false_negatives = counts.fn_,
        );
        scenarios.push(ScenarioResult { key: scenario.key, counts, wall_s });
    }

    WorldReport {
        name: name.to_string(),
        built,
        compile_ms,
        rebuild_fingerprint: rebuild.fingerprint,
        rounds_per_sec: rps_n.max(rps_1),
        thread_hashes: (hash_1, hash_n),
        peak_rss_kb: peak_rss_kb(),
        scenarios,
    }
}

fn json_report(reports: &[WorldReport], failures: &[String]) -> String {
    let mut j = String::from("{\n  \"bench\": \"world_scale\",\n  \"worlds\": [\n");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            j.push_str(",\n");
        }
        let st = &r.built.stats;
        let _ = write!(
            j,
            "    {{\"world\": \"{}\", \"seed\": {}, \"fingerprint\": \"{:016x}\", \
             \"ases\": {}, \"as_adjacencies\": {}, \"focus_ases\": {}, \
             \"interconnects\": {}, \"vps\": {}, \"compact_graph_bytes\": {}, \
             \"compile_ms\": {:.1}, \"peak_rss_kb\": {}, \"rounds_per_sec\": {:.1}, \
             \"scenarios\": [",
            r.name,
            r.built.seed,
            r.built.fingerprint,
            st.total_ases,
            st.as_adjacencies,
            st.focus_ases,
            st.interconnects,
            st.vps,
            st.graph_mem_bytes,
            r.compile_ms,
            r.peak_rss_kb,
            r.rounds_per_sec,
        );
        for (k, s) in r.scenarios.iter().enumerate() {
            if k > 0 {
                j.push_str(", ");
            }
            let _ = write!(
                j,
                "{{\"key\": \"{}\", \"observed_pairs\": {}, \"tp\": {}, \"fp\": {}, \
                 \"fn\": {}, \"precision\": {:.4}, \"recall\": {:.4}, \"wall_s\": {:.1}}}",
                s.key,
                s.counts.observed_pairs,
                s.counts.tp,
                s.counts.fp,
                s.counts.fn_,
                s.counts.precision(),
                s.counts.recall(),
                s.wall_s,
            );
        }
        j.push_str("]}");
    }
    j.push_str("\n  ],\n  \"failures\": [");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        let _ = write!(j, "\"{}\"", manic_obs::json_escape(f));
    }
    j.push_str("]\n}\n");
    j
}

fn main() {
    let mut worlds: Vec<String> = match std::env::var("WORLD_WORLDS") {
        Ok(list) => list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect(),
        Err(_) => vec!["sim-5k".to_string()],
    };
    if std::env::var("WORLD_FULL").is_ok_and(|v| v == "1")
        && !worlds.iter().any(|w| w == "planet-20k")
    {
        worlds.push("planet-20k".to_string());
    }

    let mut failures: Vec<String> = Vec::new();
    let mut reports = Vec::new();
    for name in &worlds {
        reports.push(sweep_world(name, &mut failures));
    }

    let mut out = String::from(
        "World sweep — planted-ground-truth accuracy over the generated world library\n\
         (60-day studies; gates: precision >= 0.95, recall >= 0.90, identical\n\
         fingerprints across rebuilds, identical stores across thread counts)\n\n",
    );
    let mut table = vec![vec![
        "World".to_string(),
        "Scenario".to_string(),
        "Obs. pairs".to_string(),
        "TP".to_string(),
        "FP".to_string(),
        "FN".to_string(),
        "Precision".to_string(),
        "Recall".to_string(),
        "Wall s".to_string(),
    ]];
    for r in &reports {
        for s in &r.scenarios {
            table.push(vec![
                r.name.clone(),
                s.key.to_string(),
                s.counts.observed_pairs.to_string(),
                s.counts.tp.to_string(),
                s.counts.fp.to_string(),
                s.counts.fn_.to_string(),
                format!("{:.2}", s.counts.precision()),
                format!("{:.2}", s.counts.recall()),
                format!("{:.1}", s.wall_s),
            ]);
        }
    }
    out.push_str(&text_table(&table));
    for r in &reports {
        let st = &r.built.stats;
        let _ = writeln!(
            out,
            "\n{}: {} ASes ({} compiled), {} interconnects, {} VPs, \
             compile {:.0} ms, {:.1} rounds/s, fingerprint {:016x} \
             (rebuild {:016x}), thread hashes {:016x}/{:016x}",
            r.name,
            st.total_ases,
            st.focus_ases,
            st.interconnects,
            st.vps,
            r.compile_ms,
            r.rounds_per_sec,
            r.built.fingerprint,
            r.rebuild_fingerprint,
            r.thread_hashes.0,
            r.thread_hashes.1,
        );
    }
    if failures.is_empty() {
        out.push_str("\nAll gates passed.\n");
    } else {
        out.push_str("\nGATE FAILURES:\n");
        for f in &failures {
            let _ = writeln!(out, "  {f}");
        }
    }

    println!("{out}");
    manic_bench::save_result("world_sweep", &out);
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    std::fs::write(root.join("BENCH_world_scale.json"), json_report(&reports, &failures))
        .expect("write BENCH_world_scale.json");

    if !failures.is_empty() {
        std::process::exit(1);
    }
}
