//! Regenerate Figure 6 (TSLP + NDT time series, Comcast-Tata Link 1).
fn main() {
    let out = manic_bench::experiments::ndt::run_fig6();
    println!("{out}");
    manic_bench::save_result("fig6_ndt_timeseries", &out);
}
