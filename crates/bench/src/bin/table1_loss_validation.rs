//! Regenerate Table 1 (loss-rate validation of congestion inferences).
fn main() {
    let out = manic_bench::experiments::table1::run();
    println!("{out}");
    manic_bench::save_result("table1_loss_validation", &out);
}
