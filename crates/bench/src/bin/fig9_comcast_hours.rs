//! Regenerate Figure 9 (hour-of-day congestion histograms, Comcast VPs).
fn main() {
    let mut sys = manic_bench::us_system();
    let (_, out_data) = manic_bench::run_us_study(&mut sys);
    let out = manic_bench::experiments::longitudinal::run_fig9(&out_data);
    println!("{out}");
    manic_bench::save_result("fig9_comcast_hours", &out);
}
