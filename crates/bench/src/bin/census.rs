//! Regenerate the §6-intro census (neighbors by relationship + exclusion
//! statistic).
fn main() {
    let mut sys = manic_bench::us_system();
    let (study, _) = manic_bench::run_us_study(&mut sys);
    let out = manic_bench::experiments::longitudinal::run_census(&study, &sys);
    println!("{out}");
    manic_bench::save_result("census", &out);
}
