//! Load test for the manic-serve query layer.
//!
//! Answers the serving-tier acceptance questions in-process, with no
//! external tooling: what peak request rate does `/api/links` sustain,
//! what are the tail latencies at the target operating rate, and how much
//! does that query load slow the measurement loop sharing the process?
//!
//! Method: build the toy world, pre-run a few simulated hours so the tsdb
//! and audit trail have real content, publish a snapshot, and start the
//! server on a loopback port. Three phases follow:
//!
//! 1. **baseline** — the measurement loop runs alone; mean round duration
//!    comes from the `manic_core_round_duration_ms` histogram.
//! 2. **peak** — closed-loop clients hammer the server (HTTP/1.1
//!    pipelining, keep-alive) with the sim idle: peak throughput.
//! 3. **paced** — clients offer a fixed target rate (above the 10k req/s
//!    acceptance floor) while the measurement loop runs; reports achieved
//!    RPS, p50/p99/p999 latency, and round-duration degradation vs phase 1.
//!
//! ```text
//! cargo run --release -p manic-bench --bin serve_load
//! ```

use manic_core::{System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_scenario::worlds::toy;
use manic_serve::{ServeConfig, ServeState, Server, SnapshotHub};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Requests per pipelined batch (one client write, one coalesced server
/// write). 24 keeps batches well under a socket buffer.
const BATCH: usize = 24;
const PEAK_CLIENTS: usize = 4;
const PACED_CLIENTS: usize = 2;
/// Offered load for the paced phase — above the 10k req/s acceptance bar.
const TARGET_RPS: u64 = 12_000;
const PEAK_SECS: u64 = 1;
const LOAD_SECS: u64 = 3;
const BASELINE_SECS: u64 = 2;
/// Simulated span pre-run before serving starts.
const WARMUP_SIM_HOURS: i64 = 6;

fn t0() -> i64 {
    date_to_sim(Date::new(2017, 3, 1))
}

/// Consume one `Content-Length`-framed response; returns the status code.
fn read_response(r: &mut BufReader<TcpStream>, scratch: &mut Vec<u8>) -> std::io::Result<u16> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "closed"));
    }
    let status = line.get(9..12).and_then(|s| s.parse().ok()).unwrap_or(0);
    let mut content_len = 0usize;
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "closed"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
            content_len = v.trim().parse().unwrap_or(0);
        }
    }
    scratch.resize(content_len, 0);
    r.read_exact(scratch)?;
    Ok(status)
}

/// One batch of pipelined GETs: mostly `/api/links`, one timeseries query
/// to keep the downsample + response-cache path warm.
fn batch_bytes(ts_path: &str) -> Vec<u8> {
    let mut b = Vec::new();
    for _ in 0..BATCH - 1 {
        b.extend_from_slice(b"GET /api/links HTTP/1.1\r\nHost: l\r\n\r\n");
    }
    b.extend_from_slice(format!("GET {ts_path} HTTP/1.1\r\nHost: l\r\n\r\n").as_bytes());
    b
}

/// Drive one connection with pipelined batches until `stop`. `pace` is the
/// inter-batch interval (None = closed loop). Returns one latency sample
/// per request: the batch round-trip, an upper bound on any single
/// request's server-side latency.
fn run_client(
    addr: SocketAddr,
    batch: Arc<Vec<u8>>,
    pace: Option<Duration>,
    stop: Arc<AtomicBool>,
) -> Vec<u64> {
    let mut lat = Vec::with_capacity(1 << 16);
    let mut conn = connect(addr);
    let mut scratch = Vec::with_capacity(64 * 1024);
    let mut next = Instant::now();
    while !stop.load(Ordering::Acquire) {
        if let Some(interval) = pace {
            let now = Instant::now();
            if now < next {
                std::thread::sleep(next - now);
            } else if now > next + interval * 8 {
                next = now; // fell badly behind: re-anchor, don't burst
            }
            next += interval;
        }
        let started = Instant::now();
        let ok = conn
            .get_mut()
            .write_all(&batch)
            .and_then(|_| {
                for _ in 0..BATCH {
                    let status = read_response(&mut conn, &mut scratch)?;
                    assert_eq!(status, 200, "unexpected status under load");
                }
                Ok(())
            })
            .is_ok();
        if ok {
            let us = started.elapsed().as_micros() as u64;
            lat.extend(std::iter::repeat_n(us, BATCH));
        } else {
            conn = connect(addr);
        }
    }
    lat
}

fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
    let s = TcpStream::connect(addr).expect("connect to serve_load server");
    s.set_nodelay(true).expect("nodelay");
    BufReader::new(s)
}

/// Run `clients` load threads for `secs`; returns (total requests, merged
/// latency samples in µs, wall seconds). The closure runs concurrently on
/// the bench thread (the "sim under load" phase, or nothing).
fn run_load<F: FnOnce()>(
    addr: SocketAddr,
    clients: usize,
    batch: &Arc<Vec<u8>>,
    pace: Option<Duration>,
    secs: u64,
    concurrent: F,
) -> (u64, Vec<u64>, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let (b, s) = (Arc::clone(batch), Arc::clone(&stop));
            std::thread::spawn(move || run_client(addr, b, pace, s))
        })
        .collect();
    let started = Instant::now();
    concurrent();
    while started.elapsed() < Duration::from_secs(secs) {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Release);
    let mut lat = Vec::new();
    for h in handles {
        lat.extend(h.join().expect("client thread"));
    }
    let wall = started.elapsed().as_secs_f64();
    (lat.len() as u64, lat, wall)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Run the measurement loop for `secs` wall seconds starting at sim time
/// `*t`; returns mean round duration (ms) from the manic-obs histogram.
fn run_sim_for(sys: &mut System, t: &mut i64, secs: u64) -> f64 {
    let hist = manic_obs::registry().histogram("manic_core_round_duration_ms");
    let (c0, s0) = (hist.count(), hist.sum_ms());
    let deadline = Instant::now() + Duration::from_secs(secs);
    while Instant::now() < deadline {
        let next = *t + 1800; // six TSLP rounds per quantum
        sys.run_packet_mode(*t, next);
        *t = next;
    }
    let (c1, s1) = (hist.count(), hist.sum_ms());
    if c1 > c0 {
        (s1 - s0) / (c1 - c0) as f64
    } else {
        0.0
    }
}

fn main() {
    // Progress lines would swamp the report; the journal still records.
    manic_obs::journal().set_stderr_level(Some(manic_obs::Level::Warn));

    let mut sys = System::new(toy(42), SystemConfig::default());
    let hub = Arc::new(SnapshotHub::new());
    let store = Arc::clone(&sys.store);

    // Warm up: a few simulated hours of probing so snapshots, audit trail,
    // and timeseries are all non-trivial.
    let from = t0();
    let mut t = from;
    sys.run_packet_mode(from, from + WARMUP_SIM_HOURS * 3600);
    t += WARMUP_SIM_HOURS * 3600;
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, t);
    }
    hub.publish_from(&sys, t, 6 * 3600);

    let cfg = ServeConfig { rate_limit_rps: 0, ..ServeConfig::default() };
    let state = Arc::new(ServeState::new(Arc::clone(&hub), store, &cfg));
    let server = Server::start("127.0.0.1:0", state, &cfg).expect("bind loopback");
    let addr = server.local_addr();
    let far = hub
        .current()
        .links
        .first()
        .map(|l| l.far_ip.to_string())
        .expect("toy world has links");
    let batch = Arc::new(batch_bytes(&format!("/api/link/{far}/timeseries?bin=300&agg=min")));

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("serve_load: http://{addr}, {cores} core(s), batch={BATCH}");

    // Phase 1: measurement loop alone.
    let baseline_ms = run_sim_for(&mut sys, &mut t, BASELINE_SECS);

    // Phase 2: peak throughput, sim idle, closed-loop clients.
    let (peak_n, _, peak_wall) =
        run_load(addr, PEAK_CLIENTS, &batch, None, PEAK_SECS, || {});

    // Phase 3: paced load at TARGET_RPS while the measurement loop runs.
    let interval = Duration::from_nanos(BATCH as u64 * PACED_CLIENTS as u64 * 1_000_000_000
        / TARGET_RPS);
    let mut loaded_ms = 0.0;
    let (paced_n, mut lat, paced_wall) =
        run_load(addr, PACED_CLIENTS, &batch, Some(interval), LOAD_SECS, || {
            loaded_ms = run_sim_for(&mut sys, &mut t, LOAD_SECS);
        });
    server.shutdown();

    lat.sort_unstable();
    let degradation = if baseline_ms > 0.0 {
        100.0 * (loaded_ms - baseline_ms).max(0.0) / baseline_ms
    } else {
        0.0
    };

    println!("peak throughput:   {:>10.0} req/s ({PEAK_CLIENTS} closed-loop clients)",
        peak_n as f64 / peak_wall);
    println!("paced throughput:  {:>10.0} req/s (target {TARGET_RPS}, {PACED_CLIENTS} clients)",
        paced_n as f64 / paced_wall);
    println!("latency p50:       {:>10.3} ms", percentile(&lat, 0.50) as f64 / 1e3);
    println!("latency p99:       {:>10.3} ms", percentile(&lat, 0.99) as f64 / 1e3);
    println!("latency p999:      {:>10.3} ms", percentile(&lat, 0.999) as f64 / 1e3);
    println!("round duration:    {baseline_ms:>10.3} ms alone, {loaded_ms:.3} ms under load");
    println!("round degradation: {degradation:>10.1} %");
    let r = manic_obs::registry();
    println!(
        "server cache:      {:>10} hits / {} misses",
        r.counter_value("manic_serve_cache_hits"),
        r.counter_value("manic_serve_cache_misses"),
    );
}
