//! Regenerate Table 2 (NDT throughput, congested vs uncongested).
fn main() {
    let out = manic_bench::experiments::ndt::run();
    println!("{out}");
    manic_bench::save_result("table2_ndt", &out);
}
