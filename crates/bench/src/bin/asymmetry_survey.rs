//! §7 asymmetry survey: how often do TSLP far-end replies come home over a
//! different interconnection than the one probed?
//!
//! The paper argues this is structurally rare ("for a probe that terminates
//! at the far end of an interconnection, the closest path back to the VP is
//! across that same link. ... Our initial exploration of this case suggests
//! it is rare") and proposes record-route + baseline-delay checks to detect
//! it. This survey runs both checks across every (VP, link) pair of the US
//! world.

use manic_core::{System, SystemConfig};
use manic_probing::asymmetry::check_far_end;
use manic_probing::{trace, VpHandle};
use manic_scenario::worlds::us_broadband;
use std::fmt::Write as _;

fn main() {
    let mut sys = System::new(us_broadband(manic_bench::SEED), SystemConfig::default());
    let t0 = manic_bench::at(2017, 3, 1);
    let mut total = 0usize;
    let mut rr_asym = 0usize;
    let mut baseline_only = 0usize;
    let mut rows = String::new();
    for vi in 0..sys.vps.len() {
        sys.run_bdrmap_cycle(vi, t0);
        let world = &sys.world;
        let vp = &mut sys.vps[vi];
        let handle = VpHandle {
            name: vp.handle.name.clone(),
            router: vp.handle.router,
            addr: vp.handle.addr,
        };
        let tasks = vp.tslp.tasks.clone();
        for task in &tasks {
            let Some(dest) = task.dests.first() else { continue };
            // Re-trace the discovering path and run the RR + baseline check.
            let tr = trace(&world.net, &mut vp.sim, &handle, dest.dst, task.flow_id, t0, 40, 3);
            let Some(report) =
                check_far_end(&world.net, &mut vp.sim, &handle, &tr, dest.far_ttl, t0)
            else {
                continue;
            };
            total += 1;
            if !report.foreign_reply_ifaces.is_empty() {
                rr_asym += 1;
                let _ = writeln!(
                    rows,
                    "  RR-CONFIRMED  {} far {}: foreign reply ifaces {:?}",
                    handle.name, task.far_ip, report.foreign_reply_ifaces
                );
            } else if report.asymmetric {
                baseline_only += 1;
                let _ = writeln!(
                    rows,
                    "  baseline-only {} far {}: gap {:.1} ms (long-haul link)",
                    handle.name,
                    task.far_ip,
                    report.baseline_gap_ms.unwrap_or(f64::NAN)
                );
            }
        }
    }
    let mut out = String::from(
        "Asymmetry survey (section 7) — record-route + baseline-delay checks on\nevery (VP, interdomain link) probing pair of the US world.\n\n",
    );
    let _ = writeln!(
        out,
        "{} probing pairs checked; {} truly asymmetric by record-route ({:.2}%);\n{} additional baseline-delay flags ({:.2}%) are long-haul (remote-peering)\nlinks whose far-minus-near gap is propagation, not a detour — a false-alarm\nmode of the paper's simpler delay heuristic that the RR check resolves.",
        total,
        rr_asym,
        100.0 * rr_asym as f64 / total.max(1) as f64,
        baseline_only,
        100.0 * baseline_only as f64 / total.max(1) as f64
    );
    if rr_asym + baseline_only > 0 {
        out.push_str("\nFlagged pairs:\n");
        out.push_str(&rows);
    }
    out.push_str(
        "\nPaper: \"our initial exploration of this case suggests it is rare\" —\nthe far-end reply's shortest way home is the probed link itself.\n",
    );
    println!("{out}");
    manic_bench::save_result("asymmetry_survey", &out);
}
