//! Disk-torture harness for the storage stack: seeded fault injection
//! against the WAL, checkpoint, and recovery paths.
//!
//! Phase 1 — in-process fault trials: each trial runs a toy-world durable
//! window through a [`FaultVfs`] whose chaos plan injects one fault kind
//! (or all five) on a seeded schedule — EIO, ENOSPC, torn writes, fsync
//! lies, and bit flips — then cuts power mid-window (unsynced page cache
//! dropped, device dead) and recovers the directory with a clean VFS. A
//! seeded subset of trials additionally flips one at-rest bit in the
//! surviving files before recovery. Gates, per trial:
//!
//!   * recovery never panics and never silently diverges: when the resumed
//!     run's final fingerprint differs from the uninterrupted reference,
//!     the recovery path must have FLAGGED the damage
//!     ([`StorageFindings`]: generation fallback, healed snapshot,
//!     quarantined WAL ranges) — except for ENOSPC trials, where shedding
//!     raw samples is the documented degraded mode;
//!   * verdicts outside flagged gaps are preserved: the resumed run's
//!     congested-link set must be a subset of the reference set (GAP
//!     windows may suppress verdicts, never invent them);
//!   * a directory with no usable checkpoint falls back to a fresh start
//!     that reproduces the reference exactly.
//!
//! Phase 2 — child-process SIGKILL combos: `manic run --storage-faults`
//! children are killed with SIGKILL at a seeded fraction of the run, then
//! `manic recover` (exit 0 clean / 3 recoverable damage) and a clean
//! `manic run --resume` must converge back to the reference summary.
//!
//! `DISK_TORTURE_TRIALS` scales phase 1 (default 50, min 5 so every fault
//! kind still runs); `DISK_TORTURE_CHILD_TRIALS` scales phase 2.
//! Exits non-zero on any violation.

use manic_core::{recover_report_with, resume, Durable, DurabilityConfig, System, SystemConfig};
use manic_netsim::time::{date_to_sim, Date};
use manic_probing::tslp::ROUND_SECS;
use manic_scenario::worlds::toy;
use manic_tsdb::FsyncPolicy;
use manic_vfs::{DiskFaultKind, DiskFaultPlan, FaultStats, FaultVfs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORLD_SEED: u64 = 42;
const TRIAL_HOURS: i64 = 24;
const CHILD_HOURS: i64 = 48;
const POLICIES: [FsyncPolicy; 3] =
    [FsyncPolicy::Always, FsyncPolicy::EveryN(8), FsyncPolicy::EveryN(64)];
const CADENCES: [u64; 3] = [6, 12, 48];
/// Fault mixes cycled across trials: every kind alone, then the full storm.
const MIXES: [&str; 6] = ["eio", "enospc", "torn", "lie", "flip", "all"];

fn env_trials(var: &str, default: usize, min: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(min)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded kill point as a fraction of the window, in [0.15, 0.95].
fn kill_fraction(seed: u64) -> f64 {
    0.15 + 0.80 * (splitmix64(seed) >> 11) as f64 / (1u64 << 53) as f64
}

fn window() -> (i64, i64) {
    let from = date_to_sim(Date::new(2017, 3, 1));
    (from, from + TRIAL_HOURS * 3600)
}

#[derive(PartialEq)]
struct Fingerprint {
    hash: u64,
    series: usize,
    points: usize,
    verdicts: Vec<String>,
}

fn fingerprint(sys: &mut System, from: i64, to: i64) -> Fingerprint {
    let mut verdicts = Vec::new();
    for vi in 0..sys.vps.len() {
        sys.arm_reactive_loss(vi, from, to);
        verdicts.extend(sys.vps[vi].loss.targets.iter().map(|t| t.far_ip.to_string()));
    }
    verdicts.sort();
    verdicts.dedup();
    Fingerprint {
        hash: sys.store.content_hash(),
        series: sys.store.series_count(),
        points: sys.store.point_count(),
        verdicts,
    }
}

fn mix_kinds(mix: &str) -> Vec<DiskFaultKind> {
    if mix == "all" {
        DiskFaultKind::ALL.to_vec()
    } else {
        vec![DiskFaultKind::parse(mix).expect("known mix")]
    }
}

/// Flip one seeded bit in an at-rest file. WAL segments are always fair
/// game; checkpoint metas and snapshots only once a second generation
/// exists to fall back to (a lone generation with a flipped meta is
/// legitimately unrecoverable, which is not what this harness gates).
fn flip_at_rest(dir: &Path, seed: u64) -> Option<String> {
    let mut files: Vec<PathBuf> = Vec::new();
    if let Ok(rd) = std::fs::read_dir(dir.join("wal")) {
        files.extend(rd.flatten().map(|e| e.path()).filter(|p| p.is_file()));
    }
    let metas = std::fs::read_dir(dir)
        .map(|rd| {
            rd.flatten()
                .filter(|e| {
                    e.file_name().to_string_lossy().starts_with("checkpoint-")
                })
                .count()
        })
        .unwrap_or(0);
    if metas >= 2 {
        if let Ok(rd) = std::fs::read_dir(dir) {
            files.extend(rd.flatten().map(|e| e.path()).filter(|p| {
                let name = p.file_name().unwrap_or_default().to_string_lossy().to_string();
                p.is_file()
                    && (name.starts_with("checkpoint") || name.starts_with("store-"))
            }));
        }
    }
    files.sort();
    files.retain(|p| std::fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false));
    if files.is_empty() {
        return None;
    }
    let pick = &files[(splitmix64(seed ^ 0xA7_BE57) as usize) % files.len()];
    let mut bytes = std::fs::read(pick).ok()?;
    let bit = (splitmix64(seed ^ 0xF11B) as usize) % (bytes.len() * 8);
    bytes[bit / 8] ^= 1 << (bit % 8);
    std::fs::write(pick, &bytes).ok()?;
    Some(pick.file_name().unwrap_or_default().to_string_lossy().to_string())
}

struct TrialOutcome {
    kind: &'static str,
    mix: &'static str,
    stats: FaultStats,
    flagged: bool,
    violation: Option<String>,
}

fn fail(mix: &'static str, stats: FaultStats, msg: String) -> TrialOutcome {
    TrialOutcome { kind: "failed", mix, stats, flagged: false, violation: Some(msg) }
}

fn run_fault_trial(root: &Path, trial: usize, reference: &Fingerprint) -> TrialOutcome {
    let mix = MIXES[trial % MIXES.len()];
    let seed = manic_bench::SEED ^ (trial as u64) << 8;
    let (from, to) = window();
    let dir = root.join(format!("t{trial:03}"));
    let _ = std::fs::remove_dir_all(&dir);

    let fvfs = FaultVfs::new(DiskFaultPlan::chaos(seed, &mix_kinds(mix)));
    let cfg = DurabilityConfig {
        fsync: POLICIES[trial % POLICIES.len()],
        checkpoint_every_rounds: CADENCES[trial % CADENCES.len()],
        vfs: Arc::new(fvfs.clone()),
        ..DurabilityConfig::default()
    };

    // Faulted leg: run to a seeded mid-window point, then cut power. Any
    // error from the durable layer is this trial's crash point; a panic is
    // an immediate violation.
    let rounds = (to - from) / ROUND_SECS;
    let kill_round = ((kill_fraction(seed) * rounds as f64) as i64).max(1);
    let mid = from + kill_round * ROUND_SECS;
    let faulted = catch_unwind(AssertUnwindSafe(|| {
        let sys = System::new(toy(WORLD_SEED), SystemConfig::default());
        match Durable::create(&sys, "toy", WORLD_SEED, &dir, from, to, cfg) {
            Err(_) => "create-failed",
            Ok(mut d) => {
                let mut sys = sys;
                let r = d.run_window(&mut sys, mid, &|| false);
                fvfs.power_cut();
                drop(d);
                if r.is_err() {
                    "died-of-fault"
                } else {
                    "power-cut-mid-window"
                }
            }
        }
    }));
    let stats = fvfs.stats();
    let phase = match faulted {
        Ok(p) => p,
        Err(_) => return fail(mix, stats, "PANIC during faulted run".into()),
    };

    let flipped = if splitmix64(seed ^ 0x0DD5).is_multiple_of(3) { flip_at_rest(&dir, seed) } else { None };

    // Recovery leg: clean VFS, long cadence (correctness, not cadence, is
    // under test). The report and the resume walk the same chain; both must
    // agree that the directory is usable.
    let clean = DurabilityConfig {
        fsync: FsyncPolicy::EveryN(64),
        checkpoint_every_rounds: 100_000,
        ..DurabilityConfig::default()
    };
    let report = recover_report_with(&dir, manic_vfs::real());
    let recovered = catch_unwind(AssertUnwindSafe(|| match resume(&dir, Some(clean)) {
        Err(e) => Err(e),
        Ok((mut sys, mut d, info)) => {
            d.run_window(&mut sys, to, &|| false)?;
            d.finalize(&sys, to)?;
            Ok((fingerprint(&mut sys, from, to), info))
        }
    }));
    let recovered = match recovered {
        Ok(r) => r,
        Err(_) => return fail(mix, stats, format!("PANIC during recovery (after {phase})")),
    };
    let _ = std::fs::remove_dir_all(&dir);

    match recovered {
        Err(resume_err) => {
            // Nothing restorable is only legitimate when the report agrees
            // (no generation survived — e.g. create itself died). The
            // fallback is then a fresh deterministic run, which the
            // reference fingerprint already is.
            if report.is_ok() {
                return fail(
                    mix,
                    stats,
                    format!("report succeeded but resume failed: {resume_err}"),
                );
            }
            TrialOutcome { kind: "fresh-fallback", mix, stats, flagged: false, violation: None }
        }
        Ok((fp, info)) => {
            let flagged = !info.storage.clean();
            if let Ok(rep) = &report {
                if rep.storage.clean() != info.storage.clean() {
                    return fail(
                        mix,
                        stats,
                        "recover report and resume disagree on findings".into(),
                    );
                }
            } else {
                return fail(mix, stats, "resume succeeded but report errored".into());
            }
            if fp == *reference {
                let kind = if flagged { "recovered-healed" } else { "recovered-exact" };
                return TrialOutcome { kind, mix, stats, flagged, violation: None };
            }
            // Divergence must be accounted for: flagged findings, or the
            // documented ENOSPC raw-sample shedding.
            let enospc_shed = stats.enospc > 0;
            if !flagged && !enospc_shed {
                return fail(
                    mix,
                    stats,
                    format!(
                        "SILENT divergence (flip={flipped:?}): hash {:016x} != {:016x}, \
                         no findings flagged",
                        fp.hash, reference.hash
                    ),
                );
            }
            if !fp.verdicts.iter().all(|v| reference.verdicts.contains(v)) {
                return fail(
                    mix,
                    stats,
                    format!(
                        "verdicts outside reference: {:?} vs {:?}",
                        fp.verdicts, reference.verdicts
                    ),
                );
            }
            TrialOutcome { kind: "recovered-degraded", mix, stats, flagged, violation: None }
        }
    }
}

// ---------------------------------------------------------------- phase 2

fn manic_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let bin = me.with_file_name("manic");
    if !bin.is_file() {
        eprintln!(
            "disk_torture: `manic` binary not found at {} — build it first \
             (cargo build --release -p manic-cli)",
            bin.display()
        );
        std::process::exit(2);
    }
    bin
}

fn summary_lines(stdout: &str) -> Option<(String, String)> {
    let store = stdout.lines().find(|l| l.starts_with("store:"))?.to_string();
    let verdicts = stdout.lines().find(|l| l.starts_with("verdicts:"))?.to_string();
    Some((store, verdicts))
}

fn verdict_set(line: &str) -> Vec<String> {
    line.rsplit("congested=")
        .next()
        .filter(|s| *s != "-")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_default()
}

fn run_child_trial(
    bin: &PathBuf,
    root: &Path,
    trial: usize,
    reference: &(String, String),
    ref_secs: f64,
) -> TrialOutcome {
    let mix = MIXES[(trial + 5) % MIXES.len()];
    let seed = manic_bench::SEED ^ 0xC41D ^ trial as u64;
    let dir = root.join(format!("c{trial:02}"));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().expect("utf-8 temp path").to_string();
    let hours = CHILD_HOURS.to_string();
    let spec = format!("{seed}:{mix}");
    let stats = FaultStats::default(); // child-side injections are not observable here

    let mut child = match Command::new(bin)
        .args([
            "run", "--hours", &hours, "--data-dir", &dir_s, "--durability", "every-8",
            "--checkpoint-every", "6", "--storage-faults", &spec, "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
    {
        Ok(c) => c,
        Err(e) => return fail(mix, stats, format!("spawn: {e}")),
    };
    std::thread::sleep(Duration::from_secs_f64(kill_fraction(seed) * ref_secs));
    let _ = child.kill();
    let _ = child.wait();

    // `manic recover`: 0 = clean, 3 = recoverable damage, anything else is
    // only acceptable when no checkpoint generation ever landed.
    let out = match Command::new(bin).args(["recover", &dir_s]).output() {
        Ok(o) => o,
        Err(e) => return fail(mix, stats, format!("recover spawn: {e}")),
    };
    let recover_text = String::from_utf8_lossy(&out.stdout).to_string();
    let code = out.status.code();
    let has_meta = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.flatten()
                .any(|e| e.file_name().to_string_lossy().starts_with("checkpoint"))
        })
        .unwrap_or(false);
    let flagged = match code {
        Some(0) => false,
        Some(3) => true,
        _ if !has_meta => {
            // Faults killed the run before any checkpoint: the resume falls
            // back to a fresh start, which must still match the reference.
            false
        }
        other => {
            return fail(
                mix,
                stats,
                format!("recover exited {other:?} with metas present: {recover_text}"),
            )
        }
    };

    // Clean resume: no fault injection, converge to the window's end.
    let out = match Command::new(bin)
        .args([
            "run", "--hours", &hours, "--data-dir", &dir_s, "--resume",
            "--durability", "every-64", "--checkpoint-every", "1000", "--quiet",
        ])
        .output()
    {
        Ok(o) => o,
        Err(e) => return fail(mix, stats, format!("resume spawn: {e}")),
    };
    if !out.status.success() {
        return fail(mix, stats, format!("resume exited {:?}", out.status.code()));
    }
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    let Some((store, verdicts)) = summary_lines(&text) else {
        return fail(mix, stats, "resume printed no summary lines".into());
    };
    let _ = std::fs::remove_dir_all(&dir);

    let exact = store == reference.0 && verdicts == reference.1;
    let enospc_shed = mix == "enospc" || mix == "all";
    if exact {
        let kind = if flagged { "recovered-healed" } else { "recovered-exact" };
        return TrialOutcome { kind, mix, stats, flagged, violation: None };
    }
    if !flagged && !enospc_shed {
        return fail(
            mix,
            stats,
            format!("SILENT divergence: {store:?} != {:?}", reference.0),
        );
    }
    let want = verdict_set(&reference.1);
    if !verdict_set(&verdicts).iter().all(|v| want.contains(v)) {
        return fail(
            mix,
            stats,
            format!("verdicts outside reference: {verdicts:?} vs {:?}", reference.1),
        );
    }
    TrialOutcome { kind: "recovered-degraded", mix, stats, flagged, violation: None }
}

// ------------------------------------------------------------------- main

fn main() {
    let trials = env_trials("DISK_TORTURE_TRIALS", 50, MIXES.len());
    let child_trials = env_trials("DISK_TORTURE_CHILD_TRIALS", 6, 2);
    let root = std::env::temp_dir().join(format!("manic-disk-torture-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("create temp root");
    let mut out = String::new();
    let mut violations: Vec<String> = Vec::new();

    // Reference: one uninterrupted in-memory window. (crash_torture already
    // gates durable == in-memory for clean disks.)
    let (from, to) = window();
    let mut ref_sys = System::new(toy(WORLD_SEED), SystemConfig::default());
    ref_sys.run_packet_mode(from, to);
    let reference = fingerprint(&mut ref_sys, from, to);
    drop(ref_sys);
    out.push_str(&format!(
        "Disk torture — {trials} fault trials + {child_trials} SIGKILL children, \
         toy world, {TRIAL_HOURS} h window\n\n\
         reference: series={} points={} hash={:016x} verdicts={}\n\n",
        reference.series,
        reference.points,
        reference.hash,
        if reference.verdicts.is_empty() { "-".into() } else { reference.verdicts.join(",") },
    ));

    // Phase 1: in-process fault trials.
    let mut kinds: Vec<(&'static str, usize)> = Vec::new();
    let mut injected = FaultStats::default();
    let mut per_mix: Vec<(&'static str, u64)> = MIXES.iter().map(|m| (*m, 0u64)).collect();
    let mut flagged_trials = 0usize;
    for trial in 0..trials {
        let o = run_fault_trial(&root, trial, &reference);
        if let Some(v) = &o.violation {
            violations.push(format!("trial {trial} ({}): {v}", o.mix));
        }
        match kinds.iter_mut().find(|(k, _)| *k == o.kind) {
            Some((_, n)) => *n += 1,
            None => kinds.push((o.kind, 1)),
        }
        injected.eio += o.stats.eio;
        injected.enospc += o.stats.enospc;
        injected.torn += o.stats.torn;
        injected.lies += o.stats.lies;
        injected.flips += o.stats.flips;
        if let Some((_, n)) = per_mix.iter_mut().find(|(m, _)| *m == o.mix) {
            *n += o.stats.total();
        }
        flagged_trials += o.flagged as usize;
    }
    if injected.total() == 0 {
        violations.push("no faults were injected at all — harness is vacuous".into());
    }
    // A full-size run must exercise every fault kind; reduced CI smoke runs
    // only get the total>0 gate (few trials per mix, windows may miss).
    if trials >= 30 {
        for (name, n) in [
            ("eio", injected.eio),
            ("enospc", injected.enospc),
            ("torn", injected.torn),
            ("lie", injected.lies),
            ("flip", injected.flips),
        ] {
            if n == 0 {
                violations.push(format!("fault kind {name} never fired across {trials} trials"));
            }
        }
    }
    kinds.sort_by_key(|k| std::cmp::Reverse(k.1));
    out.push_str("fault-trial outcomes:\n");
    for (k, n) in &kinds {
        out.push_str(&format!("  {k:24} {n}\n"));
    }
    out.push_str(&format!(
        "  corruption flagged:      {flagged_trials} trials (StorageFindings non-clean)\n\
         injected faults: eio={} enospc={} torn={} lies={} flips={} (total {})\n",
        injected.eio, injected.enospc, injected.torn, injected.lies, injected.flips,
        injected.total(),
    ));
    out.push_str("injections by trial mix:\n");
    for (m, n) in &per_mix {
        out.push_str(&format!("  {m:8} {n}\n"));
    }
    out.push('\n');

    // Phase 2: SIGKILL + --storage-faults children.
    let bin = manic_binary();
    let hours = CHILD_HOURS.to_string();
    let ref_out = Command::new(&bin)
        .args(["run", "--hours", &hours, "--quiet"])
        .output()
        .expect("child reference run");
    assert!(ref_out.status.success(), "child reference run failed");
    let child_reference = summary_lines(&String::from_utf8_lossy(&ref_out.stdout))
        .expect("child reference printed no summary");

    let dref = root.join("durable-ref");
    let started = Instant::now();
    let dref_out = Command::new(&bin)
        .args([
            "run", "--hours", &hours, "--data-dir", dref.to_str().unwrap(),
            "--durability", "every-8", "--checkpoint-every", "6", "--quiet",
        ])
        .output()
        .expect("durable reference run");
    let ref_secs = started.elapsed().as_secs_f64();
    assert!(dref_out.status.success(), "durable reference run failed");
    let _ = std::fs::remove_dir_all(&dref);

    let mut child_kinds: Vec<(&'static str, usize)> = Vec::new();
    for trial in 0..child_trials {
        let o = run_child_trial(&bin, &root, trial, &child_reference, ref_secs);
        if let Some(v) = &o.violation {
            violations.push(format!("child trial {trial} ({}): {v}", o.mix));
        }
        match child_kinds.iter_mut().find(|(k, _)| *k == o.kind) {
            Some((_, n)) => *n += 1,
            None => child_kinds.push((o.kind, 1)),
        }
    }
    child_kinds.sort_by_key(|k| std::cmp::Reverse(k.1));
    out.push_str("SIGKILL-child outcomes:\n");
    for (k, n) in &child_kinds {
        out.push_str(&format!("  {k:24} {n}\n"));
    }
    out.push('\n');

    out.push_str(&format!("violations: {}\n", violations.len()));
    for v in &violations {
        out.push_str(&format!("  - {v}\n"));
    }
    out.push_str(&format!(
        "verdict: {}\n",
        if violations.is_empty() { "PASS" } else { "FAIL" }
    ));

    print!("{out}");
    manic_bench::save_result("disk_torture", &out);
    let _ = std::fs::remove_dir_all(&root);
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
