//! Append-only WAL segment files.
//!
//! A segment is a header followed by length-prefixed, checksummed records:
//!
//! ```text
//! [8-byte magic "MANICWA1"]
//! [u32 LE payload_len][u32 LE crc32(payload)][payload bytes]  × N
//! ```
//!
//! The CRC is the plain IEEE polynomial over the payload only. A crash can
//! tear the final record (short write, zeroed tail, garbage); the scanner
//! stops at the first frame whose length or checksum does not hold and
//! reports the byte offset of the last *valid* frame so recovery can
//! truncate there. Everything before that offset is trusted — segments are
//! append-only and never rewritten in place.
//!
//! Mid-file corruption (a bit rotted at rest, a torn write that later
//! frames were appended past) is handled by the *resync* scan mode used on
//! replay: instead of treating the first bad frame as the end of the log,
//! the scanner searches forward for the next byte offset that parses as a
//! valid frame (length bound + CRC match — a 2^-32 false-positive rate)
//! and quarantines the skipped range. Quarantined ranges are counted and
//! reported so replay can flag the affected time window instead of
//! silently losing everything after one bad frame.
//!
//! All file I/O goes through a [`manic_vfs::Vfs`] handle so the fault
//! harness can inject disk errors; the `*_with` constructors take an
//! explicit handle, the plain ones use the real disk.

use manic_vfs::{Vfs, VfsFile};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// File magic; bumping the format bumps the final byte.
pub const MAGIC: [u8; 8] = *b"MANICWA1";
/// Byte offset of the first record frame.
pub const HEADER_LEN: u64 = MAGIC.len() as u64;
/// Upper bound on a single payload; longer length prefixes are treated as
/// corruption (a torn length field can otherwise claim gigabytes).
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// IEEE CRC-32 (the zlib/Ethernet polynomial), slice-by-8 table-driven:
/// eight derived tables let the hot loop fold 8 input bytes per iteration
/// instead of one, which matters because every WAL byte is checksummed on
/// the write path.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    let t = TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, e) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xFF) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    });
    let mut c = !0u32;
    let mut chunks = data.chunks_exact(8);
    for w in &mut chunks {
        let lo = u32::from_le_bytes(w[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(w[4..8].try_into().unwrap());
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Path of segment number `seq` inside `dir`: `wal-<seq:08>.seg`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

/// All `wal-*.seg` files in `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    list_segments_with(&manic_vfs::RealVfs, dir)
}

/// [`list_segments`] through an explicit VFS handle.
pub fn list_segments_with(vfs: &dyn Vfs, dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for name in vfs.read_dir_names(dir)? {
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".seg"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, dir.join(&name)));
        }
    }
    out.sort();
    Ok(out)
}

/// Buffered appender onto one segment file.
pub struct SegmentWriter {
    file: BufWriter<Box<dyn VfsFile>>,
    /// Byte offset the next frame will start at (header included).
    offset: u64,
}

impl SegmentWriter {
    /// Create a fresh segment (truncating any existing file) and write the
    /// header.
    pub fn create(path: &Path) -> io::Result<SegmentWriter> {
        SegmentWriter::create_with(&manic_vfs::RealVfs, path)
    }

    /// [`Self::create`] through an explicit VFS handle.
    pub fn create_with(vfs: &dyn Vfs, path: &Path) -> io::Result<SegmentWriter> {
        let mut file = BufWriter::new(vfs.create(path)?);
        file.write_all(&MAGIC)?;
        Ok(SegmentWriter { file, offset: HEADER_LEN })
    }

    /// Reopen an existing segment for appending, truncating it to
    /// `valid_len` first (discarding a torn tail found by [`scan`]).
    pub fn open_end(path: &Path, valid_len: u64) -> io::Result<SegmentWriter> {
        SegmentWriter::open_end_with(&manic_vfs::RealVfs, path, valid_len)
    }

    /// [`Self::open_end`] through an explicit VFS handle.
    pub fn open_end_with(vfs: &dyn Vfs, path: &Path, valid_len: u64) -> io::Result<SegmentWriter> {
        let mut file = vfs.open_rw(path)?;
        file.set_len(valid_len)?;
        file.seek_to(valid_len)?;
        Ok(SegmentWriter { file: BufWriter::new(file), offset: valid_len })
    }

    /// Append one framed record; returns the offset *after* the frame.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        debug_assert!(payload.len() as u32 <= MAX_PAYLOAD);
        let mut hdr = [0u8; 8];
        hdr[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        hdr[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.file.write_all(&hdr)?;
        self.file.write_all(payload)?;
        self.offset += 8 + payload.len() as u64;
        Ok(self.offset)
    }

    /// Offset the next frame will start at.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Flush buffered frames to the OS.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    /// Flush and fdatasync — the durability point. `sync_data` commits the
    /// record bytes and the file size (all a replayer reads); skipping the
    /// timestamp metadata flush of a full fsync roughly halves the cost of
    /// each group commit on journaling filesystems.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.get_mut().sync_data()
    }
}

/// Result of scanning a segment from disk.
pub struct SegmentScan {
    /// `(offset_after_frame, payload)` for every intact record, in order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Byte offset of the end of the last intact frame; the file should be
    /// truncated here before further appends. In resync mode this is the
    /// offset of the *first* corrupt byte — appending past quarantined
    /// garbage is never safe.
    pub valid_len: u64,
    /// True when bytes past the last intact frame existed but did not form
    /// a valid frame (torn tail or corruption).
    pub torn: bool,
    /// True when even the header was missing or wrong.
    pub bad_header: bool,
    /// Byte ranges `[start, end)` skipped by resync: corrupt frames fenced
    /// mid-file, with intact frames recovered after each range. Empty
    /// unless scanning with `resync` and the file has mid-file corruption.
    pub quarantined: Vec<(u64, u64)>,
}

impl SegmentScan {
    /// Bytes covered by quarantined ranges.
    pub fn quarantined_bytes(&self) -> u64 {
        self.quarantined.iter().map(|&(s, e)| e - s).sum()
    }
}

/// Is there a valid frame at `pos`? Returns the offset after it.
fn frame_at(raw: &[u8], pos: usize) -> Option<usize> {
    if pos + 8 > raw.len() {
        return None;
    }
    let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap());
    let want_crc = u32::from_le_bytes(raw[pos + 4..pos + 8].try_into().unwrap());
    if len > MAX_PAYLOAD || pos + 8 + len as usize > raw.len() {
        return None;
    }
    let payload = &raw[pos + 8..pos + 8 + len as usize];
    (crc32(payload) == want_crc).then_some(pos + 8 + len as usize)
}

/// Read a segment, stopping at the first torn or corrupt frame. Records at
/// or before `from_offset` (an offset *after* a frame, as returned by
/// [`SegmentWriter::append`]) are decoded but not returned — used to skip
/// the portion already covered by a checkpoint.
pub fn scan(path: &Path, from_offset: u64) -> io::Result<SegmentScan> {
    scan_with(&manic_vfs::RealVfs, path, from_offset, false)
}

/// [`scan`] through an explicit VFS handle, optionally *resyncing* past
/// mid-file corruption: after a bad frame, search forward for the next
/// offset that parses as a valid frame and quarantine the skipped range.
/// The append path must use `resync: false` (truncate at the first bad
/// byte); replay uses `resync: true` to recover everything recoverable.
pub fn scan_with(
    vfs: &dyn Vfs,
    path: &Path,
    from_offset: u64,
    resync: bool,
) -> io::Result<SegmentScan> {
    let raw = vfs.read(path)?;
    if raw.len() < MAGIC.len() || raw[..MAGIC.len()] != MAGIC {
        return Ok(SegmentScan {
            records: Vec::new(),
            valid_len: HEADER_LEN,
            torn: !raw.is_empty(),
            bad_header: true,
            quarantined: Vec::new(),
        });
    }
    let mut records = Vec::new();
    let mut quarantined = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut torn = false;
    let mut valid_len: Option<u64> = None;
    while pos < raw.len() {
        match frame_at(&raw, pos) {
            Some(next) => {
                if next as u64 > from_offset {
                    records.push((next as u64, raw[pos + 8..next].to_vec()));
                }
                pos = next;
            }
            None => {
                if valid_len.is_none() {
                    valid_len = Some(pos as u64);
                }
                if !resync {
                    torn = true;
                    break;
                }
                // Search for the next parseable frame boundary. One CRC
                // match is a strong signal (2^-32 on garbage); anything
                // skipped is quarantined, not silently dropped.
                let mut found = None;
                for c in pos + 1..raw.len().saturating_sub(8) {
                    if frame_at(&raw, c).is_some() {
                        found = Some(c);
                        break;
                    }
                }
                match found {
                    Some(c) => {
                        quarantined.push((pos as u64, c as u64));
                        pos = c;
                    }
                    None => {
                        torn = true;
                        break;
                    }
                }
            }
        }
    }
    Ok(SegmentScan {
        records,
        valid_len: valid_len.unwrap_or(pos as u64),
        torn,
        bad_header: false,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("manic-seg-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn write_scan_roundtrip() {
        let path = tmp("roundtrip.seg");
        let mut w = SegmentWriter::create(&path).unwrap();
        let mut offsets = Vec::new();
        for payload in [b"alpha".as_slice(), b"", b"gamma rays"] {
            offsets.push(w.append(payload).unwrap());
        }
        w.sync().unwrap();
        let scan = scan(&path, 0).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, *offsets.last().unwrap());
        let payloads: Vec<&[u8]> = scan.records.iter().map(|(_, p)| p.as_slice()).collect();
        assert_eq!(payloads, vec![b"alpha".as_slice(), b"", b"gamma rays"]);
        // from_offset skips frames already applied.
        let partial = super::scan(&path, offsets[0]).unwrap();
        assert_eq!(partial.records.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_truncatable() {
        let path = tmp("torn.seg");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.append(b"keep me").unwrap();
        let good_len = w.offset();
        w.append(b"torn away").unwrap();
        w.sync().unwrap();
        // Chop mid-way through the second frame.
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(good_len + 5).unwrap();
        drop(f);
        let scan1 = scan(&path, 0).unwrap();
        assert!(scan1.torn);
        assert_eq!(scan1.valid_len, good_len);
        assert_eq!(scan1.records.len(), 1);
        // Corrupt (not just short) tails are equally fenced.
        let mut w = SegmentWriter::open_end(&path, scan1.valid_len).unwrap();
        w.append(b"fresh").unwrap();
        w.sync().unwrap();
        let scan2 = scan(&path, 0).unwrap();
        assert!(!scan2.torn);
        assert_eq!(scan2.records.len(), 2);
        assert_eq!(scan2.records[1].1, b"fresh");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resync_recovers_past_midfile_corruption() {
        let path = tmp("resync.seg");
        let mut w = SegmentWriter::create(&path).unwrap();
        w.append(b"first").unwrap();
        let corrupt_at = w.offset();
        w.append(b"second - will be flipped").unwrap();
        let corrupt_end = w.offset();
        w.append(b"third survives").unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a payload byte in the middle frame.
        let mut raw = std::fs::read(&path).unwrap();
        raw[corrupt_at as usize + 10] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        // Plain scan fences at the corruption.
        let plain = scan(&path, 0).unwrap();
        assert!(plain.torn);
        assert_eq!(plain.records.len(), 1);
        assert_eq!(plain.valid_len, corrupt_at);
        // Resync scan quarantines the bad frame and recovers the third.
        let re = scan_with(&manic_vfs::RealVfs, &path, 0, true).unwrap();
        assert!(!re.torn);
        assert_eq!(re.records.len(), 2);
        assert_eq!(re.records[1].1, b"third survives");
        assert_eq!(re.quarantined, vec![(corrupt_at, corrupt_end)]);
        assert_eq!(re.quarantined_bytes(), corrupt_end - corrupt_at);
        // valid_len still fences at the first corrupt byte: appends must
        // not resume past quarantined garbage.
        assert_eq!(re.valid_len, corrupt_at);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_header_rejected() {
        let path = tmp("badheader.seg");
        std::fs::write(&path, b"NOTMAGIC rest").unwrap();
        let s = scan(&path, 0).unwrap();
        assert!(s.bad_header && s.torn);
        assert!(s.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn segment_listing_sorted() {
        let dir = std::env::temp_dir().join(format!("manic-seg-list-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for seq in [3u64, 1, 2] {
            SegmentWriter::create(&segment_path(&dir, seq)).unwrap();
        }
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
