//! Series quality annotations.
//!
//! Measurements degrade for reasons the inference layer must know about but
//! the raw points cannot express: a probing task sat in quarantine (no data
//! is *expected*), the far end looked rate-limited (§5.2's 64-85% corrupted
//! loss responses), or the responder address changed under the task
//! (renumbering — samples before/after are not the same interface). Each
//! condition is a flag attached to a time window of a series; the inference
//! entry points mask flagged bins to `None` so faults produce "no inference"
//! instead of false level shifts.

/// Bitmask of quality conditions over a window of a series.
pub type QualityFlags = u8;

/// No valid samples were expected in the window (task skipped or dark).
pub const GAP: QualityFlags = 1 << 0;
/// Far end unanswered while the near end answered — the asymmetry that
/// indicates ICMP rate limiting rather than path loss (§5.2).
pub const SUSPECT_RATE_LIMITED: QualityFlags = 1 << 1;
/// Responses arrived from an unexpected address (interface renumbered or
/// route shifted off the link, §3.2 visibility loss).
pub const RENUMBERED: QualityFlags = 1 << 2;
/// The task's health machine had the series quarantined.
pub const QUARANTINED: QualityFlags = 1 << 3;

/// Human-readable names of the flags set in `flags`, in bit order.
pub fn flag_names(flags: QualityFlags) -> Vec<&'static str> {
    let mut out = Vec::new();
    if flags & GAP != 0 {
        out.push("gap");
    }
    if flags & SUSPECT_RATE_LIMITED != 0 {
        out.push("suspect-rate-limited");
    }
    if flags & RENUMBERED != 0 {
        out.push("renumbered");
    }
    if flags & QUARANTINED != 0 {
        out.push("quarantined");
    }
    out
}

/// Annotation windows of one series: `(from, to, flags)`, `to` exclusive.
/// Windows are kept in insertion order; adjacent same-flag windows are
/// coalesced on append (the per-round annotation pattern of the control
/// loop would otherwise grow one entry per five minutes).
#[derive(Debug, Clone, Default)]
pub struct QualityLog {
    windows: Vec<(i64, i64, QualityFlags)>,
}

impl QualityLog {
    pub fn annotate(&mut self, from: i64, to: i64, flags: QualityFlags) {
        if to <= from || flags == 0 {
            return;
        }
        if let Some(last) = self.windows.last_mut() {
            if last.2 == flags && last.1 == from {
                last.1 = to;
                return;
            }
        }
        self.windows.push((from, to, flags));
    }

    pub fn windows(&self) -> &[(i64, i64, QualityFlags)] {
        &self.windows
    }

    /// Drop windows entirely before `cutoff` and clamp straddling windows
    /// to start at `cutoff`, mirroring `Series::trim_before` so retention
    /// never leaves flags for data that no longer exists. Returns the
    /// number of windows removed outright.
    pub fn trim_before(&mut self, cutoff: i64) -> usize {
        let before = self.windows.len();
        self.windows.retain_mut(|w| {
            if w.1 <= cutoff {
                return false;
            }
            if w.0 < cutoff {
                w.0 = cutoff;
            }
            true
        });
        before - self.windows.len()
    }

    /// OR of all flags overlapping `[start, end)`.
    pub fn flags_over(&self, start: i64, end: i64) -> QualityFlags {
        self.windows
            .iter()
            .filter(|&&(f, t, _)| f < end && start < t)
            .fold(0, |acc, &(_, _, fl)| acc | fl)
    }

    /// Per-bin OR of flags across `[start, end)` in `bin_secs` bins. Same
    /// edge-case contract as `Series::downsample_dense`: non-positive bins
    /// and empty/inverted windows yield no bins.
    pub fn dense(&self, start: i64, end: i64, bin_secs: i64) -> Vec<QualityFlags> {
        let mut out = Vec::new();
        self.dense_into(start, end, bin_secs, &mut out);
        out
    }

    /// [`Self::dense`] into a caller-owned buffer (cleared first), so
    /// repeated window scans reuse one allocation.
    pub fn dense_into(&self, start: i64, end: i64, bin_secs: i64, out: &mut Vec<QualityFlags>) {
        out.clear();
        if bin_secs <= 0 || end <= start {
            return;
        }
        let nbins = ((end - start).max(0) + bin_secs - 1) / bin_secs;
        out.resize(nbins as usize, 0);
        for &(f, t, fl) in &self.windows {
            if t <= start || f >= end {
                continue;
            }
            let b0 = ((f.max(start) - start) / bin_secs).max(0);
            let b1 = (((t.min(end) - start) + bin_secs - 1) / bin_secs).min(nbins);
            for b in b0..b1 {
                out[b as usize] |= fl;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_adjacent_same_flag_windows() {
        let mut log = QualityLog::default();
        log.annotate(0, 300, QUARANTINED);
        log.annotate(300, 600, QUARANTINED);
        log.annotate(600, 900, GAP);
        log.annotate(900, 1200, GAP | QUARANTINED);
        assert_eq!(log.windows().len(), 3, "first two merge");
        assert_eq!(log.windows()[0], (0, 600, QUARANTINED));
    }

    #[test]
    fn empty_and_zero_windows_ignored() {
        let mut log = QualityLog::default();
        log.annotate(100, 100, GAP);
        log.annotate(200, 100, GAP);
        log.annotate(0, 100, 0);
        assert!(log.windows().is_empty());
    }

    #[test]
    fn flags_over_and_dense() {
        let mut log = QualityLog::default();
        log.annotate(300, 600, SUSPECT_RATE_LIMITED);
        log.annotate(900, 1200, RENUMBERED);
        assert_eq!(log.flags_over(0, 300), 0);
        assert_eq!(log.flags_over(0, 301), SUSPECT_RATE_LIMITED);
        assert_eq!(log.flags_over(500, 1000), SUSPECT_RATE_LIMITED | RENUMBERED);
        let dense = log.dense(0, 1200, 300);
        assert_eq!(dense, vec![0, SUSPECT_RATE_LIMITED, 0, RENUMBERED]);
        // Windows straddling bin edges mark every touched bin.
        let dense2 = log.dense(0, 1200, 450);
        assert_eq!(dense2.len(), 3);
        assert_eq!(dense2[0], SUSPECT_RATE_LIMITED, "300..450 overlap");
        assert_eq!(dense2[1], SUSPECT_RATE_LIMITED, "450..600 overlap");
        assert_eq!(dense2[2], RENUMBERED);
    }

    #[test]
    fn trim_before_drops_and_clamps() {
        let mut log = QualityLog::default();
        log.annotate(0, 300, GAP);
        log.annotate(300, 900, QUARANTINED);
        log.annotate(900, 1200, RENUMBERED);
        assert_eq!(log.trim_before(600), 1, "fully-old window dropped");
        assert_eq!(log.windows(), &[(600, 900, QUARANTINED), (900, 1200, RENUMBERED)]);
        assert_eq!(log.flags_over(0, 600), 0, "nothing before the cutoff");
        assert_eq!(log.flags_over(0, 601), QUARANTINED, "clamped window starts at cutoff");
        assert_eq!(log.trim_before(5000), 2);
        assert!(log.windows().is_empty());
    }

    #[test]
    fn names() {
        assert_eq!(flag_names(GAP | QUARANTINED), vec!["gap", "quarantined"]);
        assert!(flag_names(0).is_empty());
    }
}
