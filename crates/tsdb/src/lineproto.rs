//! A minimal line protocol, mirroring InfluxDB's textual ingest format:
//!
//! ```text
//! measurement[,tag=value...] value=<f64> <timestamp-seconds>
//! ```
//!
//! Only the single field `value` is supported — every measurement in the
//! pipeline is a scalar sample (an RTT, a loss indicator, a throughput).
//!
//! Names may contain the protocol's structural characters (space, comma,
//! `=`) — they are backslash-escaped on format and unescaped on parse, per
//! the Influx escaping rules (with the backslash itself also escaped so the
//! round trip is exact). Non-finite values and control characters are
//! rejected on both sides: the write-ahead log stores samples in this
//! format, so a line that formats must parse back to the same sample, and a
//! NaN must never round-trip silently into the store.

use crate::key::{SeriesKey, TagSet};
use crate::series::Point;
use std::fmt;

/// Parse failure for a protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineProtoError {
    /// The line does not have the three space-separated sections.
    MissingSection,
    /// A tag was not of the form `key=value`.
    BadTag(String),
    /// The field section was not `value=<finite f64>`.
    BadField(String),
    /// The timestamp was not an integer.
    BadTimestamp(String),
    /// Empty measurement name.
    EmptyMeasurement,
    /// The value is NaN or infinite — unrepresentable as a stored sample.
    NonFiniteValue,
    /// A name contains characters the protocol cannot carry (control
    /// characters) or is empty.
    Unencodable(String),
}

impl fmt::Display for LineProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineProtoError::MissingSection => write!(f, "expected 'key field timestamp' sections"),
            LineProtoError::BadTag(t) => write!(f, "malformed tag: {t}"),
            LineProtoError::BadField(x) => write!(f, "malformed field: {x}"),
            LineProtoError::BadTimestamp(x) => write!(f, "malformed timestamp: {x}"),
            LineProtoError::EmptyMeasurement => write!(f, "empty measurement name"),
            LineProtoError::NonFiniteValue => write!(f, "non-finite value"),
            LineProtoError::Unencodable(s) => write!(f, "unencodable name: {s:?}"),
        }
    }
}

impl std::error::Error for LineProtoError {}

/// Append `s` to `out` with every structural character (`\`, `,`, ` `, `=`)
/// backslash-escaped.
fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        if matches!(c, '\\' | ',' | ' ' | '=') {
            out.push('\\');
        }
        out.push(c);
    }
}

/// Undo [`escape_into`]: `\x` becomes `x` for any `x`. A trailing lone
/// backslash is kept literally (the formatter never emits one).
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some(next) => out.push(next),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Split `s` at every *unescaped* occurrence of `sep` (a backslash escapes
/// the following character). Returns byte-slice tokens; escapes are left in
/// place for a later [`unescape`].
fn split_unescaped(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            out.push(&s[start..i]);
            start = i + c.len_utf8();
        }
    }
    out.push(&s[start..]);
    out
}

/// Split a line into whitespace-separated sections, honouring escapes and
/// collapsing runs of unescaped spaces/tabs (like `split_whitespace`).
/// Shared with the WAL record codec, whose annotation records put an
/// escaped key token next to numeric fields.
pub(crate) fn split_sections(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        let is_sep = !escaped && (c == ' ' || c == '\t');
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        }
        if is_sep {
            if let Some(s) = start.take() {
                out.push(&line[s..i]);
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push(&line[s..]);
    }
    out
}

/// Reject names the protocol cannot carry: empty strings and control
/// characters (which the whitespace tokenizer would mangle).
fn check_name(s: &str) -> Result<(), LineProtoError> {
    if s.is_empty() || s.chars().any(|c| c.is_control()) {
        return Err(LineProtoError::Unencodable(s.to_string()));
    }
    Ok(())
}

/// Format a series key as an escaped `measurement[,tag=value...]` token
/// (the first section of a line; also the key token of WAL annotation
/// records). Fails on empty or control-character names.
pub fn format_key(key: &SeriesKey) -> Result<String, LineProtoError> {
    if key.measurement.is_empty() {
        return Err(LineProtoError::EmptyMeasurement);
    }
    check_name(&key.measurement)?;
    let mut out = String::new();
    escape_into(&key.measurement, &mut out);
    for (k, v) in key.tags.iter() {
        check_name(k)?;
        check_name(v)?;
        out.push(',');
        escape_into(k, &mut out);
        out.push('=');
        escape_into(v, &mut out);
    }
    Ok(out)
}

/// Parse an escaped `measurement[,tag=value...]` token (inverse of
/// [`format_key`]).
pub fn parse_key(token: &str) -> Result<SeriesKey, LineProtoError> {
    let mut parts = split_unescaped(token, ',').into_iter();
    let measurement = unescape(parts.next().unwrap_or_default());
    if measurement.is_empty() {
        return Err(LineProtoError::EmptyMeasurement);
    }
    let mut tags = TagSet::new();
    for tag in parts {
        let mut kv = split_unescaped(tag, '=').into_iter();
        let (k, v) = match (kv.next(), kv.next(), kv.next()) {
            (Some(k), Some(v), None) => (unescape(k), unescape(v)),
            _ => return Err(LineProtoError::BadTag(tag.to_string())),
        };
        if k.is_empty() || v.is_empty() {
            return Err(LineProtoError::BadTag(tag.to_string()));
        }
        tags.insert(k, v);
    }
    Ok(SeriesKey::new(measurement, tags))
}

/// Parse one protocol line into a series key and a point.
pub fn parse_line(line: &str) -> Result<(SeriesKey, Point), LineProtoError> {
    let sections = split_sections(line);
    let [keypart, fieldpart, tspart] = sections.as_slice() else {
        return Err(LineProtoError::MissingSection);
    };

    let key = parse_key(keypart)?;

    let value = fieldpart
        .strip_prefix("value=")
        .ok_or_else(|| LineProtoError::BadField(fieldpart.to_string()))?
        .parse::<f64>()
        .map_err(|_| LineProtoError::BadField(fieldpart.to_string()))?;
    if !value.is_finite() {
        return Err(LineProtoError::BadField(fieldpart.to_string()));
    }

    let t = tspart
        .parse::<i64>()
        .map_err(|_| LineProtoError::BadTimestamp(tspart.to_string()))?;

    Ok((key, Point::new(t, value)))
}

/// Format a key + point as a protocol line (inverse of [`parse_line`]).
/// Fails on non-finite values and unencodable names instead of emitting a
/// line that cannot round-trip.
pub fn format_line(key: &SeriesKey, point: Point) -> Result<String, LineProtoError> {
    if !point.v.is_finite() {
        return Err(LineProtoError::NonFiniteValue);
    }
    Ok(format!("{} value={} {}", format_key(key)?, point.v, point.t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_line() {
        let (key, p) = parse_line("tslp,vp=ark1,link=L3,end=far value=42.5 1456790400").unwrap();
        assert_eq!(key.measurement, "tslp");
        assert_eq!(key.tags.get("vp"), Some("ark1"));
        assert_eq!(key.tags.get("end"), Some("far"));
        assert_eq!(p.t, 1456790400);
        assert_eq!(p.v, 42.5);
    }

    #[test]
    fn parse_without_tags() {
        let (key, p) = parse_line("loss value=0.01 5").unwrap();
        assert!(key.tags.is_empty());
        assert_eq!(p.v, 0.01);
    }

    #[test]
    fn roundtrip() {
        let key = SeriesKey::with_tags("tslp", &[("vp", "a"), ("link", "L1")]);
        let p = Point::new(123, 9.25);
        let line = format_line(&key, p).unwrap();
        let (k2, p2) = parse_line(&line).unwrap();
        assert_eq!(key, k2);
        assert_eq!(p, p2);
    }

    #[test]
    fn structural_characters_escape_and_roundtrip() {
        let key = SeriesKey::with_tags(
            "m,with space",
            &[("k=eq", "v,comma"), ("sp ace", "back\\slash"), ("plain", "a=b c,d")],
        );
        let line = format_line(&key, Point::new(7, 1.5)).unwrap();
        let (k2, p2) = parse_line(&line).unwrap();
        assert_eq!(key, k2, "escaped line: {line}");
        assert_eq!(p2, Point::new(7, 1.5));
        // The escaped form really does contain backslashes.
        assert!(line.contains("\\ ") || line.contains("\\,"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_line("justonething"), Err(LineProtoError::MissingSection));
        assert!(matches!(parse_line("m,badtag value=1 0"), Err(LineProtoError::BadTag(_))));
        assert!(matches!(parse_line("m notvalue=1 0"), Err(LineProtoError::BadField(_))));
        assert!(matches!(parse_line("m value=abc 0"), Err(LineProtoError::BadField(_))));
        assert!(matches!(parse_line("m value=1 notatime"), Err(LineProtoError::BadTimestamp(_))));
        assert_eq!(parse_line(",x=1 value=1 0"), Err(LineProtoError::EmptyMeasurement));
        assert_eq!(parse_line("m value=1 0 extra"), Err(LineProtoError::MissingSection));
        // Tags with an escaped-but-extra '=' are malformed, not panics.
        assert!(matches!(parse_line("m,a=b=c value=1 0"), Err(LineProtoError::BadTag(_))));
    }

    #[test]
    fn non_finite_values_rejected_both_ways() {
        let key = SeriesKey::with_tags("m", &[("a", "b")]);
        assert_eq!(format_line(&key, Point::new(0, f64::NAN)), Err(LineProtoError::NonFiniteValue));
        assert_eq!(
            format_line(&key, Point::new(0, f64::INFINITY)),
            Err(LineProtoError::NonFiniteValue)
        );
        assert!(matches!(parse_line("m value=NaN 0"), Err(LineProtoError::BadField(_))));
        assert!(matches!(parse_line("m value=inf 0"), Err(LineProtoError::BadField(_))));
        assert!(matches!(parse_line("m value=-inf 0"), Err(LineProtoError::BadField(_))));
    }

    #[test]
    fn unencodable_names_rejected_at_format() {
        let key = SeriesKey::with_tags("m\n", &[("a", "b")]);
        assert!(matches!(format_line(&key, Point::new(0, 1.0)), Err(LineProtoError::Unencodable(_))));
        let key = SeriesKey::with_tags("m", &[("a", "b\tc")]);
        assert!(matches!(format_key(&key), Err(LineProtoError::Unencodable(_))));
        let key = SeriesKey::with_tags("m", &[("", "b")]);
        assert!(matches!(format_key(&key), Err(LineProtoError::Unencodable(_))));
    }

    #[test]
    fn key_token_roundtrip() {
        let key = SeriesKey::with_tags("a b", &[("c,d", "e=f"), ("g", "h i")]);
        let tok = format_key(&key).unwrap();
        assert_eq!(parse_key(&tok).unwrap(), key);
        assert!(!tok.contains(' ') || tok.contains("\\ "), "no raw spaces: {tok}");
    }
}
