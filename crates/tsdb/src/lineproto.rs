//! A minimal line protocol, mirroring InfluxDB's textual ingest format:
//!
//! ```text
//! measurement[,tag=value...] value=<f64> <timestamp-seconds>
//! ```
//!
//! Only the single field `value` is supported — every measurement in the
//! pipeline is a scalar sample (an RTT, a loss indicator, a throughput).

use crate::key::{SeriesKey, TagSet};
use crate::series::Point;
use std::fmt;

/// Parse failure for a protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineProtoError {
    /// The line does not have the three space-separated sections.
    MissingSection,
    /// A tag was not of the form `key=value`.
    BadTag(String),
    /// The field section was not `value=<f64>`.
    BadField(String),
    /// The timestamp was not an integer.
    BadTimestamp(String),
    /// Empty measurement name.
    EmptyMeasurement,
}

impl fmt::Display for LineProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineProtoError::MissingSection => write!(f, "expected 'key field timestamp' sections"),
            LineProtoError::BadTag(t) => write!(f, "malformed tag: {t}"),
            LineProtoError::BadField(x) => write!(f, "malformed field: {x}"),
            LineProtoError::BadTimestamp(x) => write!(f, "malformed timestamp: {x}"),
            LineProtoError::EmptyMeasurement => write!(f, "empty measurement name"),
        }
    }
}

impl std::error::Error for LineProtoError {}

/// Parse one protocol line into a series key and a point.
pub fn parse_line(line: &str) -> Result<(SeriesKey, Point), LineProtoError> {
    let mut sections = line.split_whitespace();
    let keypart = sections.next().ok_or(LineProtoError::MissingSection)?;
    let fieldpart = sections.next().ok_or(LineProtoError::MissingSection)?;
    let tspart = sections.next().ok_or(LineProtoError::MissingSection)?;
    if sections.next().is_some() {
        return Err(LineProtoError::MissingSection);
    }

    let mut key_iter = keypart.split(',');
    let measurement = key_iter.next().unwrap_or_default();
    if measurement.is_empty() {
        return Err(LineProtoError::EmptyMeasurement);
    }
    let mut tags = TagSet::new();
    for tag in key_iter {
        let (k, v) = tag
            .split_once('=')
            .ok_or_else(|| LineProtoError::BadTag(tag.to_string()))?;
        if k.is_empty() || v.is_empty() {
            return Err(LineProtoError::BadTag(tag.to_string()));
        }
        tags.insert(k, v);
    }

    let value = fieldpart
        .strip_prefix("value=")
        .ok_or_else(|| LineProtoError::BadField(fieldpart.to_string()))?
        .parse::<f64>()
        .map_err(|_| LineProtoError::BadField(fieldpart.to_string()))?;

    let t = tspart
        .parse::<i64>()
        .map_err(|_| LineProtoError::BadTimestamp(tspart.to_string()))?;

    Ok((SeriesKey::new(measurement, tags), Point::new(t, value)))
}

/// Format a key + point as a protocol line (inverse of [`parse_line`]).
pub fn format_line(key: &SeriesKey, point: Point) -> String {
    format!("{} value={} {}", key, point.v, point.t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_line() {
        let (key, p) = parse_line("tslp,vp=ark1,link=L3,end=far value=42.5 1456790400").unwrap();
        assert_eq!(key.measurement, "tslp");
        assert_eq!(key.tags.get("vp"), Some("ark1"));
        assert_eq!(key.tags.get("end"), Some("far"));
        assert_eq!(p.t, 1456790400);
        assert_eq!(p.v, 42.5);
    }

    #[test]
    fn parse_without_tags() {
        let (key, p) = parse_line("loss value=0.01 5").unwrap();
        assert!(key.tags.is_empty());
        assert_eq!(p.v, 0.01);
    }

    #[test]
    fn roundtrip() {
        let key = SeriesKey::with_tags("tslp", &[("vp", "a"), ("link", "L1")]);
        let p = Point::new(123, 9.25);
        let line = format_line(&key, p);
        let (k2, p2) = parse_line(&line).unwrap();
        assert_eq!(key, k2);
        assert_eq!(p, p2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert_eq!(parse_line("justonething"), Err(LineProtoError::MissingSection));
        assert!(matches!(parse_line("m,badtag value=1 0"), Err(LineProtoError::BadTag(_))));
        assert!(matches!(parse_line("m notvalue=1 0"), Err(LineProtoError::BadField(_))));
        assert!(matches!(parse_line("m value=abc 0"), Err(LineProtoError::BadField(_))));
        assert!(matches!(parse_line("m value=1 notatime"), Err(LineProtoError::BadTimestamp(_))));
        assert_eq!(parse_line(",x=1 value=1 0"), Err(LineProtoError::EmptyMeasurement));
        assert_eq!(parse_line("m value=1 0 extra"), Err(LineProtoError::MissingSection));
    }
}
