//! Series identification: measurement name + sorted tag set.

use std::fmt;

/// An ordered set of `tag=value` pairs.
///
/// Tags are kept sorted by key so that two tag sets with the same contents
/// compare and hash identically regardless of insertion order (InfluxDB
/// semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TagSet(Vec<(String, String)>);

impl TagSet {
    pub fn new() -> Self {
        TagSet(Vec::new())
    }

    /// Build from any iterator of pairs; later duplicates overwrite earlier.
    pub fn from_pairs<I, K, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<String>,
    {
        let mut ts = TagSet::new();
        for (k, v) in pairs {
            ts.insert(k, v);
        }
        ts
    }

    /// Insert or overwrite a tag.
    pub fn insert<K: Into<String>, V: Into<String>>(&mut self, key: K, value: V) {
        let key = key.into();
        let value = value.into();
        match self.0.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (key, value)),
        }
    }

    /// Look up a tag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.0
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.0[i].1.as_str())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// True when every `(key, value)` in `other` is present in `self`.
    pub fn matches(&self, other: &TagSet) -> bool {
        other.iter().all(|(k, v)| self.get(k) == Some(v))
    }
}

impl fmt::Display for TagSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// Fully-qualified series identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesKey {
    pub measurement: String,
    pub tags: TagSet,
}

impl SeriesKey {
    pub fn new<M: Into<String>>(measurement: M, tags: TagSet) -> Self {
        SeriesKey { measurement: measurement.into(), tags }
    }

    /// Convenience constructor from pair slices.
    pub fn with_tags<M: Into<String>>(measurement: M, pairs: &[(&str, &str)]) -> Self {
        SeriesKey {
            measurement: measurement.into(),
            tags: TagSet::from_pairs(pairs.iter().map(|&(k, v)| (k, v))),
        }
    }
}

impl fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.measurement)?;
        if !self.tags.is_empty() {
            write!(f, ",{}", self.tags)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagset_sorted_and_deduped() {
        let mut t = TagSet::new();
        t.insert("z", "1");
        t.insert("a", "2");
        t.insert("z", "3");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("z"), Some("3"));
        assert_eq!(t.to_string(), "a=2,z=3");
    }

    #[test]
    fn insertion_order_irrelevant() {
        let a = TagSet::from_pairs([("vp", "x"), ("link", "L1")]);
        let b = TagSet::from_pairs([("link", "L1"), ("vp", "x")]);
        assert_eq!(a, b);
    }

    #[test]
    fn matches_is_subset_semantics() {
        let series = TagSet::from_pairs([("vp", "x"), ("link", "L1"), ("end", "far")]);
        let filter = TagSet::from_pairs([("link", "L1")]);
        assert!(series.matches(&filter));
        let wrong = TagSet::from_pairs([("link", "L2")]);
        assert!(!series.matches(&wrong));
        assert!(series.matches(&TagSet::new()));
    }

    #[test]
    fn series_key_display() {
        let k = SeriesKey::with_tags("tslp", &[("vp", "a"), ("end", "far")]);
        assert_eq!(k.to_string(), "tslp,end=far,vp=a");
        let bare = SeriesKey::new("loss", TagSet::new());
        assert_eq!(bare.to_string(), "loss");
    }
}
