//! Write-ahead log for the store.
//!
//! Every mutation of an attached [`Store`] — sample writes, quality
//! annotations, retention cutoffs — is appended to a segment file *before*
//! it is applied in memory, so a crashed process can rebuild the store by
//! replay. Annotations, retention records, and synchronous-mode samples are
//! text (samples reuse the `lineproto` line format behind a kind byte); the
//! group-commit sample fast path packs many samples into one binary `B`
//! frame, with each series' escaped key journaled once per sync epoch as a
//! `K` key-definition frame. The framing (length prefix + CRC32) lives in
//! [`crate::segment`].
//!
//! Durability is governed by a group-commit [`FsyncPolicy`]: `always`
//! fsyncs every append (nothing acknowledged is ever lost), `every-n`
//! amortizes the fsync over n records, `never` leaves flushing to the OS.
//! Replay is deterministic — the same segments always rebuild byte-identical
//! store contents — and a torn tail truncates the log at the last intact
//! frame rather than failing recovery.

use crate::lineproto::{format_key, format_line, parse_key, parse_line, LineProtoError};
use crate::obs::metrics;
use crate::quality::QualityFlags;
use crate::segment::{self, segment_path, SegmentWriter, HEADER_LEN};
use crate::series::Point;
use crate::store::Store;
use crate::SeriesKey;
use manic_vfs::{is_enospc, Vfs};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// When to fsync appended records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append (and every batch): an acknowledged record
    /// survives any crash.
    Always,
    /// Group commit: fsync once per `n` records.
    EveryN(u32),
    /// Never fsync explicitly; the OS flushes when it pleases.
    Never,
}

impl FsyncPolicy {
    /// Parse a `--durability` flag value: `always`, `never`, `every-n`
    /// (default group size) or `every-<count>`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            "every-n" => Some(FsyncPolicy::EveryN(64)),
            _ => {
                let n = s.strip_prefix("every-")?.parse::<u32>().ok()?;
                (n > 0).then_some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// One logged store mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A sample append (`Store::write` / one element of `write_batch`).
    Sample { key: SeriesKey, point: Point },
    /// A quality-flag annotation (`Store::annotate`).
    Annotate { key: SeriesKey, from: i64, to: i64, flags: QualityFlags },
    /// A retention cutoff (`Store::retain_from`).
    Retain { cutoff: i64 },
}

/// Decode failure for a CRC-valid payload (format bug or version skew, not
/// disk corruption — corruption is fenced by the segment CRC).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalCodecError {
    Empty,
    UnknownKind(u8),
    NotUtf8,
    Line(LineProtoError),
    Malformed(String),
}

impl fmt::Display for WalCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalCodecError::Empty => write!(f, "empty record payload"),
            WalCodecError::UnknownKind(k) => write!(f, "unknown record kind {k:#04x}"),
            WalCodecError::NotUtf8 => write!(f, "record body is not UTF-8"),
            WalCodecError::Line(e) => write!(f, "bad line body: {e}"),
            WalCodecError::Malformed(s) => write!(f, "malformed record body: {s}"),
        }
    }
}

impl std::error::Error for WalCodecError {}

impl From<LineProtoError> for WalCodecError {
    fn from(e: LineProtoError) -> Self {
        WalCodecError::Line(e)
    }
}

impl WalRecord {
    /// Kind byte leading the payload.
    fn kind(&self) -> u8 {
        match self {
            WalRecord::Sample { .. } => b'S',
            WalRecord::Annotate { .. } => b'A',
            WalRecord::Retain { .. } => b'R',
        }
    }

    /// Encode to a segment payload. Fails only for keys/values the line
    /// protocol rejects (non-finite samples, control characters).
    pub fn encode(&self) -> Result<Vec<u8>, LineProtoError> {
        let body = match self {
            WalRecord::Sample { key, point } => format_line(key, *point)?,
            WalRecord::Annotate { key, from, to, flags } => {
                format!("{} {from} {to} {flags}", format_key(key)?)
            }
            WalRecord::Retain { cutoff } => format!("{cutoff}"),
        };
        let mut out = Vec::with_capacity(body.len() + 1);
        out.push(self.kind());
        out.extend_from_slice(body.as_bytes());
        Ok(out)
    }

    /// Decode a segment payload (inverse of [`Self::encode`]).
    pub fn decode(payload: &[u8]) -> Result<WalRecord, WalCodecError> {
        let (&kind, body) = payload.split_first().ok_or(WalCodecError::Empty)?;
        let body = std::str::from_utf8(body).map_err(|_| WalCodecError::NotUtf8)?;
        match kind {
            b'S' => {
                let (key, point) = parse_line(body)?;
                Ok(WalRecord::Sample { key, point })
            }
            b'A' => {
                // The key token may contain escaped spaces; split like the
                // line parser does.
                let sections = crate::lineproto::split_sections(body);
                let [keytok, from, to, flags] = sections.as_slice() else {
                    return Err(WalCodecError::Malformed(body.to_string()));
                };
                let key = parse_key(keytok)?;
                let parse_i = |s: &str| {
                    s.parse::<i64>().map_err(|_| WalCodecError::Malformed(body.to_string()))
                };
                let flags = flags
                    .parse::<QualityFlags>()
                    .map_err(|_| WalCodecError::Malformed(body.to_string()))?;
                Ok(WalRecord::Annotate { key, from: parse_i(from)?, to: parse_i(to)?, flags })
            }
            b'R' => {
                let cutoff = body
                    .trim()
                    .parse::<i64>()
                    .map_err(|_| WalCodecError::Malformed(body.to_string()))?;
                Ok(WalRecord::Retain { cutoff })
            }
            other => Err(WalCodecError::UnknownKind(other)),
        }
    }
}

/// A durable position in the log: everything up to and including
/// `(segment, offset)` has been applied (offsets are frame boundaries as
/// returned by the segment writer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    pub segment: u64,
    pub offset: u64,
}

struct Inner {
    writer: SegmentWriter,
    seq: u64,
    since_sync: u32,
}

/// Message to the background writer thread (group-commit modes).
enum Msg {
    /// Packed sample entries ([`SAMPLE_ENTRY`] bytes each: token id, t,
    /// f64 bits, all LE). Consecutive staged samples collapse into one
    /// `Bin`, so the producer's per-sample cost is a short memcpy and the
    /// writer checksums and writes a whole burst as one frame.
    Bin(Vec<u8>),
    Rec(Box<WalRecord>),
    Batch(Vec<WalRecord>),
    /// Flush + fsync barrier; the ack carries the result.
    Sync(Sender<io::Result<()>>),
}

/// Bytes of one packed sample entry in a `Bin` / `B` frame:
/// `u32 token id | i64 t | f64 bits`, all little-endian.
const SAMPLE_ENTRY: usize = 20;

/// How many packed sample bytes accumulate before the producer forwards the
/// staged batch to the writer thread. Each forward wakes the (usually
/// parked) writer — futex traffic plus a scheduler round-trip on small
/// hosts — and each drained burst costs one group-commit fsync under
/// `every-n`, so the hot path amortizes both aggressively. Sync barriers
/// and `Drop` flush whatever is staged regardless, and checkpoints barrier
/// every few rounds, so the staging window never outlives a checkpoint
/// interval: `every-n` bounds fsync *work*, not acknowledged loss — the
/// checkpoint is the acknowledgment unit, and `always` is the no-loss mode.
const STAGE_SAMPLE_BYTES: usize = 256 * 1024;

/// How many staged control messages (non-sample records, which are rare)
/// force a forward on their own.
const STAGE_FLUSH: usize = 1024;

/// Largest packed-sample slice per `B` frame: the frame payload is the kind
/// byte plus the slice, and must stay within [`segment::MAX_PAYLOAD`].
const B_FRAME_MAX: usize =
    (segment::MAX_PAYLOAD as usize - 1) / SAMPLE_ENTRY * SAMPLE_ENTRY;

/// State shared between the append handle and the writer thread.
struct Shared {
    dir: PathBuf,
    policy: FsyncPolicy,
    rotate_bytes: u64,
    vfs: Arc<dyn Vfs>,
    /// ENOSPC-degraded mode: raw-sample (`K`/`B`) frames are shed while
    /// verdict-critical records (annotations, retention) keep being
    /// attempted. Cleared optimistically at every successful sync barrier
    /// so the log re-probes the disk once per group commit.
    degraded: AtomicBool,
    inner: Mutex<Inner>,
    /// Escaped key tokens by id, appended on first use of a series (ids are
    /// dense and monotonic). The writer thread keeps a private copy and only
    /// takes this lock when it sees an id past its cache, so steady-state
    /// appends never contend here.
    tokens: Mutex<Vec<Arc<str>>>,
}

impl Shared {
    fn rotate_if_due(&self, inner: &mut Inner) -> io::Result<()> {
        if inner.writer.offset() >= self.rotate_bytes {
            inner.writer.sync()?;
            inner.seq += 1;
            inner.writer =
                SegmentWriter::create_with(&*self.vfs, &segment_path(&self.dir, inner.seq))?;
            metrics().wal_rotations.inc();
        }
        Ok(())
    }

    /// Record an append-path failure. ENOSPC flips the log into degraded
    /// (sample-shedding) mode instead of burning the error counter on every
    /// subsequent sample.
    fn note_write_error(&self, e: &io::Error) {
        if is_enospc(e) {
            if !self.degraded.swap(true, Ordering::Relaxed) {
                metrics().wal_degraded_enters.inc();
            }
        } else {
            metrics().wal_write_errors.inc();
        }
    }

    fn commit(&self, inner: &mut Inner, appended: u32) -> io::Result<()> {
        match self.policy {
            FsyncPolicy::Always => self.sync_now(inner),
            FsyncPolicy::EveryN(n) => {
                inner.since_sync += appended;
                if inner.since_sync >= n {
                    self.sync_now(inner)?;
                }
                Ok(())
            }
            FsyncPolicy::Never => Ok(()),
        }
    }

    fn sync_now(&self, inner: &mut Inner) -> io::Result<()> {
        inner.writer.sync()?;
        metrics().wal_fsyncs.inc();
        inner.since_sync = 0;
        Ok(())
    }

    fn append_payload(&self, inner: &mut Inner, payload: &[u8]) -> io::Result<()> {
        self.rotate_if_due(inner)?;
        inner.writer.append(payload)?;
        metrics().wal_appends.inc();
        metrics().wal_bytes.add(8 + payload.len() as u64);
        Ok(())
    }

    fn append_record(&self, inner: &mut Inner, rec: &WalRecord) -> io::Result<()> {
        let payload = rec
            .encode()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.append_payload(inner, &payload)
    }
}

/// Drain loop of the background writer: batch whatever is queued, append it
/// under one lock acquisition, group-commit once per drained burst. On
/// channel disconnect (handle dropped) the tail is flushed best-effort.
///
/// Sample bursts become two frame kinds: a `K` key-definition frame the
/// first time an id appears since the last sync barrier (mapping the id to
/// its escaped key token), then `B` frames holding the packed entries.
/// Re-emitting `K` after every barrier keeps any barrier position
/// self-contained: replay starting at a checkpointed offset always sees a
/// key's definition before its samples.
fn writer_loop(shared: Arc<Shared>, rx: mpsc::Receiver<Vec<Msg>>) {
    let mut buf: Vec<u8> = Vec::with_capacity(B_FRAME_MAX.min(STAGE_SAMPLE_BYTES) + 1);
    let mut pending: u32 = 0;
    // Private view of the token registry; refreshed (one lock) only when a
    // message references an id newer than the cache.
    let mut tokens: Vec<Arc<str>> = Vec::new();
    // Ids whose `K` frame is already on disk in the current sync epoch.
    let mut defined: Vec<bool> = Vec::new();
    let handle = |inner: &mut Inner,
                  msg: Msg,
                  pending: &mut u32,
                  buf: &mut Vec<u8>,
                  tokens: &mut Vec<Arc<str>>,
                  defined: &mut Vec<bool>| {
        match msg {
            Msg::Bin(bytes) => {
                // ENOSPC degraded mode sheds raw-sample persistence: the
                // in-memory store stays authoritative and verdict-critical
                // records (annotations, retains) below are still attempted.
                if shared.degraded.load(Ordering::Relaxed) {
                    metrics().wal_shed_samples.add((bytes.len() / SAMPLE_ENTRY) as u64);
                    return;
                }
                for e in bytes.chunks_exact(SAMPLE_ENTRY) {
                    let id = u32::from_le_bytes(e[..4].try_into().unwrap()) as usize;
                    if defined.get(id).copied().unwrap_or(false) {
                        continue;
                    }
                    if id >= tokens.len() {
                        // Ids are registered before they are staged, so the
                        // registry always covers this id.
                        tokens.clone_from(&shared.tokens.lock().unwrap());
                    }
                    if defined.len() <= id {
                        defined.resize(id + 1, false);
                    }
                    buf.clear();
                    buf.push(b'K');
                    buf.extend_from_slice(&(id as u32).to_le_bytes());
                    buf.extend_from_slice(tokens[id].as_bytes());
                    if let Err(e) = shared.append_payload(inner, buf) {
                        shared.note_write_error(&e);
                    }
                    defined[id] = true;
                }
                for chunk in bytes.chunks(B_FRAME_MAX) {
                    if shared.degraded.load(Ordering::Relaxed) {
                        metrics().wal_shed_samples.add((chunk.len() / SAMPLE_ENTRY) as u64);
                        continue;
                    }
                    buf.clear();
                    buf.push(b'B');
                    buf.extend_from_slice(chunk);
                    match shared.append_payload(inner, buf) {
                        Ok(()) => *pending += (chunk.len() / SAMPLE_ENTRY) as u32,
                        Err(e) => {
                            shared.note_write_error(&e);
                            if shared.degraded.load(Ordering::Relaxed) {
                                metrics()
                                    .wal_shed_samples
                                    .add((chunk.len() / SAMPLE_ENTRY) as u64);
                            }
                        }
                    }
                }
            }
            Msg::Rec(rec) => {
                if let Err(e) = shared.append_record(inner, &rec) {
                    shared.note_write_error(&e);
                    if is_enospc(&e) {
                        metrics().wal_write_errors.inc();
                    }
                } else {
                    *pending += 1;
                }
            }
            Msg::Batch(recs) => {
                for rec in recs {
                    if let Err(e) = shared.append_record(inner, &rec) {
                        shared.note_write_error(&e);
                        if is_enospc(&e) {
                            metrics().wal_write_errors.inc();
                        }
                    } else {
                        *pending += 1;
                    }
                }
            }
            Msg::Sync(ack) => {
                let r = shared.sync_now(inner);
                if let Err(e) = &r {
                    shared.note_write_error(e);
                }
                *pending = 0;
                // The next burst re-defines its keys so that this barrier's
                // position (a potential checkpoint) starts a tail that is
                // replayable on its own.
                defined.clear();
                if r.is_ok() {
                    // Optimistic re-probe: a successful barrier is the cue
                    // to retry raw-sample persistence; if the disk is still
                    // full the next append re-enters degraded mode.
                    shared.degraded.store(false, Ordering::Relaxed);
                }
                let _ = ack.send(r);
            }
        }
    };
    loop {
        let mut batch = match rx.recv() {
            Ok(b) => b,
            Err(_) => break,
        };
        let mut inner = shared.inner.lock().unwrap();
        loop {
            for msg in batch.drain(..) {
                handle(&mut inner, msg, &mut pending, &mut buf, &mut tokens, &mut defined);
            }
            match rx.try_recv() {
                Ok(next) => batch = next,
                Err(_) => break,
            }
        }
        if pending > 0 {
            if let Err(e) = shared.commit(&mut inner, pending) {
                shared.note_write_error(&e);
            }
            pending = 0;
        }
    }
    let mut inner = shared.inner.lock().unwrap();
    let _ = shared.sync_now(&mut inner);
}

/// The write-ahead log: an append handle over a directory of segments.
///
/// Commit modes `every-n` and `never` run appends through a dedicated
/// writer thread (group commit off the measurement hot path); `always`
/// stays synchronous so an acknowledged append has already been fsynced
/// when the call returns.
pub struct Wal {
    shared: Arc<Shared>,
    /// Staged messages not yet forwarded to the writer thread (async modes
    /// only). Kept producer-side so a staging push is a cheap uncontended
    /// lock, not a channel wake.
    stage: Mutex<Vec<Msg>>,
    /// `Some` in async (writer-thread) mode, `None` for `always`.
    tx: Option<Sender<Vec<Msg>>>,
    writer_thread: Option<thread::JoinHandle<()>>,
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Forward the staged tail, then disconnect the channel so the writer
        // drains and flushes, then join it — a dropped handle leaves every
        // queued record on disk.
        if let Some(tx) = &self.tx {
            let staged = std::mem::take(&mut *self.stage.lock().unwrap());
            if !staged.is_empty() {
                let _ = tx.send(staged);
            }
        }
        drop(self.tx.take());
        if let Some(h) = self.writer_thread.take() {
            let _ = h.join();
        }
    }
}

impl Wal {
    /// Wrap freshly-opened segment state in a handle, spawning the writer
    /// thread for the asynchronous commit modes.
    fn finish(
        dir: &Path,
        policy: FsyncPolicy,
        rotate_bytes: u64,
        vfs: Arc<dyn Vfs>,
        inner: Inner,
    ) -> Wal {
        let shared = Arc::new(Shared {
            dir: dir.to_path_buf(),
            policy,
            rotate_bytes,
            vfs,
            degraded: AtomicBool::new(false),
            inner: Mutex::new(inner),
            tokens: Mutex::new(Vec::new()),
        });
        let stage = Mutex::new(Vec::new());
        if policy == FsyncPolicy::Always {
            return Wal { shared, stage, tx: None, writer_thread: None };
        }
        let (tx, rx) = mpsc::channel();
        let thread_shared = Arc::clone(&shared);
        let h = thread::Builder::new()
            .name("tsdb-wal".into())
            .spawn(move || writer_loop(thread_shared, rx))
            .expect("spawn wal writer thread");
        Wal { shared, stage, tx: Some(tx), writer_thread: Some(h) }
    }

    /// Stage one message, forwarding a full batch to the writer thread when
    /// the staging buffer reaches [`STAGE_FLUSH`].
    fn enqueue(&self, tx: &Sender<Vec<Msg>>, msg: Msg) {
        let mut stage = self.stage.lock().unwrap();
        stage.push(msg);
        if stage.len() >= STAGE_FLUSH {
            let batch = std::mem::replace(&mut *stage, Vec::with_capacity(STAGE_FLUSH));
            drop(stage);
            if tx.send(batch).is_err() {
                metrics().wal_write_errors.inc();
            }
        }
    }

    /// Open (or create) the log in `dir`, continuing after the last intact
    /// record of the newest segment. A torn tail is truncated and counted.
    pub fn open(dir: &Path, policy: FsyncPolicy, rotate_bytes: u64) -> io::Result<Wal> {
        Wal::open_with(dir, policy, rotate_bytes, manic_vfs::real())
    }

    /// [`Self::open`] through an explicit VFS handle (fault injection).
    pub fn open_with(
        dir: &Path,
        policy: FsyncPolicy,
        rotate_bytes: u64,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<Wal> {
        vfs.create_dir_all(dir)?;
        let segments = segment::list_segments_with(&*vfs, dir)?;
        let inner = match segments.last() {
            Some(&(seq, ref path)) => {
                let scan = segment::scan_with(&*vfs, path, 0, false)?;
                if scan.torn {
                    metrics().wal_torn_records.inc();
                }
                Inner {
                    writer: SegmentWriter::open_end_with(&*vfs, path, scan.valid_len)?,
                    seq,
                    since_sync: 0,
                }
            }
            None => Inner {
                writer: SegmentWriter::create_with(&*vfs, &segment_path(dir, 1))?,
                seq: 1,
                since_sync: 0,
            },
        };
        Ok(Wal::finish(dir, policy, rotate_bytes, vfs, inner))
    }

    /// Open the log positioned exactly at `pos`, discarding everything past
    /// it: segments newer than `pos.segment` are deleted and the segment at
    /// `pos` is truncated to `pos.offset`. Used on resume-from-checkpoint —
    /// the discarded tail was never acknowledged by a checkpoint and is
    /// regenerated by deterministic re-execution. Returns the log and the
    /// number of intact records discarded.
    pub fn open_at(
        dir: &Path,
        policy: FsyncPolicy,
        rotate_bytes: u64,
        pos: WalPosition,
    ) -> io::Result<(Wal, u64)> {
        Wal::open_at_with(dir, policy, rotate_bytes, pos, manic_vfs::real())
    }

    /// [`Self::open_at`] through an explicit VFS handle (fault injection).
    pub fn open_at_with(
        dir: &Path,
        policy: FsyncPolicy,
        rotate_bytes: u64,
        pos: WalPosition,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<(Wal, u64)> {
        vfs.create_dir_all(dir)?;
        let mut discarded = 0u64;
        let mut target: Option<PathBuf> = None;
        for (seq, path) in segment::list_segments_with(&*vfs, dir)? {
            if seq > pos.segment {
                let scan = segment::scan_with(&*vfs, &path, 0, false)?;
                discarded += scan.records.len() as u64;
                vfs.remove_file(&path)?;
            } else if seq == pos.segment {
                target = Some(path);
            }
        }
        let inner = match target {
            Some(path) => {
                let scan = segment::scan_with(&*vfs, &path, pos.offset, false)?;
                discarded += scan.records.len() as u64;
                if scan.torn && scan.valid_len > pos.offset {
                    metrics().wal_torn_records.inc();
                }
                // The checkpoint position was durable when written; a file
                // that is nonetheless shorter (or torn earlier) only loses
                // records the checkpoint snapshot already covers.
                let valid = pos.offset.min(scan.valid_len).max(HEADER_LEN);
                Inner {
                    writer: SegmentWriter::open_end_with(&*vfs, &path, valid)?,
                    seq: pos.segment,
                    since_sync: 0,
                }
            }
            None => Inner {
                writer: SegmentWriter::create_with(&*vfs, &segment_path(dir, pos.segment.max(1)))?,
                seq: pos.segment.max(1),
                since_sync: 0,
            },
        };
        metrics().wal_tail_discarded.add(discarded);
        Ok((Wal::finish(dir, policy, rotate_bytes, vfs, inner), discarded))
    }

    pub fn dir(&self) -> &Path {
        &self.shared.dir
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.shared.policy
    }

    /// True while the log is shedding raw-sample persistence because the
    /// disk reported ENOSPC. Verdict-critical records are still attempted.
    pub fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// Append one record under the configured commit policy. Failures are
    /// counted (`manic_tsdb_wal_write_errors`) but do not poison the log
    /// handle — the in-memory store stays authoritative.
    pub fn append(&self, rec: WalRecord) {
        match &self.tx {
            Some(tx) => self.enqueue(tx, Msg::Rec(Box::new(rec))),
            None => {
                // Synchronous mode sheds raw samples under ENOSPC too;
                // control records are always attempted.
                if self.shared.degraded.load(Ordering::Relaxed) {
                    if let WalRecord::Sample { .. } = rec {
                        metrics().wal_shed_samples.inc();
                        return;
                    }
                }
                let mut inner = self.shared.inner.lock().unwrap();
                if let Err(e) = self
                    .shared
                    .append_record(&mut inner, &rec)
                    .and_then(|()| self.shared.commit(&mut inner, 1))
                {
                    self.shared.note_write_error(&e);
                    if is_enospc(&e) && !matches!(rec, WalRecord::Sample { .. }) {
                        metrics().wal_write_errors.inc();
                    }
                }
            }
        }
    }

    /// Sample fast path: `token` caches this series' id in the WAL's
    /// key-token registry (registered here on first use), so steady-state
    /// appends cost a [`SAMPLE_ENTRY`]-byte memcpy into the staging buffer
    /// on the caller's thread — no refcount traffic, no encoding.
    pub fn append_sample(&self, key: &SeriesKey, token: &OnceLock<u32>, point: Point) {
        let Some(tx) = &self.tx else {
            // Synchronous (`always`) mode: the slow path already fsyncs per
            // record; encoding cost is noise there.
            self.append(WalRecord::Sample { key: key.clone(), point });
            return;
        };
        if !point.v.is_finite() {
            // Mirrors `format_line`'s rejection on the text path.
            metrics().wal_write_errors.inc();
            return;
        }
        let id = match token.get() {
            Some(&id) => id,
            None => match format_key(key) {
                Ok(s) => {
                    let mut tokens = self.shared.tokens.lock().unwrap();
                    let id = tokens.len() as u32;
                    tokens.push(s.into());
                    drop(tokens);
                    // A racing registration wastes one registry slot; both
                    // slots hold the same token text, so either id encodes
                    // identically.
                    *token.get_or_init(|| id)
                }
                Err(_) => {
                    metrics().wal_write_errors.inc();
                    return;
                }
            },
        };
        let mut entry = [0u8; SAMPLE_ENTRY];
        entry[..4].copy_from_slice(&id.to_le_bytes());
        entry[4..12].copy_from_slice(&point.t.to_le_bytes());
        entry[12..].copy_from_slice(&point.v.to_bits().to_le_bytes());
        let mut stage = self.stage.lock().unwrap();
        let bin = match stage.last_mut() {
            Some(Msg::Bin(b)) => b,
            _ => {
                stage.push(Msg::Bin(Vec::with_capacity(STAGE_SAMPLE_BYTES)));
                let Some(Msg::Bin(b)) = stage.last_mut() else { unreachable!() };
                b
            }
        };
        bin.extend_from_slice(&entry);
        if bin.len() >= STAGE_SAMPLE_BYTES {
            let batch = std::mem::take(&mut *stage);
            drop(stage);
            if tx.send(batch).is_err() {
                metrics().wal_write_errors.inc();
            }
        }
    }

    /// Batched [`Self::append_sample`]: all of `points` land in the staging
    /// buffer under a single stage-lock acquisition, with one flush check at
    /// the end. Byte-identical to appending the points one by one.
    pub fn append_samples(&self, key: &SeriesKey, token: &OnceLock<u32>, points: &[Point]) {
        if points.is_empty() {
            return;
        }
        let Some(tx) = &self.tx else {
            // Synchronous (`always`) mode fsyncs per record anyway; the
            // batching win is irrelevant there.
            for p in points {
                self.append(WalRecord::Sample { key: key.clone(), point: *p });
            }
            return;
        };
        let id = match token.get() {
            Some(&id) => id,
            None => match format_key(key) {
                Ok(s) => {
                    let mut tokens = self.shared.tokens.lock().unwrap();
                    let id = tokens.len() as u32;
                    tokens.push(s.into());
                    drop(tokens);
                    // A racing registration wastes one registry slot; both
                    // slots hold the same token text, so either id encodes
                    // identically.
                    *token.get_or_init(|| id)
                }
                Err(_) => {
                    metrics().wal_write_errors.inc();
                    return;
                }
            },
        };
        let mut stage = self.stage.lock().unwrap();
        let bin = match stage.last_mut() {
            Some(Msg::Bin(b)) => b,
            _ => {
                stage.push(Msg::Bin(Vec::with_capacity(STAGE_SAMPLE_BYTES)));
                let Some(Msg::Bin(b)) = stage.last_mut() else { unreachable!() };
                b
            }
        };
        for point in points {
            if !point.v.is_finite() {
                // Mirrors `format_line`'s rejection on the text path.
                metrics().wal_write_errors.inc();
                continue;
            }
            let mut entry = [0u8; SAMPLE_ENTRY];
            entry[..4].copy_from_slice(&id.to_le_bytes());
            entry[4..12].copy_from_slice(&point.t.to_le_bytes());
            entry[12..].copy_from_slice(&point.v.to_bits().to_le_bytes());
            bin.extend_from_slice(&entry);
        }
        if bin.len() >= STAGE_SAMPLE_BYTES {
            let batch = std::mem::take(&mut *stage);
            drop(stage);
            if tx.send(batch).is_err() {
                metrics().wal_write_errors.inc();
            }
        }
    }

    /// Append many records with a single group-commit decision.
    pub fn append_batch(&self, recs: Vec<WalRecord>) {
        if recs.is_empty() {
            return;
        }
        match &self.tx {
            Some(tx) => self.enqueue(tx, Msg::Batch(recs)),
            None => {
                let mut inner = self.shared.inner.lock().unwrap();
                let mut ok = 0u32;
                for rec in &recs {
                    match self.shared.append_record(&mut inner, rec) {
                        Ok(()) => ok += 1,
                        Err(_) => metrics().wal_write_errors.inc(),
                    }
                }
                if self.shared.commit(&mut inner, ok).is_err() {
                    metrics().wal_write_errors.inc();
                }
            }
        }
    }

    /// Flush buffers and fsync regardless of policy (checkpoint and drain
    /// paths). In async mode this is a barrier: every append enqueued
    /// before this call is on disk when it returns.
    pub fn flush_and_sync(&self) -> io::Result<()> {
        if let Some(tx) = &self.tx {
            let (ack_tx, ack_rx) = mpsc::channel();
            let gone = || io::Error::new(io::ErrorKind::BrokenPipe, "wal writer thread gone");
            // The staged tail rides in front of the barrier in one batch so
            // the sync covers everything enqueued before this call.
            let mut batch = std::mem::take(&mut *self.stage.lock().unwrap());
            batch.push(Msg::Sync(ack_tx));
            tx.send(batch).map_err(|_| gone())?;
            return ack_rx.recv().map_err(|_| gone())?;
        }
        let mut inner = self.shared.inner.lock().unwrap();
        let r = self.shared.sync_now(&mut inner);
        if r.is_ok() {
            // Same optimistic re-probe the writer thread does at barriers.
            self.shared.degraded.store(false, Ordering::Relaxed);
        }
        r
    }

    /// Current end-of-log position. Meaningful as a durability point only
    /// after [`Self::flush_and_sync`].
    pub fn position(&self) -> WalPosition {
        let inner = self.shared.inner.lock().unwrap();
        WalPosition { segment: inner.seq, offset: inner.writer.offset() }
    }

    /// Delete segments strictly older than `segment` (they are fully
    /// covered by a checkpoint snapshot). Returns how many were removed.
    pub fn gc_before(&self, segment: u64) -> io::Result<usize> {
        // Hold the segment lock so rotation cannot race the directory walk.
        let _inner = self.shared.inner.lock().unwrap();
        let mut removed = 0;
        for (seq, path) in segment::list_segments_with(&*self.shared.vfs, &self.shared.dir)? {
            if seq < segment {
                self.shared.vfs.remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// Outcome of a replay.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Segment files visited.
    pub segments: u64,
    /// Records applied, by kind.
    pub samples: u64,
    pub annotations: u64,
    pub retains: u64,
    /// Torn tails fenced off (truncation events at a segment end).
    pub torn_records: u64,
    /// CRC-valid payloads that failed to decode (skipped).
    pub decode_errors: u64,
    /// Mid-file corrupt ranges resync skipped over (each range holds one or
    /// more unparseable frames); only non-zero for resync-mode replay.
    pub quarantined_frames: u64,
    /// Bytes covered by those quarantined ranges.
    pub quarantined_bytes: u64,
    /// Time windows `[from, to)` flagged GAP on every series because the
    /// covering WAL range was quarantined or lost mid-directory.
    pub gap_windows: Vec<(i64, i64)>,
}

impl ReplayReport {
    pub fn records(&self) -> u64 {
        self.samples + self.annotations + self.retains
    }

    /// True when replay had to heal around corruption (as opposed to a
    /// clean log or a plain crash tail).
    pub fn corrupted(&self) -> bool {
        self.quarantined_frames > 0 || !self.gap_windows.is_empty()
    }
}

fn replay_payloads(
    payloads: &[(u64, Vec<u8>)],
    store: &Store,
    report: &mut ReplayReport,
    keymap: &mut Vec<Option<SeriesKey>>,
) {
    for (_, payload) in payloads {
        match payload.split_first() {
            // Key definition: `u32 LE id` + escaped key token. Later
            // definitions overwrite — ids restart at 0 whenever the log is
            // reopened, and the writer re-defines keys after every sync
            // barrier, so in-order replay always holds the current mapping.
            Some((b'K', body)) => {
                let def = body.split_at_checked(4).and_then(|(id, tok)| {
                    let id = u32::from_le_bytes(id.try_into().unwrap()) as usize;
                    let key = parse_key(std::str::from_utf8(tok).ok()?).ok()?;
                    Some((id, key))
                });
                match def {
                    Some((id, key)) => {
                        if keymap.len() <= id {
                            keymap.resize(id + 1, None);
                        }
                        keymap[id] = Some(key);
                    }
                    None => report.decode_errors += 1,
                }
            }
            // Packed sample batch: SAMPLE_ENTRY-byte entries.
            Some((b'B', body)) => {
                if body.len() % SAMPLE_ENTRY != 0 {
                    report.decode_errors += 1;
                }
                for e in body.chunks_exact(SAMPLE_ENTRY) {
                    let id = u32::from_le_bytes(e[..4].try_into().unwrap()) as usize;
                    let t = i64::from_le_bytes(e[4..12].try_into().unwrap());
                    let v = f64::from_bits(u64::from_le_bytes(e[12..].try_into().unwrap()));
                    match keymap.get(id).and_then(Option::as_ref) {
                        Some(key) => {
                            let rec = WalRecord::Sample { key: key.clone(), point: Point::new(t, v) };
                            store.apply_record(&rec);
                            report.samples += 1;
                            metrics().wal_replayed_records.inc();
                        }
                        None => report.decode_errors += 1,
                    }
                }
            }
            _ => match WalRecord::decode(payload) {
                Ok(rec) => {
                    match rec {
                        WalRecord::Sample { .. } => report.samples += 1,
                        WalRecord::Annotate { .. } => report.annotations += 1,
                        WalRecord::Retain { .. } => report.retains += 1,
                    }
                    store.apply_record(&rec);
                    metrics().wal_replayed_records.inc();
                }
                Err(_) => report.decode_errors += 1,
            },
        }
    }
}

/// Replay a single segment file (e.g. a checkpoint's store snapshot) into
/// `store`. The store must not have a WAL attached yet, or the replay would
/// be re-logged.
pub fn replay_segment_file(path: &Path, store: &Store) -> io::Result<ReplayReport> {
    replay_segment_file_with(&manic_vfs::RealVfs, path, store)
}

/// [`replay_segment_file`] through an explicit VFS handle. Snapshot replay
/// is strict (no resync): a corrupt snapshot fails its content-hash check
/// and the checkpoint machinery falls back a generation instead.
pub fn replay_segment_file_with(
    vfs: &dyn Vfs,
    path: &Path,
    store: &Store,
) -> io::Result<ReplayReport> {
    let mut report = ReplayReport { segments: 1, ..ReplayReport::default() };
    let scan = segment::scan_with(vfs, path, 0, false)?;
    if scan.torn {
        report.torn_records += 1;
        metrics().wal_torn_records.inc();
    }
    let mut keymap = Vec::new();
    replay_payloads(&scan.records, store, &mut report, &mut keymap);
    Ok(report)
}

/// First and last sample timestamps carried by a payload, if any.
fn payload_times(payload: &[u8]) -> Option<(i64, i64)> {
    match payload.split_first() {
        Some((b'B', body)) => {
            let n = body.len() / SAMPLE_ENTRY;
            if n == 0 {
                return None;
            }
            let t_at = |i: usize| {
                let e = &body[i * SAMPLE_ENTRY..(i + 1) * SAMPLE_ENTRY];
                i64::from_le_bytes(e[4..12].try_into().unwrap())
            };
            Some((t_at(0), t_at(n - 1)))
        }
        Some((b'S', _)) => match WalRecord::decode(payload) {
            Ok(WalRecord::Sample { point, .. }) => Some((point.t, point.t)),
            _ => None,
        },
        _ => None,
    }
}

/// Conservative GAP window bracketing a quarantined byte range: from the
/// last sample time before it to just past the first sample time after it.
fn bracket_gap(before: Option<i64>, after: Option<i64>) -> Option<(i64, i64)> {
    match (before, after) {
        (Some(a), Some(b)) => {
            let (lo, hi) = (a.min(b), a.max(b));
            Some((lo, hi.saturating_add(1)))
        }
        (Some(a), None) => Some((a, a.saturating_add(1))),
        (None, Some(b)) => Some((b, b.saturating_add(1))),
        (None, None) => None,
    }
}

/// GAP window for a quarantined `[s, e)` byte range inside one segment's
/// decoded record list (offsets are frame ends, sorted ascending).
fn gap_window(records: &[(u64, Vec<u8>)], s: u64, e: u64) -> Option<(i64, i64)> {
    let before = records
        .iter()
        .rev()
        .filter(|(o, _)| *o <= s)
        .find_map(|(_, p)| payload_times(p).map(|(_, last)| last));
    let after = records
        .iter()
        .filter(|(o, _)| *o > e)
        .find_map(|(_, p)| payload_times(p).map(|(first, _)| first));
    bracket_gap(before, after)
}

/// Self-healing replay of `dir` into `store`, bounded to `(from, to]`:
/// records at or before `from` are skipped (a checkpoint snapshot covers
/// them), records after `to` (when given) are ignored — that is how
/// generation fallback replays an *older* snapshot forward to a *newer*
/// checkpoint's recorded position.
///
/// Mid-file corrupt frames are quarantined (resync scan), counted, and
/// fenced with GAP quality windows over every series, so one rotten frame
/// costs a flagged measurement window instead of the whole log. A torn tail
/// on the *last* segment is the normal crash tail and simply ends replay; a
/// torn tail with more segments after it is corruption and is bridged with
/// a GAP window into the next segment.
pub fn replay_dir_range(
    vfs: &dyn Vfs,
    dir: &Path,
    store: &Store,
    from: WalPosition,
    to: Option<WalPosition>,
) -> io::Result<ReplayReport> {
    let mut report = ReplayReport::default();
    let mut keymap = Vec::new();
    // Open inter-segment gap: the last sample time of a mid-directory torn
    // segment, waiting for the next segment's first time to close it.
    let mut open_gap: Option<Option<i64>> = None;
    let segs: Vec<(u64, PathBuf)> = segment::list_segments_with(vfs, dir)?
        .into_iter()
        .filter(|&(seq, _)| seq >= from.segment && to.is_none_or(|t| seq <= t.segment))
        .collect();
    let last_idx = segs.len().saturating_sub(1);
    for (idx, (seq, path)) in segs.into_iter().enumerate() {
        let start = if seq == from.segment { from.offset } else { 0 };
        let scan = segment::scan_with(vfs, &path, start, true)?;
        report.segments += 1;
        let bound = to.filter(|t| t.segment == seq).map(|t| t.offset);
        let records: &[(u64, Vec<u8>)] = match bound {
            Some(b) => {
                let cut = scan.records.partition_point(|&(o, _)| o <= b);
                &scan.records[..cut]
            }
            None => &scan.records,
        };
        if let Some(before) = open_gap.take() {
            let after = records.iter().find_map(|(_, p)| payload_times(p).map(|(f, _)| f));
            if let Some(w) = bracket_gap(before, after) {
                report.gap_windows.push(w);
            }
        }
        for &(s, e) in &scan.quarantined {
            if e <= start || bound.is_some_and(|b| s >= b) {
                // Fully below the snapshot-covered prefix, or past the
                // replay bound: not this replay's problem.
                continue;
            }
            report.quarantined_frames += 1;
            report.quarantined_bytes += e - s;
            metrics().wal_torn_records.inc();
            metrics().wal_quarantined_bytes.add(e - s);
            if let Some(w) = gap_window(records, s, e) {
                report.gap_windows.push(w);
            }
        }
        replay_payloads(records, store, &mut report, &mut keymap);
        if scan.torn {
            report.torn_records += 1;
            metrics().wal_torn_records.inc();
            if idx == last_idx {
                // Normal crash tail: everything past it was unacknowledged.
                break;
            }
            // Corruption swallowed the end of a mid-directory segment; keep
            // replaying the rest of the log and fence the hole.
            report.quarantined_frames += 1;
            open_gap = Some(
                records.iter().rev().find_map(|(_, p)| payload_times(p).map(|(_, l)| l)),
            );
        }
    }
    for &(f, t) in &report.gap_windows {
        store.annotate_all(f, t, crate::quality::GAP);
        metrics().wal_gap_annotations.inc();
    }
    Ok(report)
}

/// Replay every record in `dir` after `pos` into `store`. Mid-file
/// corruption is quarantined and GAP-flagged (see [`replay_dir_range`]);
/// only a torn tail on the final segment ends replay early. Replay is
/// deterministic: the same segments always rebuild identical store
/// contents.
pub fn replay_dir_from(dir: &Path, store: &Store, pos: WalPosition) -> io::Result<ReplayReport> {
    replay_dir_range(&manic_vfs::RealVfs, dir, store, pos, None)
}

/// Replay the whole directory from the beginning.
pub fn replay_dir(dir: &Path, store: &Store) -> io::Result<ReplayReport> {
    replay_dir_from(dir, store, WalPosition { segment: 0, offset: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::Point;

    fn k(link: &str) -> SeriesKey {
        SeriesKey::with_tags("tslp", &[("vp", "v1"), ("link", link), ("end", "far")])
    }

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("manic-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn policy_parse_and_display_roundtrip() {
        for (s, want) in [
            ("always", FsyncPolicy::Always),
            ("never", FsyncPolicy::Never),
            ("every-n", FsyncPolicy::EveryN(64)),
            ("every-7", FsyncPolicy::EveryN(7)),
        ] {
            assert_eq!(FsyncPolicy::parse(s), Some(want));
            assert_eq!(FsyncPolicy::parse(&want.to_string()), Some(want));
        }
        for bad in ["", "sometimes", "every-0", "every-x", "every-"] {
            assert_eq!(FsyncPolicy::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn record_codec_roundtrip() {
        let records = vec![
            WalRecord::Sample { key: k("1.2.3.4"), point: Point::new(300, 18.5) },
            WalRecord::Annotate { key: k("od d,=\\"), from: 0, to: 600, flags: 0b1010 },
            WalRecord::Retain { cutoff: -12345 },
        ];
        for rec in records {
            let enc = rec.encode().unwrap();
            assert_eq!(WalRecord::decode(&enc).unwrap(), rec);
        }
        assert!(matches!(WalRecord::decode(b""), Err(WalCodecError::Empty)));
        assert!(matches!(WalRecord::decode(b"Zx"), Err(WalCodecError::UnknownKind(b'Z'))));
        assert!(matches!(WalRecord::decode(b"A only-a-key"), Err(WalCodecError::Malformed(_))));
        assert!(matches!(WalRecord::decode(b"Rnot-a-number"), Err(WalCodecError::Malformed(_))));
        assert!(matches!(WalRecord::decode(&[b'S', 0xFF, 0xFE]), Err(WalCodecError::NotUtf8)));
    }

    #[test]
    fn replay_rebuilds_and_is_deterministic() {
        let dir = tmpdir("replay");
        let wal = Wal::open(&dir, FsyncPolicy::Always, 1 << 20).unwrap();
        let live = Store::new();
        live.attach_wal(std::sync::Arc::new(wal));
        for t in 0..20 {
            live.write(&k("a"), t * 300, t as f64);
        }
        live.annotate(&k("a"), 0, 600, 1);
        live.retain_from(900);
        live.write(&k("b"), 5000, 2.5);

        let r1 = Store::new();
        let rep1 = replay_dir(&dir, &r1).unwrap();
        let r2 = Store::new();
        let rep2 = replay_dir(&dir, &r2).unwrap();
        assert_eq!(rep1, rep2);
        assert_eq!(rep1.torn_records, 0);
        assert_eq!(rep1.samples, 21);
        assert_eq!(rep1.annotations, 1);
        assert_eq!(rep1.retains, 1);
        assert_eq!(r1.content_hash(), r2.content_hash());
        assert_eq!(r1.content_hash(), live.content_hash(), "replay matches the live store");
        assert_eq!(r1.point_count(), live.point_count());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_spreads_records_across_segments_and_gc_drops_old() {
        let dir = tmpdir("rotate");
        let wal = Wal::open(&dir, FsyncPolicy::EveryN(8), 256).unwrap();
        let store = Store::new();
        let wal = std::sync::Arc::new(wal);
        store.attach_wal(std::sync::Arc::clone(&wal));
        for t in 0..100 {
            store.write(&k("a"), t, t as f64);
            if t % 10 == 9 {
                // Barrier every 10 samples so the batched fast path emits
                // many frames and the 256-byte threshold actually rotates.
                wal.flush_and_sync().unwrap();
            }
        }
        wal.flush_and_sync().unwrap();
        let segs = segment::list_segments(&dir).unwrap();
        assert!(segs.len() > 2, "256-byte threshold rotates: {} segments", segs.len());
        let pos = wal.position();
        let rebuilt = Store::new();
        let rep = replay_dir(&dir, &rebuilt).unwrap();
        assert_eq!(rep.samples, 100);
        assert_eq!(rebuilt.content_hash(), store.content_hash());
        let removed = wal.gc_before(pos.segment).unwrap();
        assert_eq!(removed, segs.len() - 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_binary_path_replays_identically_and_from_barriers() {
        let dir = tmpdir("binbatch");
        let wal = std::sync::Arc::new(Wal::open(&dir, FsyncPolicy::EveryN(64), 1 << 20).unwrap());
        let live = Store::new();
        live.attach_wal(std::sync::Arc::clone(&wal));
        // Phase 1, then a sync barrier whose position acts as a checkpoint.
        for t in 0..50 {
            live.write(&k("a"), t * 300, t as f64);
            live.write(&k("b"), t * 300, -t as f64);
        }
        wal.flush_and_sync().unwrap();
        let barrier = wal.position();
        // Phase 2 mixes samples with a text record to exercise interleaving.
        live.annotate(&k("a"), 0, 600, 1);
        for t in 50..80 {
            live.write(&k("a"), t * 300, t as f64);
            live.write(&k("c"), t * 300, 0.5);
        }
        // NaN is rejected on the fast path too, not silently corrupted.
        live.write(&k("a"), 99_000, f64::NAN);
        wal.flush_and_sync().unwrap();
        drop(wal);

        // Full replay rebuilds everything except the rejected NaN point.
        let full = Store::new();
        let rep = replay_dir(&dir, &full).unwrap();
        assert_eq!(rep.samples, 160);
        assert_eq!(rep.annotations, 1);
        assert_eq!(rep.decode_errors, 0);
        assert_eq!(full.point_count(), live.point_count() - 1);

        // A tail replay from the barrier is self-contained: the writer
        // re-defines key tokens after every sync, so the phase-2 records
        // decode without seeing phase 1.
        let tail = Store::new();
        for t in 0..50 {
            tail.write(&k("a"), t * 300, t as f64);
            tail.write(&k("b"), t * 300, -t as f64);
        }
        let tail_rep = replay_dir_from(&dir, &tail, barrier).unwrap();
        assert_eq!(tail_rep.samples, 60);
        assert_eq!(tail_rep.decode_errors, 0);
        assert_eq!(tail.content_hash(), full.content_hash());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn midfile_corruption_is_quarantined_and_gap_flagged() {
        let dir = tmpdir("quarantine");
        let wal = Wal::open(&dir, FsyncPolicy::Always, 1 << 20).unwrap();
        let live = Store::new();
        live.attach_wal(std::sync::Arc::new(wal));
        for t in 0..10i64 {
            live.write(&k("a"), t * 300, t as f64);
        }
        let (_, path) = segment::list_segments(&dir).unwrap().pop().unwrap();
        let clean = segment::scan(&path, 0).unwrap();
        assert_eq!(clean.records.len(), 10);
        // Flip one payload byte inside the 6th frame (sample t=1500).
        let frame_start = clean.records[4].0;
        let mut raw = std::fs::read(&path).unwrap();
        raw[frame_start as usize + 9] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();

        let rebuilt = Store::new();
        let rep = replay_dir(&dir, &rebuilt).unwrap();
        assert_eq!(rep.samples, 9, "all but the corrupt frame replay");
        assert_eq!(rep.torn_records, 0, "mid-file corruption is not a torn tail");
        assert_eq!(rep.quarantined_frames, 1);
        assert!(rep.quarantined_bytes > 0);
        assert!(rep.corrupted());
        // The hole between t=1200 and t=1800 is fenced with a GAP window.
        assert_eq!(rep.gap_windows, vec![(1200, 1801)]);
        let flagged = rebuilt
            .quality_windows(&k("a"))
            .iter()
            .any(|&(f, t, fl)| f <= 1200 && t >= 1800 && fl & crate::quality::GAP != 0);
        assert!(flagged, "GAP annotation covers the quarantined window");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_sheds_samples_but_keeps_control_records() {
        use manic_vfs::{DiskFaultEvent, DiskFaultKind, DiskFaultPlan, FaultVfs};
        let dir = tmpdir("enospc");
        // The disk is full from the first physical write on (the segment
        // writer buffers, so that is the first barrier's flush).
        let vfs = FaultVfs::new(DiskFaultPlan::new(vec![DiskFaultEvent::window(
            DiskFaultKind::Enospc,
            0,
            u64::MAX,
        )]));
        let wal = Wal::open_with(&dir, FsyncPolicy::EveryN(4), 1 << 20, Arc::new(vfs.clone()))
            .unwrap();
        let live = Store::new();
        let wal = std::sync::Arc::new(wal);
        live.attach_wal(std::sync::Arc::clone(&wal));
        for t in 0..50i64 {
            live.write(&k("a"), t * 300, t as f64);
        }
        // First barrier forces the staged burst into the full disk.
        let _ = wal.flush_and_sync();
        assert!(wal.degraded(), "ENOSPC flips the log into degraded mode");
        assert!(vfs.stats().enospc > 0);
        // Verdict-critical records are still attempted while degraded.
        live.annotate(&k("a"), 0, 600, crate::quality::SUSPECT_RATE_LIMITED);
        let _ = wal.flush_and_sync();
        // The in-memory store is authoritative regardless of shedding.
        assert_eq!(live.point_count(), 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_at_truncates_unacknowledged_tail() {
        let dir = tmpdir("openat");
        let wal = Wal::open(&dir, FsyncPolicy::Always, 1 << 20).unwrap();
        let store = Store::new();
        let wal = std::sync::Arc::new(wal);
        store.attach_wal(std::sync::Arc::clone(&wal));
        for t in 0..5 {
            store.write(&k("a"), t, 1.0);
        }
        wal.flush_and_sync().unwrap();
        let ack = wal.position();
        for t in 5..9 {
            store.write(&k("a"), t, 1.0);
        }
        wal.flush_and_sync().unwrap();
        drop((store, wal));

        let (wal2, discarded) = Wal::open_at(&dir, FsyncPolicy::Always, 1 << 20, ack).unwrap();
        assert_eq!(discarded, 4, "post-checkpoint tail discarded");
        assert_eq!(wal2.position(), ack);
        let rebuilt = Store::new();
        assert_eq!(replay_dir(&dir, &rebuilt).unwrap().samples, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
