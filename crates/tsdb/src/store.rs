//! The sharded series store.

use crate::key::{SeriesKey, TagSet};
use crate::quality::{QualityFlags, QualityLog};
use crate::series::{Aggregate, Point, Series};
use crate::wal::{Wal, WalRecord};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Default shard count — the pre-planetary operating point.
const SHARDS: usize = 16;

/// Shard count sized to an expected far-link keyspace: roughly one shard per
/// 128 concurrently-written series, kept to a power of two between 16 and
/// 256. Planetary worlds (tens of thousands of observed links) get wider
/// stripes; the hand-built worlds keep the classic 16.
pub fn recommended_shards(expected_series: usize) -> usize {
    let want = (expected_series / 128).clamp(16, 256);
    want.next_power_of_two().min(256)
}

/// Seqlock-published most-recent sample of one series.
///
/// Writers (which are already serialized per series by the points shard
/// write lock) bump `seq` to odd, store the pair, bump back to even; readers
/// retry until they observe a stable even `seq`. Readers therefore never
/// touch a shard lock once they hold the cell — the serving layer's
/// `latest()` hot path proceeds even while ingest holds every shard write
/// lock.
#[derive(Debug, Default)]
pub struct LatestCell {
    /// Even = stable; zero = never written.
    seq: AtomicU64,
    t: AtomicI64,
    /// `f64::to_bits` of the value.
    bits: AtomicU64,
}

impl LatestCell {
    /// Publish a new latest sample. Callers must hold the per-series write
    /// exclusion (the points shard write lock) — the seqlock protocol
    /// assumes one writer at a time.
    fn publish(&self, t: i64, v: f64) {
        self.seq.fetch_add(1, Ordering::Release);
        self.t.store(t, Ordering::Relaxed);
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Release);
    }

    /// Timestamp of the published sample, or `i64::MIN` when never written.
    /// Only meaningful to the (exclusive) writer deciding whether a new
    /// sample supersedes the published one.
    fn writer_t(&self) -> i64 {
        if self.seq.load(Ordering::Relaxed) == 0 {
            i64::MIN
        } else {
            self.t.load(Ordering::Relaxed)
        }
    }

    /// Lock-free consistent read of the latest `(t, v)` pair.
    pub fn read(&self) -> Option<Point> {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 == 0 {
                return None;
            }
            if s1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let t = self.t.load(Ordering::Relaxed);
            let bits = self.bits.load(Ordering::Relaxed);
            if self.seq.load(Ordering::Acquire) == s1 {
                return Some(Point::new(t, f64::from_bits(bits)));
            }
        }
    }
}

/// Cloneable handle onto one series' latest-sample cell; hot read loops
/// fetch it once and bypass even the lookup-map read lock thereafter.
pub type LatestHandle = Arc<LatestCell>;

/// Tag predicate for series selection: every listed pair must match.
pub type TagFilter = TagSet;

/// Concurrent store of tagged time series.
///
/// Writers take a shard write lock only for their series' shard; analysis
/// queries take read locks, so steady-state ingest and read-side analytics do
/// not serialize against each other (the paper's backend ingests TSLP rounds
/// continuously while inference jobs run on a longer cadence).
///
/// ```
/// use manic_tsdb::{Aggregate, SeriesKey, Store};
///
/// let store = Store::new();
/// let key = SeriesKey::with_tags("tslp", &[("vp", "ark1"), ("end", "far")]);
/// for round in 0..12 {
///     store.write(&key, round * 300, 20.0 + (round % 3) as f64);
/// }
/// // The inference pre-processing step: minimum per 15-minute bin.
/// let bins = store.downsample(&key, 0, 3600, 900, Aggregate::Min);
/// assert_eq!(bins.len(), 4);
/// assert!(bins.iter().all(|p| p.v == 20.0));
/// ```
pub struct Store {
    shards: Vec<RwLock<HashMap<SeriesKey, Series>>>,
    /// Quality annotations, sharded like the points (see [`crate::quality`]).
    quality: Vec<RwLock<HashMap<SeriesKey, QualityLog>>>,
    /// Latest-sample cells, sharded like the points. The map lock is only
    /// taken to locate a cell; the cell itself is a seqlock (see
    /// [`LatestCell`]), so `latest()` readers never contend with ingest.
    latest: Vec<RwLock<HashMap<SeriesKey, LatestHandle>>>,
    /// Optional write-ahead log; when attached, every mutation is appended
    /// to it before being applied in memory.
    wal: OnceLock<Arc<Wal>>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    pub fn new() -> Self {
        Self::with_shards(SHARDS)
    }

    /// A store striped over `n` shards (rounded up to at least 1). Shard
    /// count affects only contention, never contents: dumps, snapshots, and
    /// hashes iterate keys in sorted order regardless of striping.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        Store {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            quality: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            latest: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            wal: OnceLock::new(),
        }
    }

    /// Number of stripes this store was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Attach a write-ahead log; from here on every mutation is journaled
    /// before being applied. Attach *after* any replay into this store, or
    /// the replayed records would be logged again. The first attach wins.
    pub fn attach_wal(&self, wal: Arc<Wal>) {
        let _ = self.wal.set(wal);
    }

    /// The attached WAL, if any.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.get()
    }

    fn shard_index(&self, key: &SeriesKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    fn shard(&self, key: &SeriesKey) -> &RwLock<HashMap<SeriesKey, Series>> {
        &self.shards[self.shard_index(key)]
    }

    /// The latest cell of `key`, created on first use. Must be called while
    /// holding the points shard write lock for `key` so that cell publishes
    /// stay single-writer.
    fn latest_cell(&self, key: &SeriesKey) -> LatestHandle {
        if let Some(cell) = self.latest[self.shard_index(key)].read().unwrap().get(key) {
            return Arc::clone(cell);
        }
        let mut map = self.latest[self.shard_index(key)].write().unwrap();
        Arc::clone(map.entry(key.clone()).or_default())
    }

    /// Append one point to a series, creating the series if needed.
    pub fn write(&self, key: &SeriesKey, t: i64, v: f64) {
        let mut shard = self.shard(key).write().unwrap();
        let series = shard.entry(key.clone()).or_default();
        // Logged before applied; holding the shard lock across the enqueue
        // keeps WAL order identical to apply order within a series.
        if let Some(wal) = self.wal.get() {
            wal.append_sample(key, &series.wal_key_token, Point::new(t, v));
        }
        series.push(t, v);
        drop(shard);
        let cell = self.latest_cell(key);
        if t >= cell.writer_t() {
            cell.publish(t, v);
        }
    }

    /// Append many points to a series in one lock acquisition.
    pub fn write_batch(&self, key: &SeriesKey, points: &[Point]) {
        if points.is_empty() {
            return;
        }
        let mut shard = self.shard(key).write().unwrap();
        let series = shard.entry(key.clone()).or_default();
        if let Some(wal) = self.wal.get() {
            wal.append_samples(key, &series.wal_key_token, points);
        }
        let mut newest: Option<Point> = None;
        for p in points {
            series.push(p.t, p.v);
            if newest.is_none_or(|n| p.t >= n.t) {
                newest = Some(*p);
            }
        }
        let cell = self.latest_cell(key);
        if let Some(n) = newest {
            if n.t >= cell.writer_t() {
                cell.publish(n.t, n.v);
            }
        }
    }

    /// Most recent sample of one series without touching any shard write
    /// lock: the lookup takes a read lock on a dedicated cell map (never
    /// held by point ingest beyond first-write cell creation) and the cell
    /// itself is read via a seqlock. Reflects the highest-timestamp sample
    /// ever written, independent of retention trimming.
    pub fn latest(&self, key: &SeriesKey) -> Option<Point> {
        self.latest[self.shard_index(key)]
            .read()
            .unwrap()
            .get(key)
            .and_then(|cell| cell.read())
    }

    /// Cloneable handle for repeated [`Self::latest`]-style reads of one
    /// series; `None` until the series receives its first point.
    pub fn latest_handle(&self, key: &SeriesKey) -> Option<LatestHandle> {
        self.latest[self.shard_index(key)].read().unwrap().get(key).map(Arc::clone)
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Total number of stored points.
    pub fn point_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap().values().map(Series::len).sum::<usize>())
            .sum()
    }

    /// All series keys for `measurement` whose tags match `filter`.
    pub fn find_series(&self, measurement: &str, filter: &TagFilter) -> Vec<SeriesKey> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.read().unwrap();
            for key in shard.keys() {
                if key.measurement == measurement && key.tags.matches(filter) {
                    out.push(key.clone());
                }
            }
        }
        out.sort();
        out
    }

    /// Raw points of one series in `[start, end)`.
    pub fn query(&self, key: &SeriesKey, start: i64, end: i64) -> Vec<Point> {
        let shard = self.shard(key).read().unwrap();
        shard.get(key).map(|s| s.range(start, end)).unwrap_or_default()
    }

    /// Downsampled view of one series (sparse: empty bins omitted).
    pub fn downsample(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
    ) -> Vec<Point> {
        let shard = self.shard(key).read().unwrap();
        shard
            .get(key)
            .map(|s| s.downsample(start, end, bin_secs, agg))
            .unwrap_or_default()
    }

    /// Dense downsampled view (one `Option<f64>` per bin across the window).
    pub fn downsample_dense(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
    ) -> Vec<Option<f64>> {
        let mut out = Vec::new();
        self.downsample_dense_into(key, start, end, bin_secs, agg, &mut out);
        out
    }

    /// [`Self::downsample_dense`] into a caller-owned buffer (cleared
    /// first): the per-round inference loop rescans thousands of link
    /// windows and must not pay one allocation per link per round.
    pub fn downsample_dense_into(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        if bin_secs <= 0 || end <= start {
            return;
        }
        let shard = self.shard(key).read().unwrap();
        match shard.get(key) {
            Some(s) => s.downsample_dense_into(start, end, bin_secs, agg, out),
            None => {
                let nbins = ((end - start) + bin_secs - 1) / bin_secs;
                out.resize(nbins as usize, None);
            }
        }
    }

    /// Materialize a downsampled rollup of every series of `measurement`
    /// matching `filter` into `target` (InfluxDB continuous-query style):
    /// each source series gets a same-tag series under the target
    /// measurement holding one aggregated point per bin. Returns the number
    /// of points written. The production deployment keeps raw five-minute
    /// TSLP samples on a short retention and hour-level rollups for the
    /// longitudinal dashboards; this is that mechanism.
    #[allow(clippy::too_many_arguments)]
    pub fn rollup(
        &self,
        measurement: &str,
        filter: &TagFilter,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
        target: &str,
    ) -> usize {
        let mut written = 0;
        for key in self.find_series(measurement, filter) {
            let points = self.downsample(&key, start, end, bin_secs, agg);
            if points.is_empty() {
                continue;
            }
            let tkey = SeriesKey::new(target, key.tags.clone());
            written += points.len();
            self.write_batch(&tkey, &points);
        }
        written
    }

    /// Attach quality flags to `[from, to)` of one series. Annotations are
    /// independent of points: a series can be annotated before (or without)
    /// ever receiving data — a quarantined task writes gaps, not points.
    pub fn annotate(&self, key: &SeriesKey, from: i64, to: i64, flags: QualityFlags) {
        if let Some(wal) = self.wal.get() {
            wal.append(WalRecord::Annotate { key: key.clone(), from, to, flags });
        }
        let mut shard = self.quality[self.shard_index(key)].write().unwrap();
        shard.entry(key.clone()).or_default().annotate(from, to, flags);
    }

    /// Attach quality flags to `[from, to)` of *every* series currently in
    /// the store (points or existing annotations). Used by self-healing
    /// replay to fence quarantined WAL ranges: corrupt frames are
    /// interleaved across series, so the whole window is suspect for all of
    /// them. Returns the number of series annotated.
    pub fn annotate_all(&self, from: i64, to: i64, flags: QualityFlags) -> usize {
        let mut keys: Vec<SeriesKey> = Vec::new();
        for shard in &self.shards {
            keys.extend(shard.read().unwrap().keys().cloned());
        }
        for shard in &self.quality {
            keys.extend(shard.read().unwrap().keys().cloned());
        }
        keys.sort();
        keys.dedup();
        for key in &keys {
            self.annotate(key, from, to, flags);
        }
        keys.len()
    }

    /// All annotation windows of one series, `(from, to, flags)`.
    pub fn quality_windows(&self, key: &SeriesKey) -> Vec<(i64, i64, QualityFlags)> {
        let shard = self.quality[self.shard_index(key)].read().unwrap();
        shard.get(key).map(|l| l.windows().to_vec()).unwrap_or_default()
    }

    /// Per-bin OR of quality flags over `[start, end)` — same bin layout as
    /// [`Self::downsample_dense`], so the two zip together for masking.
    pub fn quality_dense(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
        bin_secs: i64,
    ) -> Vec<QualityFlags> {
        let mut out = Vec::new();
        self.quality_dense_into(key, start, end, bin_secs, &mut out);
        out
    }

    /// [`Self::quality_dense`] into a caller-owned buffer (cleared first).
    pub fn quality_dense_into(
        &self,
        key: &SeriesKey,
        start: i64,
        end: i64,
        bin_secs: i64,
        out: &mut Vec<QualityFlags>,
    ) {
        out.clear();
        if bin_secs <= 0 || end <= start {
            return;
        }
        let shard = self.quality[self.shard_index(key)].read().unwrap();
        match shard.get(key) {
            Some(l) => l.dense_into(start, end, bin_secs, out),
            None => {
                let nbins = ((end - start) + bin_secs - 1) / bin_secs;
                out.resize(nbins as usize, 0);
            }
        }
    }

    /// Apply a retention policy: drop all points older than `cutoff`, and
    /// trim quality-flag windows to the retained range so flags never
    /// outlive the data they annotate. Returns the number of points removed.
    pub fn retain_from(&self, cutoff: i64) -> usize {
        if let Some(wal) = self.wal.get() {
            wal.append(WalRecord::Retain { cutoff });
        }
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.write().unwrap();
            for series in shard.values_mut() {
                removed += series.trim_before(cutoff);
            }
            shard.retain(|_, s| !s.is_empty());
        }
        for shard in &self.quality {
            let mut shard = shard.write().unwrap();
            for log in shard.values_mut() {
                log.trim_before(cutoff);
            }
            shard.retain(|_, l| !l.windows().is_empty());
        }
        removed
    }

    /// Apply one replayed WAL record. Recovery-only: the store being
    /// rebuilt must not have a WAL attached, or the record would be
    /// journaled a second time.
    pub fn apply_record(&self, rec: &WalRecord) {
        debug_assert!(self.wal.get().is_none(), "replaying into a journaled store");
        match rec {
            WalRecord::Sample { key, point } => self.write(key, point.t, point.v),
            WalRecord::Annotate { key, from, to, flags } => self.annotate(key, *from, *to, *flags),
            WalRecord::Retain { cutoff } => {
                self.retain_from(*cutoff);
            }
        }
    }

    /// Every mutation needed to rebuild the store's current contents, in a
    /// deterministic (sorted) order: the checkpoint snapshot. Replaying the
    /// result into an empty store reproduces points and quality windows
    /// exactly.
    pub fn dump_records(&self) -> Vec<WalRecord> {
        let mut keys: Vec<SeriesKey> = Vec::new();
        for shard in &self.shards {
            keys.extend(shard.read().unwrap().keys().cloned());
        }
        for shard in &self.quality {
            let shard = shard.read().unwrap();
            keys.extend(shard.keys().cloned());
        }
        keys.sort();
        keys.dedup();
        let mut out = Vec::new();
        for key in keys {
            for p in self.shard(&key).read().unwrap().get(&key).map(|s| s.all()).unwrap_or_default() {
                out.push(WalRecord::Sample { key: key.clone(), point: p });
            }
            for (from, to, flags) in self.quality_windows(&key) {
                out.push(WalRecord::Annotate { key: key.clone(), from, to, flags });
            }
        }
        out
    }

    /// Order-independent digest of the full store contents (points and
    /// quality windows; the derived latest-cells are excluded). Two stores
    /// with identical series data hash identically — the crash-recovery
    /// equivalence checks compare these.
    pub fn content_hash(&self) -> u64 {
        // FNV-1a over a canonical byte stream of the sorted dump.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for rec in self.dump_records() {
            match rec {
                WalRecord::Sample { key, point } => {
                    eat(b"S");
                    eat(key.to_string().as_bytes());
                    eat(&point.t.to_le_bytes());
                    eat(&point.v.to_bits().to_le_bytes());
                }
                WalRecord::Annotate { key, from, to, flags } => {
                    eat(b"A");
                    eat(key.to_string().as_bytes());
                    eat(&from.to_le_bytes());
                    eat(&to.to_le_bytes());
                    eat(&[flags]);
                }
                WalRecord::Retain { .. } => unreachable!("dump never emits retention records"),
            }
        }
        h
    }

    /// Export one series as CSV (`t,v` rows with a header).
    pub fn export_csv(&self, key: &SeriesKey, start: i64, end: i64) -> String {
        let mut out = String::from("t,v\n");
        for p in self.query(key, start, end) {
            let _ = writeln!(out, "{},{}", p.t, p.v);
        }
        out
    }

    /// Export matching series as a Grafana-style JSON document:
    /// `[{"target": "<series>", "datapoints": [[v, t], ...]}, ...]`.
    pub fn export_json(&self, measurement: &str, filter: &TagFilter, start: i64, end: i64) -> String {
        let mut doc = Vec::new();
        for key in self.find_series(measurement, filter) {
            let datapoints: Vec<(f64, i64)> =
                self.query(&key, start, end).iter().map(|p| (p.v, p.t)).collect();
            doc.push(serde_json::json!({
                "target": key.to_string(),
                "datapoints": datapoints,
            }));
        }
        serde_json::to_string(&doc).expect("json export is infallible for these types")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::TagSet;

    fn key(vp: &str, link: &str, end: &str) -> SeriesKey {
        SeriesKey::with_tags("tslp", &[("vp", vp), ("link", link), ("end", end)])
    }

    #[test]
    fn shard_count_never_changes_contents() {
        // Identical writes into differently-striped stores must hash, dump,
        // and export identically — striping is a contention knob only.
        let wide = Store::with_shards(64);
        let narrow = Store::with_shards(1);
        for i in 0..40 {
            let k = key(&format!("vp{}", i % 3), &format!("L{i}"), "far");
            wide.write(&k, i as i64 * 300, i as f64);
            narrow.write(&k, i as i64 * 300, i as f64);
        }
        assert_eq!(wide.shard_count(), 64);
        assert_eq!(narrow.shard_count(), 1);
        assert_eq!(wide.content_hash(), narrow.content_hash());
    }

    #[test]
    fn recommended_shards_scales_with_keyspace() {
        assert_eq!(recommended_shards(0), 16);
        assert_eq!(recommended_shards(2_000), 16);
        assert_eq!(recommended_shards(10_000), 128);
        assert_eq!(recommended_shards(1_000_000), 256);
        for n in [0, 100, 5_000, 50_000, 1 << 20] {
            assert!(recommended_shards(n).is_power_of_two());
        }
    }

    #[test]
    fn write_and_query_roundtrip() {
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        store.write(&k, 0, 10.0);
        store.write(&k, 300, 12.0);
        let pts = store.query(&k, 0, 1000);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].v, 12.0);
    }

    #[test]
    fn find_series_filters_by_tags() {
        let store = Store::new();
        store.write(&key("vp1", "L1", "far"), 0, 1.0);
        store.write(&key("vp1", "L1", "near"), 0, 1.0);
        store.write(&key("vp2", "L2", "far"), 0, 1.0);
        let far = store.find_series("tslp", &TagSet::from_pairs([("end", "far")]));
        assert_eq!(far.len(), 2);
        let l1 = store.find_series("tslp", &TagSet::from_pairs([("link", "L1")]));
        assert_eq!(l1.len(), 2);
        let all = store.find_series("tslp", &TagSet::new());
        assert_eq!(all.len(), 3);
        assert!(store.find_series("loss", &TagSet::new()).is_empty());
    }

    #[test]
    fn counts() {
        let store = Store::new();
        store.write(&key("vp1", "L1", "far"), 0, 1.0);
        store.write(&key("vp1", "L1", "far"), 1, 1.0);
        store.write(&key("vp1", "L1", "near"), 0, 1.0);
        assert_eq!(store.series_count(), 2);
        assert_eq!(store.point_count(), 3);
    }

    #[test]
    fn retention_trims_and_prunes() {
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        for t in 0..10 {
            store.write(&k, t * 100, t as f64);
        }
        assert_eq!(store.retain_from(500), 5);
        assert_eq!(store.point_count(), 5);
        assert_eq!(store.retain_from(10_000), 5);
        assert_eq!(store.series_count(), 0);
    }

    #[test]
    fn retention_trims_quality_windows_too() {
        use crate::quality;
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        store.write(&k, 1000, 1.0);
        store.annotate(&k, 0, 300, quality::GAP);
        store.annotate(&k, 300, 900, quality::QUARANTINED);
        let only_flags = key("vp2", "L2", "far");
        store.annotate(&only_flags, 0, 500, quality::GAP);
        store.retain_from(600);
        assert_eq!(
            store.quality_windows(&k),
            vec![(600, 900, quality::QUARANTINED)],
            "old windows dropped, straddlers clamped"
        );
        assert!(store.quality_windows(&only_flags).is_empty(), "flag-only logs pruned");
        assert_eq!(store.query(&k, 0, 2000).len(), 1, "points past cutoff kept");
    }

    #[test]
    fn content_hash_tracks_contents_not_history() {
        use crate::quality;
        let a = Store::new();
        let b = Store::new();
        // Same contents via different write orders and batching.
        a.write(&key("vp1", "L1", "far"), 0, 1.0);
        a.write(&key("vp1", "L1", "far"), 300, 2.0);
        a.write(&key("vp2", "L2", "far"), 0, 3.0);
        b.write(&key("vp2", "L2", "far"), 0, 3.0);
        b.write_batch(&key("vp1", "L1", "far"), &[Point::new(0, 1.0), Point::new(300, 2.0)]);
        assert_eq!(a.content_hash(), b.content_hash());
        a.annotate(&key("vp1", "L1", "far"), 0, 300, quality::GAP);
        assert_ne!(a.content_hash(), b.content_hash(), "quality windows are hashed");
        b.annotate(&key("vp1", "L1", "far"), 0, 300, quality::GAP);
        assert_eq!(a.content_hash(), b.content_hash());
        b.write(&key("vp1", "L1", "far"), 300, 2.5);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn dump_records_rebuild_equal_store() {
        use crate::quality;
        let store = Store::new();
        for t in 0..10 {
            store.write(&key("vp1", "L1", "far"), t * 300, t as f64);
        }
        store.annotate(&key("vp1", "L1", "near"), 0, 900, quality::SUSPECT_RATE_LIMITED);
        let rebuilt = Store::new();
        for rec in store.dump_records() {
            rebuilt.apply_record(&rec);
        }
        assert_eq!(rebuilt.content_hash(), store.content_hash());
        assert_eq!(rebuilt.point_count(), store.point_count());
        assert_eq!(rebuilt.quality_windows(&key("vp1", "L1", "near")).len(), 1);
    }

    #[test]
    fn csv_export_shape() {
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        store.write(&k, 5, 1.5);
        let csv = store.export_csv(&k, 0, 10);
        assert_eq!(csv, "t,v\n5,1.5\n");
    }

    #[test]
    fn json_export_parses() {
        let store = Store::new();
        store.write(&key("vp1", "L1", "far"), 0, 2.0);
        let js = store.export_json("tslp", &TagSet::new(), 0, 10);
        let v: serde_json::Value = serde_json::from_str(&js).unwrap();
        assert_eq!(v[0]["datapoints"][0][0], 2.0);
    }

    #[test]
    fn dense_downsample_of_missing_series_is_all_none() {
        let store = Store::new();
        let k = key("vp9", "L9", "far");
        let bins = store.downsample_dense(&k, 0, 900, 300, Aggregate::Min);
        assert_eq!(bins, vec![None, None, None]);
    }

    #[test]
    fn rollup_materializes_aggregates() {
        let store = Store::new();
        for vp in ["a", "b"] {
            let k = SeriesKey::with_tags("tslp", &[("vp", vp), ("end", "far")]);
            for t in 0..12 {
                store.write(&k, t * 300, (t % 4) as f64);
            }
        }
        let n = store.rollup("tslp", &TagSet::new(), 0, 3600, 900, Aggregate::Min, "tslp_15m");
        assert_eq!(n, 8, "4 bins x 2 series");
        let rolled = store.find_series("tslp_15m", &TagSet::new());
        assert_eq!(rolled.len(), 2);
        let pts = store.query(&rolled[0], 0, 3600);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].v, 0.0, "min of 0,1,2");
        // Raw series untouched.
        assert_eq!(store.find_series("tslp", &TagSet::new()).len(), 2);
        // Typical pairing: retention trims old raw samples; the rollup keeps
        // its own (coarser) points past the cutoff.
        store.retain_from(1800);
        let raw = store.query(&SeriesKey::with_tags("tslp", &[("vp", "a"), ("end", "far")]), 0, 3600);
        assert_eq!(raw.len(), 6, "raw samples before the cutoff dropped");
        assert_eq!(store.query(&rolled[0], 0, 3600).len(), 2, "post-cutoff rollup bins remain");
    }

    #[test]
    fn annotations_roundtrip_and_align_with_bins() {
        use crate::quality;
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        // Annotation before any point exists.
        store.annotate(&k, 300, 600, quality::QUARANTINED);
        store.annotate(&k, 600, 900, quality::QUARANTINED);
        store.annotate(&k, 900, 1200, quality::SUSPECT_RATE_LIMITED);
        assert_eq!(
            store.quality_windows(&k),
            vec![(300, 900, quality::QUARANTINED), (900, 1200, quality::SUSPECT_RATE_LIMITED)]
        );
        let dense = store.quality_dense(&k, 0, 1200, 300);
        assert_eq!(
            dense,
            vec![0, quality::QUARANTINED, quality::QUARANTINED, quality::SUSPECT_RATE_LIMITED]
        );
        // Unannotated series: all clear, same bin count as downsample_dense.
        let other = key("vp2", "L2", "far");
        assert_eq!(store.quality_dense(&other, 0, 900, 300), vec![0, 0, 0]);
        assert!(store.quality_windows(&other).is_empty());
    }

    #[test]
    fn latest_tracks_newest_sample() {
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        assert_eq!(store.latest(&k), None, "missing series");
        assert!(store.latest_handle(&k).is_none());
        store.write(&k, 300, 10.0);
        assert_eq!(store.latest(&k), Some(Point::new(300, 10.0)));
        store.write(&k, 600, 12.5);
        assert_eq!(store.latest(&k), Some(Point::new(600, 12.5)));
        // Out-of-order write does not regress the latest sample.
        store.write(&k, 0, 99.0);
        assert_eq!(store.latest(&k), Some(Point::new(600, 12.5)));
        // Equal timestamp: last write wins (matches Series duplicate order).
        store.write(&k, 600, 13.0);
        assert_eq!(store.latest(&k), Some(Point::new(600, 13.0)));
        // Batch writes publish the newest of the batch.
        store.write_batch(&k, &[Point::new(900, 1.0), Point::new(1200, 2.0), Point::new(700, 9.0)]);
        assert_eq!(store.latest(&k), Some(Point::new(1200, 2.0)));
        // A cached handle observes subsequent writes.
        let h = store.latest_handle(&k).unwrap();
        store.write(&k, 1500, 3.0);
        assert_eq!(h.read(), Some(Point::new(1500, 3.0)));
        // Retention does not clear the published latest sample.
        store.retain_from(10_000);
        assert_eq!(store.latest(&k), Some(Point::new(1500, 3.0)));
    }

    #[test]
    fn latest_reads_race_free_under_concurrent_ingest() {
        use std::sync::Arc;
        let store = Arc::new(Store::new());
        let k = key("vp1", "L1", "far");
        store.write(&k, 0, 0.0);
        let writer = {
            let store = Arc::clone(&store);
            let k = k.clone();
            std::thread::spawn(move || {
                for t in 1..20_000i64 {
                    // Value encodes the timestamp so readers can check that
                    // they never observe a torn (t, v) pair.
                    store.write(&k, t, t as f64 * 0.5);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let k = k.clone();
                std::thread::spawn(move || {
                    let h = store.latest_handle(&k).unwrap();
                    let mut last_t = -1;
                    for _ in 0..50_000 {
                        let p = h.read().expect("series already written");
                        assert_eq!(p.v, p.t as f64 * 0.5, "torn read");
                        assert!(p.t >= last_t, "latest went backwards");
                        last_t = p.t;
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.latest(&k).unwrap().t, 19_999);
    }

    #[test]
    fn store_windows_degrade_gracefully() {
        let store = Store::new();
        let k = key("vp1", "L1", "far");
        store.write(&k, 0, 1.0);
        assert!(store.query(&k, 500, 100).is_empty());
        assert!(store.downsample(&k, 500, 100, 300, Aggregate::Min).is_empty());
        assert!(store.downsample_dense(&k, 500, 100, 300, Aggregate::Min).is_empty());
        assert!(store.downsample_dense(&k, 0, 600, 0, Aggregate::Min).is_empty());
        assert!(store.quality_dense(&k, 500, 100, 300).is_empty());
        assert!(store.quality_dense(&k, 0, 600, -1).is_empty());
    }

    #[test]
    fn concurrent_ingest() {
        use std::sync::Arc;
        let store = Arc::new(Store::new());
        let mut handles = Vec::new();
        for vp in 0..8 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let k = key(&format!("vp{vp}"), "L1", "far");
                for t in 0..1000 {
                    store.write(&k, t, t as f64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.point_count(), 8000);
        assert_eq!(store.series_count(), 8);
    }
}
