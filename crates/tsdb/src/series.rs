//! A single time series: sorted `(timestamp, value)` points plus
//! range/downsampling queries.
//!
//! Storage is columnar (structure-of-arrays): one contiguous `Vec<i64>` of
//! timestamps and one contiguous `Vec<f64>` of values, kept index-aligned.
//! The hot read paths — `downsample`, `downsample_dense`, and the window
//! scans behind the inference layer — walk the value column as branch-light
//! batch loops over contiguous memory instead of striding over interleaved
//! `(t, v)` pairs, and each bin's aggregate is folded as the scan passes
//! (no per-bin temporary collection). The public `Point` API, the WAL
//! encoding, and the store content hash are unchanged from the interleaved
//! layout: `Point` is now a view struct materialized on demand.

/// One sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Seconds since the simulation epoch.
    pub t: i64,
    pub v: f64,
}

impl Point {
    pub fn new(t: i64, v: f64) -> Self {
        Point { t, v }
    }
}

/// Bin aggregation function for downsampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Minimum — the paper's outlier filter ("we select the minimum latency
    /// in a time bin", §4.1/§4.2).
    Min,
    Max,
    Mean,
    Sum,
    Count,
    Last,
}

/// Streaming per-bin accumulator: folds one value at a time in scan order,
/// producing bit-identical results to aggregating a collected `Vec<f64>`
/// per bin (min/max fold in the same order; mean/sum accumulate the same
/// left-to-right partial sums).
#[derive(Debug, Clone, Copy)]
struct AggState {
    acc: f64,
    n: usize,
}

impl AggState {
    fn new(agg: Aggregate) -> Self {
        let acc = match agg {
            Aggregate::Min => f64::INFINITY,
            Aggregate::Max => f64::NEG_INFINITY,
            _ => 0.0,
        };
        AggState { acc, n: 0 }
    }

    #[inline]
    fn feed(&mut self, agg: Aggregate, v: f64) {
        self.n += 1;
        match agg {
            Aggregate::Min => self.acc = self.acc.min(v),
            Aggregate::Max => self.acc = self.acc.max(v),
            Aggregate::Mean | Aggregate::Sum => self.acc += v,
            Aggregate::Count => {}
            Aggregate::Last => self.acc = v,
        }
    }

    #[inline]
    fn finish(&self, agg: Aggregate) -> f64 {
        debug_assert!(self.n > 0);
        match agg {
            Aggregate::Mean => self.acc / self.n as f64,
            Aggregate::Count => self.n as f64,
            _ => self.acc,
        }
    }
}

/// An append-mostly series kept sorted by timestamp.
///
/// Appends at or after the current tail are O(1); out-of-order inserts fall
/// back to a binary-search insert. Duplicate timestamps are allowed (TSLP
/// probes to three destinations in the same round legitimately share a bin).
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Timestamp column, sorted ascending.
    ts: Vec<i64>,
    /// Value column, index-aligned with `ts`.
    vs: Vec<f64>,
    /// Id of this series' escaped key token in the attached WAL's registry,
    /// filled lazily on the first WAL append. Caching it here (where the
    /// write path already holds the shard lock) keeps journaled writes from
    /// re-escaping the key for every sample. Ids are scoped to the WAL the
    /// store was attached to; stores are never re-attached to a second WAL.
    pub(crate) wal_key_token: std::sync::OnceLock<u32>,
}

impl Series {
    pub fn new() -> Self {
        Series::default()
    }

    pub fn len(&self) -> usize {
        self.ts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Insert a sample, keeping the series sorted.
    pub fn push(&mut self, t: i64, v: f64) {
        if self.ts.last().is_none_or(|&last| last <= t) {
            self.ts.push(t);
            self.vs.push(v);
        } else {
            let i = self.ts.partition_point(|&pt| pt <= t);
            self.ts.insert(i, t);
            self.vs.insert(i, v);
        }
    }

    /// Index range `[lo, hi)` of points with `start <= t < end`. An empty or
    /// inverted window (`end <= start`) selects nothing — callers forward
    /// user-supplied windows (the serving layer's query parameters) straight
    /// here, so an inverted range must be a harmless no-op.
    fn index_range(&self, start: i64, end: i64) -> (usize, usize) {
        if end <= start {
            return (0, 0);
        }
        let lo = self.ts.partition_point(|&t| t < start);
        let hi = self.ts.partition_point(|&t| t < end);
        (lo, hi)
    }

    /// Column view of the window `start <= t < end`: `(timestamps, values)`,
    /// index-aligned. The zero-copy primitive behind every windowed read.
    pub fn range_cols(&self, start: i64, end: i64) -> (&[i64], &[f64]) {
        let (lo, hi) = self.index_range(start, end);
        (&self.ts[lo..hi], &self.vs[lo..hi])
    }

    /// All points with `start <= t < end`, materialized as `Point`s.
    pub fn range(&self, start: i64, end: i64) -> Vec<Point> {
        let (ts, vs) = self.range_cols(start, end);
        ts.iter().zip(vs).map(|(&t, &v)| Point::new(t, v)).collect()
    }

    /// Every point, materialized.
    pub fn all(&self) -> Vec<Point> {
        self.ts.iter().zip(&self.vs).map(|(&t, &v)| Point::new(t, v)).collect()
    }

    /// Full column view: `(timestamps, values)`.
    pub fn cols(&self) -> (&[i64], &[f64]) {
        (&self.ts, &self.vs)
    }

    /// First/last timestamps, if any.
    pub fn span(&self) -> Option<(i64, i64)> {
        Some((*self.ts.first()?, *self.ts.last()?))
    }

    /// Downsample the half-open window `[start, end)` into bins of
    /// `bin_secs`, applying `agg` per bin. Empty bins yield no output point.
    ///
    /// Output timestamps are the *start* of each bin, aligned to
    /// `start + k*bin_secs`. When `bin_secs` does not divide the window the
    /// final bin is simply shorter: points past `end` never contribute.
    /// Non-positive bins and empty/inverted windows yield no bins — these
    /// arrive from user-supplied query parameters, and must degrade to an
    /// empty result rather than panic.
    ///
    /// Streaming: each bin's aggregate is folded directly as the column scan
    /// passes over it — no per-bin temporary collection.
    pub fn downsample(&self, start: i64, end: i64, bin_secs: i64, agg: Aggregate) -> Vec<Point> {
        if bin_secs <= 0 || end <= start {
            return Vec::new();
        }
        let (ts, vs) = self.range_cols(start, end);
        let mut out = Vec::new();
        let mut i = 0;
        while i < ts.len() {
            let bin_idx = (ts[i] - start) / bin_secs;
            let bin_start = start + bin_idx * bin_secs;
            let bin_end = bin_start + bin_secs;
            let mut st = AggState::new(agg);
            while i < ts.len() && ts[i] < bin_end {
                st.feed(agg, vs[i]);
                i += 1;
            }
            out.push(Point::new(bin_start, st.finish(agg)));
        }
        out
    }

    /// Downsample like [`Self::downsample`], but emit one entry per bin over
    /// the whole window, with `None` for empty bins. This is what the
    /// autocorrelation algorithm consumes: it must know which 15-minute
    /// intervals had no data at all.
    pub fn downsample_dense(
        &self,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
    ) -> Vec<Option<f64>> {
        let mut out = Vec::new();
        self.downsample_dense_into(start, end, bin_secs, agg, &mut out);
        out
    }

    /// [`Self::downsample_dense`] into a caller-owned buffer (cleared
    /// first), so repeated window scans reuse one allocation. Fills bins
    /// directly from the column scan — no intermediate sparse vector.
    pub fn downsample_dense_into(
        &self,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        if bin_secs <= 0 || end <= start {
            return;
        }
        let nbins = ((end - start) + bin_secs - 1) / bin_secs;
        out.resize(nbins as usize, None);
        let (ts, vs) = self.range_cols(start, end);
        let mut i = 0;
        while i < ts.len() {
            let bin_idx = ((ts[i] - start) / bin_secs) as usize;
            let bin_end = start + (bin_idx as i64 + 1) * bin_secs;
            let mut st = AggState::new(agg);
            while i < ts.len() && ts[i] < bin_end {
                st.feed(agg, vs[i]);
                i += 1;
            }
            out[bin_idx] = Some(st.finish(agg));
        }
    }

    /// Drop all points with `t < cutoff`; returns how many were removed.
    pub fn trim_before(&mut self, cutoff: i64) -> usize {
        let keep_from = self.ts.partition_point(|&t| t < cutoff);
        self.ts.drain(..keep_from);
        self.vs.drain(..keep_from);
        keep_from
    }

    /// Values only, over a range (utility for feeding statistics).
    pub fn values_in(&self, start: i64, end: i64) -> Vec<f64> {
        self.range_cols(start, end).1.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(i64, f64)]) -> Series {
        let mut s = Series::new();
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn push_keeps_sorted_with_out_of_order_inserts() {
        let s = series(&[(10, 1.0), (5, 2.0), (20, 3.0), (15, 4.0)]);
        let ts: Vec<i64> = s.all().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![5, 10, 15, 20]);
        // Value column stays aligned with the timestamp column.
        assert_eq!(s.all()[0], Point::new(5, 2.0));
        assert_eq!(s.cols().0.len(), s.cols().1.len());
    }

    #[test]
    fn range_is_half_open() {
        let s = series(&[(0, 0.0), (5, 1.0), (10, 2.0)]);
        let r = s.range(0, 10);
        assert_eq!(r.len(), 2);
        assert_eq!(s.range(5, 11).len(), 2);
        assert_eq!(s.range(11, 20).len(), 0);
        let (ts, vs) = s.range_cols(5, 11);
        assert_eq!(ts, &[5, 10]);
        assert_eq!(vs, &[1.0, 2.0]);
    }

    #[test]
    fn downsample_min_picks_bin_minimum() {
        let s = series(&[(0, 5.0), (100, 3.0), (200, 9.0), (300, 1.0), (400, 2.0)]);
        let bins = s.downsample(0, 600, 300, Aggregate::Min);
        assert_eq!(bins, vec![Point::new(0, 3.0), Point::new(300, 1.0)]);
    }

    #[test]
    fn downsample_skips_empty_bins() {
        let s = series(&[(0, 1.0), (900, 2.0)]);
        let bins = s.downsample(0, 1200, 300, Aggregate::Mean);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[1].t, 900);
    }

    #[test]
    fn downsample_dense_marks_gaps() {
        let s = series(&[(0, 1.0), (900, 2.0)]);
        let bins = s.downsample_dense(0, 1200, 300, Aggregate::Min);
        assert_eq!(bins, vec![Some(1.0), None, None, Some(2.0)]);
    }

    #[test]
    fn downsample_dense_into_reuses_buffer() {
        let s = series(&[(0, 1.0), (900, 2.0)]);
        let mut buf = vec![Some(99.0); 64];
        s.downsample_dense_into(0, 1200, 300, Aggregate::Min, &mut buf);
        assert_eq!(buf, vec![Some(1.0), None, None, Some(2.0)]);
        s.downsample_dense_into(500, 100, 300, Aggregate::Min, &mut buf);
        assert!(buf.is_empty(), "degenerate window clears the buffer");
    }

    #[test]
    fn aggregate_functions() {
        let s = series(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Max)[0].v, 3.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Mean)[0].v, 2.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Sum)[0].v, 6.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Count)[0].v, 3.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Last)[0].v, 3.0);
    }

    #[test]
    fn trim_before_drops_old_points() {
        let mut s = series(&[(0, 1.0), (100, 2.0), (200, 3.0)]);
        assert_eq!(s.trim_before(150), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.span(), Some((200, 200)));
    }

    #[test]
    fn inverted_and_empty_windows_are_harmless() {
        let s = series(&[(0, 1.0), (300, 2.0)]);
        assert!(s.range(500, 100).is_empty());
        assert!(s.range(300, 300).is_empty());
        assert!(s.downsample(500, 100, 300, Aggregate::Min).is_empty());
        assert!(s.downsample(0, 0, 300, Aggregate::Min).is_empty());
        assert!(s.downsample_dense(500, 100, 300, Aggregate::Min).is_empty());
        assert!(s.downsample_dense(100, 100, 300, Aggregate::Min).is_empty());
    }

    #[test]
    fn non_positive_bin_yields_no_bins() {
        let s = series(&[(0, 1.0), (300, 2.0)]);
        assert!(s.downsample(0, 600, 0, Aggregate::Min).is_empty());
        assert!(s.downsample(0, 600, -300, Aggregate::Min).is_empty());
        assert!(s.downsample_dense(0, 600, 0, Aggregate::Min).is_empty());
    }

    #[test]
    fn bin_not_dividing_window_keeps_partial_last_bin() {
        // Window of 700 s with 300 s bins: bins [0,300), [300,600), [600,700).
        let s = series(&[(0, 5.0), (650, 1.0), (699, 3.0)]);
        let bins = s.downsample(0, 700, 300, Aggregate::Min);
        assert_eq!(bins, vec![Point::new(0, 5.0), Point::new(600, 1.0)]);
        let dense = s.downsample_dense(0, 700, 300, Aggregate::Min);
        assert_eq!(dense, vec![Some(5.0), None, Some(1.0)]);
        // A point at or past `end` never contributes, even though the last
        // bin's nominal span [600, 900) would cover it.
        let s2 = series(&[(650, 1.0), (700, 99.0), (750, 0.1)]);
        let bins2 = s2.downsample(0, 700, 300, Aggregate::Min);
        assert_eq!(bins2, vec![Point::new(600, 1.0)]);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        let s = series(&[(5, 1.0), (5, 2.0), (5, 0.5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Min)[0].v, 0.5);
    }
}
