//! A single time series: sorted `(timestamp, value)` points plus
//! range/downsampling queries.


/// One sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Seconds since the simulation epoch.
    pub t: i64,
    pub v: f64,
}

impl Point {
    pub fn new(t: i64, v: f64) -> Self {
        Point { t, v }
    }
}

/// Bin aggregation function for downsampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Minimum — the paper's outlier filter ("we select the minimum latency
    /// in a time bin", §4.1/§4.2).
    Min,
    Max,
    Mean,
    Sum,
    Count,
    Last,
}

impl Aggregate {
    fn apply(self, vals: &[f64]) -> f64 {
        debug_assert!(!vals.is_empty());
        match self {
            Aggregate::Min => vals.iter().cloned().fold(f64::INFINITY, f64::min),
            Aggregate::Max => vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            Aggregate::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
            Aggregate::Sum => vals.iter().sum(),
            Aggregate::Count => vals.len() as f64,
            Aggregate::Last => *vals.last().expect("non-empty"),
        }
    }
}

/// An append-mostly series kept sorted by timestamp.
///
/// Appends at or after the current tail are O(1); out-of-order inserts fall
/// back to a binary-search insert. Duplicate timestamps are allowed (TSLP
/// probes to three destinations in the same round legitimately share a bin).
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<Point>,
    /// Id of this series' escaped key token in the attached WAL's registry,
    /// filled lazily on the first WAL append. Caching it here (where the
    /// write path already holds the shard lock) keeps journaled writes from
    /// re-escaping the key for every sample. Ids are scoped to the WAL the
    /// store was attached to; stores are never re-attached to a second WAL.
    pub(crate) wal_key_token: std::sync::OnceLock<u32>,
}

impl Series {
    pub fn new() -> Self {
        Series::default()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Insert a sample, keeping the series sorted.
    pub fn push(&mut self, t: i64, v: f64) {
        if self.points.last().is_none_or(|p| p.t <= t) {
            self.points.push(Point::new(t, v));
        } else {
            let i = self.points.partition_point(|p| p.t <= t);
            self.points.insert(i, Point::new(t, v));
        }
    }

    /// All points with `start <= t < end`. An empty or inverted window
    /// (`end <= start`) selects nothing — callers forward user-supplied
    /// windows (the serving layer's query parameters) straight here, so an
    /// inverted range must be a harmless no-op, not a slice panic.
    pub fn range(&self, start: i64, end: i64) -> &[Point] {
        if end <= start {
            return &[];
        }
        let lo = self.points.partition_point(|p| p.t < start);
        let hi = self.points.partition_point(|p| p.t < end);
        &self.points[lo..hi]
    }

    /// Every point.
    pub fn all(&self) -> &[Point] {
        &self.points
    }

    /// First/last timestamps, if any.
    pub fn span(&self) -> Option<(i64, i64)> {
        Some((self.points.first()?.t, self.points.last()?.t))
    }

    /// Downsample the half-open window `[start, end)` into bins of
    /// `bin_secs`, applying `agg` per bin. Empty bins yield no output point.
    ///
    /// Output timestamps are the *start* of each bin, aligned to
    /// `start + k*bin_secs`. When `bin_secs` does not divide the window the
    /// final bin is simply shorter: points past `end` never contribute.
    /// Non-positive bins and empty/inverted windows yield no bins — these
    /// arrive from user-supplied query parameters, and must degrade to an
    /// empty result rather than panic.
    pub fn downsample(&self, start: i64, end: i64, bin_secs: i64, agg: Aggregate) -> Vec<Point> {
        if bin_secs <= 0 || end <= start {
            return Vec::new();
        }
        let pts = self.range(start, end);
        let mut out = Vec::new();
        let mut i = 0;
        while i < pts.len() {
            let bin_idx = (pts[i].t - start) / bin_secs;
            let bin_start = start + bin_idx * bin_secs;
            let bin_end = bin_start + bin_secs;
            let mut vals = Vec::new();
            while i < pts.len() && pts[i].t < bin_end {
                vals.push(pts[i].v);
                i += 1;
            }
            out.push(Point::new(bin_start, agg.apply(&vals)));
        }
        out
    }

    /// Downsample like [`Self::downsample`], but emit one entry per bin over
    /// the whole window, with `None` for empty bins. This is what the
    /// autocorrelation algorithm consumes: it must know which 15-minute
    /// intervals had no data at all.
    pub fn downsample_dense(
        &self,
        start: i64,
        end: i64,
        bin_secs: i64,
        agg: Aggregate,
    ) -> Vec<Option<f64>> {
        if bin_secs <= 0 || end <= start {
            return Vec::new();
        }
        let nbins = ((end - start) + bin_secs - 1) / bin_secs;
        let mut out = vec![None; nbins as usize];
        for p in self.downsample(start, end, bin_secs, agg) {
            let idx = ((p.t - start) / bin_secs) as usize;
            out[idx] = Some(p.v);
        }
        out
    }

    /// Drop all points with `t < cutoff`; returns how many were removed.
    pub fn trim_before(&mut self, cutoff: i64) -> usize {
        let keep_from = self.points.partition_point(|p| p.t < cutoff);
        self.points.drain(..keep_from).count()
    }

    /// Values only, over a range (utility for feeding statistics).
    pub fn values_in(&self, start: i64, end: i64) -> Vec<f64> {
        self.range(start, end).iter().map(|p| p.v).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(pts: &[(i64, f64)]) -> Series {
        let mut s = Series::new();
        for &(t, v) in pts {
            s.push(t, v);
        }
        s
    }

    #[test]
    fn push_keeps_sorted_with_out_of_order_inserts() {
        let s = series(&[(10, 1.0), (5, 2.0), (20, 3.0), (15, 4.0)]);
        let ts: Vec<i64> = s.all().iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![5, 10, 15, 20]);
    }

    #[test]
    fn range_is_half_open() {
        let s = series(&[(0, 0.0), (5, 1.0), (10, 2.0)]);
        let r = s.range(0, 10);
        assert_eq!(r.len(), 2);
        assert_eq!(s.range(5, 11).len(), 2);
        assert_eq!(s.range(11, 20).len(), 0);
    }

    #[test]
    fn downsample_min_picks_bin_minimum() {
        let s = series(&[(0, 5.0), (100, 3.0), (200, 9.0), (300, 1.0), (400, 2.0)]);
        let bins = s.downsample(0, 600, 300, Aggregate::Min);
        assert_eq!(bins, vec![Point::new(0, 3.0), Point::new(300, 1.0)]);
    }

    #[test]
    fn downsample_skips_empty_bins() {
        let s = series(&[(0, 1.0), (900, 2.0)]);
        let bins = s.downsample(0, 1200, 300, Aggregate::Mean);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[1].t, 900);
    }

    #[test]
    fn downsample_dense_marks_gaps() {
        let s = series(&[(0, 1.0), (900, 2.0)]);
        let bins = s.downsample_dense(0, 1200, 300, Aggregate::Min);
        assert_eq!(bins, vec![Some(1.0), None, None, Some(2.0)]);
    }

    #[test]
    fn aggregate_functions() {
        let s = series(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Max)[0].v, 3.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Mean)[0].v, 2.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Sum)[0].v, 6.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Count)[0].v, 3.0);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Last)[0].v, 3.0);
    }

    #[test]
    fn trim_before_drops_old_points() {
        let mut s = series(&[(0, 1.0), (100, 2.0), (200, 3.0)]);
        assert_eq!(s.trim_before(150), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.span(), Some((200, 200)));
    }

    #[test]
    fn inverted_and_empty_windows_are_harmless() {
        let s = series(&[(0, 1.0), (300, 2.0)]);
        assert!(s.range(500, 100).is_empty());
        assert!(s.range(300, 300).is_empty());
        assert!(s.downsample(500, 100, 300, Aggregate::Min).is_empty());
        assert!(s.downsample(0, 0, 300, Aggregate::Min).is_empty());
        assert!(s.downsample_dense(500, 100, 300, Aggregate::Min).is_empty());
        assert!(s.downsample_dense(100, 100, 300, Aggregate::Min).is_empty());
    }

    #[test]
    fn non_positive_bin_yields_no_bins() {
        let s = series(&[(0, 1.0), (300, 2.0)]);
        assert!(s.downsample(0, 600, 0, Aggregate::Min).is_empty());
        assert!(s.downsample(0, 600, -300, Aggregate::Min).is_empty());
        assert!(s.downsample_dense(0, 600, 0, Aggregate::Min).is_empty());
    }

    #[test]
    fn bin_not_dividing_window_keeps_partial_last_bin() {
        // Window of 700 s with 300 s bins: bins [0,300), [300,600), [600,700).
        let s = series(&[(0, 5.0), (650, 1.0), (699, 3.0)]);
        let bins = s.downsample(0, 700, 300, Aggregate::Min);
        assert_eq!(bins, vec![Point::new(0, 5.0), Point::new(600, 1.0)]);
        let dense = s.downsample_dense(0, 700, 300, Aggregate::Min);
        assert_eq!(dense, vec![Some(5.0), None, Some(1.0)]);
        // A point at or past `end` never contributes, even though the last
        // bin's nominal span [600, 900) would cover it.
        let s2 = series(&[(650, 1.0), (700, 99.0), (750, 0.1)]);
        let bins2 = s2.downsample(0, 700, 300, Aggregate::Min);
        assert_eq!(bins2, vec![Point::new(600, 1.0)]);
    }

    #[test]
    fn duplicate_timestamps_allowed() {
        let s = series(&[(5, 1.0), (5, 2.0), (5, 0.5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.downsample(0, 10, 10, Aggregate::Min)[0].v, 0.5);
    }
}
