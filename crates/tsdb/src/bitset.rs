//! A packed fixed-width bitset (u64 words).
//!
//! The inference layer's per-link summaries track which dense bins hold
//! data; one bit per bin keeps a 30-day five-minute ring at ~1 KB instead
//! of a `Vec<bool>`'s 8.6 KB, and whole-word operations (`count_ones`,
//! word-wise equality) run as batch loops.

/// Fixed-length bitset backed by `u64` words. All indices are bounds-checked
/// against the length set at construction (or the most recent `resize`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zero bitset of `len` bits.
    pub fn with_len(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range (len {})", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Set every bit to zero, keeping the length.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Raw words, for hashing/fingerprinting. Bits past `len` are zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitSet::with_len(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 0);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
        b.clear_all();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 130);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = BitSet::with_len(64);
        b.get(64);
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = BitSet::with_len(100);
        let mut b = BitSet::with_len(100);
        a.set(42);
        assert_ne!(a, b);
        b.set(42);
        assert_eq!(a, b);
        // Cleared bits leave no residue in the padding words.
        a.set(99);
        a.clear(99);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_len_is_fine() {
        let b = BitSet::with_len(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(b.words().is_empty());
    }
}
