//! Embedded tagged time-series store.
//!
//! The production system described in the paper stores all measurements in
//! InfluxDB and visualizes them through Grafana (§3, Figure 1). For a
//! self-contained reproduction we implement the part of that stack the
//! pipeline actually depends on:
//!
//! * tagged series — a measurement name plus a sorted tag set identifies a
//!   series (`tslp, vp=ark-bed-us, link=L17, end=far`);
//! * append-mostly ingestion of `(timestamp, f64)` points, including a
//!   line-protocol parser for textual ingest;
//! * range queries and bin downsampling (`min` per 5/15-minute bin is the
//!   pre-processing step of both inference algorithms, §4.1/§4.2);
//! * retention trimming and CSV/JSON export (the public-data release story
//!   of §1's contribution 4).
//!
//! The store is sharded and guarded by `std::sync::RwLock`, so concurrent
//! measurement threads can ingest while analysis reads.

pub mod bitset;
pub mod key;
pub mod lineproto;
mod obs;
pub mod quality;
pub mod segment;
pub mod series;
pub mod store;
pub mod wal;

pub use bitset::BitSet;
pub use key::{SeriesKey, TagSet};
pub use lineproto::{format_key, format_line, parse_key, parse_line, LineProtoError};
pub use quality::{QualityFlags, QualityLog};
pub use series::{Aggregate, Point, Series};
pub use store::{recommended_shards, LatestCell, LatestHandle, Store, TagFilter};
pub use wal::{FsyncPolicy, ReplayReport, Wal, WalCodecError, WalPosition, WalRecord};
pub use wal::{replay_dir_range, replay_segment_file_with};
