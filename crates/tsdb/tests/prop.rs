//! Property-based tests for the tsdb crate.

use manic_tsdb::{parse_line, Aggregate, Point, Series, SeriesKey, Store, TagSet, WalRecord};
use proptest::prelude::*;

/// The seed's array-of-structs downsampling semantics: collect every bin's
/// values into a `Vec<f64>` in stored order, then aggregate the collection.
/// The columnar streaming fold must be value-identical (same fold order,
/// same partial sums), not merely approximately equal.
fn aos_reference_aggregate(vals: &[f64], agg: Aggregate) -> f64 {
    match agg {
        Aggregate::Min => vals.iter().cloned().fold(f64::INFINITY, f64::min),
        Aggregate::Max => vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        Aggregate::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
        Aggregate::Sum => vals.iter().sum(),
        Aggregate::Count => vals.len() as f64,
        Aggregate::Last => *vals.last().unwrap(),
    }
}

fn arb_aggregate() -> impl Strategy<Value = Aggregate> {
    (0u8..6).prop_map(|i| match i {
        0 => Aggregate::Min,
        1 => Aggregate::Max,
        2 => Aggregate::Mean,
        3 => Aggregate::Sum,
        4 => Aggregate::Count,
        _ => Aggregate::Last,
    })
}

proptest! {
    /// downsample(Min) output is <= every raw sample inside its bin and is a
    /// member of the bin.
    #[test]
    fn downsample_min_is_bin_minimum(
        pts in prop::collection::vec((0i64..10_000, -1e6f64..1e6), 1..200),
        bin in 1i64..1000,
    ) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        for Point { t: bin_start, v } in s.downsample(0, 10_000, bin, Aggregate::Min) {
            let in_bin: Vec<f64> = pts
                .iter()
                .filter(|(t, _)| *t >= bin_start && *t < bin_start + bin)
                .map(|&(_, v)| v)
                .collect();
            prop_assert!(!in_bin.is_empty());
            let min = in_bin.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(v, min);
        }
    }

    /// The series stays sorted no matter the insertion order.
    #[test]
    fn series_always_sorted(pts in prop::collection::vec((0i64..1000, -10.0f64..10.0), 0..100)) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        let ts: Vec<i64> = s.all().iter().map(|p| p.t).collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(s.len(), pts.len());
    }

    /// range(start, end) returns exactly the points in the half-open window.
    #[test]
    fn range_matches_linear_filter(
        pts in prop::collection::vec((0i64..1000, -10.0f64..10.0), 0..100),
        start in 0i64..1000,
        len in 0i64..1000,
    ) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        let end = start + len;
        let got = s.range(start, end).len();
        let expected = pts.iter().filter(|(t, _)| *t >= start && *t < end).count();
        prop_assert_eq!(got, expected);
    }

    /// Line-protocol roundtrip through arbitrary tag-ish strings.
    #[test]
    fn lineproto_roundtrip(
        meas in "[a-z]{1,8}",
        tags in prop::collection::vec(("[a-z]{1,6}", "[a-zA-Z0-9_.-]{1,8}"), 0..4),
        t in -1_000_000i64..1_000_000,
        v in -1e9f64..1e9,
    ) {
        let key = SeriesKey::new(
            meas,
            TagSet::from_pairs(tags.iter().map(|(k, v)| (k.clone(), v.clone()))),
        );
        let line = manic_tsdb::format_line(&key, Point::new(t, v)).expect("finite, clean names");
        let (k2, p2) = parse_line(&line).unwrap();
        prop_assert_eq!(key, k2);
        prop_assert_eq!(p2.t, t);
        prop_assert!((p2.v - v).abs() <= 1e-9 * v.abs().max(1.0));
    }

    /// Hostile names — structural characters, backslashes, spaces — either
    /// format-and-roundtrip exactly or are rejected at format time. No
    /// silently unparseable line is ever produced.
    #[test]
    fn lineproto_roundtrips_or_rejects_hostile_names(
        meas in "[a-z ,=\\\\]{1,8}",
        tags in prop::collection::vec(("[a-z ,=\\\\]{1,5}", "[a-z0-9 ,=\\\\._-]{1,8}"), 0..3),
        t in -1_000_000i64..1_000_000,
        v in -1e9f64..1e9,
    ) {
        let key = SeriesKey::new(
            meas,
            TagSet::from_pairs(tags.iter().map(|(k, v)| (k.clone(), v.clone()))),
        );
        if let Ok(line) = manic_tsdb::format_line(&key, Point::new(t, v)) {
            let (k2, p2) = parse_line(&line).unwrap();
            prop_assert_eq!(key, k2, "line: {}", line);
            prop_assert_eq!(p2.t, t);
        }
    }

    /// The line parser never panics, whatever the input.
    #[test]
    fn parse_line_never_panics(s in "[ -~]{0,80}") {
        let _ = parse_line(&s);
        let _ = manic_tsdb::parse_key(&s);
    }

    /// Arbitrary bytes never panic the WAL record decoder.
    #[test]
    fn wal_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..120)) {
        let _ = WalRecord::decode(&bytes);
    }

    /// encode -> decode is the identity for valid WAL records.
    #[test]
    fn wal_record_roundtrip(
        link in "[a-z0-9.]{1,12}",
        t in -1_000_000i64..1_000_000,
        v in -1e9f64..1e9,
        from in -1000i64..1000,
        len in 1i64..1000,
        flags in 1u8..16,
        cutoff in -1_000_000i64..1_000_000,
    ) {
        let key = SeriesKey::with_tags("tslp", &[("vp", "v1"), ("link", &link)]);
        for rec in [
            WalRecord::Sample { key: key.clone(), point: Point::new(t, v) },
            WalRecord::Annotate { key, from, to: from + len, flags },
            WalRecord::Retain { cutoff },
        ] {
            let enc = rec.encode().expect("clean names encode");
            let dec = WalRecord::decode(&enc).expect("own encoding decodes");
            prop_assert_eq!(dec, rec);
        }
    }

    /// Any prefix of a segment file replays cleanly: at worst the final
    /// record is fenced as torn, never a panic or a half-applied record.
    #[test]
    fn random_segment_prefix_always_replays(
        samples in prop::collection::vec((0i64..10_000, -1e6f64..1e6), 1..30),
        cut_back in 0usize..200,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let n = CASE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("manic-prop-seg-{}-{n}.seg", std::process::id()));
        let mut w = manic_tsdb::segment::SegmentWriter::create(&path).unwrap();
        let key = SeriesKey::with_tags("tslp", &[("vp", "v1"), ("link", "1.2.3.4")]);
        for &(t, v) in &samples {
            let rec = WalRecord::Sample { key: key.clone(), point: Point::new(t, v) };
            w.append(&rec.encode().unwrap()).unwrap();
        }
        let full = w.offset();
        w.sync().unwrap();
        drop(w);
        let cut = full.saturating_sub(cut_back as u64);
        std::fs::OpenOptions::new().write(true).open(&path).unwrap().set_len(cut).unwrap();

        let store = Store::new();
        let report = manic_tsdb::wal::replay_segment_file(&path, &store).unwrap();
        prop_assert!(report.samples <= samples.len() as u64);
        prop_assert!(report.torn_records <= 1);
        if cut >= full {
            prop_assert_eq!(report.samples, samples.len() as u64, "untouched file replays fully");
            prop_assert_eq!(report.torn_records, 0);
        }
        // Replay applied a prefix of the sample sequence, in order.
        let got = store.query(&key, i64::MIN, i64::MAX);
        let want: Vec<Point> = {
            let mut w: Vec<Point> =
                samples.iter().take(report.samples as usize).map(|&(t, v)| Point::new(t, v)).collect();
            w.sort_by_key(|p| p.t);
            w
        };
        prop_assert_eq!(got.len(), want.len());
        std::fs::remove_file(&path).unwrap();
    }

    /// Flipping any single bit in a sealed segment is recover-or-flag,
    /// never a panic and never silent divergence: the resync scan applies a
    /// subset of the original records, and when nothing was flagged (the
    /// flip landed in dead header space) every record must have survived
    /// byte-identically.
    #[test]
    fn segment_bit_flip_recovers_or_flags(
        samples in prop::collection::vec((0i64..10_000, -1e6f64..1e6), 1..30),
        flip in 0usize..1_000_000,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};
        static CASE: AtomicU64 = AtomicU64::new(0);
        let n = CASE.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("manic-prop-flip-{}-{n}.seg", std::process::id()));
        let mut w = manic_tsdb::segment::SegmentWriter::create(&path).unwrap();
        let key = SeriesKey::with_tags("tslp", &[("vp", "v1"), ("link", "1.2.3.4")]);
        for &(t, v) in &samples {
            let rec = WalRecord::Sample { key: key.clone(), point: Point::new(t, v) };
            w.append(&rec.encode().unwrap()).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let mut bytes = std::fs::read(&path).unwrap();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &bytes).unwrap();

        let scan = manic_tsdb::segment::scan_with(&manic_vfs::RealVfs, &path, 0, true).unwrap();
        prop_assert!(scan.records.len() <= samples.len());
        for (_, payload) in &scan.records {
            // A CRC-intact frame must still decode to one of the original
            // samples — a flipped-yet-accepted payload would be silent
            // corruption.
            match WalRecord::decode(payload) {
                Ok(WalRecord::Sample { point, .. }) => {
                    prop_assert!(
                        samples.contains(&(point.t, point.v)),
                        "CRC accepted a mutated sample: ({}, {})", point.t, point.v
                    );
                }
                Ok(other) => prop_assert!(false, "foreign record surfaced: {other:?}"),
                Err(_) => {} // flagged downstream as a decode error
            }
        }
        let flagged = scan.bad_header
            || scan.torn
            || !scan.quarantined.is_empty()
            || scan.records.len() < samples.len();
        if !flagged {
            prop_assert_eq!(
                scan.records.len(), samples.len(),
                "unflagged flip must leave every record intact"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Columnar downsampling is value-identical to the seed's AoS
    /// collect-then-aggregate model, for every aggregate.
    #[test]
    fn downsample_matches_aos_reference(
        pts in prop::collection::vec((0i64..5_000, -1e6f64..1e6), 1..150),
        bin in 1i64..700,
        agg in arb_aggregate(),
        start in 0i64..2_000,
        len in 1i64..5_000,
    ) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        let end = start + len;
        // Reference: walk the stored points (insertion-stable sort order —
        // the order the old interleaved layout iterated in), bucket into
        // bins, aggregate each bucket as a collected Vec.
        let stored = s.all();
        let mut expected: Vec<(i64, f64)> = Vec::new();
        let mut bin_start = start;
        while bin_start < end {
            let bin_end = (bin_start + bin).min(end);
            let vals: Vec<f64> = stored
                .iter()
                .filter(|p| p.t >= bin_start && p.t < bin_end)
                .map(|p| p.v)
                .collect();
            if !vals.is_empty() {
                expected.push((bin_start, aos_reference_aggregate(&vals, agg)));
            }
            bin_start += bin;
        }
        let got: Vec<(i64, f64)> =
            s.downsample(start, end, bin, agg).iter().map(|p| (p.t, p.v)).collect();
        prop_assert_eq!(got.len(), expected.len());
        for (&(gt, gv), &(et, ev)) in got.iter().zip(&expected) {
            prop_assert_eq!(gt, et);
            prop_assert_eq!(
                gv.to_bits(), ev.to_bits(),
                "bin {}: columnar {} != reference {} ({:?})", gt, gv, ev, agg
            );
        }
        // The dense variant must agree bin-for-bin with the sparse one.
        let dense = s.downsample_dense(start, end, bin, agg);
        let filled: Vec<(i64, f64)> = dense
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (start + i as i64 * bin, v)))
            .collect();
        prop_assert_eq!(filled, got);
    }

    /// `downsample_dense_into` / `quality_dense_into` are pure functions of
    /// the window — a dirty reused buffer must not leak previous contents.
    #[test]
    fn dense_into_ignores_buffer_residue(
        pts in prop::collection::vec((0i64..3_000, 0.0f64..100.0), 0..60),
        windows in prop::collection::vec((0i64..3_000, 1i64..600, 1u8..16), 0..8),
        bin in 1i64..400,
        agg in arb_aggregate(),
    ) {
        let store = Store::new();
        let key = SeriesKey::with_tags("m", &[("a", "b")]);
        for &(t, v) in &pts {
            store.write(&key, t, v);
        }
        for &(f, len, fl) in &windows {
            store.annotate(&key, f, f + len, fl);
        }
        let fresh_bins = store.downsample_dense(&key, 0, 3_000, bin, agg);
        let fresh_qual = store.quality_dense(&key, 0, 3_000, bin);
        // Dirty buffers: wrong length, stale contents.
        let mut bins = vec![Some(f64::MAX); 7];
        let mut qual = vec![0xffu8; 1_000];
        store.downsample_dense_into(&key, 0, 3_000, bin, agg, &mut bins);
        store.quality_dense_into(&key, 0, 3_000, bin, &mut qual);
        prop_assert_eq!(bins, fresh_bins);
        prop_assert_eq!(qual, fresh_qual);
    }

    /// Dense downsampling covers every bin exactly once.
    #[test]
    fn dense_bins_cover_window(
        pts in prop::collection::vec((0i64..5000, 0.0f64..10.0), 0..50),
        bin in 1i64..500,
    ) {
        let store = Store::new();
        let key = SeriesKey::with_tags("m", &[("a", "b")]);
        for &(t, v) in &pts {
            store.write(&key, t, v);
        }
        let dense = store.downsample_dense(&key, 0, 5000, bin, Aggregate::Min);
        let expected_bins = (5000 + bin - 1) / bin;
        prop_assert_eq!(dense.len() as i64, expected_bins);
        let filled = dense.iter().filter(|b| b.is_some()).count();
        let sparse = store.downsample(&key, 0, 5000, bin, Aggregate::Min).len();
        prop_assert_eq!(filled, sparse);
    }
}
