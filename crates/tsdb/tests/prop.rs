//! Property-based tests for the tsdb crate.

use manic_tsdb::{parse_line, Aggregate, Point, Series, SeriesKey, Store, TagSet};
use proptest::prelude::*;

proptest! {
    /// downsample(Min) output is <= every raw sample inside its bin and is a
    /// member of the bin.
    #[test]
    fn downsample_min_is_bin_minimum(
        pts in prop::collection::vec((0i64..10_000, -1e6f64..1e6), 1..200),
        bin in 1i64..1000,
    ) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        for Point { t: bin_start, v } in s.downsample(0, 10_000, bin, Aggregate::Min) {
            let in_bin: Vec<f64> = pts
                .iter()
                .filter(|(t, _)| *t >= bin_start && *t < bin_start + bin)
                .map(|&(_, v)| v)
                .collect();
            prop_assert!(!in_bin.is_empty());
            let min = in_bin.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(v, min);
        }
    }

    /// The series stays sorted no matter the insertion order.
    #[test]
    fn series_always_sorted(pts in prop::collection::vec((0i64..1000, -10.0f64..10.0), 0..100)) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        let ts: Vec<i64> = s.all().iter().map(|p| p.t).collect();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(s.len(), pts.len());
    }

    /// range(start, end) returns exactly the points in the half-open window.
    #[test]
    fn range_matches_linear_filter(
        pts in prop::collection::vec((0i64..1000, -10.0f64..10.0), 0..100),
        start in 0i64..1000,
        len in 0i64..1000,
    ) {
        let mut s = Series::new();
        for &(t, v) in &pts {
            s.push(t, v);
        }
        let end = start + len;
        let got = s.range(start, end).len();
        let expected = pts.iter().filter(|(t, _)| *t >= start && *t < end).count();
        prop_assert_eq!(got, expected);
    }

    /// Line-protocol roundtrip through arbitrary tag-ish strings.
    #[test]
    fn lineproto_roundtrip(
        meas in "[a-z]{1,8}",
        tags in prop::collection::vec(("[a-z]{1,6}", "[a-zA-Z0-9_.-]{1,8}"), 0..4),
        t in -1_000_000i64..1_000_000,
        v in -1e9f64..1e9,
    ) {
        let key = SeriesKey::new(
            meas,
            TagSet::from_pairs(tags.iter().map(|(k, v)| (k.clone(), v.clone()))),
        );
        let line = manic_tsdb::format_line(&key, Point::new(t, v));
        let (k2, p2) = parse_line(&line).unwrap();
        prop_assert_eq!(key, k2);
        prop_assert_eq!(p2.t, t);
        prop_assert!((p2.v - v).abs() <= 1e-9 * v.abs().max(1.0));
    }

    /// Dense downsampling covers every bin exactly once.
    #[test]
    fn dense_bins_cover_window(
        pts in prop::collection::vec((0i64..5000, 0.0f64..10.0), 0..50),
        bin in 1i64..500,
    ) {
        let store = Store::new();
        let key = SeriesKey::with_tags("m", &[("a", "b")]);
        for &(t, v) in &pts {
            store.write(&key, t, v);
        }
        let dense = store.downsample_dense(&key, 0, 5000, bin, Aggregate::Min);
        let expected_bins = (5000 + bin - 1) / bin;
        prop_assert_eq!(dense.len() as i64, expected_bins);
        let filled = dense.iter().filter(|b| b.is_some()).count();
        let sparse = store.downsample(&key, 0, 5000, bin, Aggregate::Min).len();
        prop_assert_eq!(filled, sparse);
    }
}
