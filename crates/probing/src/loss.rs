//! High-frequency packet-loss probing (§3.3).
//!
//! The loss module sends TTL-limited ICMP echoes toward the near and far
//! ends of suspect interdomain links, one probe per target interface per
//! second under a 150 pps budget, yielding 300 samples per link end per
//! five-minute window. Link selection is *reactive*: only links to peers or
//! providers (or to a static list of large T&CPs) that showed congestion in
//! a previous week are probed.

use crate::path::{probe_path, ProbePath, VpHandle};
use crate::scheduler::RateBudget;
use crate::tslp::End;
use manic_netsim::noise;
use manic_netsim::time::SimTime;
use manic_netsim::{Ipv4, Network, ProbeSpec, ProbeStatus, SimState};
use manic_tsdb::{SeriesKey, Store, TagSet};

/// One link under loss measurement.
#[derive(Debug, Clone)]
pub struct LossTarget {
    pub near_ip: Ipv4,
    pub far_ip: Ipv4,
    /// Destination whose path crosses the link (borrowed from TSLP state).
    pub dst: Ipv4,
    pub near_ttl: u8,
    pub far_ttl: u8,
    pub flow_id: u16,
}

impl LossTarget {
    pub fn link_label(&self) -> String {
        self.far_ip.to_string()
    }
}

/// Aggregated loss over one window.
#[derive(Debug, Clone, Copy)]
pub struct LossSample {
    pub window_start: SimTime,
    pub end: End,
    pub sent: u32,
    pub lost: u32,
}

impl LossSample {
    pub fn rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.lost as f64 / self.sent as f64
        }
    }
}

/// Loss aggregation window (the paper computes rates over 5-minute windows).
pub const WINDOW_SECS: i64 = 300;
/// Per-interface probing frequency.
pub const PROBES_PER_SEC: u32 = 1;
/// Module budget (§3.3).
pub const LOSS_PPS: f64 = 150.0;

/// Per-VP loss prober.
pub struct LossProber {
    pub vp: VpHandle,
    pub targets: Vec<LossTarget>,
    budget: RateBudget,
}

impl LossProber {
    pub fn new(vp: VpHandle, start: SimTime) -> Self {
        LossProber { vp, targets: Vec::new(), budget: RateBudget::new(LOSS_PPS, start) }
    }

    /// Replace the reactive target set. Panics if the set exceeds the pps
    /// budget (each target costs 2 probes per second).
    pub fn set_targets(&mut self, targets: Vec<LossTarget>) {
        assert!(
            (targets.len() * 2) as f64 <= LOSS_PPS,
            "loss target set exceeds the {LOSS_PPS} pps budget"
        );
        self.targets = targets;
    }

    /// Packet mode: probe every target interface once per second across a
    /// window, and write per-window loss rates into `store`.
    pub fn probe_window(
        &mut self,
        net: &Network,
        state: &mut SimState,
        window_start: SimTime,
        store: &Store,
    ) -> Vec<(usize, LossSample)> {
        let mut out = Vec::new();
        for ti in 0..self.targets.len() {
            let tgt = self.targets[ti].clone();
            for (end, ttl, expect) in [
                (End::Near, tgt.near_ttl, tgt.near_ip),
                (End::Far, tgt.far_ttl, tgt.far_ip),
            ] {
                let mut sent = 0;
                let mut lost = 0;
                for s in 0..WINDOW_SECS {
                    for _ in 0..PROBES_PER_SEC {
                        let t = self.budget.next_slot(window_start + s);
                        let status = net.send_probe(
                            state,
                            ProbeSpec {
                                src: self.vp.router,
                                src_addr: self.vp.addr,
                                dst: tgt.dst,
                                ttl,
                                flow_id: tgt.flow_id,
                            },
                            t,
                        );
                        sent += 1;
                        match status {
                            ProbeStatus::TimeExceeded { from, .. }
                            | ProbeStatus::EchoReply { from, .. }
                                if from == expect => {}
                            _ => lost += 1,
                        }
                    }
                }
                let sample = LossSample { window_start, end, sent, lost };
                store.write(
                    &series_key(&self.vp.name, &tgt, end),
                    window_start,
                    sample.rate(),
                );
                out.push((ti, sample));
            }
        }
        out
    }

    /// Fluid fast path: synthesize per-window loss rates over `[from, to)`
    /// without per-probe work. Sampling noise is injected with a normal
    /// approximation to the binomial.
    pub fn synthesize_window(
        &self,
        net: &Network,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(usize, Vec<LossSample>)> {
        let mut out = Vec::new();
        for (ti, tgt) in self.targets.iter().enumerate() {
            let mut paths: Vec<(End, ProbePath)> = Vec::new();
            for (end, ttl, expect) in [
                (End::Near, tgt.near_ttl, tgt.near_ip),
                (End::Far, tgt.far_ttl, tgt.far_ip),
            ] {
                if let Some(pp) = probe_path(net, &self.vp, tgt.dst, ttl, tgt.flow_id, from) {
                    if pp.responder_addr == expect {
                        paths.push((end, pp));
                    }
                }
            }
            let mut samples = Vec::new();
            let n = (WINDOW_SECS * PROBES_PER_SEC as i64) as f64;
            let mut w = from;
            while w < to {
                let t_mid = w + WINDOW_SECS / 2;
                for (end, pp) in &paths {
                    let p_loss = 1.0 - pp.response_prob(net, t_mid, PROBES_PER_SEC as f64);
                    let stream = ((tgt.far_ip.0 as u64) << 2)
                        | matches!(end, End::Far) as u64
                        | ((ti as u64) << 40);
                    let g = noise::gaussian(net.seed ^ 0x0010_55AA, stream, w as u64);
                    let lost =
                        (n * p_loss + (n * p_loss * (1.0 - p_loss)).sqrt() * g).round().clamp(0.0, n);
                    samples.push((
                        *end,
                        LossSample {
                            window_start: w,
                            end: *end,
                            sent: n as u32,
                            lost: lost as u32,
                        },
                    ));
                }
                w += WINDOW_SECS;
            }
            out.push((ti, samples.into_iter().map(|(_, s)| s).collect()));
        }
        out
    }
}

/// tsdb key for loss rates.
pub fn series_key(vp: &str, tgt: &LossTarget, end: End) -> SeriesKey {
    SeriesKey::new(
        "loss",
        TagSet::from_pairs([
            ("vp", vp.to_string()),
            ("link", tgt.link_label()),
            ("end", end.tag().to_string()),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_enforced() {
        let vp = VpHandle {
            name: "v".into(),
            router: manic_netsim::RouterId(0),
            addr: "10.0.0.1".parse().unwrap(),
        };
        let mut p = LossProber::new(vp, 0);
        let tgt = LossTarget {
            near_ip: "10.0.1.1".parse().unwrap(),
            far_ip: "10.0.1.2".parse().unwrap(),
            dst: "10.1.64.1".parse().unwrap(),
            near_ttl: 2,
            far_ttl: 3,
            flow_id: 1,
        };
        p.set_targets(vec![tgt.clone(); 75]); // exactly at budget
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.set_targets(vec![tgt; 76])
        }));
        assert!(r.is_err(), "76 targets must exceed the budget");
    }

    #[test]
    fn loss_sample_rate() {
        let s = LossSample { window_start: 0, end: End::Far, sent: 300, lost: 30 };
        assert!((s.rate() - 0.1).abs() < 1e-12);
        let z = LossSample { window_start: 0, end: End::Far, sent: 0, lost: 0 };
        assert_eq!(z.rate(), 0.0);
    }
}
